//! Process-level fault injection for the replicated service.
//!
//! [`srtw_minplus::FaultPlan`] injects faults *inside* one metered
//! analysis (trip/overflow/clockjump/panic — everything the budget
//! machinery can contain). The supervision tree needs one level up:
//! faults that kill, stall, or mutilate a whole replica *process*, so the
//! restart/backoff/quorum paths can be driven deterministically. A
//! [`ProcessFault`] fires on the N-th routed request of the process
//! (every endpoint counts, so a health-check flood can trigger it), and
//! the replica supervisor threads a spec through to exactly one replica —
//! a process fault that fired on every replica at once would kill the
//! fleet, which is precisely what the tree exists to prevent.

use std::sync::atomic::{AtomicU64, Ordering};

/// What a [`ProcessFault`] does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessFaultKind {
    /// `std::process::abort()` — the replica dies instantly, mid-request,
    /// like an OOM kill or an escaped double panic. The supervisor must
    /// restart it; the in-flight requests of that replica are lost.
    Abort,
    /// Sleep this many milliseconds before handling the request — a
    /// stuck worker / GC pause / scheduling stall. Deadlines and the
    /// health-checker must ride it out.
    Stall(u64),
    /// Drop the connection without a response (simulates a closed fd /
    /// mid-request crash visible to the client as a reset).
    CloseFd,
}

impl ProcessFaultKind {
    /// Stable machine-readable name.
    pub fn as_str(self) -> &'static str {
        match self {
            ProcessFaultKind::Abort => "abort",
            ProcessFaultKind::Stall(_) => "stall",
            ProcessFaultKind::CloseFd => "closefd",
        }
    }
}

/// A deterministic process-level fault: fires once, on the `at_request`-th
/// routed request (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessFault {
    /// 1-based index of the routed request the fault fires at.
    pub at_request: u64,
    /// What happens when it fires.
    pub kind: ProcessFaultKind,
}

impl ProcessFault {
    /// A fault of `kind` firing at the `at_request`-th routed request
    /// (0 is clamped to 1).
    pub fn new(at_request: u64, kind: ProcessFaultKind) -> ProcessFault {
        ProcessFault {
            at_request: at_request.max(1),
            kind,
        }
    }

    /// Parses a process-fault spec: `abort@N`, `stall@N:MS`, or
    /// `closefd@N`. Returns `None` for specs that belong to the metered
    /// [`srtw_minplus::FaultPlan`] grammar instead (`trip@…` etc.), so
    /// one `--fault` flag can serve both layers.
    pub fn parse(spec: &str) -> Option<Result<ProcessFault, String>> {
        let bad = || format!("bad process fault spec '{spec}' (abort@N | stall@N:MS | closefd@N)");
        let (kind, rest) = spec.split_once('@')?;
        match kind {
            "abort" => Some(
                rest.parse()
                    .map(|n| ProcessFault::new(n, ProcessFaultKind::Abort))
                    .map_err(|_| bad()),
            ),
            "closefd" => Some(
                rest.parse()
                    .map(|n| ProcessFault::new(n, ProcessFaultKind::CloseFd))
                    .map_err(|_| bad()),
            ),
            "stall" => {
                let parsed = rest.split_once(':').ok_or_else(bad).and_then(|(at, ms)| {
                    Ok(ProcessFault::new(
                        at.parse().map_err(|_| bad())?,
                        ProcessFaultKind::Stall(ms.parse().map_err(|_| bad())?),
                    ))
                });
                Some(parsed)
            }
            _ => None,
        }
    }
}

/// Arms a [`ProcessFault`] against a monotone request counter; the serve
/// path calls [`ProcessFaultArm::fire`] once per routed request.
#[derive(Debug, Default)]
pub struct ProcessFaultArm {
    plan: Option<ProcessFault>,
    seen: AtomicU64,
}

impl ProcessFaultArm {
    /// An armed (or inert, when `plan` is `None`) trigger.
    pub fn new(plan: Option<ProcessFault>) -> ProcessFaultArm {
        ProcessFaultArm {
            plan,
            seen: AtomicU64::new(0),
        }
    }

    /// Counts one routed request; returns the fault to execute if this is
    /// the firing request. [`ProcessFaultKind::Abort`] is *executed here*
    /// (the process dies); the other kinds are returned for the caller to
    /// act on in context.
    pub fn fire(&self) -> Option<ProcessFaultKind> {
        let plan = self.plan?;
        let n = self.seen.fetch_add(1, Ordering::Relaxed) + 1;
        if n != plan.at_request {
            return None;
        }
        if plan.kind == ProcessFaultKind::Abort {
            eprintln!(
                "srtw-serve: injected process fault abort@{} firing; aborting",
                plan.at_request
            );
            std::process::abort();
        }
        Some(plan.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_three_process_faults() {
        assert_eq!(
            ProcessFault::parse("abort@3").unwrap().unwrap(),
            ProcessFault::new(3, ProcessFaultKind::Abort)
        );
        assert_eq!(
            ProcessFault::parse("stall@2:500").unwrap().unwrap(),
            ProcessFault::new(2, ProcessFaultKind::Stall(500))
        );
        assert_eq!(
            ProcessFault::parse("closefd@1").unwrap().unwrap(),
            ProcessFault::new(1, ProcessFaultKind::CloseFd)
        );
        // Meter-level specs are not ours.
        assert!(ProcessFault::parse("trip@4").is_none());
        assert!(ProcessFault::parse("nonsense").is_none());
        // Ours but malformed: a typed error, not a silent pass-through.
        assert!(ProcessFault::parse("stall@2").unwrap().is_err());
        assert!(ProcessFault::parse("abort@x").unwrap().is_err());
    }

    #[test]
    fn arm_fires_exactly_once_at_the_right_request() {
        let arm = ProcessFaultArm::new(Some(ProcessFault::new(3, ProcessFaultKind::CloseFd)));
        assert_eq!(arm.fire(), None);
        assert_eq!(arm.fire(), None);
        assert_eq!(arm.fire(), Some(ProcessFaultKind::CloseFd));
        assert_eq!(arm.fire(), None);
        let inert = ProcessFaultArm::new(None);
        assert_eq!(inert.fire(), None);
    }
}
