//! The digraph real-time task model (DRT).
//!
//! A [`DrtTask`] is a directed graph whose vertices are *job types* — each
//! carrying a worst-case execution time (WCET) and optionally a relative
//! deadline — and whose edges carry *minimum inter-release separations*. A
//! legal behaviour of the task is any (finite or infinite) walk through the
//! graph, releasing one job per visited vertex, with consecutive releases
//! separated by at least the traversed edge's label.
//!
//! The model subsumes periodic, sporadic, generalized-multiframe and
//! recurring-branching tasks (see [`crate::models`] for converters) and is
//! the *structural* workload description whose delay analysis this
//! workspace reproduces.

use crate::error::WorkloadError;
use srtw_minplus::Q;
use std::fmt;

/// Index of a vertex (job type) within a [`DrtTask`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VertexId(pub(crate) usize);

impl VertexId {
    /// The underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A job type: label, WCET, and optional relative deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vertex {
    /// Human-readable label (for reports and DOT export).
    pub label: String,
    /// Worst-case execution time of jobs of this type (strictly positive).
    pub wcet: Q,
    /// Relative deadline, if the job type has one.
    pub deadline: Option<Q>,
}

/// A directed edge with its minimum inter-release separation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Target vertex.
    pub to: VertexId,
    /// Minimum time between the release at the source and the release at
    /// `to` (strictly positive).
    pub separation: Q,
}

/// A digraph real-time task.
///
/// Construct with [`DrtTaskBuilder`]; the builder validates all model
/// invariants (positive WCETs and separations, edge targets in range).
///
/// # Examples
///
/// ```
/// use srtw_workload::DrtTaskBuilder;
/// use srtw_minplus::Q;
///
/// // A two-mode task: a heavy job, then at least 10 time units later a
/// // light job, then back.
/// let mut b = DrtTaskBuilder::new("modes");
/// let heavy = b.vertex("heavy", Q::int(4));
/// let light = b.vertex("light", Q::int(1));
/// b.edge(heavy, light, Q::int(10));
/// b.edge(light, heavy, Q::int(5));
/// let task = b.build().unwrap();
/// assert_eq!(task.num_vertices(), 2);
/// assert_eq!(task.wcet(heavy), Q::int(4));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrtTask {
    name: String,
    vertices: Vec<Vertex>,
    adjacency: Vec<Vec<Edge>>,
}

impl DrtTask {
    /// The task's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of vertices (job types).
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Iterator over all vertex ids.
    pub fn vertex_ids(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.vertices.len()).map(VertexId)
    }

    /// The vertex data for `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range (ids are only handed out by the
    /// builder, so this indicates mixing ids across tasks).
    pub fn vertex(&self, v: VertexId) -> &Vertex {
        &self.vertices[v.0]
    }

    /// The WCET of jobs of type `v`.
    pub fn wcet(&self, v: VertexId) -> Q {
        self.vertices[v.0].wcet
    }

    /// The relative deadline of jobs of type `v`, if any.
    pub fn deadline(&self, v: VertexId) -> Option<Q> {
        self.vertices[v.0].deadline
    }

    /// Outgoing edges of `v`.
    pub fn out_edges(&self, v: VertexId) -> &[Edge] {
        &self.adjacency[v.0]
    }

    /// Total number of edges.
    pub fn num_edges(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum()
    }

    /// The largest WCET over all vertices.
    pub fn max_wcet(&self) -> Q {
        self.vertices
            .iter()
            .map(|v| v.wcet)
            .fold(Q::ZERO, Q::max)
    }

    /// The smallest edge separation (`None` for an edgeless graph).
    pub fn min_separation(&self) -> Option<Q> {
        self.adjacency
            .iter()
            .flatten()
            .map(|e| e.separation)
            .reduce(Q::min)
    }

    /// Does the graph contain at least one cycle? (Determines whether the
    /// task can release infinitely many jobs.)
    pub fn has_cycle(&self) -> bool {
        // Iterative DFS with colors.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let n = self.vertices.len();
        let mut color = vec![Color::White; n];
        for start in 0..n {
            if color[start] != Color::White {
                continue;
            }
            // Stack of (vertex, next-edge-index).
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            color[start] = Color::Gray;
            while let Some(&(v, ei)) = stack.last() {
                if ei < self.adjacency[v].len() {
                    stack.last_mut().expect("non-empty").1 += 1;
                    let w = self.adjacency[v][ei].to.0;
                    match color[w] {
                        Color::Gray => return true,
                        Color::White => {
                            color[w] = Color::Gray;
                            stack.push((w, 0));
                        }
                        Color::Black => {}
                    }
                } else {
                    color[v] = Color::Black;
                    stack.pop();
                }
            }
        }
        false
    }

    /// Graphviz DOT rendering of the task graph (labels show WCETs, edges
    /// show separations).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "digraph \"{}\" {{", self.name);
        for (i, v) in self.vertices.iter().enumerate() {
            let dl = match v.deadline {
                Some(d) => format!(", d={d}"),
                None => String::new(),
            };
            let _ = writeln!(s, "  v{i} [label=\"{} (e={}{})\"];", v.label, v.wcet, dl);
        }
        for (i, edges) in self.adjacency.iter().enumerate() {
            for e in edges {
                let _ = writeln!(s, "  v{i} -> v{} [label=\"{}\"];", e.to.0, e.separation);
            }
        }
        s.push_str("}\n");
        s
    }
}

/// Builder for [`DrtTask`]; validates the model on [`DrtTaskBuilder::build`].
#[derive(Debug, Clone)]
pub struct DrtTaskBuilder {
    name: String,
    vertices: Vec<Vertex>,
    edges: Vec<(usize, usize, Q)>,
}

impl DrtTaskBuilder {
    /// Starts a new task graph with the given name.
    pub fn new(name: impl Into<String>) -> DrtTaskBuilder {
        DrtTaskBuilder {
            name: name.into(),
            vertices: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Adds a job type with the given label and WCET; returns its id.
    pub fn vertex(&mut self, label: impl Into<String>, wcet: Q) -> VertexId {
        self.vertices.push(Vertex {
            label: label.into(),
            wcet,
            deadline: None,
        });
        VertexId(self.vertices.len() - 1)
    }

    /// Adds a job type with a relative deadline.
    pub fn vertex_with_deadline(
        &mut self,
        label: impl Into<String>,
        wcet: Q,
        deadline: Q,
    ) -> VertexId {
        let id = self.vertex(label, wcet);
        self.vertices[id.0].deadline = Some(deadline);
        id
    }

    /// Sets (or replaces) the deadline of an existing vertex.
    pub fn set_deadline(&mut self, v: VertexId, deadline: Q) -> &mut Self {
        self.vertices[v.0].deadline = Some(deadline);
        self
    }

    /// Adds a directed edge with minimum inter-release separation.
    pub fn edge(&mut self, from: VertexId, to: VertexId, separation: Q) -> &mut Self {
        self.edges.push((from.0, to.0, separation));
        self
    }

    /// Validates and builds the task.
    pub fn build(self) -> Result<DrtTask, WorkloadError> {
        if self.vertices.is_empty() {
            return Err(WorkloadError::EmptyGraph);
        }
        for (i, v) in self.vertices.iter().enumerate() {
            if !v.wcet.is_positive() {
                return Err(WorkloadError::NonPositiveWcet {
                    vertex: i,
                    wcet: v.wcet,
                });
            }
            if let Some(d) = v.deadline {
                if !d.is_positive() {
                    return Err(WorkloadError::NonPositiveDeadline {
                        vertex: i,
                        deadline: d,
                    });
                }
            }
        }
        let n = self.vertices.len();
        let mut adjacency: Vec<Vec<Edge>> = vec![Vec::new(); n];
        for &(from, to, sep) in &self.edges {
            if from >= n {
                return Err(WorkloadError::UnknownVertex { index: from });
            }
            if to >= n {
                return Err(WorkloadError::UnknownVertex { index: to });
            }
            if !sep.is_positive() {
                return Err(WorkloadError::NonPositiveSeparation {
                    from,
                    to,
                    separation: sep,
                });
            }
            if adjacency[from].iter().any(|e| e.to.0 == to) {
                return Err(WorkloadError::DuplicateEdge { from, to });
            }
            adjacency[from].push(Edge {
                to: VertexId(to),
                separation: sep,
            });
        }
        Ok(DrtTask {
            name: self.name,
            vertices: self.vertices,
            adjacency,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtw_minplus::q;

    fn two_mode() -> DrtTask {
        let mut b = DrtTaskBuilder::new("two-mode");
        let h = b.vertex("heavy", Q::int(4));
        let l = b.vertex("light", Q::ONE);
        b.edge(h, l, Q::int(10));
        b.edge(l, h, Q::int(5));
        b.build().unwrap()
    }

    #[test]
    fn builder_roundtrip() {
        let t = two_mode();
        assert_eq!(t.name(), "two-mode");
        assert_eq!(t.num_vertices(), 2);
        assert_eq!(t.num_edges(), 2);
        assert_eq!(t.max_wcet(), Q::int(4));
        assert_eq!(t.min_separation(), Some(Q::int(5)));
        let h = VertexId(0);
        assert_eq!(t.vertex(h).label, "heavy");
        assert_eq!(t.out_edges(h).len(), 1);
        assert_eq!(t.out_edges(h)[0].to, VertexId(1));
    }

    #[test]
    fn validation_errors() {
        let mut b = DrtTaskBuilder::new("bad");
        let v = b.vertex("x", Q::ZERO);
        let _ = v;
        assert!(matches!(
            b.build(),
            Err(WorkloadError::NonPositiveWcet { .. })
        ));

        let b = DrtTaskBuilder::new("empty");
        assert!(matches!(b.build(), Err(WorkloadError::EmptyGraph)));

        let mut b = DrtTaskBuilder::new("bad-edge");
        let v = b.vertex("x", Q::ONE);
        b.edge(v, v, Q::ZERO);
        assert!(matches!(
            b.build(),
            Err(WorkloadError::NonPositiveSeparation { .. })
        ));

        let mut b = DrtTaskBuilder::new("dup");
        let v = b.vertex("x", Q::ONE);
        b.edge(v, v, Q::ONE);
        b.edge(v, v, Q::TWO);
        assert!(matches!(b.build(), Err(WorkloadError::DuplicateEdge { .. })));

        let mut b = DrtTaskBuilder::new("bad-deadline");
        let v = b.vertex("x", Q::ONE);
        b.set_deadline(v, q(-1, 2));
        assert!(matches!(
            b.build(),
            Err(WorkloadError::NonPositiveDeadline { .. })
        ));
    }

    #[test]
    fn cycle_detection() {
        assert!(two_mode().has_cycle());

        let mut b = DrtTaskBuilder::new("dag");
        let a = b.vertex("a", Q::ONE);
        let c = b.vertex("b", Q::ONE);
        b.edge(a, c, Q::ONE);
        assert!(!b.build().unwrap().has_cycle());

        let mut b = DrtTaskBuilder::new("self-loop");
        let v = b.vertex("v", Q::ONE);
        b.edge(v, v, Q::int(3));
        assert!(b.build().unwrap().has_cycle());
    }

    #[test]
    fn dot_export_contains_structure() {
        let dot = two_mode().to_dot();
        assert!(dot.contains("digraph"));
        assert!(dot.contains("heavy"));
        assert!(dot.contains("v0 -> v1"));
        assert!(dot.contains("10"));
    }

    #[test]
    fn deadline_accessors() {
        let mut b = DrtTaskBuilder::new("dl");
        let v = b.vertex_with_deadline("v", Q::ONE, Q::int(7));
        let t = b.build().unwrap();
        assert_eq!(t.deadline(v), Some(Q::int(7)));
    }
}
