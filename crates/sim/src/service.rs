//! Concrete service processes for simulation.
//!
//! The analyses bound service from below by a curve `β`; the simulator
//! executes a *concrete* service process whose cumulative capacity
//! `S(t)` satisfies `S(t) − S(s) ≥ β(t − s)` for all `s ≤ t`. Running any
//! legal trace on such a process therefore produces delays that must stay
//! below the analytic bounds — the soundness check every experiment
//! performs.

use srtw_minplus::{Curve, Piece, Q, Tail};

/// A concrete service process: cumulative capacity as an exact curve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceProcess {
    cumulative: Curve,
    label: String,
}

impl ServiceProcess {
    /// A fluid processor of constant `rate`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn fluid(rate: Q) -> ServiceProcess {
        assert!(rate.is_positive(), "fluid service needs a positive rate");
        ServiceProcess {
            cumulative: Curve::affine(Q::ZERO, rate),
            label: format!("fluid(rate={rate})"),
        }
    }

    /// A TDMA process serving at `capacity` during the slot
    /// `[offset, offset + slot)` of every cycle (no wrap: requires
    /// `offset + slot ≤ cycle`).
    ///
    /// # Panics
    ///
    /// Panics on non-positive slot/cycle/capacity or a wrapping offset.
    pub fn tdma(slot: Q, cycle: Q, capacity: Q, offset: Q) -> ServiceProcess {
        assert!(slot.is_positive() && cycle.is_positive() && capacity.is_positive());
        assert!(!offset.is_negative() && offset + slot <= cycle, "offset must not wrap");
        let label = format!("tdma(slot={slot}, cycle={cycle}, offset={offset})");
        let mut pieces = Vec::new();
        if offset.is_positive() {
            pieces.push(Piece::new(Q::ZERO, Q::ZERO, Q::ZERO));
        }
        pieces.push(Piece::new(offset, Q::ZERO, capacity));
        if offset + slot < cycle {
            pieces.push(Piece::new(offset + slot, capacity * slot, Q::ZERO));
        }
        let cumulative = Curve::new(
            pieces,
            Tail::Periodic {
                pattern_start: 0,
                period: cycle,
                increment: capacity * slot,
            },
        )
        .expect("TDMA service process curve invalid");
        ServiceProcess { cumulative, label }
    }

    /// Wraps an arbitrary cumulative-capacity curve. The curve must be
    /// continuous (no jumps) for the completion-time computation to be
    /// meaningful; staircase capacity is not a physical service process.
    pub fn from_curve(label: impl Into<String>, cumulative: Curve) -> ServiceProcess {
        ServiceProcess {
            cumulative,
            label: label.into(),
        }
    }

    /// Cumulative capacity delivered on `[0, t]`.
    pub fn capacity_by(&self, t: Q) -> Q {
        self.cumulative.eval(t)
    }

    /// Earliest time `t ≥ from` by which `work` more units can be served
    /// when busy continuously from `from`.
    pub fn finish_time(&self, from: Q, work: Q) -> Option<Q> {
        let target = self.cumulative.eval(from) + work;
        self.cumulative.pseudo_inverse(target).finite().map(|t| t.max(from))
    }

    /// The underlying cumulative curve.
    pub fn cumulative(&self) -> &Curve {
        &self.cumulative
    }

    /// Human-readable description.
    pub fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtw_minplus::q;

    #[test]
    fn fluid_finish_times() {
        let s = ServiceProcess::fluid(q(1, 2));
        assert_eq!(s.finish_time(Q::ZERO, Q::int(2)), Some(Q::int(4)));
        assert_eq!(s.finish_time(Q::int(10), Q::ONE), Some(Q::int(12)));
        assert_eq!(s.capacity_by(Q::int(8)), Q::int(4));
    }

    #[test]
    fn tdma_capacity_shape() {
        // Slot [1, 3) of a 5-cycle at unit capacity.
        let s = ServiceProcess::tdma(Q::int(2), Q::int(5), Q::ONE, Q::ONE);
        assert_eq!(s.capacity_by(Q::ONE), Q::ZERO);
        assert_eq!(s.capacity_by(Q::int(2)), Q::ONE);
        assert_eq!(s.capacity_by(Q::int(3)), Q::int(2));
        assert_eq!(s.capacity_by(Q::int(5)), Q::int(2));
        assert_eq!(s.capacity_by(Q::int(7)), Q::int(3));
        // Work arriving mid-gap waits for the next slot.
        assert_eq!(s.finish_time(Q::int(3), Q::ONE), Some(Q::int(7)));
    }

    #[test]
    fn tdma_dominates_its_lower_curve() {
        // For every offset, windowed capacity ≥ the analysis' lower curve.
        use srtw_resource::{Server, TdmaServer};
        let beta = TdmaServer::new(Q::int(2), Q::int(5), Q::ONE)
            .unwrap()
            .beta_lower();
        for onum in 0..=6 {
            let offset = q(onum, 2); // 0 .. 3 = cycle − slot
            let s = ServiceProcess::tdma(Q::int(2), Q::int(5), Q::ONE, offset);
            for i in 0..40 {
                for j in i..40 {
                    let (a, b) = (q(i, 2), q(j, 2));
                    let window = s.capacity_by(b) - s.capacity_by(a);
                    assert!(
                        window >= beta.eval(b - a),
                        "offset {offset}: window [{a},{b}] gives {window} < β"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "wrap")]
    fn tdma_wrapping_offset_rejected() {
        let _ = ServiceProcess::tdma(Q::int(2), Q::int(5), Q::ONE, Q::int(4));
    }
}
