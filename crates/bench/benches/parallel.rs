//! B6 — parallel path exploration and the shaped-convolution fast paths
//! (asserts bit-identical results before timing).
//!
//! Run with `cargo bench -p srtw-bench --bench parallel`; set
//! `SRTW_BENCH_FAST=1` for a quick smoke run. Thread-scaling numbers are
//! machine-relative: see EXPERIMENTS.md.

use srtw_bench::suites::parallel_suite;
use srtw_bench::timing::{print_samples, Timer};

fn main() {
    print_samples(&parallel_suite(&Timer::from_env()));
}
