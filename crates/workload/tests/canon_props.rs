//! Property-based tests for the canonicalization pass ([`srtw_workload::canon`]).
//!
//! The two directions the content-addressed cache depends on:
//!
//! * **Invariance** — permuting vertex insertion order or renaming
//!   labels never changes the canonical form (a cache keyed on it hits
//!   across presentations);
//! * **Sensitivity** — any single *semantic* mutation (WCET, separation,
//!   deadline, edge set) produces a different canonical form. Each
//!   mutation here provably changes a label multiset (WCETs, separations,
//!   deadlines, or the edge count), so the mutant is never isomorphic to
//!   the base and equal forms would be a soundness bug, not a collision.
//!
//! Runs on the in-house seeded harness ([`srtw_detrand::prop`]); set
//! `SRTW_PROP_CASES` / `SRTW_PROP_SEED` / `SRTW_PROP_REPLAY` to control it.

use srtw_detrand::prop::forall;
use srtw_detrand::Rng;
use srtw_minplus::Q;
use srtw_workload::{canonical_task_form, combine_forms, DrtTask, DrtTaskBuilder};

/// A task described as plain data so the harness can print and shrink it.
#[derive(Debug, Clone)]
struct Spec {
    /// Per-vertex `(wcet, deadline)`; wide value ranges keep WL color
    /// classes mostly distinct, so the branching search stays shallow.
    vertices: Vec<(i128, Option<i128>)>,
    /// `(from, to, separation)`; the first `n` edges are the ring that
    /// keeps the task well-formed, the rest are chords.
    edges: Vec<(usize, usize, i128)>,
}

impl Spec {
    fn n(&self) -> usize {
        self.vertices.len()
    }

    /// Builds the task with vertex insertion order `order` (old index
    /// `order[k]` becomes new vertex `k`) and the given label prefix.
    fn build(&self, order: &[usize], prefix: &str) -> DrtTask {
        let mut pos = vec![0usize; self.n()];
        for (k, &old) in order.iter().enumerate() {
            pos[old] = k;
        }
        let mut b = DrtTaskBuilder::new("spec");
        let mut ids = Vec::with_capacity(self.n());
        for (k, &old) in order.iter().enumerate() {
            let (w, d) = self.vertices[old];
            ids.push(match d {
                Some(d) => b.vertex_with_deadline(format!("{prefix}{k}"), Q::int(w), Q::int(d)),
                None => b.vertex(format!("{prefix}{k}"), Q::int(w)),
            });
        }
        // Edge insertion order permuted along with the vertices, so the
        // two presentations share nothing but structure.
        let mut edges: Vec<_> = self
            .edges
            .iter()
            .map(|&(f, t, s)| (pos[f], pos[t], s))
            .collect();
        edges.sort_unstable();
        for (f, t, s) in edges {
            b.edge(ids[f], ids[t], Q::int(s));
        }
        b.build().expect("spec builds a valid task")
    }

    fn identity(&self) -> Vec<usize> {
        (0..self.n()).collect()
    }
}

fn spec(rng: &mut Rng, size: u32) -> Spec {
    let n = rng.random_range(2usize..(3 + (size as usize % 5)));
    let vertices: Vec<(i128, Option<i128>)> = (0..n)
        .map(|_| {
            let w = rng.random_range(1i128..10_000);
            let d = rng
                .random_bool()
                .then(|| w + rng.random_range(1i128..10_000));
            (w, d)
        })
        .collect();
    let mut edges: Vec<(usize, usize, i128)> = (0..n)
        .map(|i| (i, (i + 1) % n, rng.random_range(2i128..10_000)))
        .collect();
    let mut present: std::collections::HashSet<(usize, usize)> =
        edges.iter().map(|&(f, t, _)| (f, t)).collect();
    for _ in 0..rng.random_range(0usize..2 * n) {
        let f = rng.random_range(0usize..n);
        let t = rng.random_range(0usize..n);
        if present.insert((f, t)) {
            edges.push((f, t, rng.random_range(2i128..10_000)));
        }
    }
    Spec { vertices, edges }
}

#[test]
fn canonical_form_is_invariant_under_permutation_and_renaming() {
    forall(
        "canon_permutation_invariance",
        |rng, size| {
            let s = spec(rng, size);
            let mut perm = s.identity();
            rng.shuffle(&mut perm);
            (s, perm)
        },
        |(s, perm)| {
            let base = canonical_task_form(&s.build(&s.identity(), "v"));
            let permuted = canonical_task_form(&s.build(perm, "renamed_"));
            assert_eq!(
                base, permuted,
                "permuted/renamed presentation changed the canonical form"
            );
            assert_eq!(base.hash(), permuted.hash());
        },
    );
}

/// One semantic mutation, chosen and parameterized by the seed.
#[derive(Debug, Clone)]
enum Mutation {
    Wcet { v: usize, delta: i128 },
    Sep { e: usize, delta: i128 },
    DeadlineToggle { v: usize },
    AddEdge { f: usize, t: usize, sep: i128 },
    DropChord { e: usize },
}

fn mutate(s: &Spec, m: &Mutation) -> Spec {
    let mut out = s.clone();
    match *m {
        Mutation::Wcet { v, delta } => out.vertices[v].0 += delta,
        Mutation::Sep { e, delta } => out.edges[e].2 += delta,
        Mutation::DeadlineToggle { v } => {
            let (w, d) = out.vertices[v];
            out.vertices[v].1 = match d {
                Some(_) => None,
                None => Some(w + 7),
            };
        }
        Mutation::AddEdge { f, t, sep } => out.edges.push((f, t, sep)),
        Mutation::DropChord { e } => {
            out.edges.remove(e);
        }
    }
    out
}

#[test]
fn any_single_semantic_mutation_changes_the_canonical_form() {
    forall(
        "canon_mutation_sensitivity",
        |rng, size| {
            let s = spec(rng, size);
            let n = s.n();
            let mutation = match rng.random_range(0u32..5) {
                0 => Mutation::Wcet {
                    v: rng.random_range(0usize..n),
                    delta: rng.random_range(1i128..1_000),
                },
                1 => Mutation::Sep {
                    e: rng.random_range(0usize..s.edges.len()),
                    delta: rng.random_range(1i128..1_000),
                },
                2 => Mutation::DeadlineToggle {
                    v: rng.random_range(0usize..n),
                },
                3 => {
                    // A (from, to) pair not in the edge set, if any —
                    // else fall back to a WCET bump.
                    let present: std::collections::HashSet<_> =
                        s.edges.iter().map(|&(f, t, _)| (f, t)).collect();
                    let absent = (0..n)
                        .flat_map(|f| (0..n).map(move |t| (f, t)))
                        .find(|p| !present.contains(p));
                    match absent {
                        Some((f, t)) => Mutation::AddEdge {
                            f,
                            t,
                            sep: rng.random_range(2i128..1_000),
                        },
                        None => Mutation::Wcet {
                            v: 0,
                            delta: rng.random_range(1i128..1_000),
                        },
                    }
                }
                _ => {
                    // Only chords (edges past the ring) are droppable
                    // without disconnecting the graph; with none, fall
                    // back to a separation bump.
                    if s.edges.len() > n {
                        Mutation::DropChord {
                            e: rng.random_range(n..s.edges.len()),
                        }
                    } else {
                        Mutation::Sep {
                            e: rng.random_range(0usize..s.edges.len()),
                            delta: rng.random_range(1i128..1_000),
                        }
                    }
                }
            };
            (s, mutation)
        },
        |(s, mutation)| {
            let base = canonical_task_form(&s.build(&s.identity(), "v"));
            let mutant_spec = mutate(s, mutation);
            // Present the mutant under a random-ish permutation too: the
            // forms must differ for *every* presentation of the mutant.
            let mut order = mutant_spec.identity();
            let shift = 1 % order.len().max(1);
            order.rotate_left(shift);
            let mutant = canonical_task_form(&mutant_spec.build(&order, "v"));
            assert_ne!(
                base, mutant,
                "semantic mutation {mutation:?} left the canonical form unchanged"
            );
            assert_ne!(base.hash(), mutant.hash());
        },
    );
}

#[test]
fn system_form_is_invariant_under_task_order() {
    forall(
        "canon_task_order_invariance",
        |rng, size| (spec(rng, size), spec(rng, size)),
        |(a, b)| {
            let fa = canonical_task_form(&a.build(&a.identity(), "a"));
            let fb = canonical_task_form(&b.build(&b.identity(), "b"));
            let extra = [3, 1, 4];
            let ab = combine_forms(vec![fa.clone(), fb.clone()], &extra);
            let ba = combine_forms(vec![fb, fa], &extra);
            assert_eq!(ab, ba, "task declaration order leaked into the system form");
            assert_eq!(ab.hash(), ba.hash());
        },
    );
}

#[test]
fn system_form_distinguishes_server_parameters() {
    let s = Spec {
        vertices: vec![(3, None), (5, Some(20))],
        edges: vec![(0, 1, 7), (1, 0, 9)],
    };
    let form = canonical_task_form(&s.build(&s.identity(), "v"));
    let with_a = combine_forms(vec![form.clone()], &[1, 2, 3]);
    let with_b = combine_forms(vec![form.clone()], &[1, 2, 4]);
    let without = combine_forms(vec![form], &[]);
    assert_ne!(with_a, with_b);
    assert_ne!(with_a, without);
}
