//! Maximum-busy-window bounds.
//!
//! Every bound this crate computes lives inside a *busy window*: a maximal
//! interval in which the server is continuously backlogged. For a stable
//! system (total demand rate strictly below the guaranteed service rate)
//! the busy-window length is bounded by the smallest `L > 0` with
//! `rbf_total(L) ≤ β(L)`, obtained here by the classical fixpoint
//! iteration `L ← β⁻¹(rbf_total(L))`. All path exploration and deviation
//! suprema can then be restricted to `[0, L]` — the finitary argument that
//! keeps every computation exact and finite.

use crate::error::AnalysisError;
use srtw_minplus::{BudgetKind, BudgetMeter, Curve, Ext, Q};
use srtw_workload::{long_run_utilization, DrtTask, Rbf, RbfMemo};

/// The busy-window bound of a set of streams sharing a server, together
/// with the per-stream request-bound functions materialized to that bound.
#[derive(Debug, Clone)]
pub struct BusyWindow {
    /// A sound upper bound on every busy-window length.
    pub bound: Q,
    /// Per-stream rbf, valid on `[0, bound]` (possibly truncated when a
    /// budget tripped — evaluate through [`Rbf::bound_at`]).
    pub rbfs: Vec<Rbf>,
    /// Total long-run utilization of all streams.
    pub utilization: Q,
    /// Fixpoint iterations used.
    pub iterations: usize,
    /// `Some(kind)` when a budget tripped while computing the bound: the
    /// bound then comes from the coarse affine demand lines (or the rbfs
    /// are truncated) and is sound but possibly pessimistic.
    pub degraded: Option<BudgetKind>,
}

impl BusyWindow {
    /// Total demand of all streams in a window of length `t ≤ bound`.
    pub fn total_rbf(&self, t: Q) -> Q {
        self.rbfs
            .iter()
            .map(|r| r.bound_at(t))
            .fold(Q::ZERO, |a, b| a + b)
    }
}

/// Computes a busy-window bound for `tasks` jointly served by a resource
/// with lower service curve `beta`.
///
/// # Errors
///
/// [`AnalysisError::Unstable`] when the summed utilization reaches the
/// service rate; [`AnalysisError::BusyWindowDiverged`] if the fixpoint does
/// not converge within the iteration cap.
///
/// # Examples
///
/// ```
/// use srtw_core::busy_window;
/// use srtw_minplus::{Curve, Q};
/// use srtw_workload::DrtTaskBuilder;
///
/// let mut b = DrtTaskBuilder::new("loop");
/// let v = b.vertex("v", Q::int(2));
/// b.edge(v, v, Q::int(5));
/// let task = b.build().unwrap();
/// let beta = Curve::affine(Q::ZERO, Q::ONE); // dedicated unit server
///
/// let bw = busy_window(&[task], &beta).unwrap();
/// assert_eq!(bw.bound, Q::int(2)); // one job, done before the next
/// ```
pub fn busy_window(tasks: &[DrtTask], beta: &Curve) -> Result<BusyWindow, AnalysisError> {
    busy_window_metered(tasks, beta, &BudgetMeter::unlimited())
}

/// Budgeted [`busy_window`]: when the meter trips — whether while
/// exploring an rbf or (wall clock) between fixpoint iterations — the
/// iteration stops doing exact work and the bound is finished analytically
/// on the coarse affine demand lines `Σᵢ (bᵢ + rᵢ·t)` (each dominating its
/// stream's true rbf everywhere, see [`Rbf::coarse_line`]) against the
/// service's global lower line `β(t) ≥ b_β + r_β·t`: any `L` with
/// `Σᵢ bᵢ + L·Σᵢ rᵢ ≤ b_β + r_β·L` satisfies `rbf_total(L) ≤ β(L)` and is
/// therefore a sound busy-window bound. The result is marked in
/// [`BusyWindow::degraded`].
///
/// # Errors
///
/// In addition to the [`busy_window`] errors,
/// [`AnalysisError::BudgetExhausted`] when the coarse demand rate reaches
/// the service rate (the affine lines never cross, so no sound degraded
/// bound exists).
pub fn busy_window_metered(
    tasks: &[DrtTask],
    beta: &Curve,
    meter: &BudgetMeter,
) -> Result<BusyWindow, AnalysisError> {
    busy_window_metered_ext(tasks, beta, meter, 1, &RbfMemo::new(tasks.len()))
}

/// [`busy_window_metered`] with explicit parallelism and an rbf memo.
///
/// `threads` shards each rbf's path exploration (bit-identical to the
/// sequential run for any value; `<= 1` runs the sequential engine). The
/// `memo` deduplicates repeated `(task, horizon)` materializations — most
/// usefully shared with the caller's own per-stream analyses, which revisit
/// the final fixpoint bound.
pub fn busy_window_metered_ext(
    tasks: &[DrtTask],
    beta: &Curve,
    meter: &BudgetMeter,
    threads: usize,
    memo: &RbfMemo,
) -> Result<BusyWindow, AnalysisError> {
    let utilization = tasks
        .iter()
        .map(long_run_utilization)
        .fold(Q::ZERO, |a, b| a + b);
    let rate = beta.rate();
    if utilization >= rate {
        // Acyclic-only workloads have utilization 0 < any positive rate; a
        // zero rate with nonzero demand is saturation.
        if rate.is_zero() {
            return Err(AnalysisError::ServiceSaturated);
        }
        return Err(AnalysisError::Unstable {
            utilization,
            service_rate: rate,
        });
    }

    let mut horizon = Q::ONE;
    let mut rbfs: Vec<Rbf> = tasks
        .iter()
        .enumerate()
        .map(|(i, t)| memo.get_or_compute(i, t, horizon, meter, threads))
        .collect();
    let mut level = Q::ZERO;
    let mut iterations = 0usize;
    const CAP: usize = 100_000;
    loop {
        iterations += 1;
        if iterations > CAP {
            return Err(AnalysisError::BusyWindowDiverged { reached: level });
        }
        // Exact iteration on truncated rbfs would chase the continuous
        // affine tail and never attain the fixpoint — switch to the
        // analytic finish as soon as anything trips.
        if !meter.check_wall() || rbfs.iter().any(|r| r.truncated().is_some()) {
            return coarse_busy_window(beta, rbfs, utilization, iterations, meter);
        }
        let demand: Q = rbfs
            .iter()
            .map(|r| r.eval(level.min(r.horizon())))
            .fold(Q::ZERO, |a, b| a + b);
        let next = match beta.pseudo_inverse(demand) {
            Ext::Finite(t) => t,
            Ext::Infinite => return Err(AnalysisError::ServiceSaturated),
        };
        if next <= level {
            // Fixpoint: service catches up with demand at `level`.
            let bound = level.max(Q::ONE);
            // Materialize rbfs on the final bound. If that final pass
            // trips, the bound itself is still the exact fixpoint; only
            // the materialized rbfs are coarse.
            let rbfs: Vec<Rbf> = tasks
                .iter()
                .enumerate()
                .map(|(i, t)| memo.get_or_compute(i, t, bound, meter, threads))
                .collect();
            let degraded = if rbfs.iter().any(|r| r.truncated().is_some()) {
                meter.tripped()
            } else {
                None
            };
            return Ok(BusyWindow {
                bound,
                rbfs,
                utilization,
                iterations,
                degraded,
            });
        }
        level = next;
        if level > horizon {
            horizon = level + level; // grow geometrically to amortize
            rbfs = tasks
                .iter()
                .enumerate()
                .map(|(i, t)| memo.get_or_compute(i, t, horizon, meter, threads))
                .collect();
        }
    }
}

/// Analytic busy-window bound from the coarse affine demand lines — the
/// degraded finish of [`busy_window_metered`].
fn coarse_busy_window(
    beta: &Curve,
    rbfs: Vec<Rbf>,
    utilization: Q,
    iterations: usize,
    meter: &BudgetMeter,
) -> Result<BusyWindow, AnalysisError> {
    let tripped = meter.tripped().unwrap_or(BudgetKind::WallClock);
    let (b_tot, r_tot) = rbfs.iter().fold((Q::ZERO, Q::ZERO), |(b, r), rbf| {
        let (cb, cr) = rbf.coarse_line();
        (b + cb, r + cr)
    });
    let (b_beta, r_beta) = beta.lower_line();
    if r_tot >= r_beta {
        // The coarse demand rate saturates the service: the lines never
        // cross and no sound degraded bound exists.
        return Err(AnalysisError::BudgetExhausted { tripped });
    }
    // Crossing point of the demand and service lines: at L the service
    // line has caught the demand line, so rbf_total(L) ≤ β(L).
    let bound = ((b_tot - b_beta) / (r_beta - r_tot)).max(Q::ONE);
    Ok(BusyWindow {
        bound,
        rbfs,
        utilization,
        iterations,
        degraded: Some(tripped),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtw_minplus::q;
    use srtw_workload::DrtTaskBuilder;

    fn looped(wcet: i128, sep: i128) -> DrtTask {
        let mut b = DrtTaskBuilder::new("loop");
        let v = b.vertex("v", Q::int(wcet));
        b.edge(v, v, Q::int(sep));
        b.build().unwrap()
    }

    #[test]
    fn single_job_busy_window() {
        let t = looped(2, 5);
        let beta = Curve::affine(Q::ZERO, Q::ONE);
        let bw = busy_window(&[t], &beta).unwrap();
        assert_eq!(bw.bound, Q::int(2));
        assert_eq!(bw.utilization, q(2, 5));
    }

    #[test]
    fn slow_server_long_window() {
        // wcet 2 every 5 on a half-rate server: busy window spans several
        // releases: rbf(t) = 2·(1+⌊t/5⌋), β(t)=t/2.
        // L: 2 -> β⁻¹(2)=4 -> rbf(4)=2 -> stop? rbf(4)=2, β(4)=2 ⇒ fix at 4.
        let t = looped(2, 5);
        let beta = Curve::affine(Q::ZERO, q(1, 2));
        let bw = busy_window(&[t], &beta).unwrap();
        assert_eq!(bw.bound, Q::int(4));
    }

    #[test]
    fn latency_extends_window() {
        let t = looped(2, 5);
        let beta = Curve::rate_latency(Q::ONE, Q::int(4));
        // β(t) = t−4. L: demand 2 → β⁻¹ = 6 → rbf(6)=4 → β⁻¹(4)=8 → rbf(8)=4
        // → stop at 8.
        let bw = busy_window(&[t], &beta).unwrap();
        assert_eq!(bw.bound, Q::int(8));
        // And indeed rbf(8) = 4 ≤ β(8) = 4.
        assert_eq!(bw.total_rbf(Q::int(8)), Q::int(4));
    }

    #[test]
    fn multi_stream_window() {
        let t1 = looped(1, 4);
        let t2 = looped(2, 6);
        let beta = Curve::affine(Q::ZERO, Q::ONE);
        let bw = busy_window(&[t1, t2], &beta).unwrap();
        // demand(0)=3 → 3 → rbf(3)=3 → stop at 3.
        assert_eq!(bw.bound, Q::int(3));
        assert_eq!(bw.utilization, q(1, 4) + q(1, 3));
        assert_eq!(bw.rbfs.len(), 2);
    }

    #[test]
    fn unstable_rejected() {
        let t = looped(3, 4); // U = 3/4
        let beta = Curve::affine(Q::ZERO, q(1, 2));
        assert!(matches!(
            busy_window(&[t], &beta),
            Err(AnalysisError::Unstable { .. })
        ));
    }

    #[test]
    fn saturated_service_rejected() {
        let t = looped(3, 4);
        let beta = Curve::constant(Q::int(100));
        assert!(matches!(
            busy_window(&[t], &beta),
            Err(AnalysisError::ServiceSaturated)
        ));
    }

    #[test]
    fn metered_busy_window_dominates_exact() {
        use srtw_minplus::Budget;
        let t = looped(2, 5);
        let beta = Curve::rate_latency(Q::ONE, Q::int(4));
        let exact = busy_window(std::slice::from_ref(&t), &beta).unwrap();
        assert!(exact.degraded.is_none());
        for cap in [0u64, 1, 2, 5] {
            let meter = BudgetMeter::new(&Budget::default().with_max_paths(cap));
            let bw = busy_window_metered(std::slice::from_ref(&t), &beta, &meter).unwrap();
            assert!(
                bw.bound >= exact.bound,
                "cap {cap}: degraded busy window {} below exact {}",
                bw.bound,
                exact.bound
            );
            if bw.degraded.is_some() {
                // The truncated total demand still dominates the true one.
                assert!(bw.total_rbf(exact.bound) >= exact.total_rbf(exact.bound));
            }
        }
    }

    #[test]
    fn saturating_coarse_rate_is_budget_exhausted() {
        use srtw_minplus::Budget;
        // wcet 2 every 5 has coarse packing rate 2/5 ≥ the service rate
        // 2/5 exactly when nothing at all was enumerated.
        let t = looped(2, 5);
        let beta = Curve::affine(Q::ZERO, q(2, 5) + q(1, 100));
        let meter = BudgetMeter::new(&Budget::default().with_max_paths(0));
        // Utilization 2/5 < rate 2/5+1/100, so the stability check passes,
        // but the packing line's rate 2/5 … let the result speak: either a
        // sound degraded bound or BudgetExhausted — never a panic and
        // never an unsoundly small bound.
        match busy_window_metered(std::slice::from_ref(&t), &beta, &meter) {
            Ok(bw) => {
                let exact = busy_window(&[t], &beta).unwrap();
                assert!(bw.bound >= exact.bound);
            }
            Err(AnalysisError::BudgetExhausted { .. }) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn acyclic_workload_any_positive_rate() {
        let mut b = DrtTaskBuilder::new("dag");
        let a = b.vertex("a", Q::int(5));
        let c = b.vertex("b", Q::int(5));
        b.edge(a, c, Q::ONE);
        let t = b.build().unwrap();
        let beta = Curve::affine(Q::ZERO, q(1, 10));
        let bw = busy_window(&[t], &beta).unwrap();
        // All 10 units must eventually drain at rate 1/10: window 100.
        assert_eq!(bw.bound, Q::int(100));
    }
}
