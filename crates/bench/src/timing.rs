//! A minimal wall-clock benchmark harness (no external crates).
//!
//! Each measurement warms the code path up, calibrates an iteration count
//! so one sample lasts roughly [`Timer::target_sample`], then takes
//! [`Timer::samples`] timed samples with [`std::time::Instant`] and reports
//! the **median** per-iteration time — the median is robust against the
//! scheduler preempting individual samples, which is the dominant noise
//! source for sub-millisecond code under a non-realtime OS.
//!
//! Results serialize to the `BENCH_1.json` document at the workspace root
//! via [`write_json`]; regenerate it with
//! `cargo run -p srtw-bench --release --bin experiments`.

use srtw_core::Json;
use std::path::Path;
use std::time::{Duration, Instant};

/// Thread-local allocation counting, active only with the `count-allocs`
/// feature: a [`std::alloc::GlobalAlloc`] wrapper around the system
/// allocator that bumps a thread-local counter on every `alloc`/`realloc`.
/// Deallocations are free and uncounted; the counter measures allocation
/// *pressure*, which is what distinguishes a fused pipeline (scratch reuse)
/// from a materializing one (fresh buffers per operator).
#[cfg(feature = "count-allocs")]
mod counting_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    thread_local! {
        static ALLOCS: Cell<u64> = const { Cell::new(0) };
    }

    struct CountingAlloc;

    // SAFETY: defers every operation to `System`; the counter update is a
    // plain thread-local `Cell` bump, which cannot itself allocate.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;

    pub(super) fn current() -> u64 {
        ALLOCS.with(|c| c.get())
    }
}

/// The number of heap allocations this thread has performed so far, or
/// `None` unless the crate was built with the `count-allocs` feature.
/// Subtract two readings to count the allocations of the code in between.
pub fn alloc_count() -> Option<u64> {
    #[cfg(feature = "count-allocs")]
    {
        Some(counting_alloc::current())
    }
    #[cfg(not(feature = "count-allocs"))]
    {
        None
    }
}

/// One benchmark measurement (per-iteration times in nanoseconds).
#[derive(Debug, Clone)]
pub struct Sample {
    /// Suite the measurement belongs to (`"convolution"`, `"rbf"`, …).
    pub group: &'static str,
    /// Benchmark id within the group, parameters included (`"conv_upto/50"`).
    pub name: String,
    /// Median per-iteration wall-clock time.
    pub median_ns: f64,
    /// Fastest sample's per-iteration time.
    pub min_ns: f64,
    /// Slowest sample's per-iteration time.
    pub max_ns: f64,
    /// Number of timed samples the statistics are over.
    pub samples: usize,
    /// Iterations per sample chosen by calibration.
    pub iters: u64,
    /// Heap allocations per iteration (one instrumented pass), `None`
    /// unless built with the `count-allocs` feature.
    pub allocs_per_iter: Option<u64>,
}

/// Benchmark configuration: warmup budget, sample count, and the target
/// duration of one calibrated sample.
#[derive(Debug, Clone)]
pub struct Timer {
    /// Minimum time spent running the closure before any sample is timed.
    pub warmup: Duration,
    /// Number of timed samples (odd counts give an unambiguous median).
    pub samples: usize,
    /// Calibration target: one sample should last about this long.
    pub target_sample: Duration,
}

impl Default for Timer {
    fn default() -> Timer {
        Timer {
            warmup: Duration::from_millis(60),
            samples: 11,
            target_sample: Duration::from_millis(25),
        }
    }
}

impl Timer {
    /// A drastically shortened configuration for smoke tests.
    pub fn fast() -> Timer {
        Timer {
            warmup: Duration::from_micros(200),
            samples: 3,
            target_sample: Duration::from_micros(500),
        }
    }

    /// Default configuration, or [`Timer::fast`] when `SRTW_BENCH_FAST` is
    /// set (so CI can exercise every bench path cheaply).
    pub fn from_env() -> Timer {
        if std::env::var_os("SRTW_BENCH_FAST").is_some() {
            Timer::fast()
        } else {
            Timer::default()
        }
    }

    /// Measures `f`, returning the median/min/max per-iteration times.
    ///
    /// `f` should already contain a `std::hint::black_box` around the
    /// computed value so the optimizer cannot delete the work.
    pub fn bench<F: FnMut()>(&self, group: &'static str, name: impl Into<String>, mut f: F) -> Sample {
        // Warmup: run until the budget is spent (at least once).
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            f();
            warm_iters += 1;
            if warm_start.elapsed() >= self.warmup {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Calibration: enough iterations that one sample hits the target;
        // slow benchmarks degrade to a single iteration per sample.
        let iters = ((self.target_sample.as_secs_f64() / per_iter).round() as u64).max(1);

        let mut per_iter_ns: Vec<f64> = (0..self.samples.max(1))
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    f();
                }
                t0.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let median_ns = per_iter_ns[per_iter_ns.len() / 2];

        // One extra instrumented pass for the allocation count (after the
        // timed samples so the instrumentation cannot disturb them).
        let allocs_per_iter = alloc_count().map(|before| {
            f();
            alloc_count().expect("counting allocator vanished") - before
        });

        Sample {
            group,
            name: name.into(),
            median_ns,
            min_ns: per_iter_ns[0],
            max_ns: per_iter_ns[per_iter_ns.len() - 1],
            samples: per_iter_ns.len(),
            iters,
            allocs_per_iter,
        }
    }
}

/// Renders a duration in nanoseconds with a human-friendly unit.
pub fn human_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Prints one aligned line per sample, criterion-style.
pub fn print_samples(samples: &[Sample]) {
    let width = samples
        .iter()
        .map(|s| s.group.len() + 1 + s.name.len())
        .max()
        .unwrap_or(0);
    for s in samples {
        let id = format!("{}/{}", s.group, s.name);
        let allocs = match s.allocs_per_iter {
            Some(n) => format!("   {n} allocs/op"),
            None => String::new(),
        };
        println!(
            "{id:<width$}  median {:>12}   range [{} .. {}]   ({} samples × {} iters){allocs}",
            human_ns(s.median_ns),
            human_ns(s.min_ns),
            human_ns(s.max_ns),
            s.samples,
            s.iters,
        );
    }
}

/// The samples as the `BENCH_1.json` document: benchmarks grouped by
/// suite, with per-iteration times in nanoseconds.
pub fn to_json(samples: &[Sample]) -> Json {
    let mut groups: Vec<(&'static str, Vec<Json>)> = Vec::new();
    for s in samples {
        let mut fields = vec![
            ("name", Json::str(&s.name)),
            ("median_ns", Json::Float(s.median_ns)),
            ("min_ns", Json::Float(s.min_ns)),
            ("max_ns", Json::Float(s.max_ns)),
            ("samples", Json::Int(s.samples as i128)),
            ("iters", Json::Int(s.iters as i128)),
        ];
        if let Some(n) = s.allocs_per_iter {
            fields.push(("allocs_per_iter", Json::Int(n as i128)));
        }
        let entry = Json::object(fields);
        match groups.iter_mut().find(|(g, _)| *g == s.group) {
            Some((_, v)) => v.push(entry),
            None => groups.push((s.group, vec![entry])),
        }
    }
    Json::object(vec![
        ("schema", Json::str("srtw-bench-v1")),
        (
            "groups",
            Json::Object(
                groups
                    .into_iter()
                    .map(|(g, v)| (g.to_owned(), Json::Array(v)))
                    .collect(),
            ),
        ),
    ])
}

/// Writes [`to_json`] to `path` (pretty enough for diffing: one document,
/// trailing newline).
pub fn write_json(samples: &[Sample], path: &Path) -> std::io::Result<()> {
    std::fs::write(path, format!("{}\n", to_json(samples).render()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something_positive() {
        let t = Timer::fast();
        let mut acc = 0u64;
        let s = t.bench("test", "spin", || {
            for i in 0..100u64 {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
        });
        assert!(s.median_ns > 0.0);
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.max_ns);
        assert_eq!(s.samples, 3);
        assert!(s.iters >= 1);
    }

    #[test]
    fn json_groups_by_suite() {
        let samples = vec![
            Sample {
                group: "a",
                name: "x".into(),
                median_ns: 10.0,
                min_ns: 9.0,
                max_ns: 11.0,
                samples: 3,
                iters: 100,
                allocs_per_iter: None,
            },
            Sample {
                group: "b",
                name: "y".into(),
                median_ns: 20.0,
                min_ns: 19.0,
                max_ns: 21.0,
                samples: 3,
                iters: 50,
                allocs_per_iter: Some(7),
            },
            Sample {
                group: "a",
                name: "z".into(),
                median_ns: 30.0,
                min_ns: 29.0,
                max_ns: 31.0,
                samples: 3,
                iters: 10,
                allocs_per_iter: None,
            },
        ];
        let doc = to_json(&samples).render();
        assert!(doc.contains("\"schema\":\"srtw-bench-v1\""));
        assert!(doc.contains("\"groups\""));
        // Group "a" holds both of its entries, in insertion order.
        let a_pos = doc.find("\"a\":[").unwrap();
        let b_pos = doc.find("\"b\":[").unwrap();
        assert!(a_pos < b_pos);
        assert!(doc.find("\"x\"").unwrap() < doc.find("\"z\"").unwrap());
    }

    #[test]
    fn human_units() {
        assert_eq!(human_ns(500.0), "500 ns");
        assert_eq!(human_ns(1500.0), "1.500 µs");
        assert_eq!(human_ns(2.5e6), "2.500 ms");
        assert_eq!(human_ns(3.0e9), "3.000 s");
    }
}
