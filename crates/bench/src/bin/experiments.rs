//! Experiment runner: regenerates the evaluation tables, figures, and the
//! benchmark document.
//!
//! ```text
//! cargo run -p srtw-bench --release --bin experiments            # everything
//! cargo run -p srtw-bench --release --bin experiments -- all --csv results/
//! cargo run -p srtw-bench --release --bin experiments -- e1 e5
//! cargo run -p srtw-bench --release --bin experiments -- bench --bench-out BENCH_1.json
//! cargo run -p srtw-bench --release --bin experiments -- gate BENCH_3.json BENCH_2.json …
//! ```
//!
//! With no arguments every experiment (`all`) runs, followed by the
//! benchmark suites (`bench`), writing `BENCH_1.json` to the current
//! directory. The `bench` pseudo-id can also be requested explicitly next
//! to experiment ids; `--bench-out` overrides the output path.
//!
//! `gate NEWEST BASELINE…` is the performance-regression gate: it fails
//! (exit ≠ 0) when the newest document's median regresses by more than
//! `--factor` (default 1.5) against the best baseline median, in the
//! groups listed by `--groups` (default `convolution,rbf`). See
//! [`srtw_bench::gate`].

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("gate") {
        return gate(&args[1..]);
    }
    let mut ids: Vec<String> = Vec::new();
    let mut csv_dir: Option<PathBuf> = None;
    let mut bench_out = PathBuf::from("BENCH_1.json");
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--csv" {
            match it.next() {
                Some(dir) => csv_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--csv needs a directory");
                    return ExitCode::FAILURE;
                }
            }
        } else if a == "--bench-out" {
            match it.next() {
                Some(p) => bench_out = PathBuf::from(p),
                None => {
                    eprintln!("--bench-out needs a path");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            ids.push(a);
        }
    }
    if ids.is_empty() {
        // Full regeneration: every table, then every benchmark suite.
        ids = vec!["all".into(), "bench".into()];
    }
    for id in &ids {
        if id == "bench" {
            let timer = srtw_bench::timing::Timer::from_env();
            println!("BENCH: timing suites (convolution through server_connections)");
            let samples = srtw_bench::suites::all_suites(&timer);
            srtw_bench::timing::print_samples(&samples);
            if let Err(e) = srtw_bench::timing::write_json(&samples, &bench_out) {
                eprintln!("cannot write {}: {e}", bench_out.display());
                return ExitCode::FAILURE;
            }
            println!("wrote {}", bench_out.display());
        } else if !srtw_bench::run_experiment_to(id, csv_dir.as_deref()) {
            eprintln!("unknown experiment id: {id}");
            eprintln!("usage: experiments [e1..e10|all|bench] ... [--csv DIR] [--bench-out PATH]");
            return ExitCode::FAILURE;
        }
        println!();
    }
    ExitCode::SUCCESS
}

/// `gate NEWEST BASELINE… [--factor F] [--groups a,b]` — the perf gate.
fn gate(args: &[String]) -> ExitCode {
    let mut cfg = srtw_bench::gate::GateConfig::default();
    let mut files: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--factor" {
            match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(f) if f >= 1.0 => cfg.factor = f,
                _ => {
                    eprintln!("--factor needs a number >= 1");
                    return ExitCode::FAILURE;
                }
            }
        } else if a == "--groups" {
            match it.next() {
                Some(list) => {
                    cfg.groups = list.split(',').map(str::to_owned).collect();
                }
                None => {
                    eprintln!("--groups needs a comma-separated list");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            files.push(PathBuf::from(a));
        }
    }
    if files.len() < 2 {
        eprintln!("usage: experiments gate NEWEST BASELINE... [--factor F] [--groups a,b]");
        return ExitCode::FAILURE;
    }
    let mut medians = Vec::new();
    for f in &files {
        let text = match std::fs::read_to_string(f) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", f.display());
                return ExitCode::FAILURE;
            }
        };
        match srtw_bench::gate::parse_medians(&text) {
            Ok(m) => medians.push(m),
            Err(e) => {
                eprintln!("{}: {e}", f.display());
                return ExitCode::FAILURE;
            }
        }
    }
    let newest = medians.remove(0);
    let v = srtw_bench::gate::violations(&newest, &medians, &cfg);
    // Announce gated suites that have no baseline anywhere: they are
    // skipped, not silently "passed".
    for group in srtw_bench::gate::fresh_groups(&newest, &medians, &cfg) {
        println!(
            "gate: notice: group '{group}' has no baseline in any older document — \
             skipped (fresh suite, gated from the next document on)"
        );
    }
    if v.is_empty() {
        println!(
            "gate: {} vs {} baseline document(s) in groups [{}] — no regression beyond {:.2}x",
            files[0].display(),
            medians.len(),
            cfg.groups.join(", "),
            cfg.factor
        );
        ExitCode::SUCCESS
    } else {
        for msg in &v {
            eprintln!("gate: REGRESSION {msg}");
        }
        eprintln!("gate: {} regression(s) in {}", v.len(), files[0].display());
        ExitCode::FAILURE
    }
}
