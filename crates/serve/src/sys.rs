//! A thin, crate-free syscall shim for the few OS facilities std lacks:
//! `poll(2)` readiness for the multiplexed acceptor, `dup(2)` to make an
//! inheritable (close-on-exec-clear) copy of the shared listener fd for
//! replica processes, and `kill(2)` so the replica supervisor can signal
//! its children. Like [`crate::signal`], these bind symbols every unix
//! target already links — no `libc` crate, per the workspace's
//! zero-dependency policy. Off unix the module degrades to a std-only
//! sleep-poll loop (readiness is simply assumed each tick) and the
//! process-management calls report unsupported.

/// Readiness interest/result flags (POSIX values).
pub const POLLIN: i16 = 0x001;
/// Writable-readiness flag.
pub const POLLOUT: i16 = 0x004;
/// Error/hangup result flags (output only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (output only).
pub const POLLHUP: i16 = 0x010;

/// One entry of a [`poll_fds`] set, mirroring `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The file descriptor to watch.
    pub fd: i32,
    /// Requested events (`POLLIN` / `POLLOUT`).
    pub events: i16,
    /// Returned events (filled by the kernel).
    pub revents: i16,
}

impl PollFd {
    /// Interest in `events` on `fd`, with `revents` cleared.
    pub fn new(fd: i32, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// `true` when the descriptor came back readable (or in an
    /// error/hangup state, which a read will surface).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP) != 0
    }

    /// `true` when the descriptor came back writable (or errored).
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP) != 0
    }
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use super::PollFd;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: core::ffi::c_ulong, timeout: i32) -> i32;
        fn dup(fd: i32) -> i32;
        fn kill(pid: i32, sig: i32) -> i32;
    }

    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> i32 {
        // SAFETY: `fds` is a valid, exclusively-borrowed slice of
        // `#[repr(C)]` pollfd-layout structs; the kernel writes only the
        // `revents` fields within it.
        unsafe { poll(fds.as_mut_ptr(), fds.len() as core::ffi::c_ulong, timeout_ms) }
    }

    pub fn dup_inheritable(fd: i32) -> Option<i32> {
        // SAFETY: plain fd duplication; `dup` clears close-on-exec on the
        // new descriptor, which is exactly the point (replica processes
        // must inherit it across exec).
        let new = unsafe { dup(fd) };
        (new >= 0).then_some(new)
    }

    pub fn send_signal(pid: u32, sig: i32) -> bool {
        // SAFETY: kill(2) with a specific positive pid; no memory is
        // involved.
        unsafe { kill(pid as i32, sig) == 0 }
    }

    pub fn listener_from_fd(fd: i32) -> Option<std::net::TcpListener> {
        use std::os::unix::io::FromRawFd;
        // SAFETY: the caller owns `fd` (it was inherited across exec for
        // exactly this purpose) and transfers ownership to the listener.
        Some(unsafe { std::net::TcpListener::from_raw_fd(fd) })
    }
}

#[cfg(not(unix))]
mod imp {
    use super::{PollFd, POLLIN, POLLOUT};

    /// Fallback readiness: sleep a tick and report every descriptor as
    /// ready for whatever it asked; the non-blocking reads/writes then
    /// sort out real readiness via `WouldBlock`.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> i32 {
        std::thread::sleep(std::time::Duration::from_millis(
            timeout_ms.clamp(1, 10) as u64
        ));
        for f in fds.iter_mut() {
            f.revents = f.events & (POLLIN | POLLOUT);
        }
        fds.len() as i32
    }

    pub fn dup_inheritable(_fd: i32) -> Option<i32> {
        None
    }

    pub fn send_signal(_pid: u32, _sig: i32) -> bool {
        false
    }

    pub fn listener_from_fd(_fd: i32) -> Option<std::net::TcpListener> {
        None
    }
}

/// `SIGTERM` (graceful-drain request).
pub const SIGTERM: i32 = 15;
/// `SIGKILL` (unconditional termination).
pub const SIGKILL: i32 = 9;

/// Blocks until a descriptor in `fds` is ready or `timeout_ms` passes,
/// filling `revents`. Returns the number of ready descriptors, 0 on
/// timeout, or a negative value on error (EINTR included — callers just
/// loop).
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> i32 {
    imp::poll_fds(fds, timeout_ms)
}

/// Duplicates `fd` into a descriptor with close-on-exec *clear*, so
/// spawned replica processes inherit it. `None` when the platform cannot
/// (non-unix) or the kernel refuses (fd limit).
pub fn dup_inheritable(fd: i32) -> Option<i32> {
    imp::dup_inheritable(fd)
}

/// Sends `sig` to `pid`; `true` on success. Only ever used on child
/// processes this process spawned.
pub fn send_signal(pid: u32, sig: i32) -> bool {
    imp::send_signal(pid, sig)
}

/// Rebuilds a `TcpListener` from an inherited raw descriptor — the
/// replica side of the fd-passing handshake ([`dup_inheritable`] in the
/// parent, exec, this in the child). `None` off unix or for a negative
/// descriptor; passing a descriptor that is not a listening socket yields
/// a listener whose `accept` fails, which the server treats as fatal at
/// startup.
pub fn listener_from_fd(fd: i32) -> Option<std::net::TcpListener> {
    if fd < 0 {
        return None;
    }
    imp::listener_from_fd(fd)
}

/// Number of open file descriptors of this process (via `/proc/self/fd`);
/// `None` where procfs is unavailable. Surfaced as a leak-detection gauge
/// in `/stats`.
pub fn open_fd_count() -> Option<usize> {
    std::fs::read_dir("/proc/self/fd")
        .ok()
        .map(|d| d.filter_map(|e| e.ok()).count().saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    #[cfg(unix)]
    use std::os::unix::io::AsRawFd;

    #[test]
    #[cfg(unix)]
    fn poll_reports_a_readable_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        // Nothing to read yet: poll times out.
        let mut fds = [PollFd::new(server_side.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 10), 0);
        assert!(!fds[0].readable());
        // After a write the socket polls readable well within the timeout.
        client.write_all(b"x").unwrap();
        let mut fds = [PollFd::new(server_side.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 1_000), 1);
        assert!(fds[0].readable());
    }

    #[test]
    #[cfg(unix)]
    fn dup_yields_a_distinct_working_fd() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let fd = listener.as_raw_fd();
        let copy = dup_inheritable(fd).expect("dup succeeds");
        assert_ne!(copy, fd);
        // Close the copy through the same raw interface std would use.
        #[allow(unsafe_code)]
        unsafe {
            use std::os::unix::io::FromRawFd;
            drop(std::net::TcpListener::from_raw_fd(copy));
        }
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn fd_count_is_positive() {
        assert!(open_fd_count().unwrap() > 0);
    }
}
