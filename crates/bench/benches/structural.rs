//! B3 — the structural delay analysis end to end: scaling with graph size
//! and the effect of dominance pruning (the ablation criterion measures).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srtw_core::{rtc_delay, structural_delay, structural_delay_with, AnalysisConfig};
use srtw_gen::{generate_drt, DrtGenConfig};
use srtw_minplus::{q, Curve, Q};
use std::hint::black_box;

fn cfg(n: usize) -> DrtGenConfig {
    DrtGenConfig {
        vertices: n,
        extra_edges: n,
        separation_range: (5, 40),
        wcet_range: (1, 9),
        target_utilization: Some(q(3, 5)),
        deadline_factor: None,
    }
}

fn bench_structural_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("structural_scaling");
    let beta = Curve::rate_latency(q(4, 5), Q::int(4));
    for &n in &[5usize, 10, 20, 40] {
        let task = generate_drt(&cfg(n), 11);
        g.bench_with_input(BenchmarkId::from_parameter(n), &task, |b, task| {
            b.iter(|| black_box(structural_delay(task, &beta).unwrap()))
        });
    }
    g.finish();
}

fn bench_pruning_effect(c: &mut Criterion) {
    let beta = Curve::rate_latency(q(4, 5), Q::int(4));
    let task = generate_drt(&cfg(6), 3);
    c.bench_function("structural_pruned", |b| {
        b.iter(|| black_box(structural_delay(&task, &beta).unwrap()))
    });
    c.bench_function("structural_no_prune", |b| {
        let cfg = AnalysisConfig {
            no_prune: true,
            ..Default::default()
        };
        b.iter(|| black_box(structural_delay_with(&task, &beta, &cfg).unwrap()))
    });
    c.bench_function("rtc_baseline", |b| {
        b.iter(|| black_box(rtc_delay(&task, &beta).unwrap()))
    });
}

criterion_group!(benches, bench_structural_scaling, bench_pruning_effect);
criterion_main!(benches);
