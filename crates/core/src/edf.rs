//! EDF schedulability of digraph workload: the processor-demand criterion.
//!
//! Under earliest-deadline-first scheduling, a set of streams with
//! per-job-type deadlines is schedulable on a resource with lower service
//! curve `β` iff the summed demand-bound functions never exceed the
//! service: `Σ dbf_i(t) ≤ β(t)` for all `t` up to the busy-window bound.
//! Both sides are exact staircases/piecewise-affine curves here, so the
//! check is exact and returns the earliest violating window when the
//! answer is negative.

use crate::busy::busy_window;
use crate::error::AnalysisError;
use srtw_minplus::{Curve, Q};
use srtw_workload::{Dbf, DrtTask};

/// Result of an EDF schedulability test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdfReport {
    /// Does the demand stay below the service everywhere?
    pub schedulable: bool,
    /// The earliest violating window `(t, demand, supply)` if not.
    pub violation: Option<(Q, Q, Q)>,
    /// The busy-window bound the check ran to.
    pub busy_window: Q,
    /// Number of demand breakpoints inspected.
    pub breakpoints: usize,
}

impl EdfReport {
    /// The report as a JSON value.
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::object(vec![
            ("schedulable", Json::Bool(self.schedulable)),
            (
                "violation",
                match self.violation {
                    Some((t, demand, supply)) => Json::object(vec![
                        ("window", Json::rational(t)),
                        ("demand", Json::rational(demand)),
                        ("supply", Json::rational(supply)),
                    ]),
                    None => Json::Null,
                },
            ),
            ("busy_window", Json::rational(self.busy_window)),
            ("breakpoints", Json::Int(self.breakpoints as i128)),
        ])
    }
}

/// EDF processor-demand test for `tasks` sharing a resource with lower
/// service curve `beta`. Every vertex of every task must carry a deadline.
///
/// # Errors
///
/// [`AnalysisError::Unstable`] / [`AnalysisError::ServiceSaturated`] as in
/// the delay analyses, and [`AnalysisError::MissingDeadline`] if a vertex
/// has no deadline.
///
/// # Examples
///
/// ```
/// use srtw_core::edf_schedulable;
/// use srtw_minplus::{Curve, Q};
/// use srtw_workload::DrtTaskBuilder;
///
/// let mut b = DrtTaskBuilder::new("p");
/// let v = b.vertex_with_deadline("j", Q::int(2), Q::int(4));
/// b.edge(v, v, Q::int(5));
/// let task = b.build().unwrap();
///
/// let ok = edf_schedulable(&[task.clone()], &Curve::affine(Q::ZERO, Q::ONE)).unwrap();
/// assert!(ok.schedulable);
/// let slow = edf_schedulable(&[task], &Curve::affine(Q::ZERO, Q::new(9, 20))).unwrap();
/// assert!(!slow.schedulable);
/// assert!(slow.violation.is_some());
/// ```
pub fn edf_schedulable(tasks: &[DrtTask], beta: &Curve) -> Result<EdfReport, AnalysisError> {
    let bw = busy_window(tasks, beta)?;
    let horizon = bw.bound;
    let dbfs: Vec<Dbf> = tasks
        .iter()
        .map(|t| {
            Dbf::compute(t, horizon).map_err(|e| AnalysisError::MissingDeadline {
                task: t.name().to_owned(),
                vertex: e.vertex.index(),
            })
        })
        .collect::<Result<_, _>>()?;

    // Check at every breakpoint of the summed demand staircase: between
    // breakpoints the demand is constant and the service non-decreasing,
    // so the left endpoint is the binding instant.
    let mut ts: Vec<Q> = dbfs
        .iter()
        .flat_map(|d| d.points().iter().map(|p| p.0))
        .filter(|&t| t <= horizon)
        .collect();
    ts.sort();
    ts.dedup();
    let breakpoints = ts.len();
    for &t in &ts {
        let demand: Q = dbfs.iter().map(|d| d.eval(t)).fold(Q::ZERO, |a, b| a + b);
        let supply = beta.eval(t);
        if demand > supply {
            return Ok(EdfReport {
                schedulable: false,
                violation: Some((t, demand, supply)),
                busy_window: horizon,
                breakpoints,
            });
        }
    }
    Ok(EdfReport {
        schedulable: true,
        violation: None,
        busy_window: horizon,
        breakpoints,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtw_minplus::q;
    use srtw_workload::DrtTaskBuilder;

    fn deadline_task(scale: Q) -> DrtTask {
        let mut b = DrtTaskBuilder::new("dl");
        let a = b.vertex_with_deadline("a", Q::int(3) * scale, Q::int(8));
        let x = b.vertex_with_deadline("x", Q::ONE * scale, Q::int(4));
        b.edge(a, x, Q::int(5));
        b.edge(x, a, Q::int(5));
        b.build().unwrap()
    }

    #[test]
    fn schedulable_on_fast_server() {
        let t = deadline_task(Q::ONE);
        let r = edf_schedulable(&[t], &Curve::affine(Q::ZERO, Q::ONE)).unwrap();
        assert!(r.schedulable);
        assert!(r.violation.is_none());
        // The busy window (3) ends before the first deadline (4): the
        // demand check is vacuous here, which is exactly why it passes.
        assert_eq!(r.breakpoints, 0);
    }

    #[test]
    fn violation_reported_with_witness() {
        let t = deadline_task(Q::ONE);
        // Rate slightly above U = 4/10 but with big latency.
        let beta = Curve::rate_latency(q(1, 2), Q::int(6));
        let r = edf_schedulable(&[t], &beta).unwrap();
        assert!(!r.schedulable);
        let (tv, demand, supply) = r.violation.unwrap();
        assert!(demand > supply);
        assert!(tv.is_positive() && tv <= r.busy_window);
        // The witness is a real violation of the curves.
        assert!(demand > beta.eval(tv));
    }

    #[test]
    fn multi_task_demand_sums() {
        let t1 = deadline_task(Q::ONE);
        let t2 = deadline_task(Q::ONE);
        let beta = Curve::affine(Q::ZERO, Q::ONE);
        // Each alone fits easily; two copies double the demand.
        assert!(edf_schedulable(std::slice::from_ref(&t1), &beta)
            .unwrap()
            .schedulable);
        let both = edf_schedulable(&[t1, t2], &beta).unwrap();
        // U = 0.8 total on unit rate with tight deadlines: demand of 2
        // heavy jobs (6) + 2 light (2) within deadline 8 vs β(8) = 8 — OK;
        // the exact verdict is what we pin here.
        assert!(both.schedulable);
    }

    #[test]
    fn missing_deadline_surfaces() {
        let mut b = DrtTaskBuilder::new("no-dl");
        let v = b.vertex("v", Q::ONE);
        b.edge(v, v, Q::int(5));
        let t = b.build().unwrap();
        let e = edf_schedulable(&[t], &Curve::affine(Q::ZERO, Q::ONE));
        assert!(matches!(e, Err(AnalysisError::MissingDeadline { .. })));
    }

    #[test]
    fn edf_dominates_fifo_structural_acceptance() {
        // EDF (deadline-aware scheduling) accepts whenever the FIFO
        // per-type bounds meet the deadlines — and usually more.
        use crate::analysis::structural_delay;
        for seed in 0..10u64 {
            let cfg = srtw_gen_like(seed);
            let beta = Curve::rate_latency(Q::ONE, Q::int(2));
            let fifo_ok = match structural_delay(&cfg, &beta) {
                Ok(a) => a.schedulable(&cfg),
                Err(_) => false,
            };
            let edf_ok = match edf_schedulable(std::slice::from_ref(&cfg), &beta) {
                Ok(r) => r.schedulable,
                Err(_) => false,
            };
            if fifo_ok {
                assert!(edf_ok, "seed {seed}: EDF must accept whenever FIFO does");
            }
        }
    }

    /// A tiny deterministic "random" deadline task family (avoiding a dev
    /// dependency on srtw-gen from this crate).
    fn srtw_gen_like(seed: u64) -> DrtTask {
        let s = (seed % 5 + 3) as i128;
        let mut b = DrtTaskBuilder::new(format!("g{seed}"));
        let a = b.vertex_with_deadline("a", Q::int(1 + (seed % 3) as i128), Q::int(3 * s));
        let x = b.vertex_with_deadline("x", Q::ONE, Q::int(2 * s));
        let y = b.vertex_with_deadline("y", Q::int(2), Q::int(3 * s));
        b.edge(a, x, Q::int(s + 2));
        b.edge(x, y, Q::int(s + 1));
        b.edge(y, a, Q::int(s + 3));
        b.edge(x, a, Q::int(2 * s));
        b.build().unwrap()
    }
}
