//! Canonical forms and structural hashes of DRT tasks.
//!
//! Two parsed systems that differ only in *presentation* — vertex
//! insertion order, vertex labels, task names, task order — describe the
//! same workload and admit the same delay bounds. This module computes a
//! **canonical form**: a relabelling-insensitive serialization of a
//! [`DrtTask`] (and, via [`combine_forms`], of a whole system) such that
//!
//! * isomorphic presentations produce byte-equal forms (and therefore
//!   equal [`CanonicalForm::hash`] values), and
//! * **form equality always implies isomorphism** — the form is a full
//!   serialization of a concretely relabelled graph, so two equal forms
//!   describe literally the same graph. A content-addressed cache that
//!   verifies form equality on every hit can never serve a wrong result;
//!   hash collisions and canonicalization incompleteness both degrade to
//!   cache *misses*, never to wrong answers.
//!
//! The canonical labelling uses Weisfeiler–Leman colour refinement over
//! `(WCET, deadline, sorted in/out edge (separation, colour) multisets)`
//! followed by individualization of ambiguous colour classes with a
//! bounded branch search (take the lexicographically smallest code over
//! all branches). On automorphism-rich graphs the branch bound can trip;
//! the completion then falls back to presentation order, which weakens
//! *completeness* (an isomorphic copy may canonicalize differently — a
//! cache miss) but never *soundness*.

use crate::digraph::{DrtTask, VertexId};
use srtw_minplus::Q;

/// SplitMix64 finalizer — the workspace's stable mixing primitive
/// (`std::hash` is explicitly not stable across releases, so cache keys
/// must not depend on it).
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Incremental two-lane structural hasher over `u64` lanes.
///
/// Deterministic across platforms and releases (unlike
/// `std::collections::hash_map::DefaultHasher`), producing a 128-bit
/// digest. Used for canonical hashes and for the service's presentation
/// digests.
#[derive(Debug, Clone)]
pub struct StructHasher {
    lo: u64,
    hi: u64,
    count: u64,
}

impl StructHasher {
    /// A hasher seeded with a domain-separation tag.
    pub fn new(tag: u64) -> StructHasher {
        StructHasher {
            lo: mix64(tag ^ 0x5274_775f_6c6f_0001),
            hi: mix64(tag ^ 0x5274_775f_6869_0002),
            count: 0,
        }
    }

    /// Absorbs one lane.
    pub fn absorb(&mut self, v: u64) {
        self.count = self.count.wrapping_add(1);
        self.lo = mix64(self.lo ^ v);
        self.hi = mix64(self.hi.rotate_left(17) ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    }

    /// Absorbs an `i128` as two lanes.
    pub fn absorb_i128(&mut self, v: i128) {
        self.absorb(v as u64);
        self.absorb((v >> 64) as u64);
    }

    /// Absorbs an exact rational as its reduced numerator and denominator.
    pub fn absorb_q(&mut self, q: Q) {
        self.absorb_i128(q.numer());
        self.absorb_i128(q.denom());
    }

    /// Absorbs raw bytes (length-prefixed, 8 bytes per lane).
    pub fn absorb_bytes(&mut self, bytes: &[u8]) {
        self.absorb(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut lane = [0u8; 8];
            lane[..chunk.len()].copy_from_slice(chunk);
            self.absorb(u64::from_le_bytes(lane));
        }
    }

    /// The 128-bit digest.
    pub fn finish(&self) -> u128 {
        let a = mix64(self.lo ^ self.count);
        let b = mix64(self.hi ^ self.count.rotate_left(32));
        ((a as u128) << 64) | b as u128
    }

    /// The digest truncated to 64 bits (colour values, presentation keys).
    pub fn finish64(&self) -> u64 {
        mix64(self.lo ^ self.hi ^ self.count)
    }
}

/// Encodes a `Q` into code lanes (reduced numerator then denominator,
/// each as two `u64` halves).
fn push_q(code: &mut Vec<u64>, q: Q) {
    let n = q.numer();
    let d = q.denom();
    code.push(n as u64);
    code.push((n >> 64) as u64);
    code.push(d as u64);
    code.push((d >> 64) as u64);
}

/// A canonical, presentation-insensitive serialization of a task or
/// system.
///
/// Equality of forms is equality of the underlying relabelled graphs —
/// the decisive property for content-addressed caching (see the module
/// docs). Forms are cheap to compare (`Vec<u64>` equality) and hash to a
/// stable 128-bit digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalForm {
    code: Vec<u64>,
}

impl CanonicalForm {
    /// Reconstructs a form from its code lanes, e.g. when loading a
    /// spilled cache entry from disk. The caller should verify the
    /// round-trip (`from_code(lanes).hash() == stored_hash`) before
    /// trusting a deserialized form — `hash()` is recomputed from the
    /// lanes, so a corrupt record can only fail verification, never
    /// impersonate a different system.
    pub fn from_code(code: Vec<u64>) -> CanonicalForm {
        CanonicalForm { code }
    }

    /// The code lanes (exposed for tests and size accounting).
    pub fn code(&self) -> &[u64] {
        &self.code
    }

    /// Approximate heap size of this form in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.code.len() * 8 + std::mem::size_of::<CanonicalForm>()
    }

    /// The stable 128-bit structural hash of the form.
    pub fn hash(&self) -> u128 {
        let mut h = StructHasher::new(0xca40_4f4e);
        for &lane in &self.code {
            h.absorb(lane);
        }
        h.finish()
    }
}

/// Maximum number of completed canonical labellings the individualization
/// search will explore before falling back to presentation order. The
/// search only branches inside colour classes WL refinement could not
/// split — on weighted task graphs those are almost always automorphism
/// orbits, where every branch yields the same code anyway.
const LEAF_CAP: usize = 64;

struct Canonicalizer<'a> {
    task: &'a DrtTask,
    /// Out-edges as `(separation, target)` per vertex.
    out: Vec<Vec<(Q, usize)>>,
    /// In-edges as `(separation, source)` per vertex.
    inn: Vec<Vec<(Q, usize)>>,
    leaves: usize,
    best: Option<Vec<u64>>,
}

impl<'a> Canonicalizer<'a> {
    fn new(task: &'a DrtTask) -> Canonicalizer<'a> {
        let n = task.num_vertices();
        let mut out = vec![Vec::new(); n];
        let mut inn = vec![Vec::new(); n];
        for v in task.vertex_ids() {
            for e in task.out_edges(v) {
                out[v.index()].push((e.separation, e.to.index()));
                inn[e.to.index()].push((e.separation, v.index()));
            }
        }
        Canonicalizer {
            task,
            out,
            inn,
            leaves: 0,
            best: None,
        }
    }

    /// Initial colours from vertex-local data only.
    fn initial_colors(&self) -> Vec<u64> {
        self.task
            .vertex_ids()
            .map(|v| {
                let mut h = StructHasher::new(0x1e17);
                h.absorb_q(self.task.wcet(v));
                match self.task.deadline(v) {
                    Some(d) => {
                        h.absorb(1);
                        h.absorb_q(d);
                    }
                    None => h.absorb(0),
                }
                h.finish64()
            })
            .collect()
    }

    /// One WL round: recolour every vertex from its colour and the sorted
    /// `(separation, neighbour colour)` multisets of its out- and
    /// in-edges. Colour values are themselves hashes of values, so the
    /// result is independent of vertex order.
    fn wl_round(&self, colors: &[u64]) -> Vec<u64> {
        (0..colors.len())
            .map(|v| {
                let mut h = StructHasher::new(0x3177);
                h.absorb(colors[v]);
                let mut sig: Vec<(Q, u64)> = self.out[v]
                    .iter()
                    .map(|&(sep, to)| (sep, colors[to]))
                    .collect();
                sig.sort();
                h.absorb(sig.len() as u64);
                for (sep, c) in sig {
                    h.absorb_q(sep);
                    h.absorb(c);
                }
                let mut sig: Vec<(Q, u64)> = self.inn[v]
                    .iter()
                    .map(|&(sep, from)| (sep, colors[from]))
                    .collect();
                sig.sort();
                h.absorb(sig.len() as u64);
                for (sep, c) in sig {
                    h.absorb_q(sep);
                    h.absorb(c);
                }
                h.finish64()
            })
            .collect()
    }

    /// Refines until the partition (number of distinct colours) is stable.
    fn refine(&self, colors: &mut Vec<u64>) {
        let mut classes = distinct(colors);
        for _ in 0..colors.len().max(1) {
            let next = self.wl_round(colors);
            let next_classes = distinct(&next);
            *colors = next;
            if next_classes == classes {
                return;
            }
            classes = next_classes;
        }
    }

    /// Serializes the task under the canonical order `perm`
    /// (`perm[canonical index] = original index`).
    fn code_for(&self, perm: &[usize]) -> Vec<u64> {
        let n = perm.len();
        let mut canon_of = vec![0usize; n];
        for (ci, &v) in perm.iter().enumerate() {
            canon_of[v] = ci;
        }
        let mut code = Vec::with_capacity(n * 8);
        code.push(n as u64);
        for &v in perm {
            let vid = VertexId(v);
            push_q(&mut code, self.task.wcet(vid));
            match self.task.deadline(vid) {
                Some(d) => {
                    code.push(1);
                    push_q(&mut code, d);
                }
                None => code.push(0),
            }
            let mut edges: Vec<(usize, Q)> = self.out[v]
                .iter()
                .map(|&(sep, to)| (canon_of[to], sep))
                .collect();
            edges.sort();
            code.push(edges.len() as u64);
            for (to, sep) in edges {
                code.push(to as u64);
                push_q(&mut code, sep);
            }
        }
        code
    }

    /// Is the colouring discrete (all colours distinct)? If so, returns
    /// the canonical order (vertices sorted by colour).
    fn discrete_order(colors: &[u64]) -> Option<Vec<usize>> {
        let mut order: Vec<usize> = (0..colors.len()).collect();
        order.sort_by_key(|&v| colors[v]);
        for w in order.windows(2) {
            if colors[w[0]] == colors[w[1]] {
                return None;
            }
        }
        Some(order)
    }

    /// Individualization-refinement search for the lexicographically
    /// smallest code, bounded by [`LEAF_CAP`] leaves.
    fn search(&mut self, colors: Vec<u64>) {
        if self.leaves >= LEAF_CAP {
            return;
        }
        if let Some(order) = Self::discrete_order(&colors) {
            self.leaves += 1;
            let code = self.code_for(&order);
            if self.best.as_ref().is_none_or(|b| code < *b) {
                self.best = Some(code);
            }
            return;
        }
        // Target the ambiguous class with the smallest colour value —
        // a choice depending only on colour values, not vertex order.
        let mut target: Option<u64> = None;
        for (i, &c) in colors.iter().enumerate() {
            if colors.iter().enumerate().any(|(j, &d)| j != i && d == c) {
                target = Some(target.map_or(c, |t: u64| t.min(c)));
            }
        }
        let target = target.expect("non-discrete colouring has a tied class");
        let members: Vec<usize> = (0..colors.len())
            .filter(|&v| colors[v] == target)
            .collect();
        for v in members {
            if self.leaves >= LEAF_CAP {
                return;
            }
            let mut branch = colors.clone();
            branch[v] = mix64(branch[v] ^ 0x1d1d_1d1d_1d1d_1d1d);
            self.refine(&mut branch);
            self.search(branch);
        }
    }

    fn run(mut self) -> CanonicalForm {
        let n = self.task.num_vertices();
        if n == 0 {
            return CanonicalForm { code: vec![0] };
        }
        let mut colors = self.initial_colors();
        self.refine(&mut colors);
        self.search(colors.clone());
        let code = match self.best.take() {
            Some(code) => code,
            None => {
                // Branch budget exhausted before any labelling completed
                // (only possible on pathologically symmetric graphs):
                // complete by (colour, presentation order). Sound — the
                // code still fully serializes the graph — merely not
                // canonical across presentations.
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by_key(|&v| (colors[v], v));
                self.code_for(&order)
            }
        };
        CanonicalForm { code }
    }
}

fn distinct(colors: &[u64]) -> usize {
    let mut sorted = colors.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

/// The canonical form of a single task. Vertex order, vertex labels and
/// the task name do not influence the result; WCETs, deadlines, edges and
/// separations all do.
pub fn canonical_task_form(task: &DrtTask) -> CanonicalForm {
    Canonicalizer::new(task).run()
}

/// Combines per-task canonical forms and an extra lane sequence (the
/// resource/server component) into a system-level canonical form.
///
/// The task multiset is order-insensitive: forms are sorted
/// lexicographically before concatenation (duplicates are kept — two
/// identical streams load the resource twice).
pub fn combine_forms(mut task_forms: Vec<CanonicalForm>, extra: &[u64]) -> CanonicalForm {
    task_forms.sort_by(|a, b| a.code.cmp(&b.code));
    let mut code = Vec::new();
    code.push(task_forms.len() as u64);
    for f in task_forms {
        code.push(f.code.len() as u64);
        code.extend_from_slice(&f.code);
    }
    code.push(0x5e7a_11ed);
    code.push(extra.len() as u64);
    code.extend_from_slice(extra);
    CanonicalForm { code }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DrtTaskBuilder;
    use srtw_minplus::q;

    fn decoder_like(name: &str, swap: bool) -> DrtTask {
        // Same graph built in two different vertex insertion orders with
        // different labels.
        let mut b = DrtTaskBuilder::new(name);
        if swap {
            let p = b.vertex("beta", Q::int(6));
            let i = b.vertex_with_deadline("alpha", Q::int(12), Q::int(60));
            b.edge(i, p, Q::int(10));
            b.edge(p, p, Q::int(10));
            b.edge(p, i, Q::int(12));
        } else {
            let i = b.vertex_with_deadline("I", Q::int(12), Q::int(60));
            let p = b.vertex("P", Q::int(6));
            b.edge(i, p, Q::int(10));
            b.edge(p, p, Q::int(10));
            b.edge(p, i, Q::int(12));
        }
        b.build().unwrap()
    }

    #[test]
    fn presentation_insensitive() {
        let a = canonical_task_form(&decoder_like("one", false));
        let b = canonical_task_form(&decoder_like("two", true));
        assert_eq!(a, b);
        assert_eq!(a.hash(), b.hash());
    }

    #[test]
    fn wcet_mutation_changes_form() {
        let a = canonical_task_form(&decoder_like("t", false));
        let mut b = DrtTaskBuilder::new("t");
        let i = b.vertex_with_deadline("I", Q::int(12), Q::int(60));
        let p = b.vertex("P", Q::int(7)); // 6 → 7
        b.edge(i, p, Q::int(10));
        b.edge(p, p, Q::int(10));
        b.edge(p, i, Q::int(12));
        let b = canonical_task_form(&b.build().unwrap());
        assert_ne!(a, b);
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn symmetric_ring_is_rotation_invariant() {
        // A 5-ring of identical vertices: WL cannot split the single
        // colour class, so the individualization search does the work.
        // Any rotation must canonicalize identically.
        let ring = |rot: usize| {
            let mut b = DrtTaskBuilder::new("ring");
            let vs: Vec<_> = (0..5)
                .map(|i| b.vertex(format!("v{i}"), Q::int(2)))
                .collect();
            for i in 0..5 {
                b.edge(vs[(i + rot) % 5], vs[(i + rot + 1) % 5], Q::int(7));
            }
            b.build().unwrap()
        };
        let forms: Vec<_> = (0..5).map(|r| canonical_task_form(&ring(r))).collect();
        for f in &forms[1..] {
            assert_eq!(forms[0], *f);
        }
    }

    #[test]
    fn system_combination_is_task_order_insensitive() {
        let t1 = canonical_task_form(&decoder_like("a", false));
        let mut b = DrtTaskBuilder::new("b");
        let v = b.vertex("x", Q::ONE);
        b.edge(v, v, q(25, 1));
        let t2 = canonical_task_form(&b.build().unwrap());
        let s1 = combine_forms(vec![t1.clone(), t2.clone()], &[1, 2]);
        let s2 = combine_forms(vec![t2.clone(), t1.clone()], &[1, 2]);
        assert_eq!(s1, s2);
        let s3 = combine_forms(vec![t1, t2], &[1, 3]);
        assert_ne!(s1, s3);
    }

    #[test]
    fn duplicate_tasks_are_a_multiset() {
        let t = canonical_task_form(&decoder_like("a", false));
        let one = combine_forms(vec![t.clone()], &[]);
        let two = combine_forms(vec![t.clone(), t], &[]);
        assert_ne!(one, two);
    }
}
