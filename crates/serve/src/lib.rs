//! srtw-serve: the resilient analysis service behind `srtw serve`.
//!
//! A long-running, zero-dependency (std `TcpListener`) HTTP service that
//! answers `POST /analyze` with the exact same JSON document as
//! `srtw analyze --json`, wired for robustness at every layer:
//!
//! - **Bounded admission** ([`gate`]): a fixed-capacity queue; overflow is
//!   shed with `503` + an adaptive `Retry-After` instead of buffered, so a
//!   traffic spike can never grow memory without bound.
//! - **Multiplexed I/O** ([`mux`] over [`sys`]'s `poll(2)` shim): one
//!   acceptor thread owns every connection until a complete request is
//!   buffered, with per-connection deadlines (`408`), a head cap (`431`),
//!   a connection cap, and a global body-buffer budget — a slow-loris
//!   flood costs pollfds, not workers, and memory stays O(queue+conns).
//! - **Keep-alive** : connections cycle back to the acceptor between
//!   requests instead of pinning a worker; pipelined bytes carry over.
//! - **Deadline propagation** ([`server`]): `X-Deadline-Ms` becomes a
//!   wall-clock [`srtw_minplus::Budget`] plus a [`srtw_minplus::CancelToken`],
//!   so an over-deadline request *degrades soundly to the RTC bound* —
//!   monotone truncation guarantees exact ≤ degraded ≤ RTC — rather than
//!   timing out with nothing.
//! - **Crash isolation** ([`pool`] + [`srtw_supervisor::contain`]): each
//!   analysis runs on a supervised thread behind `catch_unwind`; a panic
//!   becomes a typed `500` and the worker pool self-heals by respawn.
//! - **Hardened parsing** ([`http`] + `srtw_core::textfmt`): explicit caps
//!   on the request head and body, and the same 11-kind typed parse errors
//!   as the CLI (`400`/`413` with `parse_kind` in the error body).
//! - **Graceful drain** ([`server::Server::shutdown`]): stop accepting,
//!   let in-flight work finish up to the drain window, then cancel
//!   stragglers through their tokens — they still answer, degraded.
//! - **Durable streaming batch** (`POST /batch`): a manifest body runs
//!   under the full supervision ladder, streaming one ndjson line per
//!   job (HTTP/1.1 chunked) as it finishes; a client hangup cancels the
//!   remaining jobs, and with a journal configured every outcome is
//!   fsync'd before it is streamed, so a replica killed mid-batch
//!   replays completed jobs instead of recomputing them.
//! - **Content-addressed caching** (`cache` + `delta`): `POST /analyze`
//!   results are cached under a vertex-order- and name-insensitive
//!   canonical hash of the parsed system (verified byte-for-byte on
//!   every hit), exact rbfs are promoted across requests, and
//!   `POST /analyze/delta` re-analyses only the streams an edit can
//!   provably reach — all three answering byte-identically to a cold
//!   run, only faster.
//! - **Crash-safe persistence** ([`srtw_persist`] wired through
//!   [`server`] and [`batch`]): `--persist DIR` spills every cached
//!   result to an append-only, CRC-framed shard file and warm-loads the
//!   cache on startup (LRU order preserved, every record re-verified
//!   against its canonical hash before it can answer); replicas share
//!   the directory — each writes only its own shard files but
//!   warm-loads from all, so a respawned replica inherits the fleet's
//!   cache. Any persistence failure (`ENOSPC`, `EACCES`, torn or
//!   corrupt spill bytes) degrades to a cold in-memory cache with a
//!   typed `srtw-persist:` warning — never to a changed response.
//!
//! Status codes mirror the CLI exit contract (`200`↔0, `400`/`413`↔2,
//! `500`↔3, `503`↔shed/draining), so a batch driver can treat the service
//! exactly like a pool of `srtw analyze` processes.

#![deny(unsafe_code)] // `signal` and `sys` opt back in for the C bindings.
#![warn(missing_docs)]

mod batch;
mod cache;
mod delta;
pub mod fault;
pub mod gate;
pub mod http;
pub mod mux;
pub mod pool;
pub mod replica;
pub mod report;
pub mod server;
pub mod signal;
pub mod stats;
pub mod sys;

pub use fault::{ProcessFault, ProcessFaultKind};
pub use srtw_persist::{PersistError, PersistErrorKind, PersistFault, PersistFaultKind};
pub use replica::{ReplicaConfig, Supervisor};
pub use report::{fifo_report, fifo_report_with_memo, FifoReport};
pub use server::{DrainReport, ServeConfig, Server};
