//! Exact rational arithmetic over `i128`.
//!
//! [`Q`] is the scalar type used for every time instant, workload amount,
//! slope, and bound in this workspace. Values are kept normalized
//! (`gcd(num, den) == 1`, `den > 0`) so that equality and hashing are
//! structural.
//!
//! # Overflow
//!
//! Arithmetic reduces by greatest common divisors before multiplying, which
//! keeps intermediate products far below `i128::MAX` for every realistic
//! real-time-calculus instance (task parameters fit comfortably in 64 bits).
//! If a product nevertheless overflows, operations panic with a clear
//! message rather than returning silently wrong bounds; `checked_*`
//! variants are provided for callers that prefer a recoverable error.

use crate::error::ArithmeticError;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number `num / den` with `den > 0` and `gcd(num, den) == 1`.
///
/// # Examples
///
/// ```
/// use srtw_minplus::Q;
///
/// let a = Q::new(1, 3);
/// let b = Q::new(1, 6);
/// assert_eq!(a + b, Q::new(1, 2));
/// assert!(a > b);
/// assert_eq!((a * b).to_string(), "1/18");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Q {
    num: i128,
    den: i128,
}

/// Greatest common divisor (always non-negative).
#[inline]
pub(crate) fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple, `None` on `i128` overflow.
#[inline]
pub(crate) fn checked_lcm(a: i128, b: i128) -> Option<i128> {
    if a == 0 || b == 0 {
        return Some(0);
    }
    (a / gcd(a, b)).checked_mul(b).map(i128::abs)
}

/// Least common multiple. Thin wrapper over [`checked_lcm`] for callers
/// with statically small operands (panics on overflow).
#[inline]
#[allow(dead_code)]
pub(crate) fn lcm(a: i128, b: i128) -> i128 {
    checked_lcm(a, b).expect("lcm overflow")
}

impl Q {
    /// The rational zero.
    pub const ZERO: Q = Q { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Q = Q { num: 1, den: 1 };
    /// The rational two.
    pub const TWO: Q = Q { num: 2, den: 1 };

    /// Creates a new rational `num / den`, normalizing sign and common factors.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use srtw_minplus::Q;
    /// assert_eq!(Q::new(2, 4), Q::new(1, 2));
    /// assert_eq!(Q::new(3, -6), Q::new(-1, 2));
    /// ```
    #[inline]
    pub fn new(num: i128, den: i128) -> Q {
        Q::checked_new(num, den).expect("Q::new: zero denominator")
    }

    /// Creates a new rational, returning `None` if `den == 0`.
    pub fn checked_new(num: i128, den: i128) -> Option<Q> {
        if den == 0 {
            return None;
        }
        // gcd(num, den) >= |den| > 0 is impossible only for num == 0, where
        // gcd(0, den) == |den| >= 1 — either way the divisor is nonzero.
        let g = gcd(num, den);
        let (mut num, mut den) = (num / g, den / g);
        if den < 0 {
            num = -num;
            den = -den;
        }
        debug_assert!(den > 0, "Q normalization: den must end positive");
        debug_assert_eq!(gcd(num, den), 1, "Q normalization: gcd must end 1");
        Some(Q { num, den })
    }

    /// Creates an integer-valued rational.
    ///
    /// # Examples
    ///
    /// ```
    /// use srtw_minplus::Q;
    /// assert_eq!(Q::int(7), Q::new(7, 1));
    /// ```
    #[inline]
    pub const fn int(n: i128) -> Q {
        Q { num: n, den: 1 }
    }

    /// The numerator of the normalized fraction.
    #[inline]
    pub const fn numer(self) -> i128 {
        self.num
    }

    /// The denominator of the normalized fraction (always positive).
    #[inline]
    pub const fn denom(self) -> i128 {
        self.den
    }

    /// Returns `true` if the value is an integer.
    #[inline]
    pub const fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Returns `true` if the value is exactly zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Returns `true` if the value is strictly positive.
    #[inline]
    pub const fn is_positive(self) -> bool {
        self.num > 0
    }

    /// Returns `true` if the value is strictly negative.
    #[inline]
    pub const fn is_negative(self) -> bool {
        self.num < 0
    }

    /// The sign of the value: `-1`, `0`, or `1`.
    #[inline]
    pub const fn signum(self) -> i128 {
        self.num.signum()
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Q {
        Q {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// The largest integer `n` with `n <= self`.
    ///
    /// # Examples
    ///
    /// ```
    /// use srtw_minplus::Q;
    /// assert_eq!(Q::new(7, 2).floor(), 3);
    /// assert_eq!(Q::new(-7, 2).floor(), -4);
    /// ```
    pub fn floor(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// The smallest integer `n` with `n >= self`.
    ///
    /// # Examples
    ///
    /// ```
    /// use srtw_minplus::Q;
    /// assert_eq!(Q::new(7, 2).ceil(), 4);
    /// assert_eq!(Q::new(-7, 2).ceil(), -3);
    /// ```
    pub fn ceil(self) -> i128 {
        -(-self.num).div_euclid(self.den)
    }

    /// The fractional part `self - floor(self)`, in `[0, 1)`.
    pub fn fract(self) -> Q {
        self - Q::int(self.floor())
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: Q) -> Option<Q> {
        // a/b + c/d = (a*(d/g) + c*(b/g)) / (b*(d/g)) with g = gcd(b, d).
        let g = gcd(self.den, rhs.den);
        let db = self.den / g;
        let dd = rhs.den / g;
        let num = self
            .num
            .checked_mul(dd)?
            .checked_add(rhs.num.checked_mul(db)?)?;
        let den = self.den.checked_mul(dd)?;
        Q::checked_new(num, den)
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: Q) -> Option<Q> {
        self.checked_add(Q {
            num: rhs.num.checked_neg()?,
            den: rhs.den,
        })
    }

    /// Checked multiplication.
    pub fn checked_mul(self, rhs: Q) -> Option<Q> {
        // Cross-reduce before multiplying to keep products small.
        let g1 = gcd(self.num, rhs.den);
        let g2 = gcd(rhs.num, self.den);
        let num = (self.num / g1).checked_mul(rhs.num / g2)?;
        let den = (self.den / g2).checked_mul(rhs.den / g1)?;
        Q::checked_new(num, den)
    }

    /// Checked division. Returns `None` on division by zero or overflow.
    pub fn checked_div(self, rhs: Q) -> Option<Q> {
        if rhs.is_zero() {
            return None;
        }
        self.checked_mul(Q {
            num: rhs.den,
            den: rhs.num,
        }
        .normalized())
    }

    #[inline]
    fn normalized(self) -> Q {
        Q::new(self.num, self.den)
    }

    /// Returns the smaller of `self` and `other`.
    #[inline]
    pub fn min(self, other: Q) -> Q {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of `self` and `other`.
    #[inline]
    pub fn max(self, other: Q) -> Q {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Clamps to be at least zero: `max(self, 0)`.
    #[inline]
    pub fn clamp_nonneg(self) -> Q {
        self.max(Q::ZERO)
    }

    /// Lossy conversion to `f64` (for display and plotting only — never used
    /// inside an analysis).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// The reciprocal `1 / self`.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    pub fn recip(self) -> Q {
        assert!(!self.is_zero(), "Q::recip of zero");
        Q::new(self.den, self.num)
    }

    /// Smallest common "grid" of two positive rationals: the least positive
    /// rational that is an integer multiple of both. Used to align periodic
    /// curve tails.
    ///
    /// # Panics
    ///
    /// Panics if either value is not strictly positive.
    ///
    /// # Examples
    ///
    /// ```
    /// use srtw_minplus::Q;
    /// assert_eq!(Q::lcm(Q::new(1, 2), Q::new(1, 3)), Q::int(1));
    /// assert_eq!(Q::lcm(Q::int(4), Q::int(6)), Q::int(12));
    /// ```
    pub fn lcm(a: Q, b: Q) -> Q {
        Q::try_lcm(a, b).expect("Q::lcm overflow")
    }

    /// Fallible [`Q::lcm`]: `Err` on `i128` overflow instead of a panic.
    ///
    /// Adversarial inputs with huge coprime periods make this the first
    /// arithmetic casualty of an analysis (the common check horizon of two
    /// periodic curve tails is an lcm); routing it through `Result` lets
    /// the budgeted analyses degrade soundly instead of aborting.
    ///
    /// # Panics
    ///
    /// Panics if either value is not strictly positive (a caller bug, not
    /// an input property).
    ///
    /// # Examples
    ///
    /// ```
    /// use srtw_minplus::{ArithmeticError, Q};
    /// assert_eq!(Q::try_lcm(Q::int(4), Q::int(6)), Ok(Q::int(12)));
    /// let huge = Q::int((1i128 << 100) + 1); // odd, coprime with the power of two
    /// let pow = Q::int(1i128 << 100);
    /// assert_eq!(Q::try_lcm(huge, pow), Err(ArithmeticError::Overflow));
    /// ```
    pub fn try_lcm(a: Q, b: Q) -> Result<Q, ArithmeticError> {
        assert!(
            a.is_positive() && b.is_positive(),
            "Q::lcm needs positive arguments"
        );
        // lcm(n1/d1, n2/d2) = lcm(n1*d2, n2*d1) / (d1*d2)
        let overflow = ArithmeticError::Overflow;
        let x = a.num.checked_mul(b.den).ok_or(overflow)?;
        let y = b.num.checked_mul(a.den).ok_or(overflow)?;
        let den = a.den.checked_mul(b.den).ok_or(overflow)?;
        Ok(Q::new(checked_lcm(x, y).ok_or(overflow)?, den))
    }
}

impl Default for Q {
    fn default() -> Self {
        Q::ZERO
    }
}

impl PartialOrd for Q {
    #[inline]
    fn partial_cmp(&self, other: &Q) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Q {
    fn cmp(&self, other: &Q) -> Ordering {
        if self.den == other.den {
            return self.num.cmp(&other.num);
        }
        // Compare a/b vs c/d by (a/g1)*(d/g2) vs (c/g1)*(b/g2),
        // reducing by cross-gcds first to avoid overflow.
        let g1 = gcd(self.num, other.num).max(1);
        let g2 = gcd(self.den, other.den).max(1);
        let lhs = (self.num / g1)
            .checked_mul(other.den / g2)
            .expect("Q::cmp overflow");
        let rhs = (other.num / g1)
            .checked_mul(self.den / g2)
            .expect("Q::cmp overflow");
        // g1 may be negative-free but sign of num/g1 preserved since g1 > 0.
        lhs.cmp(&rhs)
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $checked:ident, $msg:expr) => {
        impl $trait for Q {
            type Output = Q;
            #[inline]
            fn $method(self, rhs: Q) -> Q {
                self.$checked(rhs).expect($msg)
            }
        }
        impl $trait<&Q> for Q {
            type Output = Q;
            #[inline]
            fn $method(self, rhs: &Q) -> Q {
                self.$checked(*rhs).expect($msg)
            }
        }
        impl $trait<Q> for &Q {
            type Output = Q;
            #[inline]
            fn $method(self, rhs: Q) -> Q {
                (*self).$checked(rhs).expect($msg)
            }
        }
        impl $trait<&Q> for &Q {
            type Output = Q;
            #[inline]
            fn $method(self, rhs: &Q) -> Q {
                (*self).$checked(*rhs).expect($msg)
            }
        }
    };
}

impl_binop!(Add, add, checked_add, "Q addition overflow");
impl_binop!(Sub, sub, checked_sub, "Q subtraction overflow");
impl_binop!(Mul, mul, checked_mul, "Q multiplication overflow");
impl_binop!(Div, div, checked_div, "Q division by zero or overflow");

impl AddAssign for Q {
    #[inline]
    fn add_assign(&mut self, rhs: Q) {
        *self = *self + rhs;
    }
}
impl SubAssign for Q {
    #[inline]
    fn sub_assign(&mut self, rhs: Q) {
        *self = *self - rhs;
    }
}
impl MulAssign for Q {
    #[inline]
    fn mul_assign(&mut self, rhs: Q) {
        *self = *self * rhs;
    }
}
impl DivAssign for Q {
    #[inline]
    fn div_assign(&mut self, rhs: Q) {
        *self = *self / rhs;
    }
}

impl Neg for Q {
    type Output = Q;
    #[inline]
    fn neg(self) -> Q {
        Q {
            num: -self.num,
            den: self.den,
        }
    }
}

impl From<i128> for Q {
    #[inline]
    fn from(n: i128) -> Q {
        Q::int(n)
    }
}
impl From<i64> for Q {
    #[inline]
    fn from(n: i64) -> Q {
        Q::int(n as i128)
    }
}
impl From<i32> for Q {
    #[inline]
    fn from(n: i32) -> Q {
        Q::int(n as i128)
    }
}
impl From<u32> for Q {
    #[inline]
    fn from(n: u32) -> Q {
        Q::int(n as i128)
    }
}
impl From<u64> for Q {
    #[inline]
    fn from(n: u64) -> Q {
        Q::int(n as i128)
    }
}

impl fmt::Display for Q {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Q {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q({self})")
    }
}

/// Error returned when parsing a [`Q`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQError {
    input: String,
}

impl fmt::Display for ParseQError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal: {:?}", self.input)
    }
}

impl std::error::Error for ParseQError {}

impl FromStr for Q {
    type Err = ParseQError;

    /// Parses `"3"`, `"-3"`, `"3/4"`, or `"-3/4"`.
    ///
    /// # Examples
    ///
    /// ```
    /// use srtw_minplus::Q;
    /// assert_eq!("3/4".parse::<Q>().unwrap(), Q::new(3, 4));
    /// assert!("3/0".parse::<Q>().is_err());
    /// ```
    fn from_str(s: &str) -> Result<Q, ParseQError> {
        let err = || ParseQError {
            input: s.to_owned(),
        };
        match s.split_once('/') {
            None => s.trim().parse::<i128>().map(Q::int).map_err(|_| err()),
            Some((n, d)) => {
                let num = n.trim().parse::<i128>().map_err(|_| err())?;
                let den = d.trim().parse::<i128>().map_err(|_| err())?;
                Q::checked_new(num, den).ok_or_else(err)
            }
        }
    }
}

/// A small rational on `i64` components, the scalar of the fixed-denominator
/// convolution fast path.
///
/// Unlike [`Q`], a `Q64` is **not** kept reduced: `den > 0` always holds, but
/// `gcd(num, den)` may exceed 1. Reduction is lazy — [`Q64::pack`] first tries
/// to store an arithmetic result as-is and only pays a gcd when the `i128`
/// intermediates do not fit `i64`. Every operation computes through `i128`
/// intermediates (two `i64` factors can never overflow an `i128` product, and
/// one addition of two such products stays below `2^127`), so results are
/// always *exact*; `None` only means "no longer representable in `i64`", at
/// which point the caller falls back to full [`Q`] arithmetic.
///
/// Comparisons cross-multiply in `i128` and are therefore exact without any
/// normalization, which is where the fast path earns its keep: the envelope
/// walk is comparison-heavy, and `Q`'s comparisons pay one gcd each.
#[derive(Clone, Copy)]
pub(crate) struct Q64 {
    num: i64,
    /// Always strictly positive; not necessarily coprime with `num`.
    den: i64,
}

// Value equality, not structural: 2/4 and 1/2 are the same `Q64`.
impl PartialEq for Q64 {
    #[inline]
    fn eq(&self, other: &Q64) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Q64 {}

impl Q64 {
    /// The zero value.
    pub(crate) const ZERO: Q64 = Q64 { num: 0, den: 1 };

    /// Converts an exact rational, `None` if either component exceeds `i64`.
    #[inline]
    pub(crate) fn from_q(v: Q) -> Option<Q64> {
        let num = i64::try_from(v.numer()).ok()?;
        let den = i64::try_from(v.denom()).ok()?;
        Some(Q64 { num, den })
    }

    /// Converts back to the canonical [`Q`] representation. Exact: `Q::new`
    /// reduces the (possibly unreduced) pair to the unique normal form.
    #[inline]
    pub(crate) fn to_q(self) -> Q {
        Q::new(self.num as i128, self.den as i128)
    }

    /// `true` when the value is strictly negative (`den` is always positive).
    #[inline]
    pub(crate) fn is_negative(self) -> bool {
        self.num < 0
    }

    /// Stores an exact `i128` value pair as a `Q64`, reducing by the gcd only
    /// when the raw pair does not fit. `den` must be strictly positive.
    #[inline]
    fn pack(num: i128, den: i128) -> Option<Q64> {
        debug_assert!(den > 0, "Q64::pack needs a positive denominator");
        if let (Ok(n), Ok(d)) = (i64::try_from(num), i64::try_from(den)) {
            return Some(Q64 { num: n, den: d });
        }
        let g = gcd(num, den);
        let (num, den) = (num / g, den / g);
        match (i64::try_from(num), i64::try_from(den)) {
            (Ok(n), Ok(d)) => Some(Q64 { num: n, den: d }),
            _ => None,
        }
    }

    /// Exact addition; `None` when the reduced result leaves `i64`.
    #[inline]
    pub(crate) fn add(self, rhs: Q64) -> Option<Q64> {
        let num =
            self.num as i128 * rhs.den as i128 + rhs.num as i128 * self.den as i128;
        let den = self.den as i128 * rhs.den as i128;
        Q64::pack(num, den)
    }

    /// Exact subtraction; `None` when the reduced result leaves `i64`.
    #[inline]
    pub(crate) fn sub(self, rhs: Q64) -> Option<Q64> {
        let num =
            self.num as i128 * rhs.den as i128 - rhs.num as i128 * self.den as i128;
        let den = self.den as i128 * rhs.den as i128;
        Q64::pack(num, den)
    }

    /// Exact multiplication; `None` when the reduced result leaves `i64`.
    #[inline]
    pub(crate) fn mul(self, rhs: Q64) -> Option<Q64> {
        Q64::pack(
            self.num as i128 * rhs.num as i128,
            self.den as i128 * rhs.den as i128,
        )
    }

    /// Exact division; `None` on division by zero or when the reduced result
    /// leaves `i64`.
    #[inline]
    pub(crate) fn div(self, rhs: Q64) -> Option<Q64> {
        if rhs.num == 0 {
            return None;
        }
        let mut num = self.num as i128 * rhs.den as i128;
        let mut den = self.den as i128 * rhs.num as i128;
        if den < 0 {
            num = -num;
            den = -den;
        }
        Q64::pack(num, den)
    }

    /// Absolute value (no overflow: `den > 0`, and `num == i64::MIN` would
    /// imply an unreduced pack of a value whose negation still fits `i128`
    /// at the call sites, which all compare rather than negate first — keep
    /// the checked form anyway).
    #[inline]
    pub(crate) fn abs(self) -> Option<Q64> {
        Some(Q64 {
            num: self.num.checked_abs()?,
            den: self.den,
        })
    }

    /// Is the value exactly zero?
    #[inline]
    pub(crate) fn is_zero(self) -> bool {
        self.num == 0
    }
}

impl PartialOrd for Q64 {
    #[inline]
    fn partial_cmp(&self, other: &Q64) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Q64 {
    /// Exact comparison by `i128` cross-multiplication — both denominators
    /// are positive, so the product order is the value order.
    #[inline]
    fn cmp(&self, other: &Q64) -> Ordering {
        let lhs = self.num as i128 * other.den as i128;
        let rhs = other.num as i128 * self.den as i128;
        lhs.cmp(&rhs)
    }
}

impl fmt::Debug for Q64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q64({}/{})", self.num, self.den)
    }
}

/// Convenience constructor: `q(3, 4)` is `Q::new(3, 4)`.
///
/// # Examples
///
/// ```
/// use srtw_minplus::{q, Q};
/// assert_eq!(q(6, 8), Q::new(3, 4));
/// ```
#[inline]
pub fn q(num: i128, den: i128) -> Q {
    Q::new(num, den)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Q::new(2, 4), Q::new(1, 2));
        assert_eq!(Q::new(-2, -4), Q::new(1, 2));
        assert_eq!(Q::new(2, -4), Q::new(-1, 2));
        assert_eq!(Q::new(0, -7), Q::ZERO);
        assert_eq!(Q::new(0, 7).denom(), 1);
    }

    #[test]
    fn zero_denominator_rejected() {
        assert!(Q::checked_new(1, 0).is_none());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn new_panics_on_zero_denominator() {
        let _ = Q::new(1, 0);
    }

    #[test]
    fn arithmetic_basics() {
        assert_eq!(q(1, 2) + q(1, 3), q(5, 6));
        assert_eq!(q(1, 2) - q(1, 3), q(1, 6));
        assert_eq!(q(2, 3) * q(3, 4), q(1, 2));
        assert_eq!(q(1, 2) / q(1, 4), Q::TWO);
        assert_eq!(-q(1, 2), q(-1, 2));
    }

    #[test]
    fn assign_ops() {
        let mut x = q(1, 2);
        x += q(1, 2);
        assert_eq!(x, Q::ONE);
        x -= q(1, 4);
        assert_eq!(x, q(3, 4));
        x *= Q::TWO;
        assert_eq!(x, q(3, 2));
        x /= Q::int(3);
        assert_eq!(x, q(1, 2));
    }

    #[test]
    fn ordering() {
        assert!(q(1, 3) < q(1, 2));
        assert!(q(-1, 2) < q(-1, 3));
        assert!(q(7, 7) == Q::ONE);
        assert!(q(10, 3) > Q::int(3));
        let mut v = vec![q(3, 2), Q::ZERO, q(-5, 4), Q::ONE];
        v.sort();
        assert_eq!(v, vec![q(-5, 4), Q::ZERO, Q::ONE, q(3, 2)]);
    }

    #[test]
    fn floor_ceil_fract() {
        assert_eq!(q(7, 2).floor(), 3);
        assert_eq!(q(7, 2).ceil(), 4);
        assert_eq!(q(-7, 2).floor(), -4);
        assert_eq!(q(-7, 2).ceil(), -3);
        assert_eq!(Q::int(5).floor(), 5);
        assert_eq!(Q::int(5).ceil(), 5);
        assert_eq!(q(7, 2).fract(), q(1, 2));
        assert_eq!(q(-7, 2).fract(), q(1, 2));
    }

    #[test]
    fn min_max_clamp() {
        assert_eq!(q(1, 2).min(q(1, 3)), q(1, 3));
        assert_eq!(q(1, 2).max(q(1, 3)), q(1, 2));
        assert_eq!(q(-1, 2).clamp_nonneg(), Q::ZERO);
        assert_eq!(q(1, 2).clamp_nonneg(), q(1, 2));
    }

    #[test]
    fn division_by_zero_checked() {
        assert!(q(1, 2).checked_div(Q::ZERO).is_none());
    }

    #[test]
    fn display_and_parse_roundtrip() {
        for s in ["0", "5", "-5", "3/4", "-3/4", "7/3"] {
            let v: Q = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
        assert!("1/0".parse::<Q>().is_err());
        assert!("abc".parse::<Q>().is_err());
        assert_eq!(" 3 / 4 ".parse::<Q>().unwrap(), q(3, 4));
    }

    #[test]
    fn lcm_of_rationals() {
        assert_eq!(Q::lcm(q(1, 2), q(1, 3)), Q::ONE);
        assert_eq!(Q::lcm(Q::int(4), Q::int(6)), Q::int(12));
        assert_eq!(Q::lcm(q(3, 2), q(1, 2)), q(3, 2));
        assert_eq!(Q::lcm(q(2, 3), q(1, 2)), Q::int(2));
    }

    #[test]
    fn try_lcm_surfaces_overflow() {
        // Two huge coprime integers: their lcm is their product, which
        // exceeds i128. This used to abort deep inside the curve algebra.
        let a = Q::int((1i128 << 88) - 1);
        let b = Q::int(1i128 << 88);
        assert_eq!(Q::try_lcm(a, b), Err(ArithmeticError::Overflow));
        // Non-overflowing inputs agree with the panicking wrapper.
        assert_eq!(Q::try_lcm(q(3, 2), q(1, 2)), Ok(Q::lcm(q(3, 2), q(1, 2))));
        assert_eq!(checked_lcm(i128::MAX, i128::MAX - 1), None);
        assert_eq!(checked_lcm(0, 7), Some(0));
    }

    #[test]
    fn gcd_lcm_integers() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(0, 6), 0);
    }

    #[test]
    fn recip() {
        assert_eq!(q(3, 4).recip(), q(4, 3));
        assert_eq!(q(-3, 4).recip(), q(-4, 3));
    }

    #[test]
    fn to_f64_close() {
        assert!((q(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn conversions() {
        assert_eq!(Q::from(3i32), Q::int(3));
        assert_eq!(Q::from(3u64), Q::int(3));
        assert_eq!(Q::from(-3i64), Q::int(-3));
    }

    #[test]
    fn checked_ops_catch_overflow() {
        let huge = Q::int(i128::MAX / 2);
        assert!(huge.checked_mul(Q::int(4)).is_none());
        assert!(huge.checked_add(huge).is_some()); // exactly representable
        assert!(Q::int(i128::MAX).checked_add(Q::ONE).is_none());
        assert!(Q::int(i128::MIN + 1).checked_sub(Q::int(2)).is_none());
        // Cross-reduction keeps realistic products in range.
        let a = Q::new(1, i128::MAX / 4);
        let b = Q::new(i128::MAX / 4, 1);
        assert_eq!(a.checked_mul(b), Some(Q::ONE));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn unchecked_mul_panics_on_overflow() {
        let huge = Q::int(i128::MAX / 2);
        let _ = huge * Q::int(4);
    }

    #[test]
    fn q64_roundtrips_and_matches_q() {
        let cases = [
            (q(3, 4), q(5, 6)),
            (q(-7, 2), q(7, 3)),
            (Q::ZERO, q(1, 1_000_000)),
            (Q::int(1 << 40), q(-3, 1 << 20)),
        ];
        for (a, b) in cases {
            let (sa, sb) = (Q64::from_q(a).unwrap(), Q64::from_q(b).unwrap());
            assert_eq!(sa.to_q(), a);
            assert_eq!(sa.add(sb).unwrap().to_q(), a + b);
            assert_eq!(sa.sub(sb).unwrap().to_q(), a - b);
            assert_eq!(sa.mul(sb).unwrap().to_q(), a * b);
            assert_eq!(sa.div(sb).unwrap().to_q(), a / b);
            assert_eq!(sa.cmp(&sb), a.cmp(&b));
            assert_eq!(sa == sb, a == b);
        }
    }

    #[test]
    fn q64_equality_is_by_value() {
        // Unreduced pairs produced by lazy packing compare by value.
        let a = Q64::from_q(q(1, 2)).unwrap();
        let b = Q64::from_q(q(2, 4000000)).unwrap().mul(
            Q64::from_q(Q::int(1_000_000)).unwrap(),
        ).unwrap();
        assert_eq!(a, b);
        assert!(Q64::ZERO.is_zero());
        assert_eq!(Q64::from_q(q(-3, 4)).unwrap().abs().unwrap().to_q(), q(3, 4));
    }

    #[test]
    fn q64_falls_out_of_range_gracefully() {
        // Components beyond i64 are rejected at conversion …
        assert!(Q64::from_q(Q::int(i128::from(i64::MAX) + 1)).is_none());
        assert!(Q64::from_q(Q::new(1, i128::from(i64::MAX) + 2)).is_none());
        // … and arithmetic that cannot reduce back into i64 returns None
        // instead of wrapping: (2^62/1) * (2^62/1) has no i64 form.
        let big = Q64::from_q(Q::int(1 << 62)).unwrap();
        assert!(big.mul(big).is_none());
        // While a product that *can* reduce survives: (2^62/3) * (3/2^62) = 1.
        let a = Q64::from_q(q(1 << 62, 3)).unwrap();
        let b = Q64::from_q(q(3, 1 << 62)).unwrap();
        assert_eq!(a.mul(b).unwrap().to_q(), Q::ONE);
        assert!(big.div(Q64::ZERO).is_none());
    }

    #[test]
    fn signum_and_predicates() {
        assert_eq!(q(-3, 4).signum(), -1);
        assert_eq!(Q::ZERO.signum(), 0);
        assert_eq!(q(3, 4).signum(), 1);
        assert!(q(-1, 9).is_negative());
        assert!(!Q::ZERO.is_negative() && !Q::ZERO.is_positive());
        assert!(q(7, 7).is_integer());
        assert!(!q(7, 2).is_integer());
        assert_eq!(q(-7, 2).abs(), q(7, 2));
        assert_eq!(Q::default(), Q::ZERO);
    }
}
