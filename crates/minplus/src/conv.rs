//! (min,+) convolution and deconvolution.
//!
//! The convolution `f ⊗ g (t) = inf_{0≤s≤t} f(s) + g(t−s)` and deconvolution
//! `f ⊘ g (t) = sup_{u≥0} f(t+u) − g(u)` are the workhorses of network /
//! real-time calculus: `⊗` composes service curves, `⊘` propagates arrival
//! curves through servers.
//!
//! Following the *finitary* approach (exact computation on a bounded prefix,
//! which is all a delay analysis inside a busy window ever inspects), this
//! module provides:
//!
//! * [`Curve::conv_upto`] — exact on `[0, h]` for **any** operands,
//! * [`Curve::conv`] — exact everywhere for ultimately-affine operands,
//! * [`Curve::deconv_upto`] — exact on `[0, h]` given a sufficient
//!   optimisation horizon for the hidden supremum,
//! * [`Curve::deconv`] — deconvolution with an automatically derived
//!   sufficient horizon for stable operand pairs.

use crate::curve::{try_common_check_horizon, Curve, Piece, Shape, Tail};
use crate::error::CurveError;
use crate::meter::{BudgetKind, BudgetMeter};
use crate::ops::{ck_add, TailInfo};
use crate::ratio::{Q, Q64};
use crate::stream::{CurveStream, Unroll};
use std::cell::Cell;

/// The budget error carrying whichever dimension actually tripped `meter`.
fn budget_err(meter: &BudgetMeter) -> CurveError {
    CurveError::Budget(meter.tripped().unwrap_or(BudgetKind::Segments))
}

/// A budget-meter adapter that swallows its first `skip` ticks.
///
/// The i64 scalar kernels tick the real meter as they go; when one
/// overflows after `k` successful ticks, the exact `Q` kernel re-runs the
/// same computation from scratch. Replaying it against a `Ticker` with
/// `skip = k` keeps the meter's observed operation sequence identical to a
/// pure-`Q` run: the replayed prefix (already paid for, and already known
/// not to trip) is silent, and ticks `k+1, k+2, …` land on the meter at
/// exactly the indices the `Q` kernel alone would have produced — so
/// budget caps, cancellation polls, and fault injection by operation index
/// are oblivious to which kernel did the arithmetic.
pub(crate) struct Ticker<'a> {
    meter: &'a BudgetMeter,
    skip: Cell<u64>,
}

impl<'a> Ticker<'a> {
    fn new(meter: &'a BudgetMeter) -> Ticker<'a> {
        Ticker::skipping(meter, 0)
    }

    fn skipping(meter: &'a BudgetMeter, skip: u64) -> Ticker<'a> {
        Ticker {
            meter,
            skip: Cell::new(skip),
        }
    }

    fn tick(&self) -> Result<(), CurveError> {
        let skip = self.skip.get();
        if skip > 0 {
            self.skip.set(skip - 1);
            Ok(())
        } else if self.meter.tick_segment() {
            Ok(())
        } else {
            Err(budget_err(self.meter))
        }
    }
}

/// An affine fragment defined on the half-open interval `[start, end)`,
/// with value `v` at `start` and slope `r`. Used as a convolution /
/// deconvolution candidate before envelope computation.
#[derive(Debug, Clone, Copy)]
struct Part {
    start: Q,
    end: Q,
    v: Q,
    r: Q,
}

impl Part {
    fn eval(&self, t: Q) -> Q {
        self.v + self.r * (t - self.start)
    }
}

/// The i64 mirror of [`Part`]: same fragment, scalar components.
#[derive(Debug, Clone, Copy)]
struct Part64 {
    start: Q64,
    end: Q64,
    v: Q64,
    r: Q64,
}

impl Part64 {
    fn eval(&self, t: Q64) -> Option<Q64> {
        self.v.add(self.r.mul(t.sub(self.start)?)?)
    }

    fn from_part(p: &Part) -> Option<Part64> {
        Some(Part64 {
            start: Q64::from_q(p.start)?,
            end: Q64::from_q(p.end)?,
            v: Q64::from_q(p.v)?,
            r: Q64::from_q(p.r)?,
        })
    }
}

/// Reusable buffers for the convolution/deconvolution kernels. A fused
/// [`crate::stream::Pipe`] owns one and threads it through every stage, so
/// a chained conv → min → hdev composition recycles the same candidate,
/// event-grid, and envelope-line arenas instead of allocating fresh ones
/// per operator; the one-shot entry points create a transient instance.
#[derive(Debug, Default)]
pub(crate) struct ConvScratch {
    pa: Vec<Part>,
    pb: Vec<Part>,
    cand: Vec<Part>,
    events: Vec<Q>,
    lines: Vec<(Q, Q)>,
    pa64: Vec<Part64>,
    pb64: Vec<Part64>,
    cand64: Vec<Part64>,
    events64: Vec<Q64>,
    lines64: Vec<(Q64, Q64)>,
    out64: Vec<(Q64, Q64, Q64)>,
}

impl ConvScratch {
    pub(crate) fn new() -> ConvScratch {
        ConvScratch::default()
    }
}

/// Explicit pieces of `c` truncated to `[0, h]`, as [`Part`]s carrying
/// their extents, written into `out` (cleared first).
///
/// Streams the unrolled pieces through [`Unroll`] instead of materializing
/// them: the meter sees the identical tick sequence (the stream is drained
/// to exhaustion even past `h`, exactly as `try_pieces_upto` lifts every
/// piece of every qualifying period), but the unrolled `Vec<Piece>` is
/// never built — each event is converted to a [`Part`] on the fly using
/// one event of lookahead for the extent's right end.
fn parts_of_into(
    c: &Curve,
    h: Q,
    meter: &BudgetMeter,
    out: &mut Vec<Part>,
) -> Result<(), CurveError> {
    out.clear();
    let hp1 = h + Q::ONE;
    let mut stream = Unroll::new(c, h, meter);
    let mut pending: Option<Piece> = None;
    while let Some(ev) = stream.next_event() {
        let p = ev?;
        if let Some(prev) = pending.take() {
            out.push(Part {
                start: prev.start,
                end: p.start.min(hp1),
                v: prev.value,
                r: prev.slope,
            });
        }
        if p.start > h {
            // Past the horizon: nothing further is emitted, but the stream
            // is drained so the metered tick demand matches the
            // materializing unroll exactly.
            while let Some(ev) = stream.next_event() {
                ev?;
            }
            return Ok(());
        }
        pending = Some(p);
    }
    if let Some(prev) = pending {
        out.push(Part {
            start: prev.start,
            end: hp1,
            v: prev.value,
            r: prev.slope,
        });
    }
    Ok(())
}

/// Selects the better of two `(value, slope)` lines for an envelope in the
/// given direction, with ties broken by slope so the envelope stays extreme
/// after the tie.
#[inline]
fn better<T: Copy + Ord>(a: (T, T), b: (T, T), upper: bool) -> (T, T) {
    let a_better = if upper {
        a.0 > b.0 || (a.0 == b.0 && a.1 > b.1)
    } else {
        a.0 < b.0 || (a.0 == b.0 && a.1 < b.1)
    };
    if a_better {
        a
    } else {
        b
    }
}

/// Lower or upper envelope of a set of partial affine fragments over
/// `[0, h]`. Every point of `[0, h]` must be covered by at least one part.
/// The envelope is computed per elementary interval (between consecutive
/// part endpoints), where the active parts are full lines. `events` and
/// `lines` are caller-provided scratch buffers (cleared here).
fn envelope(
    parts: &[Part],
    h: Q,
    upper: bool,
    tk: &Ticker,
    events: &mut Vec<Q>,
    lines: &mut Vec<(Q, Q)>,
) -> Result<Vec<Piece>, CurveError> {
    events.clear();
    events.extend(
        parts
            .iter()
            .flat_map(|p| [p.start, p.end])
            .filter(|&t| !t.is_negative() && t <= h),
    );
    events.push(Q::ZERO);
    events.push(h);
    events.sort();
    events.dedup();

    let mut out: Vec<Piece> = Vec::new();
    let push = |p: Piece, out: &mut Vec<Piece>| {
        if let Some(last) = out.last() {
            if last.slope == p.slope && last.eval(p.start) == p.value {
                return;
            }
        }
        out.push(p);
    };

    // One scratch buffer for the whole walk: the per-interval line set is
    // rebuilt in place instead of allocating a fresh Vec per elementary
    // interval (the inner-loop allocation dominated profiles on large
    // horizons).
    for w in events.windows(2) {
        let (x1, x2) = (w[0], w[1]);
        // Active parts cover the whole elementary interval; within it each
        // is a full line, stored as (value at x1, slope).
        lines.clear();
        lines.extend(
            parts
                .iter()
                .filter(|p| p.start <= x1 && p.end >= x2)
                .map(|p| (p.eval(x1), p.r)),
        );
        assert!(
            !lines.is_empty(),
            "envelope: no candidate covers [{x1}, {x2})"
        );
        let value_at = |line: (Q, Q), x: Q| line.0 + line.1 * (x - x1);
        // Walk the envelope from x1 towards x2, re-selecting the extreme
        // line at every switch point (ties broken by slope so the envelope
        // stays extreme after the tie).
        let mut x = x1;
        loop {
            tk.tick()?;
            let cur = lines
                .iter()
                .copied()
                .map(|l| (value_at(l, x), l.1))
                .reduce(|a, b| better(a, b, upper))
                .expect("non-empty");
            push(Piece::new(x, cur.0, cur.1), &mut out);
            // Earliest strict crossing by a line that overtakes `cur`.
            let mut next_x: Option<Q> = None;
            for &l in lines.iter() {
                let overtakes = if upper { l.1 > cur.1 } else { l.1 < cur.1 };
                if !overtakes {
                    continue;
                }
                let vx = value_at(l, x);
                // `cur` is extreme at x, so the candidate sits on the wrong
                // side now and can only cross later.
                let gap = if upper { cur.0 - vx } else { vx - cur.0 };
                if gap.is_negative() || gap.is_zero() {
                    continue; // ties at x are resolved by the re-selection
                }
                let cross = x + gap / (cur.1 - l.1).abs();
                if cross > x && cross < x2 {
                    next_x = Some(match next_x {
                        None => cross,
                        Some(b) => b.min(cross),
                    });
                }
            }
            match next_x {
                None => break,
                Some(nx) => x = nx,
            }
        }
    }
    // The loop above covers [0, h) with right-continuous pieces; the point
    // `h` itself needs its own evaluation (the true function may jump at a
    // part-domain boundary landing exactly on `h`).
    let at_h = parts
        .iter()
        .filter(|p| p.start <= h && p.end > h)
        .map(|p| (p.eval(h), p.r))
        .reduce(|a, b| better(a, b, upper));
    if let Some((v, r)) = at_h {
        push(Piece::new(h, v, r), &mut out);
    }
    Ok(out)
}

/// Outcome of an i64 scalar kernel attempt.
enum ScalarRun {
    /// The whole computation fit in `i64` numerators/denominators; the
    /// result is exactly the pieces the `Q` kernel would produce.
    Done(Vec<Piece>),
    /// Some intermediate fell out of `i64` range after the carried number
    /// of successful meter ticks were issued; the caller re-runs the exact
    /// `Q` kernel with that many leading ticks swallowed (see [`Ticker`]).
    Spill(u64),
}

/// The general-convolution pair loop and lower envelope, entirely in
/// [`Q64`] scalar arithmetic — the fixed-denominator fast path.
///
/// Mirrors the `Q` kernel operation-for-operation: the same candidate
/// fragments in the same order, the same event grid, the same envelope
/// walk with identical tie-breaking (all `Q64` comparisons are exact
/// cross-multiplications, so every branch decides exactly as `Q` would).
/// Every meter tick is issued at the same index. Any intermediate that
/// does not fit an `i64` rational aborts with [`ScalarRun::Spill`]
/// carrying the number of ticks already issued.
fn conv_general_scalar(
    h: Q,
    meter: &BudgetMeter,
    scratch: &mut ConvScratch,
) -> Result<ScalarRun, CurveError> {
    let ConvScratch {
        pa,
        pb,
        pa64,
        pb64,
        cand64,
        events64,
        lines64,
        out64,
        ..
    } = scratch;
    let mut ticks: u64 = 0;
    macro_rules! sp {
        ($e:expr) => {
            match $e {
                Some(v) => v,
                None => return Ok(ScalarRun::Spill(ticks)),
            }
        };
    }
    macro_rules! tick {
        () => {
            if meter.tick_segment() {
                ticks += 1;
            } else {
                return Err(budget_err(meter));
            }
        };
    }

    let h64 = sp!(Q64::from_q(h));
    pa64.clear();
    for p in pa.iter() {
        pa64.push(sp!(Part64::from_part(p)));
    }
    pb64.clear();
    for p in pb.iter() {
        pb64.push(sp!(Part64::from_part(p)));
    }

    // --- pair loop: mirror of the Q candidate construction -------------
    cand64.clear();
    for a in pa64.iter() {
        for b in pb64.iter() {
            tick!();
            let t0 = sp!(a.start.add(b.start));
            if t0 > h64 {
                continue;
            }
            let t1 = sp!(a.end.add(b.end)); // exclusive
            let v0 = sp!(a.v.add(b.v));
            let (rmin, rmax, len_min) = if a.r <= b.r {
                (a.r, b.r, sp!(a.end.sub(a.start)))
            } else {
                (b.r, a.r, sp!(b.end.sub(b.start)))
            };
            let mid = sp!(t0.add(len_min));
            if mid >= t1 {
                cand64.push(Part64 {
                    start: t0,
                    end: t1,
                    v: v0,
                    r: rmin,
                });
            } else {
                cand64.push(Part64 {
                    start: t0,
                    end: mid,
                    v: v0,
                    r: rmin,
                });
                cand64.push(Part64 {
                    start: mid,
                    end: t1,
                    v: sp!(v0.add(sp!(rmin.mul(len_min)))),
                    r: rmax,
                });
            }
        }
    }

    // --- lower envelope: mirror of `envelope(…, upper = false)` --------
    events64.clear();
    events64.extend(
        cand64
            .iter()
            .flat_map(|p| [p.start, p.end])
            .filter(|&t| !t.is_negative() && t <= h64),
    );
    events64.push(Q64::ZERO);
    events64.push(h64);
    events64.sort();
    events64.dedup();

    out64.clear();
    // The merge criterion is the same colinear-continuation test the Q
    // push closure applies; its evaluation can itself overflow, which
    // spills like any other op.
    macro_rules! push64 {
        ($start:expr, $v:expr, $r:expr) => {{
            let (start, v, r) = ($start, $v, $r);
            let merged = match out64.last() {
                Some(&(ls, lv, lr)) => {
                    lr == r && sp!(lv.add(sp!(lr.mul(sp!(start.sub(ls)))))) == v
                }
                None => false,
            };
            if !merged {
                out64.push((start, v, r));
            }
        }};
    }

    let mut i = 0;
    while i + 1 < events64.len() {
        let (x1, x2) = (events64[i], events64[i + 1]);
        i += 1;
        lines64.clear();
        for p in cand64.iter() {
            if p.start <= x1 && p.end >= x2 {
                lines64.push((sp!(p.eval(x1)), p.r));
            }
        }
        assert!(!lines64.is_empty(), "envelope64: no candidate covers an interval");
        let mut x = x1;
        loop {
            tick!();
            let mut cur: Option<(Q64, Q64)> = None;
            for &l in lines64.iter() {
                let lx = (sp!(l.0.add(sp!(l.1.mul(sp!(x.sub(x1)))))), l.1);
                cur = Some(match cur {
                    None => lx,
                    Some(c) => better(c, lx, false),
                });
            }
            let cur = cur.expect("non-empty");
            push64!(x, cur.0, cur.1);
            let mut next_x: Option<Q64> = None;
            for &l in lines64.iter() {
                if l.1 >= cur.1 {
                    continue; // not overtaking (lower envelope)
                }
                let vx = sp!(l.0.add(sp!(l.1.mul(sp!(x.sub(x1))))));
                let gap = sp!(vx.sub(cur.0));
                if gap.is_negative() || gap.is_zero() {
                    continue;
                }
                let cross = sp!(x.add(sp!(gap.div(sp!(sp!(cur.1.sub(l.1)).abs())))));
                if cross > x && cross < x2 {
                    next_x = Some(match next_x {
                        None => cross,
                        Some(b) => b.min(cross),
                    });
                }
            }
            match next_x {
                None => break,
                Some(nx) => x = nx,
            }
        }
    }
    let mut at_h: Option<(Q64, Q64)> = None;
    for p in cand64.iter() {
        if p.start <= h64 && p.end > h64 {
            let lx = (sp!(p.eval(h64)), p.r);
            at_h = Some(match at_h {
                None => lx,
                Some(c) => better(c, lx, false),
            });
        }
    }
    if let Some((v, r)) = at_h {
        push64!(h64, v, r);
    }

    let pieces = out64
        .iter()
        .map(|&(s, v, r)| Piece::new(s.to_q(), v.to_q(), r.to_q()))
        .collect();
    Ok(ScalarRun::Done(pieces))
}

/// The general candidate-envelope convolution over pre-computed parts:
/// scalar fast path first, exact `Q` kernel on spill (with the already
/// issued ticks swallowed so the meter sequence is identical to a pure-`Q`
/// run). Returns the final (already colinear-merged) piece list.
fn conv_general_pieces(
    f: &Curve,
    g: &Curve,
    h: Q,
    meter: &BudgetMeter,
    scratch: &mut ConvScratch,
) -> Result<Vec<Piece>, CurveError> {
    parts_of_into(f, h, meter, &mut scratch.pa)?;
    parts_of_into(g, h, meter, &mut scratch.pb)?;
    let skipped = match conv_general_scalar(h, meter, scratch)? {
        ScalarRun::Done(pieces) => return Ok(pieces),
        ScalarRun::Spill(k) => k,
    };
    let tk = Ticker::skipping(meter, skipped);
    let ConvScratch {
        pa,
        pb,
        cand,
        events,
        lines,
        ..
    } = scratch;
    cand.clear();
    cand.reserve(pa.len() * pb.len() * 2);
    for a in pa.iter() {
        for b in pb.iter() {
            tk.tick()?;
            let t0 = a.start + b.start;
            if t0 > h {
                continue;
            }
            let t1 = a.end + b.end; // exclusive
            let v0 = a.v + b.v;
            let (rmin, rmax, len_min) = if a.r <= b.r {
                (a.r, b.r, a.end - a.start)
            } else {
                (b.r, a.r, b.end - b.start)
            };
            let mid = t0 + len_min;
            if mid >= t1 {
                cand.push(Part {
                    start: t0,
                    end: t1,
                    v: v0,
                    r: rmin,
                });
            } else {
                cand.push(Part {
                    start: t0,
                    end: mid,
                    v: v0,
                    r: rmin,
                });
                cand.push(Part {
                    start: mid,
                    end: t1,
                    v: v0 + rmin * len_min,
                    r: rmax,
                });
            }
        }
    }
    envelope(cand, h, false, &tk, events, lines)
}

impl Curve {
    /// (min,+) convolution `self ⊗ other`, **exact on `[0, h]`**. Beyond `h`
    /// the returned curve continues affinely from its last piece and must
    /// not be relied upon.
    ///
    /// # Examples
    ///
    /// ```
    /// use srtw_minplus::{Curve, Q, q};
    /// // Composing two rate-latency servers adds latencies and takes the
    /// // slower rate.
    /// let b1 = Curve::rate_latency(Q::int(2), Q::int(1));
    /// let b2 = Curve::rate_latency(Q::int(3), Q::int(2));
    /// let c = b1.conv_upto(&b2, Q::int(50));
    /// for t in 0..=50 {
    ///     let t = Q::int(t);
    ///     let expect = Curve::rate_latency(Q::int(2), Q::int(3)).eval(t);
    ///     assert_eq!(c.eval(t), expect);
    /// }
    /// ```
    #[must_use]
    pub fn conv_upto(&self, other: &Curve, h: Q) -> Curve {
        self.try_conv_upto(other, h, &BudgetMeter::unlimited())
            .expect("unmetered conv_upto failed")
    }

    /// Fallible, budgeted [`Curve::conv_upto`]: ticks the segment budget
    /// per generated candidate fragment and per envelope piece, surfacing
    /// exhaustion (and `i128` overflow) as errors instead of grinding
    /// through a quadratic candidate set on an oversized horizon.
    ///
    /// When both operands share a [`Shape`] class (both concave or both
    /// convex — detected once and cached on the curve), an O(n+m) fast
    /// path replaces the quadratic candidate-envelope construction; the
    /// result is the same function on `[0, h]`, and the segment budget is
    /// ticked proportionally to the (much smaller) work actually done.
    pub fn try_conv_upto(
        &self,
        other: &Curve,
        h: Q,
        meter: &BudgetMeter,
    ) -> Result<Curve, CurveError> {
        self.try_conv_upto_scratch(other, h, meter, &mut ConvScratch::new(), true)
    }

    /// [`Curve::try_conv_upto`] for fused pipelines: reuses the caller's
    /// scratch arena and skips the exit validation/normalization pass (the
    /// kernels construct valid pieces; a [`crate::stream::Pipe`]
    /// canonicalizes once at its exit instead of once per stage).
    pub(crate) fn try_conv_upto_raw(
        &self,
        other: &Curve,
        h: Q,
        meter: &BudgetMeter,
        scratch: &mut ConvScratch,
    ) -> Result<Curve, CurveError> {
        self.try_conv_upto_scratch(other, h, meter, scratch, false)
    }

    fn try_conv_upto_scratch(
        &self,
        other: &Curve,
        h: Q,
        meter: &BudgetMeter,
        scratch: &mut ConvScratch,
        validate: bool,
    ) -> Result<Curve, CurveError> {
        assert!(!h.is_negative(), "conv_upto with negative horizon");
        match (self.shape(), other.shape()) {
            (Shape::Concave | Shape::Both, Shape::Concave | Shape::Both) => {
                self.conv_concave(other, meter)
            }
            (Shape::Convex | Shape::Both, Shape::Convex | Shape::Both)
                if matches!(self.tail(), Tail::Affine)
                    && matches!(other.tail(), Tail::Affine) =>
            {
                let pieces = self.conv_convex_pieces(other, h, meter, scratch)?;
                Ok(if validate {
                    Curve::new(pieces, Tail::Affine)
                        .expect("convex conv produced an invalid curve")
                } else {
                    Curve::raw(pieces, Tail::Affine).into_normalized()
                })
            }
            _ => {
                let pieces = conv_general_pieces(self, other, h, meter, scratch)?;
                Ok(if validate {
                    Curve::new(pieces, Tail::Affine)
                        .expect("conv_upto produced an invalid curve")
                } else {
                    Curve::raw(pieces, Tail::Affine).into_normalized()
                })
            }
        }
    }

    /// Concave ⊗ concave in O(n+m): write `f = f(0) + F`, `g = g(0) + G`
    /// with `F, G` concave, non-decreasing and zero at 0. The chord
    /// inequality `F(s) ≥ (s/t)·F(t)` makes `F(s) + G(t−s)` a convex
    /// combination lower-bounded by `min(F(t), G(t))`, and the split points
    /// `s ∈ {0, t}` attain it, so `F ⊗ G = min(F, G)` and
    /// `f ⊗ g = min(g(0) + f, f(0) + g)` — exact **everywhere**, not just
    /// on `[0, h]` (concave curves here have affine tails by definition).
    fn conv_concave(&self, other: &Curve, meter: &BudgetMeter) -> Result<Curve, CurveError> {
        let f0 = self.eval(Q::ZERO);
        let g0 = other.eval(Q::ZERO);
        let shifted = |c: &Curve, dv: Q| {
            let pieces = c
                .pieces()
                .iter()
                .map(|p| Piece::new(p.start, p.value + dv, p.slope))
                .collect();
            Curve::raw(pieces, c.tail())
        };
        let out = shifted(self, g0).pointwise_min(&shifted(other, f0));
        for _ in out.pieces() {
            if !meter.tick_segment() {
                return Err(budget_err(meter));
            }
        }
        Ok(out)
    }

    /// Convex ⊗ convex in O((n+m) log(n+m)): the inf-convolution of convex
    /// piecewise-affine functions starts at `f(0) + g(0)` and concatenates
    /// both operands' segments in ascending slope order (spending time on
    /// the cheapest available slope first is optimal exactly when slopes
    /// only ever get worse). Both operands are continuous (convexity
    /// forbids upward jumps, validation forbids downward ones) with affine
    /// tails, so segment lists cover `[0, h]` and the merge is exact there.
    fn conv_convex_pieces(
        &self,
        other: &Curve,
        h: Q,
        meter: &BudgetMeter,
        scratch: &mut ConvScratch,
    ) -> Result<Vec<Piece>, CurveError> {
        parts_of_into(self, h, meter, &mut scratch.pa)?;
        parts_of_into(other, h, meter, &mut scratch.pb)?;
        let (pa, pb) = (&scratch.pa, &scratch.pb);
        // (slope, length) segments; parts_of_into caps the last extent at
        // h+1, so the combined lengths cover [0, h] with room to spare.
        // The segment list reuses the scratch line buffer.
        let segs = &mut scratch.lines;
        segs.clear();
        segs.reserve(pa.len() + pb.len());
        segs.extend(pa.iter().map(|p| (p.r, p.end - p.start)));
        segs.extend(pb.iter().map(|p| (p.r, p.end - p.start)));
        segs.sort_by_key(|s| s.0);
        let mut pieces: Vec<Piece> = Vec::with_capacity(segs.len());
        let mut t = Q::ZERO;
        let mut v = self.eval(Q::ZERO) + other.eval(Q::ZERO);
        for &(r, len) in segs.iter() {
            if t > h {
                break;
            }
            if !meter.tick_segment() {
                return Err(budget_err(meter));
            }
            pieces.push(Piece::new(t, v, r));
            t += len;
            v += r * len;
        }
        Ok(pieces)
    }

    /// The shape-oblivious quadratic candidate-envelope convolution.
    /// Exposed (hidden from docs) so benchmarks can compare the fast
    /// paths against it on the same operands.
    #[doc(hidden)]
    #[must_use]
    pub fn conv_upto_general(&self, other: &Curve, h: Q) -> Curve {
        self.try_conv_upto_general(other, h, &BudgetMeter::unlimited())
            .expect("unmetered conv_upto failed")
    }

    fn try_conv_upto_general(
        &self,
        other: &Curve,
        h: Q,
        meter: &BudgetMeter,
    ) -> Result<Curve, CurveError> {
        let pieces = conv_general_pieces(self, other, h, meter, &mut ConvScratch::new())?;
        Ok(Curve::new(pieces, Tail::Affine).expect("conv_upto produced an invalid curve"))
    }

    /// (min,+) convolution, exact everywhere, for two **ultimately affine**
    /// curves. Returns [`CurveError::Unsupported`] if either operand has a
    /// periodic tail with positive oscillation (use [`Curve::conv_upto`]
    /// with an explicit horizon instead).
    pub fn conv(&self, other: &Curve) -> Result<Curve, CurveError> {
        if matches!(self.tail(), Tail::Periodic { .. })
            || matches!(other.tail(), Tail::Periodic { .. })
        {
            return Err(CurveError::Unsupported {
                reason: "exact tail-to-infinity convolution requires ultimately affine operands",
            });
        }
        // Beyond the sum of transient lengths every unbounded candidate is
        // affine with slope ≥ min(ra, rb); the envelope settles once the
        // minimum-rate line undercuts every other candidate. A safe horizon:
        // twice the transient sum plus the largest crossing offset, found by
        // growing the horizon until the final slope matches.
        let ra = self.rate();
        let rb = other.rate();
        let target = ra.min(rb);
        let mut h = (self.tail_start() + other.tail_start() + Q::ONE) * Q::TWO;
        for _ in 0..64 {
            let c = self.conv_upto(other, h);
            let last = *c.pieces().last().expect("non-empty");
            if last.slope == target && last.start < h {
                // The last explicit piece already runs at the long-run rate;
                // verify it persists by checking a doubled horizon agrees.
                let c2 = self.conv_upto(other, h * Q::TWO);
                if c2.eval(h * Q::TWO) == c.eval_extended(h * Q::TWO) {
                    return Ok(c);
                }
            }
            h *= Q::TWO;
        }
        Err(CurveError::Unsupported {
            reason: "convolution did not settle (is a rate negative or inconsistent?)",
        })
    }

    /// Evaluates the affine extension of the last explicit piece at `t`
    /// (used internally to confirm tail settlement).
    fn eval_extended(&self, t: Q) -> Q {
        self.pieces().last().expect("non-empty").eval(t)
    }

    /// (min,+) deconvolution `self ⊘ other`, exact on `[0, h]`, with the
    /// inner supremum `sup_u f(t+u) − g(u)` searched over `u ∈ [0, u_cap]`.
    ///
    /// The caller must supply a `u_cap` beyond which the supremum cannot
    /// improve (for a stable system: any bound on the maximum busy-window
    /// length). [`Curve::deconv`] derives such a cap automatically.
    ///
    /// The computation decomposes the bivariate objective by operand piece
    /// pairs: within each feasibility region the objective is affine in
    /// `u`, so its supremum is a value (or one-sided limit) at one of four
    /// canonical points; each contributes an affine candidate in `t`, and
    /// the result is their exact upper envelope.
    #[must_use]
    pub fn deconv_upto(&self, other: &Curve, h: Q, u_cap: Q) -> Curve {
        self.try_deconv_upto(other, h, u_cap, &BudgetMeter::unlimited())
            .expect("unmetered deconv_upto failed")
    }

    /// Fallible, budgeted [`Curve::deconv_upto`]: ticks the segment budget
    /// per region pair, surfacing exhaustion (and `i128` overflow) as
    /// errors.
    pub fn try_deconv_upto(
        &self,
        other: &Curve,
        h: Q,
        u_cap: Q,
        meter: &BudgetMeter,
    ) -> Result<Curve, CurveError> {
        self.try_deconv_upto_with(other, h, u_cap, meter, &mut ConvScratch::new(), true)
    }

    /// [`Curve::try_deconv_upto`] over a caller-owned scratch arena. With
    /// `validate` off the result skips the `Curve::new` validation scan
    /// (trusted pipeline interior) but is still normalized, so it is
    /// byte-identical to the validated result.
    pub(crate) fn try_deconv_upto_with(
        &self,
        other: &Curve,
        h: Q,
        u_cap: Q,
        meter: &BudgetMeter,
        scratch: &mut ConvScratch,
        validate: bool,
    ) -> Result<Curve, CurveError> {
        assert!(!h.is_negative() && !u_cap.is_negative());
        parts_of_into(self, ck_add(h, u_cap)?, meter, &mut scratch.pa)?;
        parts_of_into(other, u_cap, meter, &mut scratch.pb)?;
        let ConvScratch {
            pa,
            pb,
            cand,
            events,
            lines,
            ..
        } = scratch;

        // Up to four candidates per region pair (see below); reserving once
        // keeps the inner loop allocation-free.
        cand.clear();
        cand.reserve(pa.len() * pb.len() * 4);
        let mut add = |start: Q, end: Q, v_at_start: Q, r: Q| {
            let s = start.max(Q::ZERO);
            let e = end.min(h + Q::ONE);
            if s < e {
                cand.push(Part {
                    start: s,
                    end: e,
                    v: v_at_start + r * (s - start),
                    r,
                });
            }
        };

        for a in pa.iter() {
            let (xk, xk1) = (a.start, a.end);
            for b in pb.iter() {
                if !meter.tick_segment() {
                    return Err(budget_err(meter));
                }
                let ulo = b.start;
                if ulo > u_cap {
                    continue;
                }
                let uhi = b.end.min(u_cap);
                if uhi < ulo {
                    continue;
                }
                let a_at_xk = a.eval(xk);
                let a_at_xk1 = a.eval(xk1);
                let b_at_ulo = b.eval(ulo);
                let b_at_uhi = b.eval(uhi);
                // Within the region u ∈ [ulo, uhi], t+u ∈ [xk, xk1] the
                // objective is affine in u; its supremum for fixed t sits
                // at one of four canonical points, each contributing an
                // affine candidate in t:
                // 1. u pinned at the region's lower end.
                add(xk - ulo, xk1 - ulo, a_at_xk - b_at_ulo, a.r);
                // 2. u approaching the region's upper end (limit value).
                add(xk - uhi, xk1 - uhi, a_at_xk - b_at_uhi, a.r);
                // 3. t+u pinned at the a-piece's left boundary: u = xk − t.
                add(xk - uhi, xk - ulo, a_at_xk - b_at_uhi, b.r);
                // 4. t+u approaching the a-piece's right boundary:
                //    u = (xk1 − t)⁻ (limit value).
                add(xk1 - uhi, xk1 - ulo, a_at_xk1 - b_at_uhi, b.r);
            }
        }
        if cand.is_empty() {
            return Ok(Curve::constant(self.eval(Q::ZERO) - other.eval(Q::ZERO)));
        }
        let pieces = envelope(cand, h, true, &Ticker::new(meter), events, lines)?;
        Ok(if validate {
            Curve::new(pieces, Tail::Affine).expect("deconv_upto produced an invalid curve")
        } else {
            Curve::raw(pieces, Tail::Affine).into_normalized()
        })
    }

    /// (min,+) deconvolution with an automatically derived inner-supremum
    /// horizon, exact on `[0, h]`.
    ///
    /// Returns [`CurveError::Unsupported`] when `self.rate() > other.rate()`
    /// (the supremum diverges: the system is unstable).
    pub fn deconv(&self, other: &Curve, h: Q) -> Result<Curve, CurveError> {
        self.try_deconv(other, h, &BudgetMeter::unlimited())
    }

    /// Fallible, budgeted [`Curve::deconv`]: additionally surfaces `i128`
    /// overflow in the derived inner-supremum horizon (an lcm of the
    /// operands' periods) and budget exhaustion as errors.
    pub fn try_deconv(
        &self,
        other: &Curve,
        h: Q,
        meter: &BudgetMeter,
    ) -> Result<Curve, CurveError> {
        let ta = TailInfo::of(self);
        let tb = TailInfo::of(other);
        if ta.rate > tb.rate {
            return Err(CurveError::Unsupported {
                reason: "deconvolution diverges: left operand grows faster than right",
            });
        }
        let u_cap = if ta.rate == tb.rate {
            // The objective is eventually periodic in u; one aligned common
            // period beyond both tails suffices.
            ck_add(try_common_check_horizon(self, other)?, h)?
        } else {
            // Negative drift in u: beyond the settle point the objective is
            // below its value at small u. Bound via the tail lines.
            let (aup, ar) = ta.upper_line();
            let (blo, br) = tb.lower_line();
            // f(t+u) − g(u) ≤ aup + ar·(t+u) − blo − br·u; compare with the
            // value at u = 0 lower bound: f(t) − g(0) ≥ (alo + ar·t) − g(0).
            let (alo, _) = ta.lower_line();
            let g0 = other.eval(Q::ZERO);
            // Solve aup + ar(t+u) − blo − br·u ≤ alo + ar·t − g0 for u:
            // u ≥ (aup − blo − alo + g0) / (br − ar)
            let bound = (aup - blo - alo + g0) / (br - ar);
            bound.max(ta.s).max(tb.s) + Q::ONE
        };
        self.try_deconv_upto(other, h, u_cap, meter)
    }
}

impl Curve {
    /// Finitary sub-additive closure `f* = min_{n ≥ 1} f^{⊗n}`, exact on
    /// `[0, h]`.
    ///
    /// The closure is the tightest sub-additive curve below `f` (with the
    /// `n ≥ 1` convention, so `f*(0) = f(0)`); it is the canonical way to
    /// tighten an upper arrival curve. Computed by repeated squaring
    /// (`c ← min(c, c ⊗ c)`), which converges on the finite horizon in
    /// logarithmically many steps.
    ///
    /// # Panics
    ///
    /// Panics if the iteration fails to converge within 64 doublings
    /// (cannot happen for monotone curves with `f(0) ≥ 0`).
    ///
    /// # Examples
    ///
    /// ```
    /// use srtw_minplus::{Curve, Q, q};
    /// // A leaky-bucket pair: min(γ_{b1,r1}, γ_{b2,r2}) is generally not
    /// // sub-additive; its closure is the tight concave envelope.
    /// let f = Curve::affine(Q::int(4), q(1, 4)).pointwise_min(&Curve::affine(Q::ONE, Q::ONE));
    /// let g = f.subadditive_closure_upto(Q::int(40));
    /// for i in 0..=40 {
    ///     let t = Q::int(i);
    ///     assert!(g.eval(t) <= f.eval(t));
    /// }
    /// // Sub-additivity on the horizon:
    /// for a in 0..=20 {
    ///     for b in 0..=20 {
    ///         let (a, b) = (Q::int(a), Q::int(b));
    ///         assert!(g.eval(a + b) <= g.eval(a) + g.eval(b));
    ///     }
    /// }
    /// ```
    #[must_use]
    pub fn subadditive_closure_upto(&self, h: Q) -> Curve {
        // Equality on [0, h] only: beyond the horizon conv_upto's affine
        // extension carries no meaning and must not gate convergence.
        let equal_upto = |a: &Curve, b: &Curve| -> bool {
            let mut ts: Vec<Q> = a
                .pieces_upto(h)
                .iter()
                .chain(b.pieces_upto(h).iter())
                .map(|p| p.start)
                .filter(|&t| t <= h)
                .collect();
            ts.push(h);
            ts.sort();
            ts.dedup();
            ts.iter()
                .all(|&t| a.eval(t) == b.eval(t) && a.eval_left(t) == b.eval_left(t))
        };
        let mut c = self.clone();
        for _ in 0..64 {
            let next = c.pointwise_min(&c.conv_upto(&c, h));
            if equal_upto(&next, &c) {
                return c;
            }
            c = next;
        }
        panic!("subadditive closure did not converge within 64 doublings");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratio::q;

    /// Exact brute-force convolution: the infimum over a closed interval of
    /// a piecewise-affine objective is attained at a breakpoint of either
    /// operand or approached at its left limit, so evaluating value and
    /// left-limit combinations at all such candidates is exact.
    fn brute_conv(f: &Curve, g: &Curve, t: Q, _den: i128) -> Q {
        let mut cands: Vec<Q> = vec![Q::ZERO, t];
        for p in f.pieces_upto(t) {
            if p.start <= t {
                cands.push(p.start);
            }
        }
        for p in g.pieces_upto(t) {
            if p.start <= t {
                cands.push(p.start + Q::ZERO); // g breakpoint at u = start
            }
        }
        let mut best: Option<Q> = None;
        let probe = |v: Q, best: &mut Option<Q>| {
            *best = Some(match *best {
                None => v,
                Some(b) => b.min(v),
            });
        };
        for &c in &cands {
            // Candidate split points s = c (an f breakpoint) and s = t − c
            // (aligning a g breakpoint), with one-sided limits.
            for s in [c, t - c] {
                if s.is_negative() || s > t {
                    continue;
                }
                let u = t - s;
                probe(f.eval(s) + g.eval(u), &mut best);
                probe(f.eval_left(s) + g.eval(u), &mut best);
                probe(f.eval(s) + g.eval_left(u), &mut best);
            }
        }
        best.expect("non-empty candidates")
    }

    /// Brute-force deconvolution on a fine rational grid.
    fn brute_deconv(f: &Curve, g: &Curve, t: Q, u_cap: Q, den: i128) -> Q {
        let steps = (u_cap * Q::int(den)).floor();
        let mut best = f.eval(t) - g.eval(Q::ZERO);
        for i in 0..=steps {
            let u = q(i, den).min(u_cap);
            best = best.max(f.eval(t + u) - g.eval(u));
        }
        best
    }

    #[test]
    fn conv_rate_latency_pair_is_rate_latency() {
        let b1 = Curve::rate_latency(Q::int(2), Q::int(1));
        let b2 = Curve::rate_latency(Q::int(3), Q::int(2));
        let c = b1.conv(&b2).unwrap();
        let expect = Curve::rate_latency(Q::int(2), Q::int(3));
        for i in 0..200 {
            let t = q(i, 2);
            assert_eq!(c.eval(t), expect.eval(t), "at t = {t}");
        }
        assert_eq!(c.rate(), Q::int(2));
    }

    #[test]
    fn conv_with_zero_latency_identity_like() {
        // β ⊗ (affine through origin with huge rate) ≈ β on the prefix.
        let b = Curve::rate_latency(Q::int(2), Q::int(3));
        let id = Curve::affine(Q::ZERO, Q::int(1000));
        let c = b.conv_upto(&id, Q::int(40));
        for i in 0..80 {
            let t = q(i, 2);
            assert_eq!(c.eval(t), brute_conv(&b, &id, t, 8), "at t = {t}");
        }
    }

    #[test]
    fn conv_upto_matches_brute_force_nonconvex() {
        // Staircase (non-convex) against rate-latency.
        let a = Curve::staircase(Q::int(4), Q::int(3));
        let b = Curve::rate_latency(Q::ONE, Q::int(2));
        let c = a.conv_upto(&b, Q::int(24));
        for i in 0..=96 {
            let t = q(i, 4);
            assert_eq!(c.eval(t), brute_conv(&a, &b, t, 8), "at t = {t}");
        }
    }

    #[test]
    fn conv_upto_two_staircases() {
        let a = Curve::staircase(Q::int(3), Q::int(2));
        let b = Curve::staircase(Q::int(5), Q::ONE);
        let c = a.conv_upto(&b, Q::int(30));
        for i in 0..=120 {
            let t = q(i, 4);
            assert_eq!(c.eval(t), brute_conv(&a, &b, t, 4), "at t = {t}");
        }
    }

    #[test]
    fn conv_is_commutative_on_prefix() {
        let a = Curve::staircase(Q::int(4), Q::int(3)).shift_up(Q::ONE);
        let b = Curve::rate_latency(q(3, 2), Q::int(5));
        let ab = a.conv_upto(&b, Q::int(40));
        let ba = b.conv_upto(&a, Q::int(40));
        for i in 0..=160 {
            let t = q(i, 4);
            assert_eq!(ab.eval(t), ba.eval(t), "at t = {t}");
        }
    }

    #[test]
    fn concave_fast_path_matches_general_and_brute() {
        // Leaky-bucket pair (concave): min(γ_{4,1/4}, γ_{1,1}).
        let f = Curve::affine(Q::int(4), q(1, 4)).pointwise_min(&Curve::affine(Q::ONE, Q::ONE));
        let g = Curve::affine(Q::int(2), q(1, 2));
        assert!(f.is_concave() && g.is_concave());
        let h = Q::int(40);
        let fast = f.conv_upto(&g, h);
        let gen = f.conv_upto_general(&g, h);
        for i in 0..=160 {
            let t = q(i, 4);
            assert_eq!(fast.eval(t), gen.eval(t), "general mismatch at t = {t}");
            assert_eq!(fast.eval(t), brute_conv(&f, &g, t, 4), "brute mismatch at t = {t}");
            assert_eq!(fast.eval_left(t), gen.eval_left(t), "left mismatch at t = {t}");
        }
        // Self-convolution of a many-piece concave polyline.
        let many = Curve::min_of(&[
            Curve::affine(Q::int(10), q(1, 8)),
            Curve::affine(Q::int(6), q(1, 3)),
            Curve::affine(Q::int(3), Q::ONE),
            Curve::affine(Q::ONE, Q::int(3)),
        ]);
        assert!(many.is_concave());
        let fast = many.conv_upto(&many, h);
        let gen = many.conv_upto_general(&many, h);
        for i in 0..=160 {
            let t = q(i, 4);
            assert_eq!(fast.eval(t), gen.eval(t), "at t = {t}");
        }
    }

    #[test]
    fn convex_fast_path_matches_general_and_brute() {
        let f = Curve::rate_latency(Q::int(2), Q::int(3));
        let g = Curve::rate_latency(Q::int(5), Q::ONE);
        assert!(f.is_convex() && g.is_convex());
        let h = Q::int(50);
        let fast = f.conv_upto(&g, h);
        let gen = f.conv_upto_general(&g, h);
        for i in 0..=200 {
            let t = q(i, 4);
            assert_eq!(fast.eval(t), gen.eval(t), "general mismatch at t = {t}");
            assert_eq!(fast.eval(t), brute_conv(&f, &g, t, 4), "brute mismatch at t = {t}");
        }
        // Multi-piece convex polylines (max of affine curves).
        let cf = Curve::rate_latency(Q::ONE, Q::int(2))
            .pointwise_max(&Curve::affine(Q::int(-10), Q::int(3)));
        let cg = Curve::rate_latency(q(1, 2), Q::ONE)
            .pointwise_max(&Curve::affine(Q::int(-6), Q::int(2)));
        assert!(cf.is_convex() && cg.is_convex());
        let fast = cf.conv_upto(&cg, h);
        let gen = cf.conv_upto_general(&cg, h);
        for i in 0..=200 {
            let t = q(i, 4);
            assert_eq!(fast.eval(t), gen.eval(t), "at t = {t}");
        }
    }

    #[test]
    fn mixed_shapes_take_the_general_path_and_agree() {
        // Concave ⊗ convex has no fast path; dispatch must agree with the
        // general entry point by construction.
        let f = Curve::affine(Q::int(4), q(1, 4)).pointwise_min(&Curve::affine(Q::ONE, Q::ONE));
        let g = Curve::rate_latency(Q::int(2), Q::int(3));
        let h = Q::int(30);
        let a = f.conv_upto(&g, h);
        let b = f.conv_upto_general(&g, h);
        for i in 0..=120 {
            let t = q(i, 4);
            assert_eq!(a.eval(t), b.eval(t), "at t = {t}");
            assert_eq!(a.eval(t), brute_conv(&f, &g, t, 4), "brute at t = {t}");
        }
    }

    #[test]
    fn fast_paths_respect_segment_budget() {
        use crate::meter::Budget;
        let f = Curve::affine(Q::int(4), q(1, 4)).pointwise_min(&Curve::affine(Q::ONE, Q::ONE));
        let meter = BudgetMeter::new(&Budget::default().with_max_segments(1));
        let got = f.try_conv_upto(&f, Q::int(1000), &meter);
        assert!(matches!(got, Err(CurveError::Budget(_))));
        let g = Curve::rate_latency(Q::int(2), Q::int(3));
        let meter = BudgetMeter::new(&Budget::default().with_max_segments(1));
        let got = g.try_conv_upto(&g, Q::int(1000), &meter);
        assert!(matches!(got, Err(CurveError::Budget(_))));
    }

    #[test]
    fn conv_rejects_periodic_tails() {
        let a = Curve::staircase(Q::int(4), Q::int(3));
        let b = Curve::rate_latency(Q::ONE, Q::int(2));
        assert!(matches!(a.conv(&b), Err(CurveError::Unsupported { .. })));
    }

    #[test]
    fn deconv_upto_matches_brute_force() {
        // Output arrival curve: α ⊘ β.
        let alpha = Curve::staircase(Q::int(5), Q::int(2));
        let beta = Curve::rate_latency(Q::ONE, Q::int(3)); // rate 1 > 2/5
        let d = alpha.deconv(&beta, Q::int(20)).unwrap();
        for i in 0..=80 {
            let t = q(i, 4);
            let brute = brute_deconv(&alpha, &beta, t, Q::int(60), 4);
            assert_eq!(d.eval(t), brute, "at t = {t}");
        }
    }

    #[test]
    fn deconv_equal_rates() {
        let alpha = Curve::staircase(Q::int(4), Q::int(2));
        let beta = Curve::affine(Q::ZERO, q(1, 2));
        let d = alpha.deconv(&beta, Q::int(16)).unwrap();
        for i in 0..=64 {
            let t = q(i, 4);
            let brute = brute_deconv(&alpha, &beta, t, Q::int(80), 4);
            assert_eq!(d.eval(t), brute, "at t = {t}");
        }
    }

    #[test]
    fn deconv_diverging_rejected() {
        let alpha = Curve::affine(Q::ZERO, Q::int(2));
        let beta = Curve::affine(Q::ZERO, Q::ONE);
        assert!(matches!(
            alpha.deconv(&beta, Q::int(10)),
            Err(CurveError::Unsupported { .. })
        ));
    }

    #[test]
    fn conv_monotone_in_operands() {
        // f ≤ f' ⇒ f ⊗ g ≤ f' ⊗ g (checked pointwise on a prefix).
        let f = Curve::rate_latency(Q::ONE, Q::int(4));
        let f2 = Curve::rate_latency(Q::ONE, Q::int(2)); // f ≤ f2
        let g = Curve::staircase(Q::int(3), Q::int(2));
        let c1 = f.conv_upto(&g, Q::int(30));
        let c2 = f2.conv_upto(&g, Q::int(30));
        for i in 0..=120 {
            let t = q(i, 4);
            assert!(c1.eval(t) <= c2.eval(t), "at t = {t}");
        }
    }

    #[test]
    fn closure_is_subadditive_and_idempotent() {
        let f = Curve::affine(Q::int(5), q(1, 5))
            .pointwise_min(&Curve::affine(Q::ONE, Q::int(2)));
        let h = Q::int(30);
        let g = f.subadditive_closure_upto(h);
        for a in 0..=60 {
            for b in 0..=60 {
                let (a, b) = (q(a, 2), q(b, 2));
                if a + b > h {
                    continue;
                }
                assert!(
                    g.eval(a + b) <= g.eval(a) + g.eval(b),
                    "not subadditive at {a} + {b}"
                );
                assert!(g.eval(a) <= f.eval(a));
            }
        }
        let gg = g.subadditive_closure_upto(h);
        for i in 0..=60 {
            let t = q(i, 2);
            assert_eq!(g.eval(t), gg.eval(t), "not idempotent at {t}");
        }
    }

    #[test]
    fn closure_of_subadditive_curve_is_identity() {
        // Staircases are sub-additive: the closure changes nothing.
        let f = Curve::staircase(Q::int(5), Q::int(2));
        let g = f.subadditive_closure_upto(Q::int(40));
        for i in 0..=80 {
            let t = q(i, 2);
            if t > Q::int(40) {
                break;
            }
            assert_eq!(g.eval(t), f.eval(t), "at {t}");
        }
    }
}
