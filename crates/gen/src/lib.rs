//! # srtw-gen — seeded random workload and server generation
//!
//! The experiment harness needs reproducible synthetic workloads in the
//! style used throughout the digraph-real-time-task literature: a random
//! strongly-connected base ring with extra chord edges, integer
//! separations and WCETs drawn from ranges, and an exact rescaling pass
//! that hits a target long-run utilization. All generation is seeded and
//! deterministic.
//!
//! # Example
//!
//! ```
//! use srtw_gen::{generate_drt, DrtGenConfig};
//! use srtw_minplus::{q, Q};
//! use srtw_workload::long_run_utilization;
//!
//! let cfg = DrtGenConfig {
//!     vertices: 6,
//!     extra_edges: 4,
//!     target_utilization: Some(q(3, 5)),
//!     ..DrtGenConfig::default()
//! };
//! let task = generate_drt(&cfg, 42);
//! assert_eq!(task.num_vertices(), 6);
//! assert_eq!(long_run_utilization(&task), q(3, 5));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

use srtw_detrand::Rng;
use srtw_minplus::Q;
use srtw_workload::{critical_cycle, DrtTask, DrtTaskBuilder, VertexId};

/// Configuration of the random digraph-task generator.
#[derive(Debug, Clone)]
pub struct DrtGenConfig {
    /// Number of vertices (≥ 1).
    pub vertices: usize,
    /// Number of extra chord edges beyond the Hamiltonian base ring.
    pub extra_edges: usize,
    /// Inclusive range of integer edge separations.
    pub separation_range: (i128, i128),
    /// Inclusive range of integer vertex WCETs (before rescaling).
    pub wcet_range: (i128, i128),
    /// If set, rescale all WCETs exactly so the maximum cycle ratio equals
    /// this utilization.
    pub target_utilization: Option<Q>,
    /// If set, assign each vertex the deadline
    /// `factor · min(incoming separations)`.
    pub deadline_factor: Option<Q>,
}

impl Default for DrtGenConfig {
    fn default() -> DrtGenConfig {
        DrtGenConfig {
            vertices: 8,
            extra_edges: 8,
            separation_range: (5, 50),
            wcet_range: (1, 10),
            target_utilization: None,
            deadline_factor: None,
        }
    }
}

/// Generates a random strongly-connected digraph task (base ring plus
/// random chords), deterministically from `seed`.
///
/// # Panics
///
/// Panics on degenerate configurations (zero vertices, empty ranges,
/// non-positive target utilization).
pub fn generate_drt(cfg: &DrtGenConfig, seed: u64) -> DrtTask {
    assert!(cfg.vertices >= 1, "need at least one vertex");
    let (smin, smax) = cfg.separation_range;
    let (wmin, wmax) = cfg.wcet_range;
    assert!(0 < smin && smin <= smax, "bad separation range");
    assert!(0 < wmin && wmin <= wmax, "bad wcet range");

    let mut rng = Rng::seed_from_u64(seed);
    let mut b = DrtTaskBuilder::new(format!("rand-{seed}"));
    let n = cfg.vertices;

    // Draw raw integer WCETs; rescale exactly later.
    let wcets: Vec<i128> = (0..n).map(|_| rng.random_range(wmin..=wmax)).collect();
    let ids: Vec<VertexId> = wcets
        .iter()
        .enumerate()
        .map(|(i, &w)| b.vertex(format!("v{i}"), Q::int(w)))
        .collect();

    // Base ring guarantees strong connectivity (and hence cycles);
    // a single vertex gets a self-loop.
    let mut present = std::collections::HashSet::new();
    for i in 0..n {
        let j = (i + 1) % n;
        let sep = rng.random_range(smin..=smax);
        b.edge(ids[i], ids[j], Q::int(sep));
        present.insert((i, j));
    }

    // Random chords.
    let mut added = 0;
    let mut attempts = 0;
    while added < cfg.extra_edges && attempts < cfg.extra_edges * 20 + 50 {
        attempts += 1;
        let i = rng.random_range(0..n);
        let j = rng.random_range(0..n);
        if present.contains(&(i, j)) {
            continue;
        }
        let sep = rng.random_range(smin..=smax);
        b.edge(ids[i], ids[j], Q::int(sep));
        present.insert((i, j));
        added += 1;
    }

    let task = b.build().expect("generated graph must be valid");

    // Exact utilization rescaling: cycle ratios scale linearly with WCETs.
    match cfg.target_utilization {
        Some(u) => {
            assert!(u.is_positive(), "target utilization must be positive");
            let u0 = critical_cycle(&task)
                .expect("ring graph always has a cycle")
                .ratio;
            rebuild_scaled(&task, u / u0, cfg.deadline_factor)
        }
        None => match cfg.deadline_factor {
            Some(_) => rebuild_scaled(&task, Q::ONE, cfg.deadline_factor),
            None => task,
        },
    }
}

/// Rebuilds a task with WCETs scaled by `factor` and optional deadlines
/// `deadline_factor · min(incoming separations)`.
fn rebuild_scaled(task: &DrtTask, factor: Q, deadline_factor: Option<Q>) -> DrtTask {
    let mut b = DrtTaskBuilder::new(task.name().to_owned());
    let n = task.num_vertices();
    // Min incoming separation per vertex.
    let mut min_in: Vec<Option<Q>> = vec![None; n];
    for v in task.vertex_ids() {
        for e in task.out_edges(v) {
            let slot = &mut min_in[e.to.index()];
            *slot = Some(match *slot {
                None => e.separation,
                Some(m) => m.min(e.separation),
            });
        }
    }
    let ids: Vec<VertexId> = task
        .vertex_ids()
        .map(|v| {
            let w = task.wcet(v) * factor;
            let id = b.vertex(task.vertex(v).label.clone(), w);
            if let Some(df) = deadline_factor {
                if let Some(m) = min_in[v.index()] {
                    b.set_deadline(id, df * m);
                }
            }
            id
        })
        .collect();
    for v in task.vertex_ids() {
        for e in task.out_edges(v) {
            b.edge(ids[v.index()], ids[e.to.index()], e.separation);
        }
    }
    b.build().expect("rescaled graph must be valid")
}

/// Generates a set of `count` tasks whose utilizations sum to
/// `total_utilization` (uniform split), for FIFO multiplex experiments.
pub fn generate_task_set(
    cfg: &DrtGenConfig,
    count: usize,
    total_utilization: Q,
    seed: u64,
) -> Vec<DrtTask> {
    assert!(count >= 1);
    let share = total_utilization / Q::int(count as i128);
    (0..count)
        .map(|i| {
            let mut c = cfg.clone();
            c.target_utilization = Some(share);
            generate_drt(&c, seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtw_minplus::q;
    use srtw_workload::long_run_utilization;

    #[test]
    fn generation_is_deterministic() {
        let cfg = DrtGenConfig::default();
        let a = generate_drt(&cfg, 1);
        let b = generate_drt(&cfg, 1);
        assert_eq!(a, b);
        let c = generate_drt(&cfg, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn hits_target_utilization_exactly() {
        for seed in 0..20 {
            let cfg = DrtGenConfig {
                vertices: 6,
                extra_edges: 5,
                target_utilization: Some(q(7, 10)),
                ..DrtGenConfig::default()
            };
            let t = generate_drt(&cfg, seed);
            assert_eq!(long_run_utilization(&t), q(7, 10), "seed {seed}");
        }
    }

    #[test]
    fn ring_always_cyclic_and_connected() {
        for n in 1..10 {
            let cfg = DrtGenConfig {
                vertices: n,
                extra_edges: 0,
                ..DrtGenConfig::default()
            };
            let t = generate_drt(&cfg, 99);
            assert_eq!(t.num_vertices(), n);
            assert!(t.has_cycle());
            assert_eq!(t.num_edges(), n);
        }
    }

    #[test]
    fn deadlines_assigned_when_requested() {
        let cfg = DrtGenConfig {
            vertices: 5,
            deadline_factor: Some(q(1, 2)),
            target_utilization: Some(q(1, 2)),
            ..DrtGenConfig::default()
        };
        let t = generate_drt(&cfg, 5);
        for v in t.vertex_ids() {
            let d = t.deadline(v).expect("deadline assigned");
            assert!(d.is_positive());
        }
    }

    #[test]
    fn task_set_split_utilization() {
        let cfg = DrtGenConfig {
            vertices: 4,
            ..DrtGenConfig::default()
        };
        let set = generate_task_set(&cfg, 3, q(3, 4), 7);
        assert_eq!(set.len(), 3);
        let total: Q = set
            .iter()
            .map(long_run_utilization)
            .fold(Q::ZERO, |a, b| a + b);
        assert_eq!(total, q(3, 4));
    }

    #[test]
    fn single_vertex_graph() {
        let cfg = DrtGenConfig {
            vertices: 1,
            extra_edges: 0,
            ..DrtGenConfig::default()
        };
        let t = generate_drt(&cfg, 3);
        assert_eq!(t.num_vertices(), 1);
        assert!(t.has_cycle()); // self-loop ring
    }
}
