//! The supervision tree: shared-nothing replication of `srtw serve`.
//!
//! `srtw serve --replicas N` runs this module as the *parent*: it binds
//! the public listener once, duplicates the descriptor with
//! close-on-exec clear ([`crate::sys::dup_inheritable`]), and spawns `N`
//! replica processes of its own executable, each inheriting the shared
//! socket — the kernel then load-balances `accept(2)` across replicas,
//! with no connection routing in userspace and *nothing shared above the
//! socket*: a replica that aborts mid-request takes only its own queue
//! and in-flight work with it.
//!
//! Each replica announces a private admin address on stdout; the parent
//! health-checks it, scrapes `/stats` from it, and signals it
//! (`SIGTERM`) at drain time. Dead replicas are restarted under the
//! [`RestartTracker`] policy — exponential backoff, restart-intensity
//! cap — and the parent's own `/readyz` answers by *quorum*: a majority
//! of replicas must be healthy, so one crash-looping replica degrades
//! capacity without flapping the whole service out of rotation.

use crate::http::{client_roundtrip_on, read_request, Response};
use crate::server::error_body;
use crate::signal;
use crate::sys;
use srtw_core::Json;
use srtw_core::textfmt::MAX_INPUT_BYTES;
use srtw_supervisor::{RestartDecision, RestartPolicy, RestartTracker};
use std::io::{self, BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

/// How often the parent health-checks its replicas.
const HEALTH_EVERY: Duration = Duration::from_millis(500);
/// Connect/read budget for one health check or stats scrape.
const PROBE_TIMEOUT: Duration = Duration::from_millis(500);
/// How long a freshly spawned replica may take to announce its admin
/// address before the parent declares the spawn failed.
const ANNOUNCE_TIMEOUT: Duration = Duration::from_secs(10);

/// Configuration of the supervision tree.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Public bind address (`host:port`).
    pub addr: String,
    /// Bind address of the parent's admin plane
    /// (`/healthz` `/readyz` `/stats` `POST /shutdown`).
    pub admin_addr: String,
    /// Number of replica processes (clamped to at least 1).
    pub replicas: usize,
    /// Restart policy for dead replicas.
    pub restart: RestartPolicy,
    /// Drain window granted to replicas at shutdown before `SIGKILL`.
    pub drain: Duration,
    /// Pass-through `serve` flags for the replica processes (workers,
    /// queue, timeouts, …) — everything except the replication and fault
    /// flags the supervisor owns.
    pub child_args: Vec<String>,
    /// Raw targeted-fault spec (`abort@N` | `stall@N:MS` | `closefd@N`,
    /// or a journal fault `torn@N` | `jcorrupt@N`) forwarded to the
    /// *first spawn of replica 0 only*: a fault handed to every replica
    /// (or to every respawn) would kill the fleet faster than the tree
    /// can repair it, which is the opposite of what an injected fault is
    /// for — and a restarted replica must come back clean so it can
    /// *resume* the journaled batch the fault interrupted.
    pub process_fault: Option<String>,
}

impl Default for ReplicaConfig {
    fn default() -> ReplicaConfig {
        ReplicaConfig {
            addr: "127.0.0.1:0".into(),
            admin_addr: "127.0.0.1:0".into(),
            replicas: 2,
            restart: RestartPolicy::default(),
            drain: Duration::from_secs(5),
            child_args: Vec::new(),
            process_fault: None,
        }
    }
}

/// One supervised replica process.
struct Slot {
    index: usize,
    child: Option<Child>,
    pid: u32,
    admin: Option<SocketAddr>,
    healthy: bool,
    tracker: RestartTracker,
    /// When a scheduled respawn becomes due.
    respawn_at: Option<Instant>,
    given_up: bool,
    restarts: u64,
}

/// Counters scraped from one replica's `/stats` document.
#[derive(Debug, Default, Clone, Copy)]
struct Scraped {
    accepted: u64,
    shed: u64,
    requests: u64,
    open_conns: u64,
    fds: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
    cache_bytes: u64,
    delta_full_fallbacks: u64,
    persist_loaded: u64,
    persist_stored: u64,
    persist_errors: u64,
}

/// The running supervision tree. Construct with [`Supervisor::bind`],
/// then [`Supervisor::run`] until drain.
pub struct Supervisor {
    cfg: ReplicaConfig,
    listener: TcpListener,
    shared_fd: i32,
    admin: TcpListener,
    admin_addr: SocketAddr,
    slots: Vec<Slot>,
    shutdown_req: bool,
}

impl std::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supervisor")
            .field("replicas", &self.slots.len())
            .field("admin", &self.admin_addr)
            .finish()
    }
}

impl Supervisor {
    /// Binds the shared public listener and the parent admin plane, and
    /// spawns the initial replica set. Prints the same
    /// `srtw-serve listening on ADDR` line as single-process mode, plus
    /// one announce line per replica and one for the supervisor admin
    /// address, so harnesses can discover every port from stdout.
    pub fn bind(cfg: ReplicaConfig) -> io::Result<Supervisor> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let public = listener.local_addr()?;
        let shared_fd = sys::dup_inheritable(raw_fd(&listener)).ok_or_else(|| {
            io::Error::other("cannot duplicate the listener for replica inheritance")
        })?;
        let admin = TcpListener::bind(&cfg.admin_addr)?;
        admin.set_nonblocking(true)?;
        let admin_addr = admin.local_addr()?;
        println!("srtw-serve listening on {public}");
        println!("srtw-serve supervisor admin on {admin_addr}");
        flush_stdout();
        let mut sup = Supervisor {
            slots: Vec::new(),
            cfg,
            listener,
            shared_fd,
            admin,
            admin_addr,
            shutdown_req: false,
        };
        for index in 0..sup.cfg.replicas.max(1) {
            let mut slot = Slot {
                index,
                child: None,
                pid: 0,
                admin: None,
                healthy: false,
                tracker: RestartTracker::new(sup.cfg.restart),
                respawn_at: None,
                given_up: false,
                restarts: 0,
            };
            // The injected process fault goes to replica 0's first spawn
            // only.
            let fault = (index == 0).then(|| sup.cfg.process_fault.clone()).flatten();
            sup.spawn_into(&mut slot, fault)?;
            sup.slots.push(slot);
        }
        Ok(sup)
    }

    /// The parent admin address (resolves ephemeral ports).
    pub fn admin_addr(&self) -> SocketAddr {
        self.admin_addr
    }

    /// The shared public address.
    pub fn public_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener has an address")
    }

    /// Supervises until a shutdown is requested (parent `POST /shutdown`
    /// or a handled signal), then drains the replicas. Returns the
    /// process exit code: 0 when every replica drained cleanly, 1 when
    /// any had to be killed or every replica was given up on.
    pub fn run(mut self) -> i32 {
        let mut last_health = Instant::now() - HEALTH_EVERY;
        loop {
            if self.shutdown_req || signal::triggered() {
                return self.drain();
            }
            self.reap_and_schedule();
            self.respawn_due();
            if self.slots.iter().all(|s| s.given_up) {
                eprintln!("srtw-serve: every replica exceeded its restart budget; giving up");
                return 1;
            }
            if last_health.elapsed() >= HEALTH_EVERY {
                last_health = Instant::now();
                self.health_checks();
            }
            self.serve_admin();
            thread::sleep(Duration::from_millis(20));
        }
    }

    /// Collects dead children and schedules their restarts.
    fn reap_and_schedule(&mut self) {
        for slot in &mut self.slots {
            let Some(child) = slot.child.as_mut() else {
                continue;
            };
            let status = match child.try_wait() {
                Ok(Some(status)) => status,
                Ok(None) => continue,
                Err(_) => continue,
            };
            slot.child = None;
            slot.healthy = false;
            slot.admin = None;
            match slot.tracker.on_exit(Instant::now()) {
                RestartDecision::After(delay) => {
                    println!(
                        "srtw-serve replica {} pid {} exited ({status}); restart in {} ms",
                        slot.index,
                        slot.pid,
                        delay.as_millis()
                    );
                    slot.respawn_at = Some(Instant::now() + delay);
                }
                RestartDecision::GiveUp => {
                    println!(
                        "srtw-serve replica {} pid {} exited ({status}); restart budget exhausted, giving up",
                        slot.index, slot.pid
                    );
                    slot.given_up = true;
                    slot.respawn_at = None;
                }
            }
            flush_stdout();
        }
    }

    /// Respawns every slot whose backoff has elapsed.
    fn respawn_due(&mut self) {
        let now = Instant::now();
        // Split borrows: spawn_into needs &self.cfg but iterates slots.
        let mut due: Vec<usize> = Vec::new();
        for (i, slot) in self.slots.iter().enumerate() {
            if slot.respawn_at.is_some_and(|t| t <= now) && !slot.given_up {
                due.push(i);
            }
        }
        for i in due {
            let mut slot = std::mem::replace(
                &mut self.slots[i],
                Slot {
                    index: i,
                    child: None,
                    pid: 0,
                    admin: None,
                    healthy: false,
                    tracker: RestartTracker::new(self.cfg.restart),
                    respawn_at: None,
                    given_up: false,
                    restarts: 0,
                },
            );
            slot.respawn_at = None;
            slot.restarts += 1;
            // Respawns never re-arm the injected fault (see
            // `ReplicaConfig::process_fault`).
            if let Err(e) = self.spawn_into(&mut slot, None) {
                eprintln!(
                    "srtw-serve: respawn of replica {} failed: {e}; retrying under backoff",
                    slot.index
                );
                match slot.tracker.on_exit(Instant::now()) {
                    RestartDecision::After(delay) => {
                        slot.respawn_at = Some(Instant::now() + delay)
                    }
                    RestartDecision::GiveUp => slot.given_up = true,
                }
            }
            self.slots[i] = slot;
        }
    }

    /// Spawns a replica process into `slot`: self-exec with the internal
    /// subcommand, the inherited listener fd, and the pass-through flags.
    fn spawn_into(&self, slot: &mut Slot, fault: Option<String>) -> io::Result<()> {
        let exe = std::env::current_exe()?;
        let mut cmd = Command::new(exe);
        cmd.arg("serve")
            .arg("--internal-replica")
            .arg("--listener-fd")
            .arg(self.shared_fd.to_string())
            .arg("--replica-index")
            .arg(slot.index.to_string())
            .args(&self.cfg.child_args)
            .stdin(Stdio::null())
            .stdout(Stdio::piped());
        if let Some(spec) = fault {
            cmd.arg("--fault").arg(spec);
        }
        let mut child = cmd.spawn()?;
        let pid = child.id();
        let stdout = child.stdout.take().expect("stdout was piped");
        let (tx, rx) = mpsc::channel::<String>();
        // The reader thread hands the announce line back, then forwards
        // the replica's remaining stdout to ours; it exits with the pipe.
        thread::Builder::new()
            .name(format!("srtw-serve-replica-{}-stdout", slot.index))
            .spawn(move || {
                let mut reader = BufReader::new(stdout);
                let mut line = String::new();
                if matches!(reader.read_line(&mut line), Ok(n) if n > 0) {
                    let _ = tx.send(line.clone());
                }
                loop {
                    line.clear();
                    match reader.read_line(&mut line) {
                        Ok(0) | Err(_) => return,
                        Ok(_) => {
                            print!("{line}");
                            flush_stdout();
                        }
                    }
                }
            })?;
        let announce = rx.recv_timeout(ANNOUNCE_TIMEOUT).map_err(|_| {
            let _ = child.kill();
            let _ = child.wait();
            io::Error::other(format!(
                "replica {} (pid {pid}) produced no announce line",
                slot.index
            ))
        })?;
        let admin = parse_announce(&announce).ok_or_else(|| {
            let _ = child.kill();
            let _ = child.wait();
            io::Error::other(format!(
                "replica {} (pid {pid}) announced unparseably: {announce:?}",
                slot.index
            ))
        })?;
        // Re-announce on the parent's stdout so one stream carries every
        // replica's pid and admin address.
        print!("{announce}");
        flush_stdout();
        slot.child = Some(child);
        slot.pid = pid;
        slot.admin = Some(admin);
        slot.healthy = false;
        Ok(())
    }

    /// Probes every live replica's admin `/healthz`.
    fn health_checks(&mut self) {
        for slot in &mut self.slots {
            if slot.child.is_none() {
                slot.healthy = false;
                continue;
            }
            let was = slot.healthy;
            slot.healthy = slot.admin.is_some_and(|addr| probe_healthz(&addr));
            if slot.healthy && !was {
                slot.tracker.on_healthy();
            }
        }
    }

    fn quorum(&self) -> (usize, usize) {
        let healthy = self.slots.iter().filter(|s| s.healthy).count();
        (healthy, self.slots.len() / 2 + 1)
    }

    /// Serves any pending parent-admin connections (non-blocking accept;
    /// each exchange is blocking but budgeted).
    fn serve_admin(&mut self) {
        loop {
            match self.admin.accept() {
                Ok((stream, _peer)) => self.serve_admin_conn(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    fn serve_admin_conn(&mut self, mut stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        let Ok(read_half) = stream.try_clone() else {
            return;
        };
        let mut reader = BufReader::new(read_half);
        let Ok(req) = read_request(&mut reader, MAX_INPUT_BYTES) else {
            return;
        };
        let response = match (req.method.as_str(), req.target.as_str()) {
            ("GET", "/healthz") => Response::json(200, "{\"status\":\"ok\"}\n".into()),
            ("GET", "/readyz") => {
                let (healthy, need) = self.quorum();
                let body = format!(
                    "{{\"status\":\"{}\",\"healthy\":{healthy},\"quorum\":{need}}}\n",
                    if healthy >= need { "ready" } else { "degraded" }
                );
                Response::json(if healthy >= need { 200 } else { 503 }, body)
            }
            ("GET", "/stats") => {
                let doc = self.aggregate_stats();
                Response::json(200, format!("{doc}\n"))
            }
            ("POST", "/shutdown") => {
                self.shutdown_req = true;
                Response::json(200, "{\"status\":\"draining\"}\n".into())
            }
            (method, target) => Response::json(
                404,
                error_body(
                    2,
                    "input",
                    &format!("no supervisor endpoint {method} {target}"),
                    vec![],
                ),
            ),
        };
        let _ = response.write_to(&mut stream);
    }

    /// The aggregated `/stats` document: per-replica supervision state
    /// plus counters scraped from each healthy replica's own `/stats`.
    fn aggregate_stats(&self) -> Json {
        let mut per = Vec::new();
        let mut total = Scraped::default();
        for slot in &self.slots {
            let scraped = slot
                .admin
                .filter(|_| slot.healthy)
                .and_then(|addr| scrape_stats(&addr));
            if let Some(s) = scraped {
                total.accepted += s.accepted;
                total.shed += s.shed;
                total.requests += s.requests;
                total.open_conns += s.open_conns;
                total.fds += s.fds;
                total.cache_hits += s.cache_hits;
                total.cache_misses += s.cache_misses;
                total.cache_evictions += s.cache_evictions;
                total.cache_bytes += s.cache_bytes;
                total.delta_full_fallbacks += s.delta_full_fallbacks;
                total.persist_loaded += s.persist_loaded;
                total.persist_stored += s.persist_stored;
                total.persist_errors += s.persist_errors;
            }
            let s = scraped.unwrap_or_default();
            per.push(Json::object(vec![
                ("replica", Json::Int(slot.index as i128)),
                ("pid", Json::Int(slot.pid as i128)),
                ("healthy", Json::Bool(slot.healthy)),
                ("given_up", Json::Bool(slot.given_up)),
                ("restarts", Json::Int(slot.restarts as i128)),
                ("exits", Json::Int(slot.tracker.total_exits() as i128)),
                ("accepted", Json::Int(s.accepted as i128)),
                ("shed", Json::Int(s.shed as i128)),
                ("requests", Json::Int(s.requests as i128)),
                ("open_conns", Json::Int(s.open_conns as i128)),
                ("fds", Json::Int(s.fds as i128)),
                ("cache_hits", Json::Int(s.cache_hits as i128)),
                ("cache_misses", Json::Int(s.cache_misses as i128)),
                ("cache_evictions", Json::Int(s.cache_evictions as i128)),
                ("cache_bytes", Json::Int(s.cache_bytes as i128)),
                (
                    "delta_full_fallbacks",
                    Json::Int(s.delta_full_fallbacks as i128),
                ),
                ("persist_loaded", Json::Int(s.persist_loaded as i128)),
                ("persist_stored", Json::Int(s.persist_stored as i128)),
                ("persist_errors", Json::Int(s.persist_errors as i128)),
            ]));
        }
        let (healthy, need) = self.quorum();
        Json::object(vec![
            ("role", Json::str("supervisor")),
            ("replicas", Json::Int(self.slots.len() as i128)),
            ("healthy", Json::Int(healthy as i128)),
            ("quorum", Json::Int(need as i128)),
            (
                "restarts",
                Json::Int(self.slots.iter().map(|s| s.restarts as i128).sum()),
            ),
            (
                "supervisor_fds",
                sys::open_fd_count()
                    .map(|n| Json::Int(n as i128))
                    .unwrap_or(Json::Null),
            ),
            (
                "aggregate",
                Json::object(vec![
                    ("accepted", Json::Int(total.accepted as i128)),
                    ("shed", Json::Int(total.shed as i128)),
                    ("requests", Json::Int(total.requests as i128)),
                    ("open_conns", Json::Int(total.open_conns as i128)),
                    ("fds", Json::Int(total.fds as i128)),
                    ("cache_hits", Json::Int(total.cache_hits as i128)),
                    ("cache_misses", Json::Int(total.cache_misses as i128)),
                    ("cache_evictions", Json::Int(total.cache_evictions as i128)),
                    ("cache_bytes", Json::Int(total.cache_bytes as i128)),
                    (
                        "delta_full_fallbacks",
                        Json::Int(total.delta_full_fallbacks as i128),
                    ),
                    ("persist_loaded", Json::Int(total.persist_loaded as i128)),
                    ("persist_stored", Json::Int(total.persist_stored as i128)),
                    ("persist_errors", Json::Int(total.persist_errors as i128)),
                ]),
            ),
            ("per_replica", Json::Array(per)),
        ])
    }

    /// Drains the tree: `SIGTERM` every replica, wait out the drain
    /// window, `SIGKILL` stragglers, reap everything. Exit code 0 iff
    /// every replica exited cleanly on its own.
    fn drain(mut self) -> i32 {
        eprintln!("srtw-serve: shutdown requested; draining {} replica(s)", self.slots.len());
        for slot in &self.slots {
            if slot.child.is_some() {
                sys::send_signal(slot.pid, sys::SIGTERM);
            }
        }
        let deadline = Instant::now() + self.cfg.drain + Duration::from_secs(2);
        let mut clean = true;
        loop {
            let mut alive = 0usize;
            for slot in &mut self.slots {
                let Some(child) = slot.child.as_mut() else {
                    continue;
                };
                match child.try_wait() {
                    Ok(Some(status)) => {
                        clean &= status.success();
                        slot.child = None;
                    }
                    Ok(None) => alive += 1,
                    Err(_) => {
                        slot.child = None;
                    }
                }
            }
            if alive == 0 {
                break;
            }
            if Instant::now() >= deadline {
                for slot in &mut self.slots {
                    if let Some(child) = slot.child.as_mut() {
                        clean = false;
                        let _ = child.kill();
                        let _ = child.wait();
                        slot.child = None;
                    }
                }
                break;
            }
            thread::sleep(Duration::from_millis(20));
        }
        if clean {
            eprintln!("srtw-serve: all replicas drained cleanly");
            0
        } else {
            eprintln!("srtw-serve: drain incomplete; some replicas were killed or exited dirty");
            1
        }
    }
}

/// The raw fd of the public listener (unix only; replication is refused
/// elsewhere before this is reached).
#[cfg(unix)]
fn raw_fd(l: &TcpListener) -> i32 {
    use std::os::unix::io::AsRawFd;
    l.as_raw_fd()
}

#[cfg(not(unix))]
fn raw_fd(_l: &TcpListener) -> i32 {
    -1
}

fn flush_stdout() {
    use std::io::Write as _;
    let _ = io::stdout().flush();
}

/// Parses a replica announce line:
/// `srtw-serve replica <i> pid <pid> admin on <addr>`.
fn parse_announce(line: &str) -> Option<SocketAddr> {
    let rest = line.trim().strip_prefix("srtw-serve replica ")?;
    let addr = rest.split(" admin on ").nth(1)?;
    addr.parse().ok()
}

fn probe_healthz(addr: &SocketAddr) -> bool {
    let Ok(stream) = TcpStream::connect_timeout(addr, PROBE_TIMEOUT) else {
        return false;
    };
    matches!(
        client_roundtrip_on(stream, "GET", "/healthz", &[], b""),
        Ok((200, _, _))
    )
}

fn scrape_stats(addr: &SocketAddr) -> Option<Scraped> {
    let stream = TcpStream::connect_timeout(addr, PROBE_TIMEOUT).ok()?;
    let (status, _, body) = client_roundtrip_on(stream, "GET", "/stats", &[], b"").ok()?;
    if status != 200 {
        return None;
    }
    Some(Scraped {
        accepted: scrape_u64(&body, "accepted").unwrap_or(0),
        shed: scrape_u64(&body, "shed").unwrap_or(0),
        requests: scrape_u64(&body, "requests").unwrap_or(0),
        open_conns: scrape_u64(&body, "open_conns").unwrap_or(0),
        fds: scrape_u64(&body, "fds").unwrap_or(0),
        cache_hits: scrape_u64(&body, "cache_hits").unwrap_or(0),
        cache_misses: scrape_u64(&body, "cache_misses").unwrap_or(0),
        cache_evictions: scrape_u64(&body, "cache_evictions").unwrap_or(0),
        cache_bytes: scrape_u64(&body, "cache_bytes").unwrap_or(0),
        delta_full_fallbacks: scrape_u64(&body, "delta_full_fallbacks").unwrap_or(0),
        persist_loaded: scrape_u64(&body, "persist_loaded").unwrap_or(0),
        persist_stored: scrape_u64(&body, "persist_stored").unwrap_or(0),
        persist_errors: scrape_u64(&body, "persist_errors").unwrap_or(0),
    })
}

/// Pulls `"key":<integer>` out of a flat JSON document. The replica's
/// `/stats` shape is ours (srtw_core::Json renders no whitespace), so a
/// textual scrape is exact — and it keeps the parent free of a JSON
/// parser the workspace otherwise does not need.
fn scrape_u64(body: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = body.find(&needle)? + needle.len();
    let digits: String = body[at..].chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn announce_lines_parse() {
        assert_eq!(
            parse_announce("srtw-serve replica 1 pid 4242 admin on 127.0.0.1:39741\n"),
            Some("127.0.0.1:39741".parse().unwrap())
        );
        assert_eq!(parse_announce("srtw-serve listening on 127.0.0.1:7878"), None);
        assert_eq!(parse_announce("srtw-serve replica x admin on nonsense"), None);
    }

    #[test]
    fn stats_scrape_is_exact_on_rendered_json() {
        let body = r#"{"replica":1,"accepted":31,"shed":4,"requests":35,"open_conns":2,"fds":19,"latency":{"count":0}}"#;
        assert_eq!(scrape_u64(body, "accepted"), Some(31));
        assert_eq!(scrape_u64(body, "shed"), Some(4));
        assert_eq!(scrape_u64(body, "open_conns"), Some(2));
        assert_eq!(scrape_u64(body, "fds"), Some(19));
        assert_eq!(scrape_u64(body, "absent"), None);
    }
}
