//! The benchmark suites behind `BENCH_1.json`: the same workloads the old
//! criterion benches measured, expressed against [`crate::timing::Timer`].
//!
//! Each suite function is callable from both the `cargo bench` wrappers in
//! `benches/` and the `experiments` binary, so one entry point regenerates
//! every recorded number.

use crate::timing::{Sample, Timer};
use srtw_core::{rtc_delay, structural_delay, structural_delay_with, AnalysisConfig, Budget};
use srtw_gen::{adversarial_dense, generate_drt, rescale_utilization, DrtGenConfig};
use srtw_minplus::{q, BudgetMeter, Curve, Pipe, Q};
use srtw_sim::{earliest_random_walk, simulate_fifo, ServiceProcess};
use srtw_workload::{explore_metered_threads, ExploreConfig, Rbf};
use std::hint::black_box;

fn gen_cfg(n: usize) -> DrtGenConfig {
    DrtGenConfig {
        vertices: n,
        extra_edges: n,
        separation_range: (5, 40),
        wcet_range: (1, 9),
        target_utilization: Some(q(3, 5)),
        deadline_factor: None,
    }
}

/// B1 — (min,+) operator micro-benchmarks: convolution, deconvolution,
/// deviations, and pointwise ops on representative curve pairs.
pub fn convolution_suite(t: &Timer) -> Vec<Sample> {
    let mut out = Vec::new();
    for &h in &[20i128, 50, 100, 200] {
        let a = Curve::staircase(Q::int(4), Q::int(3));
        let b = Curve::rate_latency(q(3, 4), Q::int(5));
        out.push(t.bench("convolution", format!("conv_upto/{h}"), || {
            black_box(a.conv_upto(&b, Q::int(h)));
        }));
    }
    for &h in &[10i128, 20, 40] {
        let a = Curve::staircase(Q::int(5), Q::int(2));
        let b = Curve::rate_latency(Q::ONE, Q::int(3));
        out.push(t.bench("convolution", format!("deconv/{h}"), || {
            black_box(a.deconv(&b, Q::int(h)).unwrap());
        }));
    }
    {
        let alpha = Curve::staircase(Q::int(7), Q::int(3));
        let beta = Curve::rate_latency(q(2, 3), Q::int(4));
        out.push(t.bench("convolution", "hdev_staircase_vs_rate_latency", || {
            black_box(alpha.hdev(&beta));
        }));
    }
    {
        let a = Curve::staircase(Q::int(4), Q::int(3));
        let b = Curve::staircase(Q::int(6), Q::int(2));
        out.push(t.bench("convolution", "pointwise_min_periodic_pair", || {
            black_box(a.pointwise_min(&b));
        }));
        let beta = Curve::rate_latency(Q::int(2), Q::int(3));
        out.push(t.bench("convolution", "sub_clamped_monotone_leftover", || {
            black_box(beta.sub_clamped_monotone(&a));
        }));
    }
    out
}

/// B2 — request-bound-function computation across graph sizes and
/// horizons (the dominance-pruned path exploration).
pub fn rbf_suite(t: &Timer) -> Vec<Sample> {
    let mut out = Vec::new();
    // BENCH_2..BENCH_4 recorded rbf_by_graph_size/5 *slower* than /10
    // (≈324µs vs ≈239µs in BENCH_2, still ≈279µs vs ≈219µs in BENCH_4).
    // B6-style, run *every* measured configuration once untimed before
    // the sweep so no size pays the process cold start (lazy page
    // faults, allocator arena growth, branch predictor). BENCH_5 shows
    // the warmed gap that remains (≈270µs vs ≈215µs) is instance
    // hardness, not measurement: with the same separation range, the
    // seed-42 5-vertex graph's short cycles wrap horizon 200 many more
    // times than the 10-vertex graph's, so its path enumeration is
    // genuinely deeper.
    for &n in &[5usize, 10, 20, 40] {
        let task = generate_drt(&gen_cfg(n), 42);
        black_box(Rbf::compute(&task, Q::int(200)));
    }
    for &n in &[5usize, 10, 20, 40] {
        let task = generate_drt(&gen_cfg(n), 42);
        out.push(t.bench("rbf", format!("rbf_by_graph_size/{n}"), || {
            black_box(Rbf::compute(&task, Q::int(200)));
        }));
    }
    let task = generate_drt(&gen_cfg(10), 7);
    for &h in &[100i128, 300, 1000] {
        black_box(Rbf::compute(&task, Q::int(h)));
    }
    for &h in &[100i128, 300, 1000] {
        out.push(t.bench("rbf", format!("rbf_by_horizon/{h}"), || {
            black_box(Rbf::compute(&task, Q::int(h)));
        }));
    }
    out
}

/// B3 — the structural delay analysis end to end: scaling with graph size
/// and the effect of dominance pruning (the ablation measures).
pub fn structural_suite(t: &Timer) -> Vec<Sample> {
    let mut out = Vec::new();
    let beta = Curve::rate_latency(q(4, 5), Q::int(4));
    // Same cold-start treatment as the rbf suite: warm every measured
    // configuration once before the timed sweep.
    for &n in &[5usize, 10, 20, 40] {
        let task = generate_drt(&gen_cfg(n), 11);
        black_box(structural_delay(&task, &beta).unwrap());
    }
    for &n in &[5usize, 10, 20, 40] {
        let task = generate_drt(&gen_cfg(n), 11);
        out.push(t.bench("structural", format!("structural_scaling/{n}"), || {
            black_box(structural_delay(&task, &beta).unwrap());
        }));
    }
    let task = generate_drt(&gen_cfg(6), 3);
    out.push(t.bench("structural", "structural_pruned", || {
        black_box(structural_delay(&task, &beta).unwrap());
    }));
    let cfg = AnalysisConfig {
        no_prune: true,
        ..Default::default()
    };
    out.push(t.bench("structural", "structural_no_prune", || {
        black_box(structural_delay_with(&task, &beta, &cfg).unwrap());
    }));
    out.push(t.bench("structural", "rtc_baseline", || {
        black_box(rtc_delay(&task, &beta).unwrap());
    }));
    out
}

/// B4 — simulator throughput: jobs per second on fluid and TDMA service
/// processes.
pub fn simulation_suite(t: &Timer) -> Vec<Sample> {
    let mut out = Vec::new();
    let task = generate_drt(&gen_cfg(8), 9);
    for &h in &[200i128, 1000, 4000] {
        let trace = earliest_random_walk(&task, Q::int(h), None, 5);
        let fluid = ServiceProcess::fluid(q(4, 5));
        out.push(t.bench("simulation", format!("simulate_fifo/fluid/{h}"), || {
            black_box(simulate_fifo(
                std::slice::from_ref(&task),
                std::slice::from_ref(&trace),
                &fluid,
            ));
        }));
        let tdma = ServiceProcess::tdma(Q::int(4), Q::int(5), Q::ONE, Q::ONE);
        out.push(t.bench("simulation", format!("simulate_fifo/tdma/{h}"), || {
            black_box(simulate_fifo(
                std::slice::from_ref(&task),
                std::slice::from_ref(&trace),
                &tdma,
            ));
        }));
    }
    out
}

/// B5 — budgeted analysis: cooperative-metering overhead on runs that
/// never trip (the whole budget machinery must cost only a few percent
/// over the unmetered engine) and the cost of graceful degradation once
/// a path cap does trip.
pub fn budgeted_suite(t: &Timer) -> Vec<Sample> {
    let mut out = Vec::new();
    let beta = Curve::rate_latency(q(4, 5), Q::int(4));
    for &n in &[10usize, 20] {
        let task = generate_drt(&gen_cfg(n), 11);
        out.push(t.bench("budgeted_structural", format!("unmetered/{n}"), || {
            black_box(structural_delay(&task, &beta).unwrap());
        }));
        // Full metering — wall clock plus both counters — with enough
        // headroom that nothing ever trips: pure metering overhead.
        let cfg = AnalysisConfig {
            budget: Budget::wall_ms(3_600_000)
                .with_max_paths(u64::MAX / 2)
                .with_max_segments(u64::MAX / 2),
            ..Default::default()
        };
        out.push(t.bench("budgeted_structural", format!("metered_headroom/{n}"), || {
            black_box(structural_delay_with(&task, &beta, &cfg).unwrap());
        }));
    }
    // Degradation cost: a dense adversarial graph at utilization 1/2 on a
    // rate-2 server, with a path cap that trips immediately vs late.
    let adv = rescale_utilization(&adversarial_dense(6, 5), q(1, 2));
    let beta2 = Curve::rate_latency(Q::int(2), Q::int(2));
    for &cap in &[4u64, 64] {
        let cfg = AnalysisConfig {
            budget: Budget::default().with_max_paths(cap),
            ..Default::default()
        };
        out.push(t.bench("budgeted_structural", format!("degraded_cap/{cap}"), || {
            black_box(structural_delay_with(&adv, &beta2, &cfg).unwrap());
        }));
    }
    out
}

/// A concave polyline with `k` pieces: the lower envelope of `k` affine
/// token buckets with strictly decreasing rates (tangents of a concave
/// arrival envelope), breakpoints every `spacing` time units.
fn concave_polyline(k: i128, spacing: i128) -> Curve {
    let mut c = Curve::affine(Q::ZERO, Q::int(k));
    for i in 1..k {
        let line = Curve::affine(Q::int(spacing * i * (i + 1) / 2), Q::int(k - i));
        c = c.pointwise_min(&line);
    }
    c
}

/// A convex polyline with `k` pieces: the upper envelope of `k`
/// rate-latency curves with strictly increasing rates.
fn convex_polyline(k: i128, spacing: i128) -> Curve {
    let mut c = Curve::rate_latency(Q::ONE, Q::ZERO);
    for i in 1..k {
        let line = Curve::rate_latency(Q::int(i + 1), Q::int(spacing * i));
        c = c.pointwise_max(&line);
    }
    c
}

/// B6 — parallel path exploration and the shaped-convolution fast paths.
///
/// Before timing anything the suite **asserts** that the sharded engine
/// is bit-identical to the sequential one and that the fast convolution
/// kernels agree with the general quadratic kernel — the speedups below
/// are only meaningful for identical results. The thread-scaling numbers
/// are machine-relative: thread counts beyond the machine's cores cannot
/// help (a 1-core CI box reports ≈1× with the sharding overhead on top).
pub fn parallel_suite(t: &Timer) -> Vec<Sample> {
    let mut out = Vec::new();

    // Fat-window workload: dense digraph, separations in a narrow band,
    // so every min-separation window holds many candidates and the
    // sharded Classify/Expand phases get real work per barrier.
    let task = adversarial_dense(10, 5);
    let ecfg = ExploreConfig::new(Q::int(60));
    let meter = BudgetMeter::unlimited();
    let seq = Rbf::compute_metered_threads(&task, ecfg.horizon, &meter, 1);
    for n in [2usize, 4, 8] {
        let par = Rbf::compute_metered_threads(&task, ecfg.horizon, &meter, n);
        assert_eq!(seq, par, "sharded exploration diverged at {n} threads");
    }
    for n in [1usize, 2, 4] {
        out.push(t.bench("parallel_structural", format!("explore_threads/{n}"), || {
            black_box(explore_metered_threads(&task, &ecfg, &meter, n));
        }));
    }

    // End-to-end structural analysis at 1 vs 4 threads, asserted equal
    // on the full report (runtime zeroed — it is the one honest
    // difference).
    let beta = Curve::rate_latency(q(4, 5), Q::int(4));
    let big = generate_drt(&gen_cfg(20), 11);
    let cfg_of = |threads: usize| AnalysisConfig {
        threads,
        ..Default::default()
    };
    let mut a = structural_delay_with(&big, &beta, &cfg_of(1)).unwrap();
    let mut b = structural_delay_with(&big, &beta, &cfg_of(4)).unwrap();
    a.runtime = std::time::Duration::ZERO;
    b.runtime = std::time::Duration::ZERO;
    assert_eq!(
        a.to_json().render(),
        b.to_json().render(),
        "parallel structural analysis diverged from sequential"
    );
    for n in [1usize, 4] {
        let cfg = cfg_of(n);
        out.push(t.bench("parallel_structural", format!("structural_threads/{n}"), || {
            black_box(structural_delay_with(&big, &beta, &cfg).unwrap());
        }));
    }

    // Shaped-convolution fast paths against the general quadratic kernel
    // on 40-piece polylines over [0, 200]. `conv_upto` dispatches on the
    // cached shape; `conv_upto_general` forces the old kernel.
    let h = Q::int(200);
    let (ca, cb) = (concave_polyline(40, 5), concave_polyline(40, 7));
    assert_eq!(
        ca.conv_upto(&cb, h),
        ca.conv_upto_general(&cb, h),
        "concave fast path diverged from the general kernel"
    );
    out.push(t.bench("parallel_structural", "conv_concave/fast/200", || {
        black_box(ca.conv_upto(&cb, h));
    }));
    out.push(t.bench("parallel_structural", "conv_concave/general/200", || {
        black_box(ca.conv_upto_general(&cb, h));
    }));
    let (va, vb) = (convex_polyline(40, 3), convex_polyline(40, 4));
    assert_eq!(
        va.conv_upto(&vb, h),
        va.conv_upto_general(&vb, h),
        "convex fast path diverged from the general kernel"
    );
    out.push(t.bench("parallel_structural", "conv_convex/fast/200", || {
        black_box(va.conv_upto(&vb, h));
    }));
    out.push(t.bench("parallel_structural", "conv_convex/general/200", || {
        black_box(va.conv_upto_general(&vb, h));
    }));
    out
}

/// B7 — service-mode throughput: full TCP round-trips against an
/// in-process `srtw serve` instance, measuring the service-layer overhead
/// (request parse, admission, supervised worker, response) on top of the
/// bare analysis B3 measures.
pub fn server_throughput_suite(t: &Timer) -> Vec<Sample> {
    use srtw_serve::http::client_roundtrip;
    use srtw_serve::{ServeConfig, Server};

    const SYSTEM: &str = "task dec\nvertex i wcet=4 deadline=30\nvertex p wcet=2\n\
                          edge i p sep=9\nedge p i sep=9\n\
                          task tel\nvertex t wcet=1\nedge t t sep=11\n\
                          server rate-latency rate=1 latency=2\n";

    let server = Server::spawn(ServeConfig {
        workers: 2,
        ..Default::default()
    })
    .expect("bind an ephemeral port for the throughput bench");
    let addr = server.addr();
    let (status, _, body) =
        client_roundtrip(&addr, "POST", "/analyze", &[], SYSTEM.as_bytes()).unwrap();
    assert_eq!(status, 200, "bench system must analyze cleanly: {body}");
    assert!(body.starts_with("{\"scheduler\":\"fifo\""), "{body}");

    let mut out = Vec::new();
    out.push(t.bench("server_throughput", "healthz_roundtrip", || {
        let (status, _, _) = client_roundtrip(&addr, "GET", "/healthz", &[], b"").unwrap();
        assert_eq!(status, 200);
    }));
    out.push(t.bench("server_throughput", "analyze_roundtrip/two_streams", || {
        let (status, _, body) =
            client_roundtrip(&addr, "POST", "/analyze", &[], SYSTEM.as_bytes()).unwrap();
        assert_eq!(status, 200);
        black_box(body);
    }));
    out.push(t.bench("server_throughput", "analyze_rejected/parse_400", || {
        let (status, _, _) = client_roundtrip(&addr, "POST", "/analyze", &[], b"task\n").unwrap();
        assert_eq!(status, 400);
    }));
    let report = server.shutdown();
    assert!(report.clean(), "bench server failed to drain: {report:?}");
    out
}

/// B9 — connection scaling: what one request costs as the connection
/// strategy and the acceptor's standing load change. `fresh_conn` pays
/// the full connect + TLS-free handshake + lingering close per request;
/// `keep_alive` cycles one connection through the mux between requests;
/// `with_64_idle_conns` measures the readiness scan's overhead when the
/// acceptor is also babysitting 64 parked keep-alive connections.
pub fn server_connections_suite(t: &Timer) -> Vec<Sample> {
    use srtw_serve::http::client_roundtrip;
    use srtw_serve::{ServeConfig, Server};
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::{SocketAddr, TcpStream};

    /// A keep-alive HTTP client that transparently reconnects when the
    /// server retires the connection (requests-per-connection cap).
    struct KeepAlive {
        addr: SocketAddr,
        conn: Option<(TcpStream, BufReader<TcpStream>)>,
    }

    impl KeepAlive {
        fn roundtrip(&mut self) -> u16 {
            for _ in 0..2 {
                if self.conn.is_none() {
                    let stream = TcpStream::connect(self.addr).expect("connect");
                    let reader = BufReader::new(stream.try_clone().expect("clone"));
                    self.conn = Some((stream, reader));
                }
                match self.try_once() {
                    Some(status) => return status,
                    None => self.conn = None, // retired by the server: reconnect
                }
            }
            panic!("keep-alive roundtrip failed twice in a row");
        }

        fn try_once(&mut self) -> Option<u16> {
            let (writer, reader) = self.conn.as_mut()?;
            writer
                .write_all(b"GET /healthz HTTP/1.1\r\nHost: bench\r\n\r\n")
                .ok()?;
            let mut line = String::new();
            reader.read_line(&mut line).ok()?;
            let status: u16 = line.strip_prefix("HTTP/1.1 ")?.split(' ').next()?.parse().ok()?;
            let mut len = 0usize;
            loop {
                let mut header = String::new();
                reader.read_line(&mut header).ok()?;
                if header == "\r\n" {
                    break;
                }
                if let Some(v) = header.to_ascii_lowercase().strip_prefix("content-length:") {
                    len = v.trim().parse().ok()?;
                }
            }
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body).ok()?;
            Some(status)
        }
    }

    let server = Server::spawn(ServeConfig {
        workers: 2,
        // Long idle windows so the parked connections below survive the
        // whole measurement instead of being reaped mid-sample.
        header_timeout: std::time::Duration::from_secs(120),
        read_timeout: std::time::Duration::from_secs(120),
        ..Default::default()
    })
    .expect("bind an ephemeral port for the connection bench");
    let addr = server.addr();

    let mut out = Vec::new();
    out.push(t.bench("server_connections", "healthz/fresh_conn", || {
        let (status, _, _) = client_roundtrip(&addr, "GET", "/healthz", &[], b"").unwrap();
        assert_eq!(status, 200);
    }));

    let mut client = KeepAlive { addr, conn: None };
    out.push(t.bench("server_connections", "healthz/keep_alive", || {
        assert_eq!(client.roundtrip(), 200);
    }));
    drop(client);

    // Park 64 keep-alive connections on the mux (one served request each
    // so they sit in the idle state), then measure a busy client again.
    let parked: Vec<KeepAlive> = (0..64)
        .map(|_| {
            let mut c = KeepAlive { addr, conn: None };
            assert_eq!(c.roundtrip(), 200);
            c
        })
        .collect();
    let mut client = KeepAlive { addr, conn: None };
    out.push(t.bench("server_connections", "healthz/with_64_idle_conns", || {
        assert_eq!(client.roundtrip(), 200);
    }));
    drop(client);
    drop(parked);

    let report = server.shutdown();
    assert!(report.clean(), "bench server failed to drain: {report:?}");
    out
}

/// B8 — the streaming pipeline: fused conv → conv → min → hdev through
/// [`srtw_minplus::Pipe`] against the equivalent materializing
/// composition, and a four-hop tandem concatenation both ways.
///
/// Mirroring B6, the suite first **asserts** that the fused pipeline is
/// bit-identical to the materializing composition — fusion only skips
/// intermediate validation scans and reuses one scratch arena, it must
/// never change a breakpoint.
pub fn fused_pipeline_suite(t: &Timer) -> Vec<Sample> {
    let mut out = Vec::new();
    let h = Q::int(200);
    // Same leading pair as B1's conv_upto/200 so the fused numbers tie
    // back to the gated convolution suite.
    let a = Curve::staircase(Q::int(4), Q::int(3));
    let b = Curve::rate_latency(q(3, 4), Q::int(5));
    let b2 = Curve::rate_latency(Q::int(3), Q::int(2));
    let c = Curve::staircase(Q::int(5), Q::int(4)).shift_up(Q::int(2));
    let demand = Curve::staircase(Q::int(6), Q::int(2));
    let meter = BudgetMeter::unlimited();

    let fused = |a: &Curve| {
        Pipe::new(a.clone(), &meter)
            .conv_upto(&b, h)
            .unwrap()
            .conv_upto(&b2, h)
            .unwrap()
            .min(&c)
            .unwrap()
            .hdev_of(&demand)
            .unwrap()
    };
    let materializing = |a: &Curve| {
        let c1 = a.try_conv_upto(&b, h, &meter).unwrap();
        let c2 = c1.try_conv_upto(&b2, h, &meter).unwrap();
        let min = c2.try_pointwise_min(&c, &meter).unwrap();
        demand.try_hdev(&min, &meter).unwrap()
    };
    assert_eq!(
        fused(&a),
        materializing(&a),
        "fused pipeline diverged from the materializing composition"
    );
    out.push(t.bench("fused_pipeline", "conv_min_hdev/fused/200", || {
        black_box(fused(&a));
    }));
    out.push(t.bench("fused_pipeline", "conv_min_hdev/materializing/200", || {
        black_box(materializing(&a));
    }));

    // Four-hop tandem concatenation: fold the hops through one pipe vs
    // materializing every intermediate concatenation.
    let hops = [
        Curve::rate_latency(Q::int(2), Q::int(3)),
        Curve::rate_latency(q(5, 2), Q::int(2)),
        Curve::rate_latency(Q::int(3), Q::int(4)),
        Curve::rate_latency(Q::int(4), Q::ONE),
    ];
    let fused_chain = || {
        let mut p = Pipe::new(hops[0].clone(), &meter);
        for hop in &hops[1..] {
            p = p.conv_upto(hop, h).unwrap();
        }
        p.finish()
    };
    let materializing_chain = || {
        let mut cur = hops[0].clone();
        for hop in &hops[1..] {
            cur = cur.try_conv_upto(hop, h, &meter).unwrap();
        }
        cur
    };
    assert_eq!(
        fused_chain(),
        materializing_chain(),
        "fused tandem concatenation diverged"
    );
    out.push(t.bench("fused_pipeline", "concatenate_4hops/fused/200", || {
        black_box(fused_chain());
    }));
    out.push(t.bench("fused_pipeline", "concatenate_4hops/materializing/200", || {
        black_box(materializing_chain());
    }));
    out
}

/// B10 — journal durability overhead: what crash-recoverability costs.
///
/// `append_fsync` is the per-record price a journaled batch pays on the
/// worker thread that finished the job (frame + one `write` + one
/// `sync_data`); the `run_batch` pair puts that price in context against
/// real supervised analyses; `recover` is the resume-time cost of
/// scanning and CRC-checking a populated journal.
pub fn journal_overhead_suite(t: &Timer) -> Vec<Sample> {
    use srtw_supervisor::journal::{recover, JournalRecord, JournalWriter};
    use srtw_supervisor::{
        run_batch, run_batch_observed, BatchConfig, JobSpec, JobStatus, OutcomeObserver,
    };
    use std::sync::{Arc, Mutex};

    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let path_for = |tag: &str| dir.join(format!("srtw-bench-journal-{tag}-{pid}.wal"));
    let record = JournalRecord {
        name: "bench-job".into(),
        status: JobStatus::Exact,
        rung: Some("exact".into()),
        attempts: 1,
        wall_bits: 0.0123f64.to_bits(),
        error: None,
        json: "{\"system\":\"bench-job\",\"status\":\"exact\",\"delay_bound\":\"41\",\
               \"per_task\":[{\"task\":\"t0\",\"delay\":\"41\"},{\"task\":\"t1\",\"delay\":\"17\"}]}"
            .into(),
    };

    let mut out = Vec::new();

    let append_path = path_for("append");
    let mut writer = JournalWriter::create(&append_path, 0xB10).expect("create bench journal");
    out.push(t.bench("journal_overhead", "append_fsync/record", || {
        writer.append(&record).expect("bench append");
    }));
    drop(writer);
    let _ = std::fs::remove_file(&append_path);

    let recover_path = path_for("recover");
    let mut writer = JournalWriter::create(&recover_path, 0xB10).expect("create bench journal");
    for i in 0..200 {
        let mut r = record.clone();
        r.name = format!("bench-job-{i}");
        writer.append(&r).expect("prefill bench journal");
    }
    drop(writer);
    out.push(t.bench("journal_overhead", "recover/200_records", || {
        let rec = recover(&recover_path).expect("recover bench journal");
        assert_eq!(rec.records.len(), 200);
        black_box(rec);
    }));
    let _ = std::fs::remove_file(&recover_path);

    // The same 8 small systems through the supervised batch pool, bare vs
    // journaled: the delta is the whole durability tax in context.
    let beta = Curve::rate_latency(q(4, 5), Q::int(4));
    let specs: Vec<JobSpec> = (0..8)
        .map(|i| {
            JobSpec::new(
                format!("job-{i}"),
                vec![generate_drt(&gen_cfg(8), 100 + i)],
                beta.clone(),
            )
        })
        .collect();
    let cfg = BatchConfig::default();
    out.push(t.bench("journal_overhead", "run_batch/unjournaled/8_jobs", || {
        let report = run_batch(specs.clone(), &cfg);
        assert_eq!(report.jobs.len(), 8);
        black_box(report);
    }));
    let batch_path = path_for("batch");
    out.push(t.bench("journal_overhead", "run_batch/journaled/8_jobs", || {
        let writer = JournalWriter::create(&batch_path, 0xB10).expect("create bench journal");
        let shared = Arc::new(Mutex::new(writer));
        let sink = Arc::clone(&shared);
        let observer: OutcomeObserver = Arc::new(move |_, outcome| {
            let rec = JournalRecord::from_outcome(outcome);
            sink.lock().unwrap().append(&rec).expect("bench append");
        });
        let report = run_batch_observed(specs.clone(), &cfg, Some(observer));
        assert_eq!(report.jobs.len(), 8);
        black_box(report);
    }));
    let _ = std::fs::remove_file(&batch_path);
    out
}

/// A scaled-down `systems/adversarial.srtw`: heavy and light job
/// types near demand density 1, fully connected, with pairwise
/// distinct fractional separations so dominance pruning retains
/// nearly every abstract path — but over a busy window shallow
/// enough that exact exploration terminates in tens of milliseconds
/// instead of never. `bump` perturbs one WCET numerator, giving each
/// cold request a distinct canonical form.
fn adversarial_class(bump: u64) -> String {
    const DEN: u64 = 10_007;
    let names = ["h0", "h1", "h2", "l3", "l4"];
    let base = |n: &str| if n.starts_with('h') { 8 } else { 5 };
    let mut text = String::from("task dense\n");
    for (i, n) in names.iter().enumerate() {
        let mut num = base(n) * DEN + 56 + 7 * i as u64;
        if i == 0 {
            num += bump;
        }
        text.push_str(&format!("vertex {n} wcet={num}/{DEN}\n"));
    }
    let mut k = 0u64;
    for from in names {
        for to in names {
            if from == to {
                continue;
            }
            let num = base(from) * DEN + 69 + 13 * k;
            k += 1;
            text.push_str(&format!("edge {from} {to} sep={num}/{DEN}\n"));
        }
    }
    text.push_str("server rate-latency rate=2 latency=40\n");
    text
}

/// B11 — cache saturation: the content-addressed result cache under
/// concurrency past the worker count, at one and two shared-nothing
/// replicas. `cold` measurements mutate one WCET numerator per request so
/// every request misses and pays the full busy-window exploration; `warm`
/// measurements repeat one body verbatim so every request replays cached
/// bytes. The suite also asserts the headline acceptance number: a warm
/// repeat of an adversarial-class system answers ≥ 100× faster than the
/// cold path.
pub fn cache_saturation_suite(t: &Timer) -> Vec<Sample> {
    use srtw_serve::http::client_roundtrip;
    use srtw_serve::{ServeConfig, Server};
    use std::net::SocketAddr;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn post(addr: &SocketAddr, body: &str) {
        let (status, _, resp) =
            client_roundtrip(addr, "POST", "/analyze", &[], body.as_bytes()).expect("round trip");
        assert_eq!(status, 200, "{resp}");
        black_box(resp);
    }

    let spawn = || {
        Server::spawn(ServeConfig {
            workers: 2,
            ..Default::default()
        })
        .expect("bind an ephemeral port for the cache bench")
    };
    let one = spawn();
    let two = [spawn(), spawn()];
    let warm_body = adversarial_class(0);
    // Prewarm every replica so warm measurements are pure hits.
    post(&one.addr(), &warm_body);
    for r in &two {
        post(&r.addr(), &warm_body);
    }

    // Monotone counter: every cold request across every measurement (and
    // its warmup/calibration passes) gets a fresh canonical form.
    let seq = AtomicU64::new(1);

    let mut out = Vec::new();
    let cold = t.bench("cache_saturation", "analyze_cold/always_miss", || {
        post(
            &one.addr(),
            &adversarial_class(seq.fetch_add(1, Ordering::Relaxed)),
        );
    });
    let warm = t.bench("cache_saturation", "analyze_warm/hit", || {
        post(&one.addr(), &warm_body);
    });
    assert!(
        warm.median_ns * 100.0 <= cold.median_ns,
        "cache hit must answer >= 100x faster than the cold path: warm {} vs cold {}",
        crate::timing::human_ns(warm.median_ns),
        crate::timing::human_ns(cold.median_ns),
    );
    out.push(cold);
    out.push(warm);

    // Concurrency sweep past the worker count (2 workers per replica):
    // one iteration issues `c` simultaneous requests round-robined over
    // the replica set and waits for all of them, so the per-iteration
    // time is the saturated batch latency (requests/s = c / time).
    let saturate = |name: String, addrs: &[SocketAddr], c: usize, hit: bool| {
        t.bench("cache_saturation", name, || {
            let base = if hit {
                0
            } else {
                seq.fetch_add(c as u64, Ordering::Relaxed)
            };
            std::thread::scope(|s| {
                for i in 0..c {
                    let addr = addrs[i % addrs.len()];
                    let body = if hit {
                        warm_body.clone()
                    } else {
                        adversarial_class(base + i as u64)
                    };
                    s.spawn(move || post(&addr, &body));
                }
            });
        })
    };
    let solo = [one.addr()];
    let pair = [two[0].addr(), two[1].addr()];
    for &c in &[4usize, 8] {
        out.push(saturate(format!("saturate_warm/c{c}/replicas1"), &solo, c, true));
    }
    out.push(saturate("saturate_warm/c8/replicas2".into(), &pair, 8, true));
    out.push(saturate("saturate_cold/c8/replicas1".into(), &solo, 8, false));
    out.push(saturate("saturate_cold/c8/replicas2".into(), &pair, 8, false));

    let report = one.shutdown();
    assert!(report.clean(), "bench server failed to drain: {report:?}");
    for r in two {
        let report = r.shutdown();
        assert!(report.clean(), "bench replica failed to drain: {report:?}");
    }
    out
}

/// B12 — warm restart: what the crash-safe spill store buys. A server
/// with persistence on is seeded with an adversarial-class analysis,
/// shut down, and a brand-new server is spawned over the same spill
/// directory; the suite measures the cold seed (which also pays the
/// spill append), a warm hit in the same process, a warm hit after the
/// full restart, and the raw startup spill load. It also asserts the
/// headline acceptance number: a warm hit *after a restart* answers
/// ≥ 100× faster than the cold path.
pub fn warm_restart_suite(t: &Timer) -> Vec<Sample> {
    use srtw_serve::http::client_roundtrip;
    use srtw_serve::{ServeConfig, Server};
    use std::net::SocketAddr;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn post(addr: &SocketAddr, body: &str) {
        let (status, _, resp) =
            client_roundtrip(addr, "POST", "/analyze", &[], body.as_bytes()).expect("round trip");
        assert_eq!(status, 200, "{resp}");
        black_box(resp);
    }

    let dir = std::env::temp_dir().join(format!("srtw-bench-warm-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spawn = || {
        Server::spawn(ServeConfig {
            workers: 2,
            persist: Some(dir.to_str().unwrap().to_string()),
            ..Default::default()
        })
        .expect("bind an ephemeral port for the warm-restart bench")
    };

    let mut out = Vec::new();
    let warm_body = adversarial_class(0);
    let seq = AtomicU64::new(1);

    // Phase 1: the seeding server. Every cold request both computes and
    // spills, so `analyze_cold/seed_and_spill` prices the write side of
    // persistence bundled with the analysis it protects.
    let first = spawn();
    post(&first.addr(), &warm_body);
    let cold = t.bench("warm_restart", "analyze_cold/seed_and_spill", || {
        post(
            &first.addr(),
            &adversarial_class(seq.fetch_add(1, Ordering::Relaxed)),
        );
    });
    out.push(t.bench("warm_restart", "analyze_warm/same_process", || {
        post(&first.addr(), &warm_body);
    }));
    let report = first.shutdown();
    assert!(report.clean(), "bench server failed to drain: {report:?}");

    // Phase 2: the raw spill load the restart will pay, measured on the
    // directory phase 1 left behind.
    out.push(t.bench("warm_restart", "startup/load_dir", || {
        let load = srtw_persist::load_dir(&dir);
        assert!(!load.records.is_empty(), "the seeded spill must load");
        black_box(load.records.len());
    }));

    // Phase 3: a brand-new server over the same directory answers the
    // seeded request warm — the acceptance ratio is against the cold
    // path from phase 1.
    let second = spawn();
    let warm = t.bench("warm_restart", "analyze_warm/after_restart", || {
        post(&second.addr(), &warm_body);
    });
    assert!(
        warm.median_ns * 100.0 <= cold.median_ns,
        "a restart-warm hit must answer >= 100x faster than the cold path: warm {} vs cold {}",
        crate::timing::human_ns(warm.median_ns),
        crate::timing::human_ns(cold.median_ns),
    );
    out.insert(0, cold);
    out.push(warm);
    let report = second.shutdown();
    assert!(report.clean(), "bench server failed to drain: {report:?}");
    let _ = std::fs::remove_dir_all(&dir);
    out
}

/// Runs all twelve suites in order (convolution, rbf, structural,
/// simulation, budgeted, parallel, server throughput, fused pipeline,
/// server connections, journal overhead, cache saturation, warm
/// restart).
pub fn all_suites(t: &Timer) -> Vec<Sample> {
    let mut out = convolution_suite(t);
    out.extend(rbf_suite(t));
    out.extend(structural_suite(t));
    out.extend(simulation_suite(t));
    out.extend(budgeted_suite(t));
    out.extend(parallel_suite(t));
    out.extend(server_throughput_suite(t));
    out.extend(fused_pipeline_suite(t));
    out.extend(server_connections_suite(t));
    out.extend(journal_overhead_suite(t));
    out.extend(cache_saturation_suite(t));
    out.extend(warm_restart_suite(t));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_suite_produces_entries_fast() {
        let t = Timer::fast();
        assert_eq!(convolution_suite(&t).len(), 10);
        assert_eq!(rbf_suite(&t).len(), 7);
        assert_eq!(structural_suite(&t).len(), 7);
        assert_eq!(simulation_suite(&t).len(), 6);
        assert_eq!(budgeted_suite(&t).len(), 6);
        assert_eq!(parallel_suite(&t).len(), 9);
        assert_eq!(server_throughput_suite(&t).len(), 3);
        assert_eq!(fused_pipeline_suite(&t).len(), 4);
        assert_eq!(server_connections_suite(&t).len(), 3);
        assert_eq!(journal_overhead_suite(&t).len(), 4);
        assert_eq!(cache_saturation_suite(&t).len(), 7);
        assert_eq!(warm_restart_suite(&t).len(), 4);
    }

    #[test]
    fn polyline_generators_are_shaped() {
        assert!(concave_polyline(8, 5).is_concave());
        assert!(convex_polyline(8, 3).is_convex());
    }
}
