//! `srtw` — command-line front end for the structural delay analysis.
//!
//! ```text
//! srtw analyze  <system.srtw> [--scheduler fifo|fp|edf] [--json]
//!               [--budget-ms MS] [--max-paths N] [--max-segments N]
//!               [--threads N]
//! srtw rbf      <system.srtw> [--horizon H]
//! srtw dot      <system.srtw>
//! srtw simulate <system.srtw> [--seeds N] [--horizon H]
//! srtw batch    <dir|manifest> [--jobs N] [--threads N] [--timeout-ms MS]
//!               [--grace-ms MS] [--budget-ms MS] [--retries N]
//!               [--fail-fast|--keep-going] [--journal PATH [--resume]]
//!               [--fault trip@N|overflow@N|clockjump@N:MS|panic@N
//!                        |torn@N|jcorrupt@N] [--json]
//! srtw serve    [--addr HOST:PORT] [--replicas N] [--admin-addr HOST:PORT]
//!               [--workers N] [--queue N] [--max-conns N]
//!               [--drain-ms MS] [--grace-ms MS] [--read-timeout-ms MS]
//!               [--header-timeout-ms MS] [--deadline-ms MS] [--threads N]
//!               [--journal PREFIX] [--cache-bytes N] [--persist DIR]
//!               [--fault SPEC|abort@N|stall@N:MS|closefd@N|torn@N|jcorrupt@N
//!                        |pers-torn@N|pers-corrupt@N|pers-enospc@N]
//! srtw flood    <addr> [--count N] [--concurrency N] [--analyze FILE]
//!               [--batch MANIFEST] [--prewarm N]
//! ```
//!
//! System files use the text format documented in [`srtw::textfmt`].
//! `--json` switches `analyze` and `batch` to a machine-readable
//! single-document output (see [`srtw::Json`]) that includes each
//! report's `quality` object and a top-level `degraded` flag.
//!
//! # Budgets
//!
//! `--budget-ms`, `--max-paths` and `--max-segments` cap the analysis
//! effort. When a cap trips, the analysis does not fail: it degrades
//! gracefully to sound (possibly pessimistic) bounds, prints a warning on
//! stderr and still exits 0.
//!
//! # Parallelism
//!
//! `analyze --threads N` shards the path-exploration frontier across `N`
//! worker threads. The result is **bit-identical** for every `N` — the
//! flag only changes wall-clock time. The default is the machine's
//! available parallelism; `--threads 1` runs the classic sequential
//! engine. In batch mode `--threads` sets the per-job worker count
//! (default 1): the machine splits as `--jobs` × `--threads`, and if that
//! product exceeds the available parallelism the per-job count is reduced
//! with a stderr warning instead of silently oversubscribing.
//!
//! # Batch mode
//!
//! `srtw batch` runs every `.srtw` system of a directory (sorted by file
//! name) or of a manifest (one path per line, `#` comments, resolved
//! relative to the manifest) on a pool of `--jobs` supervised workers.
//! Each job runs on its own thread behind `catch_unwind` under a watchdog
//! that enforces `--timeout-ms` by hard cancellation, and retries down the
//! degrade ladder exact → budgeted (halving `--budget-ms`, `--retries`
//! times) → RTC baseline. Per-job provenance (attempts, rung, degradation
//! records, wall time) lands in the batch report. `--fault` injects a
//! deterministic fault into every attempt (testing the failure paths).
//!
//! `--journal PATH` makes the batch crash-recoverable: every finished job
//! is appended to an fsync'd write-ahead journal before the batch moves
//! on, and `--resume` replays the journal, skipping already-completed
//! jobs while producing a report byte-identical to an uninterrupted run.
//! The journal fault specs `torn@N` (truncate the Nth record mid-write)
//! and `jcorrupt@N` (flip a byte in it) exercise the recovery path
//! deterministically.
//!
//! # Service mode
//!
//! `srtw serve` runs the resilient analysis service ([`srtw::serve`]):
//! `POST /analyze` answers with the same JSON document as
//! `analyze --json`, behind bounded admission (503 + `Retry-After` when
//! the queue is full), per-request deadlines (`X-Deadline-Ms` → sound
//! degradation to the RTC bound), crash isolation, and a graceful drain
//! on `SIGINT`/`SIGTERM` or `POST /shutdown` (exit 0; a stderr warning if
//! stragglers had to be cancelled). Repeats answer from a bounded
//! content-addressed result cache (`--cache-bytes`, canonical-form
//! keyed, byte-identical replay), and `POST /analyze/delta` (base
//! system + `@delta` edit script) re-analyses only the streams an edit
//! can reach, splicing the rest from the cached base run.
//!
//! `--persist DIR` makes the result cache crash-safe: every stored
//! result is also spilled to an append-only, CRC-framed shard file
//! under `DIR`, and a (re)started server warm-loads the shards before
//! accepting traffic, so warm hits survive restarts byte-identically.
//! Replicas share `DIR` (each writes only its own shard files, reads
//! all), so a respawned replica inherits the fleet's cache. Any
//! persistence failure — `ENOSPC`, `EACCES`, a torn or corrupt spill —
//! degrades to a cold in-memory cache with a typed `srtw-persist:`
//! stderr warning; it never changes an HTTP status or a result byte.
//! The `pers-torn@N` / `pers-corrupt@N` / `pers-enospc@N` fault specs
//! break the Nth spill append deterministically to exercise that
//! degradation.
//!
//! # Exit codes
//!
//! | code | meaning |
//! |------|---------|
//! | 0 | success — bounds exact, or degraded with a stderr warning |
//! | 2 | input error — unreadable file, parse error, bad flags |
//! | 3 | internal — analysis failure (unstable system, arithmetic overflow, exhausted budget with no sound fallback) or a residual panic |
//! | 4 | batch — some jobs failed every rung of the ladder (or were skipped by `--fail-fast`) |
//!
//! With `--json`, exits 2 and 3 still produce a machine-readable document
//! on stdout: `{"error": {"code": …, "kind": "input"|"internal"|"panic",
//! "message": …}}`. A batch failure (exit 4) is not an error document —
//! the batch report itself, listing the failed jobs, is the document.

use srtw::supervisor::journal::{self, JournalRecord, JournalWriter, JournaledReport};
use srtw::supervisor::{
    run_batch_observed, BatchConfig, BatchStatus, JobOutcome, JobSpec, JournalFault,
    OutcomeObserver, RestartPolicy,
};
use srtw::textfmt::{parse_system, SystemSpec};
use srtw::serve::{signal, PersistFault, ProcessFault, ReplicaConfig, ServeConfig, Server, Supervisor};
use srtw::{
    earliest_random_walk, edf_schedulable, fifo_report, fifo_structural,
    fixed_priority_structural_with, simulate_fifo, AnalysisConfig, Budget, Curve, DelayAnalysis,
    FaultPlan, Json, Q, Rbf, ServiceProcess, SupervisorConfig,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// CLI failure, split by exit code.
enum CliError {
    /// Unreadable/malformed input or bad flags — exit code 2.
    Input(String),
    /// Analysis failure or residual panic — exit code 3.
    Internal(String),
}

fn input(msg: impl Into<String>) -> CliError {
    CliError::Input(msg.into())
}

/// Renders an error as the machine-readable stdout document the `--json`
/// contract promises on exits 2 and 3.
fn json_error(code: u8, kind: &str, msg: &str) -> Json {
    Json::object(vec![(
        "error",
        Json::object(vec![
            ("code", Json::Int(code as i128)),
            ("kind", Json::str(kind)),
            ("message", Json::str(msg)),
        ]),
    )])
}

fn fail(json: bool, code: u8, kind: &str, prefix: &str, msg: &str) -> ExitCode {
    if json {
        println!("{}", json_error(code, kind, msg));
    }
    eprintln!("{prefix}{msg}");
    ExitCode::from(code)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    // Residual panics (library bugs) must not abort with a backtrace dump:
    // silence the default hook and convert them to exit code 3. Budget and
    // arithmetic failures never panic by design; this is the last line of
    // defence the exit-code contract promises.
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = catch_unwind(|| run(&args));
    let _ = std::panic::take_hook();
    match outcome {
        Ok(Ok(code)) => code,
        Ok(Err(CliError::Input(msg))) => fail(json, 2, "input", "error: ", &msg),
        Ok(Err(CliError::Internal(msg))) => fail(json, 3, "internal", "internal error: ", &msg),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".into());
            fail(
                json,
                3,
                "panic",
                "internal error: unexpected panic: ",
                &msg,
            )
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, CliError> {
    let usage = "usage: srtw <analyze|rbf|dot|simulate|batch|serve|flood> [<file|dir>] [options]";
    let cmd = args.first().ok_or_else(|| input(usage))?;
    if cmd == "serve" {
        return serve(&args[1..]);
    }
    if cmd == "flood" {
        return flood(&args[1..]);
    }
    let path = args.get(1).ok_or_else(|| input(usage))?;
    let opts = &args[2..];

    if cmd == "batch" {
        return batch(path, opts);
    }

    let text =
        std::fs::read_to_string(path).map_err(|e| input(format!("cannot read {path}: {e}")))?;
    let sys = parse_system(&text).map_err(|e| input(format!("{path}: {e}")))?;

    match cmd.as_str() {
        "analyze" => analyze(&sys, opts),
        "rbf" => rbf(&sys, opts),
        "dot" => {
            for t in &sys.tasks {
                print!("{}", t.to_dot());
            }
            Ok(())
        }
        "simulate" => simulate(&sys, opts),
        other => Err(input(format!("unknown command '{other}'\n{usage}"))),
    }
    .map(|()| ExitCode::SUCCESS)
}

/// One queued batch entry: either a parsed job or its pre-run failure
/// (unreadable file, parse error, missing server).
// One short-lived entry per input file; boxing the job would buy nothing.
#[allow(clippy::large_enum_variant)]
enum QueueEntry {
    Job(JobSpec),
    PreFailed(JobOutcome),
}

/// Collects the `.srtw` queue from a directory (sorted by file name) or a
/// manifest file (one path per line, `#` comments, resolved relative to
/// the manifest's directory).
fn collect_queue(path: &str) -> Result<Vec<std::path::PathBuf>, CliError> {
    let p = std::path::Path::new(path);
    if p.is_dir() {
        let mut files: Vec<_> = std::fs::read_dir(p)
            .map_err(|e| input(format!("cannot read directory {path}: {e}")))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|f| f.extension().is_some_and(|x| x == "srtw"))
            .collect();
        files.sort();
        if files.is_empty() {
            return Err(input(format!("no .srtw files in {path}")));
        }
        return Ok(files);
    }
    let text =
        std::fs::read_to_string(p).map_err(|e| input(format!("cannot read {path}: {e}")))?;
    let base = p.parent().unwrap_or_else(|| std::path::Path::new("."));
    let files: Vec<_> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| base.join(l))
        .collect();
    if files.is_empty() {
        return Err(input(format!("manifest {path} lists no systems")));
    }
    Ok(files)
}

/// Loads one queued file into a job, containing parse panics and turning
/// every pre-run failure into reportable provenance instead of aborting
/// the batch.
fn load_job(file: &std::path::Path) -> QueueEntry {
    let name = file
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| file.display().to_string());
    let text = match std::fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => {
            return QueueEntry::PreFailed(JobOutcome::pre_failed(
                name,
                format!("cannot read {}: {e}", file.display()),
            ))
        }
    };
    let loaded = catch_unwind(AssertUnwindSafe(|| -> Result<JobSpec, String> {
        let sys = parse_system(&text).map_err(|e| format!("{}: {e}", file.display()))?;
        let server = sys.server.as_ref().ok_or_else(|| {
            format!("{}: the system file declares no server", file.display())
        })?;
        let beta = server.beta_lower().map_err(|e| e.to_string())?;
        Ok(JobSpec::new(name.clone(), sys.tasks, beta))
    }));
    match loaded {
        Ok(Ok(spec)) => QueueEntry::Job(spec),
        Ok(Err(e)) => QueueEntry::PreFailed(JobOutcome::pre_failed(name, e)),
        Err(_) => QueueEntry::PreFailed(JobOutcome::pre_failed(name, "panic while parsing")),
    }
}

fn batch(path: &str, opts: &[String]) -> Result<ExitCode, CliError> {
    let started = Instant::now();
    let json = opts.iter().any(|a| a == "--json");
    let fail_fast = match (
        opts.iter().any(|a| a == "--fail-fast"),
        opts.iter().any(|a| a == "--keep-going"),
    ) {
        (true, true) => return Err(input("--fail-fast and --keep-going are mutually exclusive")),
        (ff, _) => ff,
    };
    let journal_path = opt_value(opts, "--journal");
    let resume = opts.iter().any(|a| a == "--resume");
    if resume && journal_path.is_none() {
        return Err(input("--resume requires --journal PATH"));
    }
    let parse_u64 = |key: &str, default: u64| -> Result<u64, CliError> {
        match opt_value(opts, key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| input(format!("bad {key} '{v}': {e}"))),
        }
    };
    let jobs = (parse_u64("--jobs", 1)? as usize).max(1);
    // The machine splits as jobs × per-job threads. When --threads asks
    // for real per-job parallelism, cap the product at the available
    // parallelism instead of silently oversubscribing (a pool of
    // single-threaded jobs is the long-standing default and stays
    // unwarned — its workers mostly block on the watchdog).
    let mut threads = parse_threads(opts, 1)?;
    let avail = available_parallelism();
    if threads > 1 && jobs.saturating_mul(threads) > avail {
        let capped = (avail / jobs).max(1);
        eprintln!(
            "warning: --jobs {jobs} × --threads {threads} exceeds the {avail} available \
             core(s); capping per-job threads at {capped}"
        );
        threads = capped;
    }
    let budget_ms = parse_u64("--budget-ms", 1_000)?;
    let retries = parse_u64("--retries", 2)? as u32;
    let grace = Duration::from_millis(parse_u64("--grace-ms", 2_000)?);
    let timeout = opt_value(opts, "--timeout-ms")
        .map(|v| {
            v.parse::<u64>()
                .map(Duration::from_millis)
                .map_err(|e| input(format!("bad --timeout-ms '{v}': {e}")))
        })
        .transpose()?;
    // One --fault flag serves both layers: journal-write faults
    // (torn@N | jcorrupt@N) break the durability path, anything else is
    // the metered FaultPlan grammar injected into every attempt.
    let mut journal_fault = None;
    let fault = match opt_value(opts, "--fault") {
        None => None,
        Some(v) => match JournalFault::parse(&v) {
            Some(Ok(f)) => {
                if journal_path.is_none() {
                    return Err(input(
                        "journal faults (torn@N | jcorrupt@N) require --journal PATH",
                    ));
                }
                journal_fault = Some(f);
                None
            }
            Some(Err(e)) => return Err(input(e)),
            None => Some(FaultPlan::parse(&v).map_err(CliError::Input)?),
        },
    };

    let queue = collect_queue(path)?;
    let entries: Vec<QueueEntry> = queue.iter().map(|f| load_job(f)).collect();

    // With --fail-fast a pre-run failure stops the queue exactly like a
    // failed run: jobs after the first pre-failure never start.
    let cut = if fail_fast {
        entries
            .iter()
            .position(|e| matches!(e, QueueEntry::PreFailed(_)))
            .map(|i| i + 1)
            .unwrap_or(entries.len())
    } else {
        entries.len()
    };

    // The journal is keyed to the queue's identity: resuming against a
    // journal written for a different job list must start fresh, not
    // splice unrelated results.
    let names: Vec<&str> = entries
        .iter()
        .map(|e| match e {
            QueueEntry::Job(spec) => spec.name.as_str(),
            QueueEntry::PreFailed(out) => out.name.as_str(),
        })
        .collect();
    let digest = journal::digest64(names.join("\n").as_bytes());

    // Recover the journal (on --resume) and open it for appending. Only
    // supervised runs are journaled: pre-run failures and --fail-fast
    // skips are recomputed deterministically from the queue itself.
    let mut replay: std::collections::HashMap<String, JournalRecord> = Default::default();
    let writer = match &journal_path {
        None => None,
        Some(jp) => {
            let jpath = std::path::Path::new(jp);
            let mut fresh = true;
            if resume {
                match journal::recover(jpath) {
                    Ok(rec) => {
                        for w in &rec.warnings {
                            eprintln!("srtw-persist: {jp}: {w}");
                        }
                        if rec.digest != digest {
                            eprintln!(
                                "warning: journal {jp} was written for a different job list \
                                 (digest mismatch); starting fresh"
                            );
                        } else {
                            for r in rec.records {
                                replay.insert(r.name.clone(), r);
                            }
                            fresh = false;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                        eprintln!("warning: journal {jp} does not exist; starting fresh");
                    }
                    Err(e) => return Err(input(format!("cannot read journal {jp}: {e}"))),
                }
            }
            let mut w = if fresh {
                JournalWriter::create(jpath, digest)
                    .map_err(|e| input(format!("cannot create journal {jp}: {e}")))?
            } else {
                JournalWriter::open_append(jpath)
                    .map_err(|e| input(format!("cannot open journal {jp}: {e}")))?
            };
            w.set_fault(journal_fault);
            Some(std::sync::Arc::new(std::sync::Mutex::new(w)))
        }
    };

    let cfg = BatchConfig {
        jobs,
        supervisor: SupervisorConfig {
            timeout,
            grace,
            budget_ms,
            budget_retries: retries,
            fault,
            threads,
            cancel: None,
        },
        fail_fast,
    };
    let specs: Vec<JobSpec> = entries
        .iter()
        .take(cut)
        .filter_map(|e| match e {
            QueueEntry::Job(spec) if !replay.contains_key(&spec.name) => Some(spec.clone()),
            _ => None,
        })
        .collect();
    if resume {
        let replayed = entries
            .iter()
            .take(cut)
            .filter(|e| matches!(e, QueueEntry::Job(s) if replay.contains_key(&s.name)))
            .count();
        eprintln!(
            "journal: replayed {replayed} completed job(s); running {} fresh",
            specs.len()
        );
    }
    // Each outcome is appended and fsync'd on the worker thread that
    // produced it, *before* the batch moves on. A failed append means the
    // journal can no longer honour its durability promise, so the run
    // dies like a crash (exit 3) — which is exactly what the injected
    // torn@N/jcorrupt@N faults simulate.
    let observer: Option<OutcomeObserver> = writer.as_ref().map(|w| {
        let w = std::sync::Arc::clone(w);
        let jp = journal_path.clone().unwrap_or_default();
        std::sync::Arc::new(move |_i: usize, outcome: &JobOutcome| {
            let mut guard = w.lock().unwrap();
            if let Err(e) = guard.append(&JournalRecord::from_outcome(outcome)) {
                eprintln!("internal error: journal write failed ({jp}): {e}");
                std::process::exit(3);
            }
        }) as OutcomeObserver
    });
    let ran = run_batch_observed(specs, &cfg, observer);

    // Re-assemble in input order: replayed journal records splice in
    // verbatim, supervised outcomes fill the remaining job slots,
    // pre-failures keep theirs, and everything past the --fail-fast cut
    // is skipped. Rendering a JournalRecord is byte-identical to
    // rendering the outcome it was captured from, so a resumed run's
    // report matches an uninterrupted run's.
    let mut supervised = ran.jobs.into_iter();
    let merged: Vec<JournalRecord> = entries
        .into_iter()
        .enumerate()
        .map(|(i, e)| match e {
            QueueEntry::PreFailed(out) => Ok(JournalRecord::from_outcome(&out)),
            QueueEntry::Job(spec) if i >= cut => {
                Ok(JournalRecord::from_outcome(&JobOutcome::skipped(spec.name)))
            }
            QueueEntry::Job(spec) => match replay.remove(&spec.name) {
                Some(rec) => Ok(rec),
                None => supervised
                    .next()
                    .map(|o| JournalRecord::from_outcome(&o))
                    .ok_or_else(|| {
                        // A supervisor bug, not a user error: surface it
                        // through the typed exit-3 path (and the --json
                        // error document), never as a process abort.
                        CliError::Internal(format!(
                            "batch supervisor returned no outcome for queued job '{}'",
                            spec.name
                        ))
                    }),
            },
        })
        .collect::<Result<_, CliError>>()?;
    let report = JournaledReport {
        jobs: merged,
        wall: started.elapsed(),
    };

    if json {
        println!("{}", report.to_json_text());
    } else {
        println!("{report}");
    }
    let counts = report.counts();
    match report.status() {
        BatchStatus::AllExact => Ok(ExitCode::SUCCESS),
        BatchStatus::SomeDegraded => {
            eprintln!(
                "warning: {} job(s) completed with degraded (still sound) bounds",
                counts.degraded
            );
            Ok(ExitCode::SUCCESS)
        }
        BatchStatus::SomeFailed => {
            eprintln!(
                "error: {} job(s) failed every rung of the ladder{}",
                counts.failed,
                if counts.skipped > 0 {
                    format!(", {} skipped", counts.skipped)
                } else {
                    String::new()
                }
            );
            Ok(ExitCode::from(4))
        }
    }
}

fn opt_value(opts: &[String], key: &str) -> Option<String> {
    opts.iter()
        .position(|a| a == key)
        .and_then(|i| opts.get(i + 1))
        .cloned()
}

/// The machine's available hardware parallelism, with a safe fallback
/// of 1 when the platform cannot report it.
fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parses `--threads` (must be at least 1); `default` applies when the
/// flag is absent.
fn parse_threads(opts: &[String], default: usize) -> Result<usize, CliError> {
    match opt_value(opts, "--threads") {
        None => Ok(default),
        Some(v) => {
            let n: usize = v
                .parse()
                .map_err(|e| input(format!("bad --threads '{v}': {e}")))?;
            if n == 0 {
                return Err(input("--threads must be at least 1"));
            }
            Ok(n)
        }
    }
}

fn parse_budget(opts: &[String]) -> Result<Budget, CliError> {
    let mut budget = Budget::default();
    if let Some(v) = opt_value(opts, "--budget-ms") {
        let ms: u64 = v
            .parse()
            .map_err(|e| input(format!("bad --budget-ms '{v}': {e}")))?;
        budget = budget.with_wall_ms(ms);
    }
    if let Some(v) = opt_value(opts, "--max-paths") {
        let n: u64 = v
            .parse()
            .map_err(|e| input(format!("bad --max-paths '{v}': {e}")))?;
        budget = budget.with_max_paths(n);
    }
    if let Some(v) = opt_value(opts, "--max-segments") {
        let n: u64 = v
            .parse()
            .map_err(|e| input(format!("bad --max-segments '{v}': {e}")))?;
        budget = budget.with_max_segments(n);
    }
    Ok(budget)
}

fn server_curve(sys: &SystemSpec) -> Result<Curve, CliError> {
    match &sys.server {
        Some(s) => s.beta_lower().map_err(|e| CliError::Internal(e.to_string())),
        None => Err(input(
            "the system file declares no server (add a 'server …' line)",
        )),
    }
}

/// Prints the stderr degradation warning and reports whether any stream
/// degraded (the process still exits 0).
fn warn_if_degraded(per: &[DelayAnalysis], rtc_degraded: bool) -> bool {
    let mut kinds: Vec<String> = per
        .iter()
        .flat_map(|a| a.degradations.iter().map(|d| d.tripped.to_string()))
        .collect();
    if rtc_degraded && kinds.is_empty() {
        kinds.push("budget".into());
    }
    if kinds.is_empty() {
        return false;
    }
    kinds.sort();
    kinds.dedup();
    eprintln!(
        "warning: analysis budget exhausted ({}); reported bounds are sound but degraded",
        kinds.join(", ")
    );
    true
}

fn analyze(sys: &SystemSpec, opts: &[String]) -> Result<(), CliError> {
    let beta = server_curve(sys)?;
    let scheduler = opt_value(opts, "--scheduler").unwrap_or_else(|| "fifo".into());
    let json = opts.iter().any(|a| a == "--json");
    let budget = parse_budget(opts)?;
    let threads = parse_threads(opts, available_parallelism())?;
    let cfg = AnalysisConfig {
        budget: budget.clone(),
        threads,
        ..Default::default()
    };
    match scheduler.as_str() {
        "fifo" => {
            // The service's POST /analyze emits the same document through
            // the same code path, keeping the two entry points
            // byte-identical by construction.
            let report = fifo_report(&sys.tasks, &beta, &cfg)
                .map_err(|e| CliError::Internal(e.to_string()))?;
            warn_if_degraded(&report.per, !report.rtc.quality.is_exact());
            if json {
                println!("{}", report.to_json());
            } else {
                println!("scheduler: FIFO");
                println!("RTC baseline (stream-agnostic): {}", report.rtc);
                for a in &report.per {
                    println!("\n{a}");
                }
            }
        }
        "fp" => {
            let per = fixed_priority_structural_with(&sys.tasks, &beta, &cfg)
                .map_err(|e| CliError::Internal(e.to_string()))?;
            let degraded = warn_if_degraded(&per, false);
            if json {
                println!(
                    "{}",
                    Json::object(vec![
                        ("scheduler", Json::str("fp")),
                        ("degraded", Json::Bool(degraded)),
                        (
                            "streams",
                            Json::Array(per.iter().map(|a| a.to_json()).collect()),
                        ),
                    ])
                );
            } else {
                println!("scheduler: fixed priority (file order = priority order)");
                for (i, a) in per.iter().enumerate() {
                    println!("\npriority {i}:\n{a}");
                }
            }
        }
        "edf" => {
            let r = edf_schedulable(&sys.tasks, &beta)
                .map_err(|e| CliError::Internal(e.to_string()))?;
            if json {
                println!(
                    "{}",
                    Json::object(vec![
                        ("scheduler", Json::str("edf")),
                        ("degraded", Json::Bool(false)),
                        ("report", r.to_json()),
                    ])
                );
            } else {
                println!("scheduler: EDF (processor-demand criterion)");
                println!(
                    "schedulable: {} (busy window ≤ {}, {} breakpoints)",
                    r.schedulable, r.busy_window, r.breakpoints
                );
                if let Some((t, demand, supply)) = r.violation {
                    println!("first violation: window {t}: demand {demand} > supply {supply}");
                }
            }
        }
        other => return Err(input(format!("unknown scheduler '{other}' (fifo|fp|edf)"))),
    }
    Ok(())
}

/// `srtw serve`: run the resilient analysis service until a shutdown is
/// requested (signal or `POST /shutdown`), then drain gracefully. With
/// `--replicas N` (N ≥ 2) the process becomes a supervision-tree parent
/// over N shared-nothing replica processes; `--internal-replica` is the
/// (internal) replica entry point reached only by self-exec.
fn serve(opts: &[String]) -> Result<ExitCode, CliError> {
    let parse_ms = |key: &str, default: u64| -> Result<u64, CliError> {
        match opt_value(opts, key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| input(format!("bad {key} '{v}': {e}"))),
        }
    };
    let addr = opt_value(opts, "--addr").unwrap_or_else(|| "127.0.0.1:7878".into());

    // One --fault flag serves four layers: process-level specs
    // (abort@N | stall@N:MS | closefd@N) drive the supervision tree,
    // journal specs (torn@N | jcorrupt@N) break batch durability,
    // persistence specs (pers-torn@N | pers-corrupt@N | pers-enospc@N)
    // break the spill store, and anything else is the metered FaultPlan
    // grammar.
    let fault_spec = opt_value(opts, "--fault");
    let journal = opt_value(opts, "--journal");
    let persist = opt_value(opts, "--persist");
    let mut process_fault = None;
    let mut journal_fault = None;
    let mut persist_fault = None;
    let mut meter_fault = None;
    if let Some(spec) = &fault_spec {
        match ProcessFault::parse(spec) {
            Some(Ok(f)) => process_fault = Some(f),
            Some(Err(e)) => return Err(input(e)),
            None => match JournalFault::parse(spec) {
                Some(Ok(f)) => journal_fault = Some(f),
                Some(Err(e)) => return Err(input(e)),
                None => match PersistFault::parse(spec) {
                    Some(Ok(f)) => persist_fault = Some(f),
                    Some(Err(e)) => return Err(input(e)),
                    None => {
                        meter_fault = Some(FaultPlan::parse(spec).map_err(CliError::Input)?)
                    }
                },
            },
        }
    }
    if journal_fault.is_some() && journal.is_none() {
        return Err(input(format!(
            "--fault {} requires --journal PREFIX (there is no journal to break)",
            fault_spec.as_deref().unwrap_or("")
        )));
    }
    if persist_fault.is_some() && persist.is_none() {
        return Err(input(format!(
            "--fault {} requires --persist DIR (there is no spill store to break)",
            fault_spec.as_deref().unwrap_or("")
        )));
    }

    let cfg = ServeConfig {
        addr: addr.clone(),
        workers: (parse_ms("--workers", available_parallelism() as u64)? as usize).max(1),
        queue: (parse_ms("--queue", 64)? as usize).max(1),
        max_conns: (parse_ms("--max-conns", 1_024)? as usize).max(1),
        drain: Duration::from_millis(parse_ms("--drain-ms", 5_000)?),
        grace: Duration::from_millis(parse_ms("--grace-ms", 2_000)?),
        header_timeout: Duration::from_millis(parse_ms("--header-timeout-ms", 2_000)?),
        read_timeout: Duration::from_millis(parse_ms("--read-timeout-ms", 5_000)?),
        default_deadline_ms: opt_value(opts, "--deadline-ms")
            .map(|v| {
                v.parse::<u64>()
                    .map_err(|e| input(format!("bad --deadline-ms '{v}': {e}")))
            })
            .transpose()?,
        threads: parse_threads(opts, 1)?,
        fault: meter_fault,
        process_fault,
        replica: None,
        journal,
        journal_fault,
        cache_bytes: parse_ms("--cache-bytes", 64 * 1024 * 1024)? as usize,
        persist,
        persist_fault,
    };

    if opts.iter().any(|a| a == "--internal-replica") {
        return serve_replica(opts, cfg);
    }

    let replicas = parse_ms("--replicas", 1)? as usize;
    if replicas >= 2 {
        // Process, journal and persistence faults are "targeted": the
        // supervisor hands them to replica 0's first spawn only, so the
        // tree repairs one induced crash instead of a fleet-wide one.
        let targeted =
            process_fault.is_some() || journal_fault.is_some() || persist_fault.is_some();
        return serve_supervisor(opts, replicas, &addr, cfg.drain, fault_spec, targeted);
    }

    let server = Server::spawn(cfg).map_err(|e| input(format!("cannot bind {addr}: {e}")))?;
    signal::install_handlers();
    // Flushed immediately so a harness reading our stdout learns the
    // resolved (possibly ephemeral) port before the first request.
    println!("srtw-serve listening on {}", server.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.wait_shutdown();
    eprintln!("shutdown requested; draining in-flight work");
    let report = server.shutdown();
    if report.clean() {
        eprintln!("drained cleanly");
    } else {
        // Mirrors batch degradation: still exit 0, with a stderr warning
        // — the cancelled requests were answered with sound bounds.
        eprintln!(
            "warning: drain incomplete: {} request(s) cancelled, {} worker thread(s) abandoned",
            report.cancelled, report.abandoned
        );
    }
    Ok(ExitCode::SUCCESS)
}

/// The replica entry point: rebuild the inherited shared listener, serve
/// on it, and announce the private admin address for the parent.
fn serve_replica(opts: &[String], mut cfg: ServeConfig) -> Result<ExitCode, CliError> {
    let fd: i32 = opt_value(opts, "--listener-fd")
        .ok_or_else(|| input("--internal-replica requires --listener-fd"))?
        .parse()
        .map_err(|e| input(format!("bad --listener-fd: {e}")))?;
    let index: usize = opt_value(opts, "--replica-index")
        .ok_or_else(|| input("--internal-replica requires --replica-index"))?
        .parse()
        .map_err(|e| input(format!("bad --replica-index: {e}")))?;
    let listener = srtw::serve::sys::listener_from_fd(fd)
        .ok_or_else(|| input(format!("cannot adopt inherited listener fd {fd}")))?;
    cfg.replica = Some(index);
    let server = Server::from_listener(listener, cfg)
        .map_err(|e| input(format!("replica {index}: cannot start: {e}")))?;
    signal::install_handlers();
    let admin = server
        .spawn_admin("127.0.0.1:0")
        .map_err(|e| input(format!("replica {index}: cannot bind admin plane: {e}")))?;
    println!(
        "srtw-serve replica {index} pid {} admin on {admin}",
        std::process::id()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.wait_shutdown();
    eprintln!("replica {index}: shutdown requested; draining");
    let report = server.shutdown();
    if !report.clean() {
        eprintln!(
            "replica {index}: warning: drain incomplete: {} cancelled, {} abandoned",
            report.cancelled, report.abandoned
        );
    }
    Ok(ExitCode::SUCCESS)
}

/// The supervision-tree parent: bind once, replicate, restart, drain.
fn serve_supervisor(
    opts: &[String],
    replicas: usize,
    addr: &str,
    drain: Duration,
    fault_spec: Option<String>,
    targeted_fault: bool,
) -> Result<ExitCode, CliError> {
    // Flags forwarded verbatim to every replica. --addr, --replicas,
    // --admin-addr and --fault stay with the parent (the fault is routed
    // below: meter faults to every replica, process and journal faults to
    // replica 0's first spawn only).
    let mut child_args = Vec::new();
    for key in [
        "--workers",
        "--queue",
        "--max-conns",
        "--drain-ms",
        "--grace-ms",
        "--header-timeout-ms",
        "--read-timeout-ms",
        "--deadline-ms",
        "--threads",
        "--journal",
        "--cache-bytes",
        "--persist",
    ] {
        if let Some(v) = opt_value(opts, key) {
            child_args.push(key.to_string());
            child_args.push(v);
        }
    }
    if !targeted_fault {
        if let Some(spec) = &fault_spec {
            child_args.push("--fault".into());
            child_args.push(spec.clone());
        }
    }
    let rcfg = ReplicaConfig {
        addr: addr.to_string(),
        admin_addr: opt_value(opts, "--admin-addr").unwrap_or_else(|| "127.0.0.1:0".into()),
        replicas,
        restart: RestartPolicy::default(),
        drain,
        child_args,
        process_fault: targeted_fault.then_some(fault_spec).flatten(),
    };
    signal::install_handlers();
    let sup =
        Supervisor::bind(rcfg).map_err(|e| input(format!("cannot start supervisor: {e}")))?;
    Ok(ExitCode::from(sup.run() as u8))
}

/// `srtw flood`: the load generator behind the replicated soak — many
/// short-lived (or keep-alive-reusing) connections against a running
/// service, with a machine-readable outcome line. Transport errors do not
/// fail the command: under injected process faults they are expected, and
/// the caller asserts on the printed counts instead.
fn flood(opts: &[String]) -> Result<ExitCode, CliError> {
    use srtw::serve::http::client_roundtrip;
    use std::sync::atomic::{AtomicU64, Ordering};
    let addr: std::net::SocketAddr = opts
        .first()
        .ok_or_else(|| {
            input(
                "usage: srtw flood <addr> [--count N] [--concurrency N] [--analyze FILE | --batch MANIFEST]",
            )
        })?
        .parse()
        .map_err(|e| input(format!("bad flood address: {e}")))?;
    let count: u64 = opt_value(opts, "--count")
        .unwrap_or_else(|| "1000".into())
        .parse()
        .map_err(|e| input(format!("bad --count: {e}")))?;
    let concurrency: u64 = opt_value(opts, "--concurrency")
        .unwrap_or_else(|| "4".into())
        .parse::<u64>()
        .map_err(|e| input(format!("bad --concurrency: {e}")))?
        .max(1);
    if opt_value(opts, "--analyze").is_some() && opt_value(opts, "--batch").is_some() {
        return Err(input("--analyze and --batch are mutually exclusive"));
    }
    let body = match opt_value(opts, "--analyze") {
        None => None,
        Some(path) => Some(
            std::fs::read(&path).map_err(|e| input(format!("cannot read {path}: {e}")))?,
        ),
    };
    // --batch floods the streaming endpoint: each request POSTs the
    // manifest body and parses the chunked ndjson response
    // (client_roundtrip decodes the chunked framing), counting the job
    // lines it received so a soak can assert that every stream was
    // complete, not merely 200.
    let batch = match opt_value(opts, "--batch") {
        None => None,
        Some(path) => Some(
            std::fs::read(&path).map_err(|e| input(format!("cannot read {path}: {e}")))?,
        ),
    };
    // --prewarm N posts the --analyze body N times before the timed run,
    // so the measured flood hits the service's warm result cache; with 0
    // (the default) the flood measures the cold path.
    let prewarm: u64 = opt_value(opts, "--prewarm")
        .unwrap_or_else(|| "0".into())
        .parse()
        .map_err(|e| input(format!("bad --prewarm: {e}")))?;
    if prewarm > 0 {
        let Some(b) = body.as_deref() else {
            return Err(input("--prewarm requires --analyze FILE"));
        };
        for _ in 0..prewarm {
            let _ = client_roundtrip(&addr, "POST", "/analyze", &[], b);
        }
    }
    let started = std::time::Instant::now();
    let ok = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let client_err = AtomicU64::new(0);
    let server_err = AtomicU64::new(0);
    let transport = AtomicU64::new(0);
    let batch_lines = AtomicU64::new(0);
    std::thread::scope(|s| {
        for worker in 0..concurrency {
            let mine = count / concurrency + u64::from(worker < count % concurrency);
            let (ok, shed, client_err, server_err, transport, batch_lines) =
                (&ok, &shed, &client_err, &server_err, &transport, &batch_lines);
            let body = body.as_deref();
            let batch = batch.as_deref();
            s.spawn(move || {
                for _ in 0..mine {
                    let result = match (body, batch) {
                        (None, None) => client_roundtrip(&addr, "GET", "/healthz", &[], b""),
                        (Some(b), _) => client_roundtrip(&addr, "POST", "/analyze", &[], b),
                        (None, Some(m)) => client_roundtrip(&addr, "POST", "/batch", &[], m),
                    };
                    match result {
                        Ok((status, _, resp_body)) => {
                            if batch.is_some() && status == 200 {
                                let jobs = resp_body
                                    .lines()
                                    .filter(|l| !l.starts_with("{\"summary\""))
                                    .count();
                                batch_lines.fetch_add(jobs as u64, Ordering::Relaxed);
                            }
                            match status {
                                200..=299 => ok.fetch_add(1, Ordering::Relaxed),
                                503 => shed.fetch_add(1, Ordering::Relaxed),
                                400..=499 => client_err.fetch_add(1, Ordering::Relaxed),
                                _ => server_err.fetch_add(1, Ordering::Relaxed),
                            }
                        }
                        Err(_) => transport.fetch_add(1, Ordering::Relaxed),
                    };
                }
            });
        }
    });
    let batch_suffix = if batch.is_some() {
        format!(" batch_lines={}", batch_lines.into_inner())
    } else {
        String::new()
    };
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    println!(
        "flood complete: total={count} ok={} shed_503={} client_4xx={} server_5xx={} transport_errors={} req_per_s={:.1}{batch_suffix}",
        ok.into_inner(),
        shed.into_inner(),
        client_err.into_inner(),
        server_err.into_inner(),
        transport.into_inner(),
        count as f64 / elapsed,
    );
    Ok(ExitCode::SUCCESS)
}

fn rbf(sys: &SystemSpec, opts: &[String]) -> Result<(), CliError> {
    let horizon: Q = opt_value(opts, "--horizon")
        .unwrap_or_else(|| "100".into())
        .parse()
        .map_err(|e| input(format!("bad --horizon: {e}")))?;
    for t in &sys.tasks {
        let rbf = Rbf::compute(t, horizon);
        println!("task {}: rbf breakpoints (window, work):", t.name());
        for &(s, w) in rbf.points() {
            println!("  {s:>8}  {w}");
        }
    }
    Ok(())
}

fn simulate(sys: &SystemSpec, opts: &[String]) -> Result<(), CliError> {
    let beta = server_curve(sys)?;
    let seeds: u64 = opt_value(opts, "--seeds")
        .unwrap_or_else(|| "20".into())
        .parse()
        .map_err(|e| input(format!("bad --seeds: {e}")))?;
    let horizon: Q = opt_value(opts, "--horizon")
        .unwrap_or_else(|| "300".into())
        .parse()
        .map_err(|e| input(format!("bad --horizon: {e}")))?;
    // Simulate on the fluid instance at the server's guaranteed rate
    // (which dominates the declared lower curve).
    let service = ServiceProcess::fluid(beta.rate());
    let per = fifo_structural(&sys.tasks, &beta, &AnalysisConfig::default())
        .map_err(|e| CliError::Internal(e.to_string()))?;
    let mut worst = Q::ZERO;
    for seed in 0..seeds {
        let traces: Vec<_> = sys
            .tasks
            .iter()
            .enumerate()
            .map(|(i, t)| earliest_random_walk(t, horizon, None, seed * 131 + i as u64))
            .collect();
        let out = simulate_fifo(&sys.tasks, &traces, &service);
        for (si, task) in sys.tasks.iter().enumerate() {
            for v in task.vertex_ids() {
                let d = out.max_delay_of(si, v);
                worst = worst.max(d);
                if d > per[si].bound_of(v) {
                    return Err(CliError::Internal(format!(
                        "BUG: simulated delay {d} exceeds bound {} (stream {si}, {v})",
                        per[si].bound_of(v)
                    )));
                }
            }
        }
    }
    println!(
        "simulated {seeds} random runs to horizon {horizon}: worst observed delay {worst} \
         (all within the analytic per-type bounds)"
    );
    Ok(())
}
