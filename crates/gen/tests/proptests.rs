//! Property-based tests for the workload generator.

use proptest::prelude::*;
use srtw_gen::{generate_drt, generate_task_set, DrtGenConfig};
use srtw_minplus::Q;
use srtw_workload::long_run_utilization;

fn config() -> impl Strategy<Value = DrtGenConfig> {
    (2usize..8, 0usize..10, 1i128..9, any::<bool>()).prop_map(|(n, extra, unum, dl)| {
        DrtGenConfig {
            vertices: n,
            extra_edges: extra,
            separation_range: (3, 30),
            wcet_range: (1, 8),
            target_utilization: Some(Q::new(unum, 10)),
            deadline_factor: if dl { Some(Q::int(2)) } else { None },
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generator_is_deterministic_and_hits_target(cfg in config(), seed in any::<u64>()) {
        let a = generate_drt(&cfg, seed);
        let b = generate_drt(&cfg, seed);
        prop_assert_eq!(&a, &b, "same seed must reproduce the same task");
        prop_assert_eq!(a.num_vertices(), cfg.vertices);
        prop_assert_eq!(
            long_run_utilization(&a),
            cfg.target_utilization.unwrap(),
            "exact utilization rescaling failed"
        );
        prop_assert!(a.has_cycle(), "ring construction guarantees a cycle");
        if cfg.deadline_factor.is_some() {
            for v in a.vertex_ids() {
                prop_assert!(a.deadline(v).is_some());
            }
        }
    }

    #[test]
    fn task_sets_partition_utilization(
        cfg in config(),
        count in 1usize..5,
        seed in any::<u64>(),
        unum in 1i128..9,
    ) {
        let total = Q::new(unum, 10);
        let set = generate_task_set(&cfg, count, total, seed);
        prop_assert_eq!(set.len(), count);
        let sum: Q = set.iter().map(long_run_utilization).fold(Q::ZERO, |a, b| a + b);
        prop_assert_eq!(sum, total);
    }

    #[test]
    fn generated_graphs_are_analysable(cfg in config(), seed in any::<u64>()) {
        // Every generated stable task must pass the full analysis without
        // panicking, and satisfy the stream-max == RTC theorem.
        let task = generate_drt(&cfg, seed);
        let beta = srtw_minplus::Curve::affine(Q::ZERO, Q::ONE);
        if long_run_utilization(&task) < Q::ONE {
            let s = srtw_core::structural_delay(&task, &beta).unwrap();
            let r = srtw_core::rtc_delay(&task, &beta).unwrap();
            prop_assert_eq!(s.stream_bound, r.bound);
        }
    }
}
