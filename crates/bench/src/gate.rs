//! The performance-regression gate behind `experiments gate` and
//! `scripts/verify.sh` step 7.
//!
//! Reads two or more `BENCH_*.json` documents (the format written by
//! [`crate::timing::write_json`]), pairs benchmarks by `group/name`, and
//! fails when the newest document's median regresses by more than the
//! allowed factor against the **best** (smallest) baseline median of any
//! older document. Comparing against the best baseline keeps the gate
//! monotone: a regression cannot be laundered by first committing a slow
//! baseline.
//!
//! Only the groups named in [`GateConfig::groups`] are gated — timing on
//! shared CI boxes is noisy, so the gate watches the algorithmic suites
//! (`convolution`, `rbf` by default) whose medians are stable, not the
//! thread-scaling suite whose numbers are machine-relative by design.

use std::collections::BTreeMap;

/// One parsed benchmark median, keyed `group/name`.
pub type Medians = BTreeMap<String, f64>;

/// Gate parameters: the allowed slow-down factor and the gated groups.
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// Newest median may be at most `factor ×` the best baseline median.
    pub factor: f64,
    /// Benchmark groups the gate applies to.
    pub groups: Vec<String>,
}

impl Default for GateConfig {
    fn default() -> GateConfig {
        GateConfig {
            factor: 1.5,
            groups: vec!["convolution".into(), "rbf".into()],
        }
    }
}

/// Extracts `group/name → median_ns` from a `srtw-bench-v1` document.
///
/// This is a purpose-built scanner, not a general JSON parser: it walks
/// the one shape [`crate::timing::to_json`] writes (an object with a
/// `"groups"` object of arrays of flat objects) and rejects anything
/// else with a message naming the offending position.
pub fn parse_medians(text: &str) -> Result<Medians, String> {
    let mut p = Scanner {
        b: text.as_bytes(),
        i: 0,
    };
    let mut out = Medians::new();
    p.skip_ws();
    p.expect(b'{')?;
    loop {
        p.skip_ws();
        let key = p.string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        if key == "groups" {
            p.expect(b'{')?;
            loop {
                p.skip_ws();
                let group = p.string()?;
                p.skip_ws();
                p.expect(b':')?;
                p.skip_ws();
                p.expect(b'[')?;
                loop {
                    p.skip_ws();
                    let (name, median) = p.bench_entry()?;
                    out.insert(format!("{group}/{name}"), median);
                    p.skip_ws();
                    if !p.eat(b',') {
                        break;
                    }
                }
                p.skip_ws();
                p.expect(b']')?;
                p.skip_ws();
                if !p.eat(b',') {
                    break;
                }
            }
            p.skip_ws();
            p.expect(b'}')?;
        } else {
            p.skip_value()?;
        }
        p.skip_ws();
        if !p.eat(b',') {
            break;
        }
    }
    p.skip_ws();
    p.expect(b'}')?;
    Ok(out)
}

struct Scanner<'a> {
    b: &'a [u8],
    i: usize,
}

impl Scanner<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {} of the bench document",
                c as char, self.i
            ))
        }
    }

    /// A JSON string (the bench writer never emits escapes other than
    /// `\"` and `\\`, but all standard escapes are tolerated).
    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'"' => {
                    self.i += 1;
                    return Ok(s);
                }
                b'\\' => {
                    self.i += 1;
                    if self.i < self.b.len() {
                        s.push(self.b[self.i] as char);
                        self.i += 1;
                    }
                }
                c => {
                    s.push(c as char);
                    self.i += 1;
                }
            }
        }
        Err("unterminated string in the bench document".into())
    }

    /// One `{"name": …, "median_ns": …, …}` benchmark entry.
    fn bench_entry(&mut self) -> Result<(String, f64), String> {
        self.expect(b'{')?;
        let mut name: Option<String> = None;
        let mut median: Option<f64> = None;
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            match key.as_str() {
                "name" => name = Some(self.string()?),
                "median_ns" => median = Some(self.number()?),
                _ => self.skip_value()?,
            }
            self.skip_ws();
            if !self.eat(b',') {
                break;
            }
        }
        self.skip_ws();
        self.expect(b'}')?;
        match (name, median) {
            (Some(n), Some(m)) => Ok((n, m)),
            _ => Err("bench entry without name/median_ns".into()),
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        let start = self.i;
        while self.i < self.b.len()
            && matches!(self.b[self.i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad number at byte {start} of the bench document"))
    }

    /// Skips any JSON value (used for the fields the gate ignores).
    fn skip_value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.b.get(self.i) {
            Some(b'"') => self.string().map(|_| ()),
            Some(b'{') => {
                self.i += 1;
                self.skip_ws();
                if self.eat(b'}') {
                    return Ok(());
                }
                loop {
                    self.skip_ws();
                    self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_value()?;
                    self.skip_ws();
                    if !self.eat(b',') {
                        break;
                    }
                }
                self.skip_ws();
                self.expect(b'}')
            }
            Some(b'[') => {
                self.i += 1;
                self.skip_ws();
                if self.eat(b']') {
                    return Ok(());
                }
                loop {
                    self.skip_value()?;
                    self.skip_ws();
                    if !self.eat(b',') {
                        break;
                    }
                }
                self.skip_ws();
                self.expect(b']')
            }
            Some(_) => {
                // number / true / false / null
                while self.i < self.b.len()
                    && !matches!(self.b[self.i], b',' | b'}' | b']')
                    && !self.b[self.i].is_ascii_whitespace()
                {
                    self.i += 1;
                }
                Ok(())
            }
            None => Err("unexpected end of the bench document".into()),
        }
    }
}

/// Compares the newest medians against the element-wise **best** baseline
/// medians; returns one violation message per gated benchmark whose
/// median exceeds `factor ×` its best baseline. Benchmarks present on
/// only one side are skipped (suites are allowed to grow).
pub fn violations(newest: &Medians, baselines: &[Medians], cfg: &GateConfig) -> Vec<String> {
    let mut out = Vec::new();
    for (key, &new_ns) in newest {
        let group = key.split('/').next().unwrap_or("");
        if !cfg.groups.iter().any(|g| g == group) {
            continue;
        }
        let best = baselines
            .iter()
            .filter_map(|b| b.get(key))
            .copied()
            .fold(f64::INFINITY, f64::min);
        if best.is_finite() && new_ns > best * cfg.factor {
            out.push(format!(
                "{key}: {new_ns:.0} ns vs best baseline {best:.0} ns ({:.2}x > {:.2}x allowed)",
                new_ns / best,
                cfg.factor
            ));
        }
    }
    out
}

/// Gated groups with **no baseline coverage**: no older document carries
/// a single benchmark of the group, so there is nothing to gate against.
/// The gate must skip these (a freshly added suite cannot fail its first
/// commit), but the skip has to be announced — silence reads as "checked
/// and fine" when nothing was checked.
pub fn fresh_groups(newest: &Medians, baselines: &[Medians], cfg: &GateConfig) -> Vec<String> {
    cfg.groups
        .iter()
        .filter(|g| {
            let prefix = format!("{g}/");
            let in_newest = newest.keys().any(|k| k.starts_with(&prefix));
            let in_baselines = baselines
                .iter()
                .any(|b| b.keys().any(|k| k.starts_with(&prefix)));
            in_newest && !in_baselines
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::{to_json, Sample};

    fn sample(group: &'static str, name: &str, median: f64) -> Sample {
        Sample {
            group,
            name: name.into(),
            median_ns: median,
            min_ns: median * 0.9,
            max_ns: median * 1.1,
            samples: 3,
            iters: 10,
            allocs_per_iter: None,
        }
    }

    #[test]
    fn parses_the_writer_format_roundtrip() {
        let doc = to_json(&[
            sample("convolution", "conv_upto/50", 1234.5),
            sample("rbf", "rbf_by_graph_size/5", 88.0),
            sample("parallel_structural", "explore_threads/2", 9.0),
        ])
        .render();
        let m = parse_medians(&doc).unwrap();
        assert_eq!(m.len(), 3);
        assert_eq!(m["convolution/conv_upto/50"], 1234.5);
        assert_eq!(m["rbf/rbf_by_graph_size/5"], 88.0);
    }

    #[test]
    fn gate_fails_only_on_gated_group_regressions() {
        let old = parse_medians(
            &to_json(&[
                sample("convolution", "conv_upto/50", 100.0),
                sample("rbf", "rbf_by_horizon/100", 100.0),
                sample("parallel_structural", "explore_threads/2", 100.0),
            ])
            .render(),
        )
        .unwrap();
        let new = parse_medians(
            &to_json(&[
                sample("convolution", "conv_upto/50", 140.0), // within 1.5x
                sample("rbf", "rbf_by_horizon/100", 200.0),   // regression
                sample("parallel_structural", "explore_threads/2", 900.0), // ungated
                sample("rbf", "brand_new_case", 1e9),         // no baseline
            ])
            .render(),
        )
        .unwrap();
        let v = violations(&new, &[old], &GateConfig::default());
        assert_eq!(v.len(), 1);
        assert!(v[0].starts_with("rbf/rbf_by_horizon/100:"));
    }

    #[test]
    fn best_baseline_wins_across_documents() {
        let mk = |ns: f64| {
            parse_medians(&to_json(&[sample("rbf", "x", ns)]).render()).unwrap()
        };
        let new = mk(160.0);
        // 160 ≤ 1.5×120 against the slow document alone, but the best
        // baseline is 100 → violation.
        let v = violations(&new, &[mk(120.0), mk(100.0)], &GateConfig::default());
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn fresh_suites_are_skipped_with_a_notice_not_an_error() {
        let old = parse_medians(&to_json(&[sample("rbf", "x", 100.0)]).render()).unwrap();
        let new = parse_medians(
            &to_json(&[
                sample("rbf", "x", 110.0),
                // A brand-new gated suite, absurdly slow: no baseline →
                // must not violate, must be reported as fresh.
                sample("server_throughput", "analyze_roundtrip", 1e12),
            ])
            .render(),
        )
        .unwrap();
        let cfg = GateConfig {
            factor: 1.5,
            groups: vec!["rbf".into(), "server_throughput".into()],
        };
        assert!(violations(&new, std::slice::from_ref(&old), &cfg).is_empty());
        assert_eq!(fresh_groups(&new, std::slice::from_ref(&old), &cfg), ["server_throughput"]);
        // Once any baseline carries the group, it is no longer fresh.
        assert!(fresh_groups(&new, &[old, new.clone()], &cfg).is_empty());
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_medians("{").is_err());
        assert!(parse_medians("{\"groups\":{\"g\":[{\"name\":\"x\"}]}}").is_err());
    }
}
