//! Multi-client soak: concurrent clients hammer the service with a mix of
//! generated systems, and every 200 body must be **byte-identical** to
//! `srtw analyze --json` on the same input (modulo the measured
//! `runtime_secs`). Shed responses may only ever be 503, and the final
//! drain must leave no leaked worker threads.

use srtw::serve::http::client_roundtrip;
use srtw::serve::{ServeConfig, Server};
use std::process::Command;
use std::sync::Arc;

/// Six small exact-in-milliseconds systems with enough variety (rates,
/// server kinds, multi-stream) to shake out cross-request state leaks.
fn systems() -> Vec<String> {
    let mut out = Vec::new();
    for (i, (wcet, sep, rate)) in [(2, 9, 1), (3, 11, 1), (1, 7, 2), (4, 17, 1), (2, 13, 2)]
        .iter()
        .enumerate()
    {
        out.push(format!(
            "task t{i}\nvertex a wcet={wcet} deadline=40\nvertex b wcet=1\n\
             edge a b sep={sep}\nedge b a sep={sep}\n\
             server rate-latency rate={rate} latency=2\n"
        ));
    }
    out.push(
        "task hi\nvertex x wcet=3\nedge x x sep=12\n\
         task lo\nvertex y wcet=1\nedge y y sep=9\n\
         server fluid rate=1\n"
            .to_string(),
    );
    out
}

/// Strips every `"runtime_secs":<number>` value (the document's one
/// nondeterministic field).
fn strip_runtime(doc: &str) -> String {
    let mut out = String::with_capacity(doc.len());
    let mut rest = doc;
    while let Some(pos) = rest.find("\"runtime_secs\":") {
        let after = pos + "\"runtime_secs\":".len();
        out.push_str(&rest[..after]);
        out.push('0');
        let tail = &rest[after..];
        let end = tail.find([',', '}']).unwrap_or(tail.len());
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

/// The CLI's stdout for `analyze <system> --json`, via a temp file.
fn cli_expected(index: usize, text: &str) -> String {
    let path = std::env::temp_dir().join(format!(
        "srtw-soak-{}-{index}.srtw",
        std::process::id()
    ));
    std::fs::write(&path, text).expect("write temp system");
    let out = Command::new(env!("CARGO_BIN_EXE_srtw"))
        .args(["analyze", path.to_str().unwrap(), "--json"])
        .output()
        .expect("srtw runs");
    let _ = std::fs::remove_file(&path);
    assert!(
        out.status.success(),
        "CLI failed on soak system {index}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 CLI output")
}

#[test]
fn soak_byte_identity_under_concurrent_clients() {
    const CLIENTS: usize = 4;
    const REQUESTS: usize = 12;

    let systems = Arc::new(systems());
    let expected: Arc<Vec<String>> = Arc::new(
        systems
            .iter()
            .enumerate()
            .map(|(i, text)| strip_runtime(&cli_expected(i, text)))
            .collect(),
    );

    let server = Server::spawn(ServeConfig {
        workers: 4,
        queue: 8,
        ..Default::default()
    })
    .expect("bind an ephemeral port");
    let addr = server.addr();

    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let systems = Arc::clone(&systems);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let mut ok = 0usize;
                let mut shed = 0usize;
                for r in 0..REQUESTS {
                    let i = (c + r) % systems.len();
                    let (status, _, body) = client_roundtrip(
                        &addr,
                        "POST",
                        "/analyze",
                        &[],
                        systems[i].as_bytes(),
                    )
                    .expect("round trip");
                    match status {
                        200 => {
                            assert_eq!(
                                strip_runtime(&body),
                                expected[i],
                                "client {c} request {r}: response for system {i} \
                                 diverged from `srtw analyze --json`"
                            );
                            ok += 1;
                        }
                        // Shedding is the only permissible refusal.
                        503 => shed += 1,
                        other => panic!("client {c} request {r}: unexpected status {other}: {body}"),
                    }
                }
                (ok, shed)
            })
        })
        .collect();

    let mut total_ok = 0;
    let mut total_shed = 0;
    for client in clients {
        let (ok, shed) = client.join().expect("client thread");
        total_ok += ok;
        total_shed += shed;
    }
    assert!(total_ok > 0, "every request was shed");
    assert_eq!(total_ok + total_shed, CLIENTS * REQUESTS);

    // The stats document reflects the soak.
    let (status, _, stats) = client_roundtrip(&addr, "GET", "/stats", &[], b"").unwrap();
    assert_eq!(status, 200);
    assert!(stats.contains("\"completed\":"), "{stats}");
    assert!(stats.contains("\"draining\":false"), "{stats}");

    // Graceful drain leaks nothing: no abandoned workers, and no worker
    // ever had to be respawned (no handler panicked during the soak).
    let report = server.shutdown();
    assert!(report.clean(), "drain left debris: {report:?}");
    assert_eq!(report.respawned, 0, "a worker died during the soak");
}
