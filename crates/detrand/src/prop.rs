//! A seeded property-test harness.
//!
//! [`forall`] runs a property over `N` deterministically seeded random
//! inputs (default 64, override with `SRTW_PROP_CASES`). Inputs are built
//! by a generator function `fn(&mut Rng, size) -> T` where `size` is a
//! budget that ramps up over the run, so early cases are small. On failure
//! the harness
//!
//! * **shrinks by halving**: it regenerates the input from the same case
//!   seed at `size/2, size/4, …, 1, 0` and keeps the smallest budget that
//!   still fails (generation is deterministic in `(seed, size)`, so the
//!   reported input is reproducible);
//! * **reports the failing seed**: the panic message contains a
//!   `SRTW_PROP_REPLAY=<seed>:<size>` assignment that re-runs exactly the
//!   shrunk counterexample (and nothing else) on the next `cargo test`.
//!
//! Properties are plain closures using the standard `assert!` family;
//! failures are caught via `std::panic::catch_unwind`.
//!
//! # Example
//!
//! ```
//! use srtw_detrand::prop::forall;
//!
//! forall("addition_commutes", |rng, size| {
//!     let bound = 1 + size as i64;
//!     (rng.random_range(-bound..=bound), rng.random_range(-bound..=bound))
//! }, |&(a, b)| {
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use crate::rng::Rng;
use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Configuration of a property run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of seeded cases to run (`SRTW_PROP_CASES` overrides).
    pub cases: u64,
    /// Base seed of the run (`SRTW_PROP_SEED` overrides). Case `i` derives
    /// its own seed from `(seed, i)`, so runs are reproducible per case.
    pub seed: u64,
    /// Size budget of the first case.
    pub min_size: u32,
    /// Size budget of the last case (the ramp is linear).
    pub max_size: u32,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            cases: env_u64("SRTW_PROP_CASES").unwrap_or(64).max(1),
            seed: env_u64("SRTW_PROP_SEED").unwrap_or(0x5eed_cafe),
            min_size: 4,
            max_size: 64,
        }
    }
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok()?.trim().parse().ok()
}

/// Runs `prop` over [`Config::default`]`.cases` seeded inputs from `gen`.
///
/// # Panics
///
/// Panics (failing the enclosing test) with the shrunk counterexample and
/// its replay seed if any case fails.
pub fn forall<T, G, P>(name: &str, gen: G, prop: P)
where
    T: Debug,
    G: Fn(&mut Rng, u32) -> T,
    P: Fn(&T),
{
    forall_with(&Config::default(), name, gen, prop);
}

/// Like [`forall`] with an explicit [`Config`].
pub fn forall_with<T, G, P>(cfg: &Config, name: &str, gen: G, prop: P)
where
    T: Debug,
    G: Fn(&mut Rng, u32) -> T,
    P: Fn(&T),
{
    if let Ok(replay) = std::env::var("SRTW_PROP_REPLAY") {
        if let Some((seed, size)) = parse_replay(&replay) {
            run_replay(name, seed, size, &gen, &prop);
            return;
        }
        panic!("SRTW_PROP_REPLAY must look like '<seed>:<size>', got '{replay}'");
    }
    let ramp = cfg.max_size.saturating_sub(cfg.min_size) as u64;
    for i in 0..cfg.cases {
        let case_seed = case_seed(cfg.seed, i);
        let size = cfg.min_size + (ramp * i / cfg.cases.max(1)) as u32;
        let value = gen(&mut Rng::seed_from_u64(case_seed), size);
        if let Err(msg) = run_case(&prop, &value) {
            let (shrunk_size, shrunk_value, shrunk_msg) =
                shrink(&gen, &prop, case_seed, size, value, msg);
            panic!(
                "property '{name}' failed (case {i} of {cases}, seed {case_seed}, size {size}; \
                 shrunk to size {shrunk_size})\n\
                 counterexample: {value}\n\
                 failure: {failure}\n\
                 replay just this case with SRTW_PROP_REPLAY={case_seed}:{shrunk_size}",
                cases = cfg.cases,
                value = truncate(&format!("{shrunk_value:?}"), 4000),
                failure = shrunk_msg,
            );
        }
    }
}

/// Derives the per-case seed. Mixing through SplitMix64 keeps neighbouring
/// case indices statistically unrelated.
fn case_seed(base: u64, index: u64) -> u64 {
    Rng::seed_from_u64(base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64()
}

fn parse_replay(spec: &str) -> Option<(u64, u32)> {
    let (seed, size) = spec.split_once(':')?;
    Some((seed.trim().parse().ok()?, size.trim().parse().ok()?))
}

fn run_replay<T, G, P>(name: &str, seed: u64, size: u32, gen: &G, prop: &P)
where
    T: Debug,
    G: Fn(&mut Rng, u32) -> T,
    P: Fn(&T),
{
    let value = gen(&mut Rng::seed_from_u64(seed), size);
    eprintln!("[{name}] replaying seed {seed} size {size}: {:?}", &value);
    if let Err(msg) = run_case(prop, &value) {
        panic!("property '{name}' failed on replayed case (seed {seed}, size {size}): {msg}");
    }
}

/// Runs one case, converting a panic into its message.
fn run_case<T, P: Fn(&T)>(prop: &P, value: &T) -> Result<(), String> {
    catch_unwind(AssertUnwindSafe(|| prop(value))).map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_owned()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_owned()
        }
    })
}

/// Bounded shrinking: regenerate from the same seed at repeatedly halved
/// size budgets, keeping the smallest budget that still fails.
fn shrink<T, G, P>(
    gen: &G,
    prop: &P,
    seed: u64,
    size: u32,
    value: T,
    msg: String,
) -> (u32, T, String)
where
    G: Fn(&mut Rng, u32) -> T,
    P: Fn(&T),
{
    let mut best = (size, value, msg);
    let mut s = size;
    loop {
        s /= 2;
        let candidate = gen(&mut Rng::seed_from_u64(seed), s);
        if let Err(m) = run_case(prop, &candidate) {
            best = (s, candidate, m);
        }
        if s == 0 {
            return best;
        }
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        return s.to_owned();
    }
    let mut cut = max;
    while !s.is_char_boundary(cut) {
        cut -= 1;
    }
    format!("{}… ({} bytes elided)", &s[..cut], s.len() - cut)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn passing_property_runs_all_cases() {
        let ran = AtomicU64::new(0);
        forall_with(
            &Config {
                cases: 64,
                seed: 1,
                min_size: 4,
                max_size: 64,
            },
            "sum_symmetric",
            |rng, size| {
                let b = 1 + size as i64;
                (rng.random_range(-b..=b), rng.random_range(-b..=b))
            },
            |&(a, b)| {
                ran.fetch_add(1, Ordering::Relaxed);
                assert_eq!(a + b, b + a);
            },
        );
        assert_eq!(ran.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            forall_with(
                &Config {
                    cases: 64,
                    seed: 2,
                    min_size: 4,
                    max_size: 64,
                },
                "always_small",
                |rng, size| rng.random_range(0u64..=size as u64),
                |&v| assert!(v < 3, "{v} too big"),
            );
        }))
        .expect_err("property must fail");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic message is a String")
            .clone();
        assert!(msg.contains("property 'always_small' failed"), "{msg}");
        assert!(msg.contains("SRTW_PROP_REPLAY="), "{msg}");
        assert!(msg.contains("too big"), "{msg}");
        assert!(msg.contains("shrunk to size"), "{msg}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let gen = |rng: &mut Rng, size: u32| -> Vec<u64> {
            (0..size).map(|_| rng.next_u64()).collect()
        };
        let a = gen(&mut Rng::seed_from_u64(99), 8);
        let b = gen(&mut Rng::seed_from_u64(99), 8);
        assert_eq!(a, b);
    }

    #[test]
    fn shrinking_halves_down_to_smallest_failing_budget() {
        // Fails whenever the generated value (== size) is >= 8, so the
        // shrink loop must land on a size in [8, …) strictly below 64.
        let err = catch_unwind(AssertUnwindSafe(|| {
            forall_with(
                &Config {
                    cases: 1,
                    seed: 3,
                    min_size: 64,
                    max_size: 64,
                },
                "size_bounded",
                |_rng, size| size,
                |&v| assert!(v < 8),
            );
        }))
        .expect_err("must fail");
        let msg = err.downcast_ref::<String>().unwrap().clone();
        assert!(msg.contains("shrunk to size 8"), "{msg}");
    }
}
