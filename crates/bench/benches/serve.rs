//! `cargo bench -p srtw-bench --bench serve` — B7, service throughput.

use srtw_bench::suites::server_throughput_suite;
use srtw_bench::timing::{print_samples, Timer};

fn main() {
    print_samples(&server_throughput_suite(&Timer::from_env()));
}
