//! Integration tests for the text system format and the shipped sample
//! system file.

use srtw::textfmt::{parse_system, ServerSpec};
use srtw::{fifo_structural, rtc_delay, structural_delay, AnalysisConfig, Q};

#[test]
fn shipped_sample_system_parses_and_analyses() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/systems/decoder.srtw"
    ))
    .expect("sample system file present");
    let sys = parse_system(&text).expect("sample system parses");
    assert_eq!(sys.tasks.len(), 2);
    assert_eq!(sys.tasks[0].name(), "decoder");
    assert_eq!(sys.tasks[0].num_vertices(), 3);
    let beta = sys.server.expect("server declared").beta_lower().unwrap();
    let per = fifo_structural(&sys.tasks, &beta, &AnalysisConfig::default()).unwrap();
    // The decoder's B-frame bound refines the stream bound.
    let decoder = &per[0];
    let b_frame = sys.tasks[0]
        .vertex_ids()
        .find(|&v| sys.tasks[0].vertex(v).label == "B")
        .unwrap();
    assert!(decoder.bound_of(b_frame) < decoder.stream_bound);
}

#[test]
fn format_roundtrip_through_analysis_matches_programmatic() {
    // The same system built via the API and via the text format must give
    // identical bounds.
    let text = "
task t
vertex a wcet=3 deadline=9
vertex b wcet=1 deadline=5
edge a b sep=6
edge b a sep=6
server rate-latency rate=1 latency=2
";
    let sys = parse_system(text).unwrap();
    let beta = sys.server.unwrap().beta_lower().unwrap();
    let parsed = structural_delay(&sys.tasks[0], &beta).unwrap();

    let mut builder = srtw::DrtTaskBuilder::new("t");
    let a = builder.vertex_with_deadline("a", Q::int(3), Q::int(9));
    let b = builder.vertex_with_deadline("b", Q::ONE, Q::int(5));
    builder.edge(a, b, Q::int(6));
    builder.edge(b, a, Q::int(6));
    let direct_task = builder.build().unwrap();
    let direct = structural_delay(&direct_task, &beta).unwrap();

    for (x, y) in parsed.per_vertex.iter().zip(direct.per_vertex.iter()) {
        assert_eq!(x.bound, y.bound);
    }
    assert_eq!(
        rtc_delay(&sys.tasks[0], &beta).unwrap().bound,
        rtc_delay(&direct_task, &beta).unwrap().bound
    );
}

#[test]
fn malformed_lines_error_with_line_numbers() {
    // Every malformed input must produce an Err carrying the offending
    // 1-based line number — never a panic.
    for (text, line, needle) in [
        ("task t\nvertex\n", 2, "vertex needs a name"),
        ("task t\nvertex a\n", 2, "missing required 'wcet='"),
        ("task t\nvertex a wcet=1 bogus\n", 2, "expected key=value"),
        ("task t\nvertex a wcet=1/0x\n", 2, "invalid rational"),
        ("task t\nvertex a wcet=1\nedge a\n", 3, "edge needs a target vertex"),
        ("task t\nvertex a wcet=1\nedge\n", 3, "edge needs a source vertex"),
        ("task t\nvertex a wcet=1\nedge a a\n", 3, "missing required 'sep='"),
        ("task t\nvertex a wcet=1\nedge a z sep=4\n", 3, "unknown vertex 'z'"),
        ("task\n", 1, "task needs a name"),
        ("edge a b sep=1\n", 1, "edge outside of a task"),
    ] {
        let e = parse_system(text).unwrap_err();
        assert_eq!(e.line, line, "line number for {text:?} ({e})");
        assert!(e.message.contains(needle), "message for {text:?}: {e}");
    }
}

#[test]
fn empty_and_taskless_files_are_errors() {
    for text in ["", "\n\n", "# only a comment\n", "server fluid rate=1\n"] {
        let e = parse_system(text).unwrap_err();
        assert!(e.message.contains("no tasks"), "for {text:?}: {e}");
    }
}

#[test]
fn duplicate_task_names_are_errors() {
    let text = "task a\nvertex v wcet=1\nedge v v sep=5\ntask a\nvertex w wcet=1\nedge w w sep=5\n";
    let e = parse_system(text).unwrap_err();
    assert_eq!(e.line, 4);
    assert!(e.message.contains("duplicate task 'a'"));
}

/// Runs the compiled `srtw` binary with `args`, returning
/// `(success, stdout, stderr)`.
fn run_srtw(args: &[&str]) -> (bool, String, String) {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_srtw"))
        .args(args)
        .output()
        .expect("spawn srtw");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn sample_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/systems/decoder.srtw")
}

#[test]
fn cli_rejects_unknown_scheduler() {
    let (ok, _, err) = run_srtw(&["analyze", sample_path(), "--scheduler", "lottery"]);
    assert!(!ok);
    assert!(err.contains("unknown scheduler 'lottery'"), "{err}");
}

#[test]
fn cli_reports_parse_errors_with_location() {
    let dir = std::env::temp_dir().join("srtw-cli-format-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.srtw");
    std::fs::write(&bad, "task t\nvertex a wcet=oops\n").unwrap();
    let (ok, _, err) = run_srtw(&["analyze", bad.to_str().unwrap()]);
    assert!(!ok);
    assert!(err.contains("line 2"), "{err}");
    assert!(err.contains("invalid rational"), "{err}");
    let (ok, _, err) = run_srtw(&["analyze", dir.join("missing.srtw").to_str().unwrap()]);
    assert!(!ok);
    assert!(err.contains("cannot read"), "{err}");
}

#[test]
fn cli_analyze_json_emits_one_document_per_scheduler() {
    // EDF needs deadlines on every vertex, which the shipped sample's
    // telemetry task deliberately omits — use a deadline-complete system.
    let dir = std::env::temp_dir().join("srtw-cli-format-test");
    std::fs::create_dir_all(&dir).unwrap();
    let dl = dir.join("deadlines.srtw");
    std::fs::write(
        &dl,
        "task t\nvertex a wcet=2 deadline=9\nvertex b wcet=1 deadline=6\n\
         edge a b sep=5\nedge b a sep=5\nserver rate-latency rate=1 latency=2\n",
    )
    .unwrap();
    let dl_path = dl.to_str().unwrap();
    for (sched, path, key) in [
        ("fifo", sample_path(), "\"rtc\""),
        ("fp", sample_path(), "\"streams\""),
        ("edf", dl_path, "\"report\""),
    ] {
        let (ok, out, err) = run_srtw(&["analyze", path, "--scheduler", sched, "--json"]);
        assert!(ok, "{sched}: {err}");
        let doc = out.trim();
        assert!(doc.starts_with('{') && doc.ends_with('}'), "{sched}: {doc}");
        assert!(doc.contains(&format!("\"scheduler\":\"{sched}\"")), "{sched}: {doc}");
        assert!(doc.contains(key), "{sched}: {doc}");
        // Exactly one line: a single machine-readable document.
        assert_eq!(doc.lines().count(), 1, "{sched}");
    }
    // FIFO JSON carries the per-vertex structural bounds with exact rationals.
    let (_, out, _) = run_srtw(&["analyze", sample_path(), "--json"]);
    assert!(out.contains("\"per_vertex\""), "{out}");
    assert!(out.contains("\"num\""), "{out}");
}

#[test]
fn server_spec_kinds_cover_the_zoo() {
    for (line, expect_kind) in [
        (
            "server fluid rate=1",
            ServerSpec::Fluid { rate: Q::ONE },
        ),
        (
            "server tdma slot=1 cycle=4 capacity=2",
            ServerSpec::Tdma {
                slot: Q::ONE,
                cycle: Q::int(4),
                capacity: Q::int(2),
            },
        ),
    ] {
        let text = format!("task t\nvertex a wcet=1\nedge a a sep=5\n{line}\n");
        let sys = parse_system(&text).unwrap();
        assert_eq!(sys.server.unwrap(), expect_kind);
    }
}
