//! Integration tests for the text system format and the shipped sample
//! system file.

use srtw::textfmt::{parse_system, ServerSpec};
use srtw::{fifo_structural, rtc_delay, structural_delay, AnalysisConfig, Q};

#[test]
fn shipped_sample_system_parses_and_analyses() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/systems/decoder.srtw"
    ))
    .expect("sample system file present");
    let sys = parse_system(&text).expect("sample system parses");
    assert_eq!(sys.tasks.len(), 2);
    assert_eq!(sys.tasks[0].name(), "decoder");
    assert_eq!(sys.tasks[0].num_vertices(), 3);
    let beta = sys.server.expect("server declared").beta_lower().unwrap();
    let per = fifo_structural(&sys.tasks, &beta, &AnalysisConfig::default()).unwrap();
    // The decoder's B-frame bound refines the stream bound.
    let decoder = &per[0];
    let b_frame = sys.tasks[0]
        .vertex_ids()
        .find(|&v| sys.tasks[0].vertex(v).label == "B")
        .unwrap();
    assert!(decoder.bound_of(b_frame) < decoder.stream_bound);
}

#[test]
fn format_roundtrip_through_analysis_matches_programmatic() {
    // The same system built via the API and via the text format must give
    // identical bounds.
    let text = "
task t
vertex a wcet=3 deadline=9
vertex b wcet=1 deadline=5
edge a b sep=6
edge b a sep=6
server rate-latency rate=1 latency=2
";
    let sys = parse_system(text).unwrap();
    let beta = sys.server.unwrap().beta_lower().unwrap();
    let parsed = structural_delay(&sys.tasks[0], &beta).unwrap();

    let mut builder = srtw::DrtTaskBuilder::new("t");
    let a = builder.vertex_with_deadline("a", Q::int(3), Q::int(9));
    let b = builder.vertex_with_deadline("b", Q::ONE, Q::int(5));
    builder.edge(a, b, Q::int(6));
    builder.edge(b, a, Q::int(6));
    let direct_task = builder.build().unwrap();
    let direct = structural_delay(&direct_task, &beta).unwrap();

    for (x, y) in parsed.per_vertex.iter().zip(direct.per_vertex.iter()) {
        assert_eq!(x.bound, y.bound);
    }
    assert_eq!(
        rtc_delay(&sys.tasks[0], &beta).unwrap().bound,
        rtc_delay(&direct_task, &beta).unwrap().bound
    );
}

#[test]
fn server_spec_kinds_cover_the_zoo() {
    for (line, expect_kind) in [
        (
            "server fluid rate=1",
            ServerSpec::Fluid { rate: Q::ONE },
        ),
        (
            "server tdma slot=1 cycle=4 capacity=2",
            ServerSpec::Tdma {
                slot: Q::ONE,
                cycle: Q::int(4),
                capacity: Q::int(2),
            },
        ),
    ] {
        let text = format!("task t\nvertex a wcet=1\nedge a a sep=5\n{line}\n");
        let sys = parse_system(&text).unwrap();
        assert_eq!(sys.server.unwrap(), expect_kind);
    }
}
