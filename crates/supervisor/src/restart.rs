//! Restart policy for supervised *processes* (service replicas).
//!
//! The retry/degrade ladder in [`crate::ladder`] governs attempts of one
//! analysis; this module governs the lifetime of long-running children:
//! when a replica dies, restart it — but with exponential backoff so a
//! crash-looping replica cannot burn the host, and with a restart-
//! intensity cap (the classic supervision-tree rule: more than
//! `intensity` deaths inside `window` means the fault is systemic, and
//! restarting is noise, not repair) after which the supervisor gives the
//! replica up.
//!
//! The tracker is deliberately pure state-machine: callers feed it death
//! timestamps and it answers "restart after this delay" or "give up",
//! which makes every policy edge deterministic under test — no sleeping,
//! no clocks inside.

use std::time::{Duration, Instant};

/// Policy knobs for restarting a supervised process.
#[derive(Debug, Clone, Copy)]
pub struct RestartPolicy {
    /// Backoff before the first restart; doubles per consecutive death.
    pub backoff_base: Duration,
    /// Ceiling on the (exponentially growing) backoff.
    pub backoff_cap: Duration,
    /// Most deaths tolerated inside [`RestartPolicy::window`] before the
    /// supervisor gives the child up.
    pub intensity: usize,
    /// The sliding window the intensity cap counts deaths in.
    pub window: Duration,
}

impl Default for RestartPolicy {
    fn default() -> RestartPolicy {
        RestartPolicy {
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(5),
            intensity: 5,
            window: Duration::from_secs(30),
        }
    }
}

/// What to do about a death the tracker was told of.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartDecision {
    /// Restart the child once `delay` has elapsed (measured from the
    /// death the decision answered).
    After(Duration),
    /// The child exceeded the restart intensity; stop restarting it.
    GiveUp,
}

/// Sliding-window death tracker implementing [`RestartPolicy`].
#[derive(Debug)]
pub struct RestartTracker {
    policy: RestartPolicy,
    deaths: Vec<Instant>,
    /// Consecutive deaths since the last [`RestartTracker::on_healthy`];
    /// exponent of the backoff.
    streak: u32,
    total: u64,
}

impl RestartTracker {
    /// A tracker with no deaths recorded.
    pub fn new(policy: RestartPolicy) -> RestartTracker {
        RestartTracker {
            policy,
            deaths: Vec::new(),
            streak: 0,
            total: 0,
        }
    }

    /// Records a death at `now` and decides what to do about it.
    pub fn on_exit(&mut self, now: Instant) -> RestartDecision {
        self.total += 1;
        self.deaths.push(now);
        let horizon = now.checked_sub(self.policy.window);
        self.deaths
            .retain(|&d| horizon.map(|h| d >= h).unwrap_or(true));
        if self.deaths.len() > self.policy.intensity {
            return RestartDecision::GiveUp;
        }
        let exp = self.streak.min(16); // past 2^16 the cap decides anyway
        self.streak += 1;
        let delay = self
            .policy
            .backoff_base
            .saturating_mul(1u32 << exp)
            .min(self.policy.backoff_cap);
        RestartDecision::After(delay)
    }

    /// Notes that the child came back healthy: the backoff streak resets
    /// (the next death starts at the base backoff again). The intensity
    /// window keeps its history — rapid flapping through "healthy" still
    /// exhausts it.
    pub fn on_healthy(&mut self) {
        self.streak = 0;
    }

    /// Deaths recorded over the tracker's lifetime.
    pub fn total_exits(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RestartPolicy {
        RestartPolicy {
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_millis(1_000),
            intensity: 3,
            window: Duration::from_secs(10),
        }
    }

    #[test]
    fn backoff_doubles_per_consecutive_death_up_to_the_cap() {
        let mut t = RestartTracker::new(RestartPolicy {
            intensity: 100,
            ..policy()
        });
        let now = Instant::now();
        let mut delays = Vec::new();
        for _ in 0..5 {
            match t.on_exit(now) {
                RestartDecision::After(d) => delays.push(d.as_millis()),
                RestartDecision::GiveUp => panic!("intensity 100 cannot give up here"),
            }
        }
        assert_eq!(delays, vec![100, 200, 400, 800, 1_000]);
    }

    #[test]
    fn health_resets_the_backoff_but_not_the_window() {
        let mut t = RestartTracker::new(RestartPolicy {
            intensity: 100,
            ..policy()
        });
        let now = Instant::now();
        assert_eq!(
            t.on_exit(now),
            RestartDecision::After(Duration::from_millis(100))
        );
        assert_eq!(
            t.on_exit(now),
            RestartDecision::After(Duration::from_millis(200))
        );
        t.on_healthy();
        assert_eq!(
            t.on_exit(now),
            RestartDecision::After(Duration::from_millis(100)),
            "streak resets on health"
        );
        assert_eq!(t.total_exits(), 3, "the death history is not forgotten");
    }

    #[test]
    fn exceeding_the_intensity_inside_the_window_gives_up() {
        let mut t = RestartTracker::new(policy());
        let now = Instant::now();
        for _ in 0..3 {
            assert!(matches!(t.on_exit(now), RestartDecision::After(_)));
        }
        assert_eq!(t.on_exit(now), RestartDecision::GiveUp);
    }

    #[test]
    fn default_policy_gives_up_past_five_deaths_in_thirty_seconds() {
        // The production default: intensity 5 in a 30 s window. Five
        // deaths restart (with growing backoff); the sixth inside the
        // window is systemic and the supervisor gives the replica up.
        let mut t = RestartTracker::new(RestartPolicy::default());
        let start = Instant::now();
        for i in 0..5 {
            let now = start + Duration::from_secs(i * 5); // all within 30 s
            assert!(
                matches!(t.on_exit(now), RestartDecision::After(_)),
                "death {} must still restart",
                i + 1
            );
        }
        assert_eq!(
            t.on_exit(start + Duration::from_secs(29)),
            RestartDecision::GiveUp,
            "sixth death inside the 30 s window exceeds intensity 5"
        );
        assert_eq!(t.total_exits(), 6);
    }

    #[test]
    fn default_policy_streak_reset_keeps_window_history() {
        // on_healthy resets the backoff exponent only: flapping through
        // "healthy" still exhausts the default intensity window.
        let mut t = RestartTracker::new(RestartPolicy::default());
        let start = Instant::now();
        for i in 0..5 {
            let now = start + Duration::from_secs(i);
            assert_eq!(
                t.on_exit(now),
                RestartDecision::After(Duration::from_millis(100)),
                "with health between deaths every backoff restarts at base"
            );
            t.on_healthy();
        }
        assert_eq!(
            t.on_exit(start + Duration::from_secs(5)),
            RestartDecision::GiveUp,
            "the intensity window survives on_healthy"
        );
    }

    #[test]
    fn default_policy_backoff_caps_at_five_seconds() {
        let mut t = RestartTracker::new(RestartPolicy {
            intensity: 100,
            window: Duration::from_secs(1), // keep the window empty
            ..RestartPolicy::default()
        });
        let start = Instant::now();
        let mut last = Duration::ZERO;
        for i in 0..10u64 {
            match t.on_exit(start + Duration::from_secs(i * 2)) {
                RestartDecision::After(d) => last = d,
                RestartDecision::GiveUp => panic!("window is kept empty"),
            }
        }
        assert_eq!(last, Duration::from_secs(5), "100 ms · 2^9 clamps to 5 s");
    }

    #[test]
    fn deaths_outside_the_window_age_out() {
        let mut t = RestartTracker::new(policy());
        let start = Instant::now();
        for _ in 0..3 {
            assert!(matches!(t.on_exit(start), RestartDecision::After(_)));
        }
        // The same three deaths viewed 11 s later no longer count, so a
        // fourth death restarts instead of giving up.
        let later = start + Duration::from_secs(11);
        assert!(matches!(t.on_exit(later), RestartDecision::After(_)));
    }
}
