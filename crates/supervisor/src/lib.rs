//! # srtw-supervisor — crash-contained supervised batch analysis
//!
//! PR 2 made a *single* analysis run budgeted and panic-free. This crate
//! supplies the supervision *around* runs that a service analysing many
//! systems needs:
//!
//! * **Isolation** — every attempt executes on its own thread behind
//!   `catch_unwind`, so one pathological system (a residual panic, an
//!   arithmetic overflow, an analysis that will not finish) cannot take
//!   down the batch ([`run_supervised`]).
//! * **Hard deadlines** — a watchdog enforces a wall-clock timeout per
//!   attempt by raising a [`CancelToken`] threaded into the analysis'
//!   [`srtw_minplus::BudgetMeter`]. Every hot loop the meter already
//!   instruments polls the flag, so cancellation is prompt even where the
//!   cooperative wall-clock checks are starved; a thread stuck outside
//!   metered code is *abandoned* after a grace period and the attempt is
//!   recorded as a hard timeout.
//! * **A retry/degrade ladder** — failed or timed-out attempts retry down
//!   [`Rung::Exact`] → [`Rung::Budgeted`] (halving the wall cap per
//!   retry) → [`Rung::RtcBaseline`], the operational analogue of the
//!   hybrid analyses in this research line that fall back to
//!   coarser-but-sound component analyses when the precise one is
//!   infeasible. Every rung inherits PR 2's monotone-truncation
//!   degradation, so whatever rung completes, the reported bound is sound
//!   and sandwiched `exact ≤ degraded ≤ RTC`.
//! * **Process restart policy** — for supervising long-running *children*
//!   (service replicas) rather than attempts: [`RestartTracker`] applies
//!   exponential backoff with a restart-intensity cap, the supervision-
//!   tree rule that a crash-looping child eventually signals a systemic
//!   fault instead of being restarted forever.
//! * **Durability** — an append-only write-ahead [`journal`] of per-job
//!   outcomes (length+CRC framing, fsync'd record-at-a-time) makes a
//!   batch crash-recoverable: recovery tolerates torn tails and bit
//!   corruption, and replay is idempotent (keep-first by job name), so
//!   `srtw batch --journal PATH --resume` skips completed jobs and still
//!   renders a report byte-identical to an uninterrupted run.
//! * **Provenance** — a [`JobOutcome`] records every attempt (rung,
//!   status, wall time, degradation records), and a [`BatchReport`]
//!   aggregates them with a machine-readable JSON rendering for the
//!   `srtw batch` CLI.
//!
//! Failure paths are testable, not theoretical: a deterministic
//! [`srtw_minplus::FaultPlan`] can trip the budget, inject a synthetic
//! overflow or jump the wall clock at the N-th metered operation of every
//! attempt, letting seeded tests drive each rung of the ladder.
//!
//! # Example
//!
//! ```
//! use srtw_supervisor::{run_supervised, JobSpec, JobStatus, SupervisorConfig};
//! use srtw_minplus::{Curve, Q};
//! use srtw_workload::DrtTaskBuilder;
//!
//! let mut b = DrtTaskBuilder::new("periodic");
//! let v = b.vertex("p", Q::ONE);
//! b.edge(v, v, Q::int(8));
//! let spec = JobSpec::new("demo", vec![b.build().unwrap()], Curve::affine(Q::ZERO, Q::ONE));
//!
//! let outcome = run_supervised(&spec, &SupervisorConfig::default());
//! assert_eq!(outcome.status, JobStatus::Exact);
//! assert_eq!(outcome.attempts.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod job;
pub mod journal;
mod ladder;
mod pool;
mod report;
mod restart;
mod supervise;

pub use job::{AnalysisOutput, Attempt, AttemptStatus, JobOutcome, JobSpec, JobStatus, Rung};
pub use journal::{
    JournalFault, JournalFaultKind, JournalRecord, JournalWriter, JournaledReport, Recovery,
};
pub use ladder::{run_supervised, SupervisorConfig};
pub use pool::{run_batch, run_batch_observed, BatchConfig, OutcomeObserver};
pub use report::{BatchCounts, BatchReport, BatchStatus};
pub use restart::{RestartDecision, RestartPolicy, RestartTracker};
pub use supervise::{contain, panic_message, Contained};

pub use srtw_minplus::{CancelToken, FaultKind, FaultPlan};
