//! Error types for curve construction and algebra.

use crate::ratio::Q;
use std::fmt;

/// Errors produced when constructing or combining curves.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CurveError {
    /// A curve must contain at least one piece.
    Empty,
    /// The first piece must start at time zero.
    FirstPieceNotAtZero {
        /// The offending start time.
        start: Q,
    },
    /// Piece start times must be strictly increasing.
    NonIncreasingStarts {
        /// Index of the piece whose start is not after its predecessor's.
        index: usize,
    },
    /// Curves must be non-decreasing: every slope must be `>= 0`.
    NegativeSlope {
        /// Index of the offending piece.
        index: usize,
        /// The offending slope.
        slope: Q,
    },
    /// Curves must be non-decreasing: a piece's start value may not be below
    /// the left limit of its predecessor.
    DecreasingJump {
        /// Index of the piece that jumps down.
        index: usize,
    },
    /// The periodic tail descriptor is inconsistent (bad pattern index,
    /// non-positive period, negative increment, or a pattern that would make
    /// the periodic extension decrease).
    InvalidPeriodicTail {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// The requested operation needs a strictly positive long-run rate (or
    /// other property) that the operand lacks.
    Unsupported {
        /// Human-readable reason.
        reason: &'static str,
    },
}

impl fmt::Display for CurveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CurveError::Empty => write!(f, "curve must contain at least one piece"),
            CurveError::FirstPieceNotAtZero { start } => {
                write!(f, "first piece must start at 0, found {start}")
            }
            CurveError::NonIncreasingStarts { index } => {
                write!(f, "piece {index} does not start after its predecessor")
            }
            CurveError::NegativeSlope { index, slope } => {
                write!(f, "piece {index} has negative slope {slope}")
            }
            CurveError::DecreasingJump { index } => {
                write!(f, "piece {index} jumps below the previous piece's left limit")
            }
            CurveError::InvalidPeriodicTail { reason } => {
                write!(f, "invalid periodic tail: {reason}")
            }
            CurveError::Unsupported { reason } => write!(f, "unsupported operation: {reason}"),
        }
    }
}

impl std::error::Error for CurveError {}
