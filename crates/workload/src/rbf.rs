//! Request-bound functions of digraph real-time tasks.
//!
//! The **request-bound function** `rbf(t)` of a [`DrtTask`] is the maximum
//! total WCET a single behaviour of the task can release inside any closed
//! time window of length `t` (releases at both window ends count, so
//! `rbf(0)` is the largest single WCET). It is the exact structural
//! abstraction used as the task's *upper arrival curve* by the RTC baseline
//! and as the busy-window bound by the structural analysis.
//!
//! `rbf` is computed by abstract-path exploration with dominance pruning
//! (see [`crate::paths`]) and returned as a right-continuous staircase.

use crate::digraph::DrtTask;
use crate::paths::{explore, ExploreConfig};
use srtw_minplus::{Curve, Q};

/// The request-bound function of a task, materialized up to a horizon.
///
/// # Examples
///
/// ```
/// use srtw_workload::{DrtTaskBuilder, Rbf};
/// use srtw_minplus::Q;
///
/// let mut b = DrtTaskBuilder::new("periodic-ish");
/// let v = b.vertex("job", Q::int(2));
/// b.edge(v, v, Q::int(5));
/// let task = b.build().unwrap();
///
/// let rbf = Rbf::compute(&task, Q::int(20));
/// assert_eq!(rbf.eval(Q::ZERO), Q::int(2));
/// assert_eq!(rbf.eval(Q::int(4)), Q::int(2));
/// assert_eq!(rbf.eval(Q::int(5)), Q::int(4));
/// assert_eq!(rbf.eval(Q::int(20)), Q::int(10));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rbf {
    /// Staircase breakpoints `(span, max work)` with strictly increasing
    /// span and work.
    points: Vec<(Q, Q)>,
    horizon: Q,
    /// Number of retained abstract paths during computation.
    pub paths_retained: usize,
    /// Number of candidates pruned by dominance.
    pub paths_pruned: usize,
}

impl Rbf {
    /// Computes the request-bound function of `task` on `[0, horizon]`.
    pub fn compute(task: &DrtTask, horizon: Q) -> Rbf {
        let ex = explore(task, &ExploreConfig::new(horizon));
        let mut pts: Vec<(Q, Q)> = ex.nodes().iter().map(|n| (n.span, n.work)).collect();
        pts.sort();
        // Running max over increasing span; keep strictly increasing work.
        let mut points: Vec<(Q, Q)> = Vec::new();
        for (s, w) in pts {
            match points.last_mut() {
                Some(last) if last.0 == s => {
                    if w > last.1 {
                        last.1 = w;
                    }
                }
                Some(last) if w <= last.1 => {}
                _ => points.push((s, w)),
            }
        }
        Rbf {
            points,
            horizon,
            paths_retained: ex.nodes().len(),
            paths_pruned: ex.pruned,
        }
    }

    /// The horizon up to which this rbf is valid.
    pub fn horizon(&self) -> Q {
        self.horizon
    }

    /// The staircase breakpoints `(span, work)`.
    pub fn points(&self) -> &[(Q, Q)] {
        &self.points
    }

    /// Evaluates `rbf(t)`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is negative or beyond the computed horizon.
    pub fn eval(&self, t: Q) -> Q {
        assert!(!t.is_negative(), "rbf at negative window length");
        assert!(
            t <= self.horizon,
            "rbf({t}) beyond computed horizon {}",
            self.horizon
        );
        match self.points.iter().rev().find(|p| p.0 <= t) {
            Some(&(_, w)) => w,
            None => Q::ZERO,
        }
    }

    /// The rbf as a staircase [`Curve`] on `[0, horizon]`.
    ///
    /// Beyond the horizon the returned curve stays **flat**, which
    /// under-approximates future demand; it is only sound to use inside a
    /// finitary analysis whose busy window is known to fit the horizon
    /// (exactly how the `srtw-core` analyses use it). The curve's
    /// breakpoints are exact.
    pub fn curve(&self) -> Curve {
        if self.points.is_empty() {
            return Curve::zero();
        }
        let mut pts = Vec::with_capacity(self.points.len() + 1);
        if self.points[0].0 != Q::ZERO {
            pts.push((Q::ZERO, Q::ZERO));
        }
        pts.extend(self.points.iter().copied());
        Curve::staircase_from_points(&pts).expect("rbf staircase invalid")
    }

    /// The total demand bound at the horizon.
    pub fn max_work(&self) -> Q {
        self.points.last().map(|p| p.1).unwrap_or(Q::ZERO)
    }
}

/// Convenience: computes `rbf` values of a task at integer steps — used by
/// tests and experiment harnesses.
pub fn rbf_samples(task: &DrtTask, horizon: i128) -> Vec<(Q, Q)> {
    let rbf = Rbf::compute(task, Q::int(horizon));
    (0..=horizon)
        .map(|t| (Q::int(t), rbf.eval(Q::int(t))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DrtTaskBuilder;
    use srtw_minplus::q;

    /// Brute-force rbf by exhaustive DFS over all paths (no pruning).
    fn brute_rbf(task: &DrtTask, t: Q) -> Q {
        fn dfs(task: &DrtTask, v: crate::digraph::VertexId, span: Q, work: Q, t: Q, best: &mut Q) {
            if work > *best {
                *best = work;
            }
            for e in task.out_edges(v) {
                let s = span + e.separation;
                if s <= t {
                    dfs(task, e.to, s, work + task.wcet(e.to), t, best);
                }
            }
        }
        let mut best = Q::ZERO;
        for v in task.vertex_ids() {
            dfs(task, v, Q::ZERO, task.wcet(v), t, &mut best);
        }
        best
    }

    fn branching() -> DrtTask {
        let mut b = DrtTaskBuilder::new("branching");
        let a = b.vertex("a", Q::int(3));
        let x = b.vertex("x", Q::ONE);
        let y = b.vertex("y", Q::int(2));
        b.edge(a, x, Q::int(4));
        b.edge(a, y, Q::int(6));
        b.edge(x, a, Q::int(4));
        b.edge(y, a, Q::int(3));
        b.build().unwrap()
    }

    #[test]
    fn rbf_matches_brute_force() {
        let task = branching();
        let rbf = Rbf::compute(&task, Q::int(40));
        for i in 0..=80 {
            let t = q(i, 2);
            assert_eq!(rbf.eval(t), brute_rbf(&task, t), "rbf({t})");
        }
    }

    #[test]
    fn rbf_monotone_and_subadditive() {
        // rbf is monotone and subadditive (a window splits into two halves
        // whose sub-paths are themselves legal paths) — the latter is also
        // covered by a property test over random graphs.
        let task = branching();
        let rbf = Rbf::compute(&task, Q::int(60));
        let mut prev = Q::ZERO;
        for i in 0..=60 {
            let v = rbf.eval(Q::int(i));
            assert!(v >= prev);
            prev = v;
        }
        for a in 0..=30 {
            for b in 0..=30 {
                let (qa, qb) = (Q::int(a), Q::int(b));
                assert!(rbf.eval(qa + qb) <= rbf.eval(qa) + rbf.eval(qb));
            }
        }
    }

    #[test]
    fn rbf_zero_is_max_wcet() {
        let task = branching();
        let rbf = Rbf::compute(&task, Q::int(10));
        assert_eq!(rbf.eval(Q::ZERO), Q::int(3));
    }

    #[test]
    fn rbf_curve_agrees_with_eval() {
        let task = branching();
        let rbf = Rbf::compute(&task, Q::int(30));
        let c = rbf.curve();
        for i in 0..=60 {
            let t = q(i, 2);
            assert_eq!(c.eval(t), rbf.eval(t), "curve vs eval at {t}");
        }
    }

    #[test]
    fn rbf_dag_saturates() {
        let mut b = DrtTaskBuilder::new("dag");
        let a = b.vertex("a", Q::int(2));
        let c = b.vertex("b", Q::int(3));
        b.edge(a, c, Q::int(5));
        let task = b.build().unwrap();
        let rbf = Rbf::compute(&task, Q::int(100));
        assert_eq!(rbf.eval(Q::int(4)), Q::int(3)); // single heaviest job
        assert_eq!(rbf.eval(Q::int(5)), Q::int(5)); // a then b
        assert_eq!(rbf.eval(Q::int(100)), Q::int(5)); // no more work exists
        assert_eq!(rbf.max_work(), Q::int(5));
    }

    #[test]
    #[should_panic(expected = "beyond computed horizon")]
    fn rbf_eval_beyond_horizon_panics() {
        let task = branching();
        let rbf = Rbf::compute(&task, Q::int(10));
        let _ = rbf.eval(Q::int(11));
    }

    #[test]
    fn rbf_samples_helper() {
        let task = branching();
        let s = rbf_samples(&task, 10);
        assert_eq!(s.len(), 11);
        assert_eq!(s[0].1, Q::int(3));
    }
}
