//! A minimal, escaping-correct JSON writer.
//!
//! The workspace's zero-external-dependency policy rules out `serde`; the
//! report types instead build a [`Json`] value tree and render it with
//! [`Json::render`] (or `Display`). The writer covers exactly what RFC 8259
//! requires of an emitter:
//!
//! * strings escape `"` and `\`, the short forms `\b \f \n \r \t`, and all
//!   other control characters below `U+0020` as `\u00XX`;
//! * non-finite floats have no JSON representation and render as `null`;
//! * object member order is preserved (deterministic output for diffing).
//!
//! Exact rationals ([`Q`]) are rendered through [`Json::rational`] as
//! `{"num": …, "den": …, "approx": …}` so consumers can choose between the
//! exact value and a ready-made float.

use srtw_minplus::Q;
use std::fmt;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i128),
    /// A float; NaN and infinities render as `null`.
    Float(f64),
    /// A string (escaped on rendering).
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; member order is preserved.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An object from `(key, value)` pairs.
    pub fn object(members: Vec<(&str, Json)>) -> Json {
        Json::Object(
            members
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        )
    }

    /// An exact rational as `{"num", "den", "approx"}`.
    pub fn rational(q: Q) -> Json {
        Json::object(vec![
            ("num", Json::Int(q.numer())),
            ("den", Json::Int(q.denom())),
            ("approx", Json::Float(q.to_f64())),
        ])
    }

    /// Renders the value as a compact JSON document.
    pub fn render(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Json::Int(i) => write!(f, "{i}"),
            Json::Float(x) => {
                if x.is_finite() {
                    if *x == x.trunc() && x.abs() < 1e15 {
                        // Keep integral floats recognisably float-typed.
                        write!(f, "{x:.1}")
                    } else {
                        write!(f, "{x}")
                    }
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Array(xs) => {
                f.write_str("[")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{x}")?;
                }
                f.write_str("]")
            }
            Json::Object(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\u{08}' => f.write_str("\\b")?,
            '\u{0C}' => f.write_str("\\f")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtw_minplus::q;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-42).render(), "-42");
        assert_eq!(Json::Float(1.5).render(), "1.5");
        assert_eq!(Json::Float(3.0).render(), "3.0");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_escape_correctly() {
        assert_eq!(Json::str("plain").render(), "\"plain\"");
        assert_eq!(
            Json::str("say \"hi\"\\now").render(),
            r#""say \"hi\"\\now""#
        );
        assert_eq!(Json::str("a\nb\tc\r").render(), r#""a\nb\tc\r""#);
        assert_eq!(Json::str("\u{08}\u{0C}\u{01}").render(), r#""\b\f\u0001""#);
        // Non-ASCII passes through unescaped (JSON is UTF-8).
        assert_eq!(Json::str("β → δ").render(), "\"β → δ\"");
    }

    #[test]
    fn arrays_and_objects_render_in_order() {
        let v = Json::object(vec![
            ("b", Json::Int(1)),
            ("a", Json::Array(vec![Json::Int(2), Json::Null])),
        ]);
        assert_eq!(v.render(), r#"{"b":1,"a":[2,null]}"#);
        assert_eq!(Json::Array(vec![]).render(), "[]");
        assert_eq!(Json::Object(vec![]).render(), "{}");
    }

    #[test]
    fn rationals_carry_exact_and_approx() {
        assert_eq!(
            Json::rational(q(3, 4)).render(),
            r#"{"num":3,"den":4,"approx":0.75}"#
        );
        assert_eq!(
            Json::rational(Q::int(5)).render(),
            r#"{"num":5,"den":1,"approx":5.0}"#
        );
    }

    #[test]
    fn keys_are_escaped_too() {
        let v = Json::Object(vec![("we\"ird".to_owned(), Json::Null)]);
        assert_eq!(v.render(), r#"{"we\"ird":null}"#);
    }
}
