//! B2 — request-bound-function computation across graph sizes and
//! horizons (the dominance-pruned path exploration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srtw_gen::{generate_drt, DrtGenConfig};
use srtw_minplus::{q, Q};
use srtw_workload::Rbf;
use std::hint::black_box;

fn cfg(n: usize) -> DrtGenConfig {
    DrtGenConfig {
        vertices: n,
        extra_edges: n,
        separation_range: (5, 40),
        wcet_range: (1, 9),
        target_utilization: Some(q(3, 5)),
        deadline_factor: None,
    }
}

fn bench_rbf_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("rbf_by_graph_size");
    for &n in &[5usize, 10, 20, 40] {
        let task = generate_drt(&cfg(n), 42);
        g.bench_with_input(BenchmarkId::from_parameter(n), &task, |b, task| {
            b.iter(|| black_box(Rbf::compute(task, Q::int(200))))
        });
    }
    g.finish();
}

fn bench_rbf_horizon(c: &mut Criterion) {
    let mut g = c.benchmark_group("rbf_by_horizon");
    let task = generate_drt(&cfg(10), 7);
    for &h in &[100i128, 300, 1000] {
        g.bench_with_input(BenchmarkId::from_parameter(h), &h, |b, &h| {
            b.iter(|| black_box(Rbf::compute(&task, Q::int(h))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_rbf_size, bench_rbf_horizon);
criterion_main!(benches);
