//! `srtw` — command-line front end for the structural delay analysis.
//!
//! ```text
//! srtw analyze  <system.srtw> [--scheduler fifo|fp|edf] [--json]
//!               [--budget-ms MS] [--max-paths N] [--max-segments N]
//!               [--threads N]
//! srtw rbf      <system.srtw> [--horizon H]
//! srtw dot      <system.srtw>
//! srtw simulate <system.srtw> [--seeds N] [--horizon H]
//! srtw batch    <dir|manifest> [--jobs N] [--threads N] [--timeout-ms MS]
//!               [--grace-ms MS] [--budget-ms MS] [--retries N]
//!               [--fail-fast|--keep-going]
//!               [--fault trip@N|overflow@N|clockjump@N:MS|panic@N] [--json]
//! srtw serve    [--addr HOST:PORT] [--replicas N] [--admin-addr HOST:PORT]
//!               [--workers N] [--queue N] [--max-conns N]
//!               [--drain-ms MS] [--grace-ms MS] [--read-timeout-ms MS]
//!               [--header-timeout-ms MS] [--deadline-ms MS] [--threads N]
//!               [--fault SPEC|abort@N|stall@N:MS|closefd@N]
//! srtw flood    <addr> [--count N] [--concurrency N] [--analyze FILE]
//! ```
//!
//! System files use the text format documented in [`srtw::textfmt`].
//! `--json` switches `analyze` and `batch` to a machine-readable
//! single-document output (see [`srtw::Json`]) that includes each
//! report's `quality` object and a top-level `degraded` flag.
//!
//! # Budgets
//!
//! `--budget-ms`, `--max-paths` and `--max-segments` cap the analysis
//! effort. When a cap trips, the analysis does not fail: it degrades
//! gracefully to sound (possibly pessimistic) bounds, prints a warning on
//! stderr and still exits 0.
//!
//! # Parallelism
//!
//! `analyze --threads N` shards the path-exploration frontier across `N`
//! worker threads. The result is **bit-identical** for every `N` — the
//! flag only changes wall-clock time. The default is the machine's
//! available parallelism; `--threads 1` runs the classic sequential
//! engine. In batch mode `--threads` sets the per-job worker count
//! (default 1): the machine splits as `--jobs` × `--threads`, and if that
//! product exceeds the available parallelism the per-job count is reduced
//! with a stderr warning instead of silently oversubscribing.
//!
//! # Batch mode
//!
//! `srtw batch` runs every `.srtw` system of a directory (sorted by file
//! name) or of a manifest (one path per line, `#` comments, resolved
//! relative to the manifest) on a pool of `--jobs` supervised workers.
//! Each job runs on its own thread behind `catch_unwind` under a watchdog
//! that enforces `--timeout-ms` by hard cancellation, and retries down the
//! degrade ladder exact → budgeted (halving `--budget-ms`, `--retries`
//! times) → RTC baseline. Per-job provenance (attempts, rung, degradation
//! records, wall time) lands in the batch report. `--fault` injects a
//! deterministic fault into every attempt (testing the failure paths).
//!
//! # Service mode
//!
//! `srtw serve` runs the resilient analysis service ([`srtw::serve`]):
//! `POST /analyze` answers with the same JSON document as
//! `analyze --json`, behind bounded admission (503 + `Retry-After` when
//! the queue is full), per-request deadlines (`X-Deadline-Ms` → sound
//! degradation to the RTC bound), crash isolation, and a graceful drain
//! on `SIGINT`/`SIGTERM` or `POST /shutdown` (exit 0; a stderr warning if
//! stragglers had to be cancelled).
//!
//! # Exit codes
//!
//! | code | meaning |
//! |------|---------|
//! | 0 | success — bounds exact, or degraded with a stderr warning |
//! | 2 | input error — unreadable file, parse error, bad flags |
//! | 3 | internal — analysis failure (unstable system, arithmetic overflow, exhausted budget with no sound fallback) or a residual panic |
//! | 4 | batch — some jobs failed every rung of the ladder (or were skipped by `--fail-fast`) |
//!
//! With `--json`, exits 2 and 3 still produce a machine-readable document
//! on stdout: `{"error": {"code": …, "kind": "input"|"internal"|"panic",
//! "message": …}}`. A batch failure (exit 4) is not an error document —
//! the batch report itself, listing the failed jobs, is the document.

use srtw::supervisor::{
    run_batch, BatchConfig, BatchReport, BatchStatus, JobOutcome, JobSpec, RestartPolicy,
};
use srtw::textfmt::{parse_system, SystemSpec};
use srtw::serve::{signal, ProcessFault, ReplicaConfig, ServeConfig, Server, Supervisor};
use srtw::{
    earliest_random_walk, edf_schedulable, fifo_report, fifo_structural,
    fixed_priority_structural_with, simulate_fifo, AnalysisConfig, Budget, Curve, DelayAnalysis,
    FaultPlan, Json, Q, Rbf, ServiceProcess, SupervisorConfig,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// CLI failure, split by exit code.
enum CliError {
    /// Unreadable/malformed input or bad flags — exit code 2.
    Input(String),
    /// Analysis failure or residual panic — exit code 3.
    Internal(String),
}

fn input(msg: impl Into<String>) -> CliError {
    CliError::Input(msg.into())
}

/// Renders an error as the machine-readable stdout document the `--json`
/// contract promises on exits 2 and 3.
fn json_error(code: u8, kind: &str, msg: &str) -> Json {
    Json::object(vec![(
        "error",
        Json::object(vec![
            ("code", Json::Int(code as i128)),
            ("kind", Json::str(kind)),
            ("message", Json::str(msg)),
        ]),
    )])
}

fn fail(json: bool, code: u8, kind: &str, prefix: &str, msg: &str) -> ExitCode {
    if json {
        println!("{}", json_error(code, kind, msg));
    }
    eprintln!("{prefix}{msg}");
    ExitCode::from(code)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    // Residual panics (library bugs) must not abort with a backtrace dump:
    // silence the default hook and convert them to exit code 3. Budget and
    // arithmetic failures never panic by design; this is the last line of
    // defence the exit-code contract promises.
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = catch_unwind(|| run(&args));
    let _ = std::panic::take_hook();
    match outcome {
        Ok(Ok(code)) => code,
        Ok(Err(CliError::Input(msg))) => fail(json, 2, "input", "error: ", &msg),
        Ok(Err(CliError::Internal(msg))) => fail(json, 3, "internal", "internal error: ", &msg),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".into());
            fail(
                json,
                3,
                "panic",
                "internal error: unexpected panic: ",
                &msg,
            )
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, CliError> {
    let usage = "usage: srtw <analyze|rbf|dot|simulate|batch|serve|flood> [<file|dir>] [options]";
    let cmd = args.first().ok_or_else(|| input(usage))?;
    if cmd == "serve" {
        return serve(&args[1..]);
    }
    if cmd == "flood" {
        return flood(&args[1..]);
    }
    let path = args.get(1).ok_or_else(|| input(usage))?;
    let opts = &args[2..];

    if cmd == "batch" {
        return batch(path, opts);
    }

    let text =
        std::fs::read_to_string(path).map_err(|e| input(format!("cannot read {path}: {e}")))?;
    let sys = parse_system(&text).map_err(|e| input(format!("{path}: {e}")))?;

    match cmd.as_str() {
        "analyze" => analyze(&sys, opts),
        "rbf" => rbf(&sys, opts),
        "dot" => {
            for t in &sys.tasks {
                print!("{}", t.to_dot());
            }
            Ok(())
        }
        "simulate" => simulate(&sys, opts),
        other => Err(input(format!("unknown command '{other}'\n{usage}"))),
    }
    .map(|()| ExitCode::SUCCESS)
}

/// One queued batch entry: either a parsed job or its pre-run failure
/// (unreadable file, parse error, missing server).
// One short-lived entry per input file; boxing the job would buy nothing.
#[allow(clippy::large_enum_variant)]
enum QueueEntry {
    Job(JobSpec),
    PreFailed(JobOutcome),
}

/// Collects the `.srtw` queue from a directory (sorted by file name) or a
/// manifest file (one path per line, `#` comments, resolved relative to
/// the manifest's directory).
fn collect_queue(path: &str) -> Result<Vec<std::path::PathBuf>, CliError> {
    let p = std::path::Path::new(path);
    if p.is_dir() {
        let mut files: Vec<_> = std::fs::read_dir(p)
            .map_err(|e| input(format!("cannot read directory {path}: {e}")))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|f| f.extension().is_some_and(|x| x == "srtw"))
            .collect();
        files.sort();
        if files.is_empty() {
            return Err(input(format!("no .srtw files in {path}")));
        }
        return Ok(files);
    }
    let text =
        std::fs::read_to_string(p).map_err(|e| input(format!("cannot read {path}: {e}")))?;
    let base = p.parent().unwrap_or_else(|| std::path::Path::new("."));
    let files: Vec<_> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| base.join(l))
        .collect();
    if files.is_empty() {
        return Err(input(format!("manifest {path} lists no systems")));
    }
    Ok(files)
}

/// Loads one queued file into a job, containing parse panics and turning
/// every pre-run failure into reportable provenance instead of aborting
/// the batch.
fn load_job(file: &std::path::Path) -> QueueEntry {
    let name = file
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| file.display().to_string());
    let text = match std::fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => {
            return QueueEntry::PreFailed(JobOutcome::pre_failed(
                name,
                format!("cannot read {}: {e}", file.display()),
            ))
        }
    };
    let loaded = catch_unwind(AssertUnwindSafe(|| -> Result<JobSpec, String> {
        let sys = parse_system(&text).map_err(|e| format!("{}: {e}", file.display()))?;
        let server = sys.server.as_ref().ok_or_else(|| {
            format!("{}: the system file declares no server", file.display())
        })?;
        let beta = server.beta_lower().map_err(|e| e.to_string())?;
        Ok(JobSpec::new(name.clone(), sys.tasks, beta))
    }));
    match loaded {
        Ok(Ok(spec)) => QueueEntry::Job(spec),
        Ok(Err(e)) => QueueEntry::PreFailed(JobOutcome::pre_failed(name, e)),
        Err(_) => QueueEntry::PreFailed(JobOutcome::pre_failed(name, "panic while parsing")),
    }
}

fn batch(path: &str, opts: &[String]) -> Result<ExitCode, CliError> {
    let started = Instant::now();
    let json = opts.iter().any(|a| a == "--json");
    let fail_fast = match (
        opts.iter().any(|a| a == "--fail-fast"),
        opts.iter().any(|a| a == "--keep-going"),
    ) {
        (true, true) => return Err(input("--fail-fast and --keep-going are mutually exclusive")),
        (ff, _) => ff,
    };
    let parse_u64 = |key: &str, default: u64| -> Result<u64, CliError> {
        match opt_value(opts, key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| input(format!("bad {key} '{v}': {e}"))),
        }
    };
    let jobs = (parse_u64("--jobs", 1)? as usize).max(1);
    // The machine splits as jobs × per-job threads. When --threads asks
    // for real per-job parallelism, cap the product at the available
    // parallelism instead of silently oversubscribing (a pool of
    // single-threaded jobs is the long-standing default and stays
    // unwarned — its workers mostly block on the watchdog).
    let mut threads = parse_threads(opts, 1)?;
    let avail = available_parallelism();
    if threads > 1 && jobs.saturating_mul(threads) > avail {
        let capped = (avail / jobs).max(1);
        eprintln!(
            "warning: --jobs {jobs} × --threads {threads} exceeds the {avail} available \
             core(s); capping per-job threads at {capped}"
        );
        threads = capped;
    }
    let budget_ms = parse_u64("--budget-ms", 1_000)?;
    let retries = parse_u64("--retries", 2)? as u32;
    let grace = Duration::from_millis(parse_u64("--grace-ms", 2_000)?);
    let timeout = opt_value(opts, "--timeout-ms")
        .map(|v| {
            v.parse::<u64>()
                .map(Duration::from_millis)
                .map_err(|e| input(format!("bad --timeout-ms '{v}': {e}")))
        })
        .transpose()?;
    let fault = opt_value(opts, "--fault")
        .map(|v| FaultPlan::parse(&v).map_err(CliError::Input))
        .transpose()?;

    let queue = collect_queue(path)?;
    let entries: Vec<QueueEntry> = queue.iter().map(|f| load_job(f)).collect();

    // With --fail-fast a pre-run failure stops the queue exactly like a
    // failed run: jobs after the first pre-failure never start.
    let cut = if fail_fast {
        entries
            .iter()
            .position(|e| matches!(e, QueueEntry::PreFailed(_)))
            .map(|i| i + 1)
            .unwrap_or(entries.len())
    } else {
        entries.len()
    };

    let cfg = BatchConfig {
        jobs,
        supervisor: SupervisorConfig {
            timeout,
            grace,
            budget_ms,
            budget_retries: retries,
            fault,
            threads,
        },
        fail_fast,
    };
    let specs: Vec<JobSpec> = entries
        .iter()
        .take(cut)
        .filter_map(|e| match e {
            QueueEntry::Job(spec) => Some(spec.clone()),
            QueueEntry::PreFailed(_) => None,
        })
        .collect();
    let ran = run_batch(specs, &cfg);

    // Re-assemble in input order: supervised outcomes fill the job slots,
    // pre-failures keep theirs, and everything past the --fail-fast cut is
    // skipped.
    let mut supervised = ran.jobs.into_iter();
    let merged: Vec<JobOutcome> = entries
        .into_iter()
        .enumerate()
        .map(|(i, e)| match e {
            QueueEntry::PreFailed(out) => Ok(out),
            QueueEntry::Job(spec) if i >= cut => Ok(JobOutcome::skipped(spec.name)),
            QueueEntry::Job(spec) => supervised.next().ok_or_else(|| {
                // A supervisor bug, not a user error: surface it through
                // the typed exit-3 path (and the --json error document),
                // never as a process abort.
                CliError::Internal(format!(
                    "batch supervisor returned no outcome for queued job '{}'",
                    spec.name
                ))
            }),
        })
        .collect::<Result<_, CliError>>()?;
    let report = BatchReport {
        jobs: merged,
        wall: started.elapsed(),
    };

    if json {
        println!("{}", report.to_json());
    } else {
        println!("{report}");
    }
    let counts = report.counts();
    match report.status() {
        BatchStatus::AllExact => Ok(ExitCode::SUCCESS),
        BatchStatus::SomeDegraded => {
            eprintln!(
                "warning: {} job(s) completed with degraded (still sound) bounds",
                counts.degraded
            );
            Ok(ExitCode::SUCCESS)
        }
        BatchStatus::SomeFailed => {
            eprintln!(
                "error: {} job(s) failed every rung of the ladder{}",
                counts.failed,
                if counts.skipped > 0 {
                    format!(", {} skipped", counts.skipped)
                } else {
                    String::new()
                }
            );
            Ok(ExitCode::from(4))
        }
    }
}

fn opt_value(opts: &[String], key: &str) -> Option<String> {
    opts.iter()
        .position(|a| a == key)
        .and_then(|i| opts.get(i + 1))
        .cloned()
}

/// The machine's available hardware parallelism, with a safe fallback
/// of 1 when the platform cannot report it.
fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parses `--threads` (must be at least 1); `default` applies when the
/// flag is absent.
fn parse_threads(opts: &[String], default: usize) -> Result<usize, CliError> {
    match opt_value(opts, "--threads") {
        None => Ok(default),
        Some(v) => {
            let n: usize = v
                .parse()
                .map_err(|e| input(format!("bad --threads '{v}': {e}")))?;
            if n == 0 {
                return Err(input("--threads must be at least 1"));
            }
            Ok(n)
        }
    }
}

fn parse_budget(opts: &[String]) -> Result<Budget, CliError> {
    let mut budget = Budget::default();
    if let Some(v) = opt_value(opts, "--budget-ms") {
        let ms: u64 = v
            .parse()
            .map_err(|e| input(format!("bad --budget-ms '{v}': {e}")))?;
        budget = budget.with_wall_ms(ms);
    }
    if let Some(v) = opt_value(opts, "--max-paths") {
        let n: u64 = v
            .parse()
            .map_err(|e| input(format!("bad --max-paths '{v}': {e}")))?;
        budget = budget.with_max_paths(n);
    }
    if let Some(v) = opt_value(opts, "--max-segments") {
        let n: u64 = v
            .parse()
            .map_err(|e| input(format!("bad --max-segments '{v}': {e}")))?;
        budget = budget.with_max_segments(n);
    }
    Ok(budget)
}

fn server_curve(sys: &SystemSpec) -> Result<Curve, CliError> {
    match &sys.server {
        Some(s) => s.beta_lower().map_err(|e| CliError::Internal(e.to_string())),
        None => Err(input(
            "the system file declares no server (add a 'server …' line)",
        )),
    }
}

/// Prints the stderr degradation warning and reports whether any stream
/// degraded (the process still exits 0).
fn warn_if_degraded(per: &[DelayAnalysis], rtc_degraded: bool) -> bool {
    let mut kinds: Vec<String> = per
        .iter()
        .flat_map(|a| a.degradations.iter().map(|d| d.tripped.to_string()))
        .collect();
    if rtc_degraded && kinds.is_empty() {
        kinds.push("budget".into());
    }
    if kinds.is_empty() {
        return false;
    }
    kinds.sort();
    kinds.dedup();
    eprintln!(
        "warning: analysis budget exhausted ({}); reported bounds are sound but degraded",
        kinds.join(", ")
    );
    true
}

fn analyze(sys: &SystemSpec, opts: &[String]) -> Result<(), CliError> {
    let beta = server_curve(sys)?;
    let scheduler = opt_value(opts, "--scheduler").unwrap_or_else(|| "fifo".into());
    let json = opts.iter().any(|a| a == "--json");
    let budget = parse_budget(opts)?;
    let threads = parse_threads(opts, available_parallelism())?;
    let cfg = AnalysisConfig {
        budget: budget.clone(),
        threads,
        ..Default::default()
    };
    match scheduler.as_str() {
        "fifo" => {
            // The service's POST /analyze emits the same document through
            // the same code path, keeping the two entry points
            // byte-identical by construction.
            let report = fifo_report(&sys.tasks, &beta, &cfg)
                .map_err(|e| CliError::Internal(e.to_string()))?;
            warn_if_degraded(&report.per, !report.rtc.quality.is_exact());
            if json {
                println!("{}", report.to_json());
            } else {
                println!("scheduler: FIFO");
                println!("RTC baseline (stream-agnostic): {}", report.rtc);
                for a in &report.per {
                    println!("\n{a}");
                }
            }
        }
        "fp" => {
            let per = fixed_priority_structural_with(&sys.tasks, &beta, &cfg)
                .map_err(|e| CliError::Internal(e.to_string()))?;
            let degraded = warn_if_degraded(&per, false);
            if json {
                println!(
                    "{}",
                    Json::object(vec![
                        ("scheduler", Json::str("fp")),
                        ("degraded", Json::Bool(degraded)),
                        (
                            "streams",
                            Json::Array(per.iter().map(|a| a.to_json()).collect()),
                        ),
                    ])
                );
            } else {
                println!("scheduler: fixed priority (file order = priority order)");
                for (i, a) in per.iter().enumerate() {
                    println!("\npriority {i}:\n{a}");
                }
            }
        }
        "edf" => {
            let r = edf_schedulable(&sys.tasks, &beta)
                .map_err(|e| CliError::Internal(e.to_string()))?;
            if json {
                println!(
                    "{}",
                    Json::object(vec![
                        ("scheduler", Json::str("edf")),
                        ("degraded", Json::Bool(false)),
                        ("report", r.to_json()),
                    ])
                );
            } else {
                println!("scheduler: EDF (processor-demand criterion)");
                println!(
                    "schedulable: {} (busy window ≤ {}, {} breakpoints)",
                    r.schedulable, r.busy_window, r.breakpoints
                );
                if let Some((t, demand, supply)) = r.violation {
                    println!("first violation: window {t}: demand {demand} > supply {supply}");
                }
            }
        }
        other => return Err(input(format!("unknown scheduler '{other}' (fifo|fp|edf)"))),
    }
    Ok(())
}

/// `srtw serve`: run the resilient analysis service until a shutdown is
/// requested (signal or `POST /shutdown`), then drain gracefully. With
/// `--replicas N` (N ≥ 2) the process becomes a supervision-tree parent
/// over N shared-nothing replica processes; `--internal-replica` is the
/// (internal) replica entry point reached only by self-exec.
fn serve(opts: &[String]) -> Result<ExitCode, CliError> {
    let parse_ms = |key: &str, default: u64| -> Result<u64, CliError> {
        match opt_value(opts, key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| input(format!("bad {key} '{v}': {e}"))),
        }
    };
    let addr = opt_value(opts, "--addr").unwrap_or_else(|| "127.0.0.1:7878".into());

    // One --fault flag serves both layers: process-level specs
    // (abort@N | stall@N:MS | closefd@N) drive the supervision tree,
    // anything else is the metered FaultPlan grammar.
    let fault_spec = opt_value(opts, "--fault");
    let mut process_fault = None;
    let mut meter_fault = None;
    if let Some(spec) = &fault_spec {
        match ProcessFault::parse(spec) {
            Some(Ok(f)) => process_fault = Some(f),
            Some(Err(e)) => return Err(input(e)),
            None => meter_fault = Some(FaultPlan::parse(spec).map_err(CliError::Input)?),
        }
    }

    let cfg = ServeConfig {
        addr: addr.clone(),
        workers: (parse_ms("--workers", available_parallelism() as u64)? as usize).max(1),
        queue: (parse_ms("--queue", 64)? as usize).max(1),
        max_conns: (parse_ms("--max-conns", 1_024)? as usize).max(1),
        drain: Duration::from_millis(parse_ms("--drain-ms", 5_000)?),
        grace: Duration::from_millis(parse_ms("--grace-ms", 2_000)?),
        header_timeout: Duration::from_millis(parse_ms("--header-timeout-ms", 2_000)?),
        read_timeout: Duration::from_millis(parse_ms("--read-timeout-ms", 5_000)?),
        default_deadline_ms: opt_value(opts, "--deadline-ms")
            .map(|v| {
                v.parse::<u64>()
                    .map_err(|e| input(format!("bad --deadline-ms '{v}': {e}")))
            })
            .transpose()?,
        threads: parse_threads(opts, 1)?,
        fault: meter_fault,
        process_fault,
        replica: None,
    };

    if opts.iter().any(|a| a == "--internal-replica") {
        return serve_replica(opts, cfg);
    }

    let replicas = parse_ms("--replicas", 1)? as usize;
    if replicas >= 2 {
        return serve_supervisor(opts, replicas, &addr, cfg.drain, fault_spec, process_fault);
    }

    let server = Server::spawn(cfg).map_err(|e| input(format!("cannot bind {addr}: {e}")))?;
    signal::install_handlers();
    // Flushed immediately so a harness reading our stdout learns the
    // resolved (possibly ephemeral) port before the first request.
    println!("srtw-serve listening on {}", server.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.wait_shutdown();
    eprintln!("shutdown requested; draining in-flight work");
    let report = server.shutdown();
    if report.clean() {
        eprintln!("drained cleanly");
    } else {
        // Mirrors batch degradation: still exit 0, with a stderr warning
        // — the cancelled requests were answered with sound bounds.
        eprintln!(
            "warning: drain incomplete: {} request(s) cancelled, {} worker thread(s) abandoned",
            report.cancelled, report.abandoned
        );
    }
    Ok(ExitCode::SUCCESS)
}

/// The replica entry point: rebuild the inherited shared listener, serve
/// on it, and announce the private admin address for the parent.
fn serve_replica(opts: &[String], mut cfg: ServeConfig) -> Result<ExitCode, CliError> {
    let fd: i32 = opt_value(opts, "--listener-fd")
        .ok_or_else(|| input("--internal-replica requires --listener-fd"))?
        .parse()
        .map_err(|e| input(format!("bad --listener-fd: {e}")))?;
    let index: usize = opt_value(opts, "--replica-index")
        .ok_or_else(|| input("--internal-replica requires --replica-index"))?
        .parse()
        .map_err(|e| input(format!("bad --replica-index: {e}")))?;
    let listener = srtw::serve::sys::listener_from_fd(fd)
        .ok_or_else(|| input(format!("cannot adopt inherited listener fd {fd}")))?;
    cfg.replica = Some(index);
    let server = Server::from_listener(listener, cfg)
        .map_err(|e| input(format!("replica {index}: cannot start: {e}")))?;
    signal::install_handlers();
    let admin = server
        .spawn_admin("127.0.0.1:0")
        .map_err(|e| input(format!("replica {index}: cannot bind admin plane: {e}")))?;
    println!(
        "srtw-serve replica {index} pid {} admin on {admin}",
        std::process::id()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.wait_shutdown();
    eprintln!("replica {index}: shutdown requested; draining");
    let report = server.shutdown();
    if !report.clean() {
        eprintln!(
            "replica {index}: warning: drain incomplete: {} cancelled, {} abandoned",
            report.cancelled, report.abandoned
        );
    }
    Ok(ExitCode::SUCCESS)
}

/// The supervision-tree parent: bind once, replicate, restart, drain.
fn serve_supervisor(
    opts: &[String],
    replicas: usize,
    addr: &str,
    drain: Duration,
    fault_spec: Option<String>,
    process_fault: Option<ProcessFault>,
) -> Result<ExitCode, CliError> {
    // Flags forwarded verbatim to every replica. --addr, --replicas,
    // --admin-addr and --fault stay with the parent (the fault is routed
    // below: meter faults to every replica, process faults to replica 0).
    let mut child_args = Vec::new();
    for key in [
        "--workers",
        "--queue",
        "--max-conns",
        "--drain-ms",
        "--grace-ms",
        "--header-timeout-ms",
        "--read-timeout-ms",
        "--deadline-ms",
        "--threads",
    ] {
        if let Some(v) = opt_value(opts, key) {
            child_args.push(key.to_string());
            child_args.push(v);
        }
    }
    if process_fault.is_none() {
        if let Some(spec) = &fault_spec {
            child_args.push("--fault".into());
            child_args.push(spec.clone());
        }
    }
    let rcfg = ReplicaConfig {
        addr: addr.to_string(),
        admin_addr: opt_value(opts, "--admin-addr").unwrap_or_else(|| "127.0.0.1:0".into()),
        replicas,
        restart: RestartPolicy::default(),
        drain,
        child_args,
        process_fault: process_fault.and(fault_spec),
    };
    signal::install_handlers();
    let sup =
        Supervisor::bind(rcfg).map_err(|e| input(format!("cannot start supervisor: {e}")))?;
    Ok(ExitCode::from(sup.run() as u8))
}

/// `srtw flood`: the load generator behind the replicated soak — many
/// short-lived (or keep-alive-reusing) connections against a running
/// service, with a machine-readable outcome line. Transport errors do not
/// fail the command: under injected process faults they are expected, and
/// the caller asserts on the printed counts instead.
fn flood(opts: &[String]) -> Result<ExitCode, CliError> {
    use srtw::serve::http::client_roundtrip;
    use std::sync::atomic::{AtomicU64, Ordering};
    let addr: std::net::SocketAddr = opts
        .first()
        .ok_or_else(|| input("usage: srtw flood <addr> [--count N] [--concurrency N] [--analyze FILE]"))?
        .parse()
        .map_err(|e| input(format!("bad flood address: {e}")))?;
    let count: u64 = opt_value(opts, "--count")
        .unwrap_or_else(|| "1000".into())
        .parse()
        .map_err(|e| input(format!("bad --count: {e}")))?;
    let concurrency: u64 = opt_value(opts, "--concurrency")
        .unwrap_or_else(|| "4".into())
        .parse::<u64>()
        .map_err(|e| input(format!("bad --concurrency: {e}")))?
        .max(1);
    let body = match opt_value(opts, "--analyze") {
        None => None,
        Some(path) => Some(
            std::fs::read(&path).map_err(|e| input(format!("cannot read {path}: {e}")))?,
        ),
    };
    let ok = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let client_err = AtomicU64::new(0);
    let server_err = AtomicU64::new(0);
    let transport = AtomicU64::new(0);
    std::thread::scope(|s| {
        for worker in 0..concurrency {
            let mine = count / concurrency + u64::from(worker < count % concurrency);
            let (ok, shed, client_err, server_err, transport) =
                (&ok, &shed, &client_err, &server_err, &transport);
            let body = body.as_deref();
            s.spawn(move || {
                for _ in 0..mine {
                    let result = match body {
                        None => client_roundtrip(&addr, "GET", "/healthz", &[], b""),
                        Some(b) => client_roundtrip(&addr, "POST", "/analyze", &[], b),
                    };
                    match result {
                        Ok((status, _, _)) => match status {
                            200..=299 => ok.fetch_add(1, Ordering::Relaxed),
                            503 => shed.fetch_add(1, Ordering::Relaxed),
                            400..=499 => client_err.fetch_add(1, Ordering::Relaxed),
                            _ => server_err.fetch_add(1, Ordering::Relaxed),
                        },
                        Err(_) => transport.fetch_add(1, Ordering::Relaxed),
                    };
                }
            });
        }
    });
    println!(
        "flood complete: total={count} ok={} shed_503={} client_4xx={} server_5xx={} transport_errors={}",
        ok.into_inner(),
        shed.into_inner(),
        client_err.into_inner(),
        server_err.into_inner(),
        transport.into_inner(),
    );
    Ok(ExitCode::SUCCESS)
}

fn rbf(sys: &SystemSpec, opts: &[String]) -> Result<(), CliError> {
    let horizon: Q = opt_value(opts, "--horizon")
        .unwrap_or_else(|| "100".into())
        .parse()
        .map_err(|e| input(format!("bad --horizon: {e}")))?;
    for t in &sys.tasks {
        let rbf = Rbf::compute(t, horizon);
        println!("task {}: rbf breakpoints (window, work):", t.name());
        for &(s, w) in rbf.points() {
            println!("  {s:>8}  {w}");
        }
    }
    Ok(())
}

fn simulate(sys: &SystemSpec, opts: &[String]) -> Result<(), CliError> {
    let beta = server_curve(sys)?;
    let seeds: u64 = opt_value(opts, "--seeds")
        .unwrap_or_else(|| "20".into())
        .parse()
        .map_err(|e| input(format!("bad --seeds: {e}")))?;
    let horizon: Q = opt_value(opts, "--horizon")
        .unwrap_or_else(|| "300".into())
        .parse()
        .map_err(|e| input(format!("bad --horizon: {e}")))?;
    // Simulate on the fluid instance at the server's guaranteed rate
    // (which dominates the declared lower curve).
    let service = ServiceProcess::fluid(beta.rate());
    let per = fifo_structural(&sys.tasks, &beta, &AnalysisConfig::default())
        .map_err(|e| CliError::Internal(e.to_string()))?;
    let mut worst = Q::ZERO;
    for seed in 0..seeds {
        let traces: Vec<_> = sys
            .tasks
            .iter()
            .enumerate()
            .map(|(i, t)| earliest_random_walk(t, horizon, None, seed * 131 + i as u64))
            .collect();
        let out = simulate_fifo(&sys.tasks, &traces, &service);
        for (si, task) in sys.tasks.iter().enumerate() {
            for v in task.vertex_ids() {
                let d = out.max_delay_of(si, v);
                worst = worst.max(d);
                if d > per[si].bound_of(v) {
                    return Err(CliError::Internal(format!(
                        "BUG: simulated delay {d} exceeds bound {} (stream {si}, {v})",
                        per[si].bound_of(v)
                    )));
                }
            }
        }
    }
    println!(
        "simulated {seeds} random runs to horizon {horizon}: worst observed delay {worst} \
         (all within the analytic per-type bounds)"
    );
    Ok(())
}
