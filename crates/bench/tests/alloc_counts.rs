//! Allocation-count assertions for the fused pipeline (requires the
//! `count-allocs` feature; without it the tests vacuously pass).
//!
//! The point of [`srtw_minplus::Pipe`] is that chaining convolutions,
//! pointwise minima, and a deviation exit reuses one scratch arena and
//! skips intermediate validation: the pipeline holds O(1) intermediate
//! buffers regardless of how many stages flow through it, where the
//! materializing composition pays a fresh scratch set per convolution.

use srtw_bench::timing::alloc_count;
use srtw_minplus::{BudgetMeter, Curve, Ext, Pipe, Q};

/// Allocations performed by `f` on this thread, `None` without the feature.
fn allocs_of(f: impl FnOnce()) -> Option<u64> {
    let before = alloc_count()?;
    f();
    Some(alloc_count().expect("counting allocator vanished") - before)
}

fn inputs() -> (Curve, Curve, Curve, Curve, Curve, Q) {
    let a = Curve::staircase(Q::int(4), Q::int(3));
    let b = Curve::rate_latency(Q::int(2), Q::int(3));
    let b2 = Curve::rate_latency(Q::int(3), Q::int(2));
    let c = Curve::staircase(Q::int(5), Q::int(4)).shift_up(Q::int(2));
    let demand = Curve::staircase(Q::int(6), Q::int(2));
    (a, b, b2, c, demand, Q::int(200))
}

fn fused() -> Ext {
    let (a, b, b2, c, demand, h) = inputs();
    let meter = BudgetMeter::unlimited();
    Pipe::new(a, &meter)
        .conv_upto(&b, h)
        .unwrap()
        .conv_upto(&b2, h)
        .unwrap()
        .min(&c)
        .unwrap()
        .hdev_of(&demand)
        .unwrap()
}

fn materialized() -> Ext {
    let (a, b, b2, c, demand, h) = inputs();
    let meter = BudgetMeter::unlimited();
    let c1 = a.try_conv_upto(&b, h, &meter).unwrap();
    let c2 = c1.try_conv_upto(&b2, h, &meter).unwrap();
    let min = c2.try_pointwise_min(&c, &meter).unwrap();
    demand.try_hdev(&min, &meter).unwrap()
}

#[test]
fn fused_pipeline_allocates_less_than_materializing() {
    assert_eq!(fused(), materialized(), "strategies must agree first");
    // Warm both paths once so lazily initialized runtime structures don't
    // skew the counts.
    let _ = allocs_of(|| {
        fused();
        materialized();
    });
    let (Some(f), Some(m)) = (
        allocs_of(|| {
            fused();
        }),
        allocs_of(|| {
            materialized();
        }),
    ) else {
        eprintln!("count-allocs feature off; skipping");
        return;
    };
    assert!(
        f < m,
        "fused conv → conv → min → hdev should allocate less than the \
         materializing composition: fused = {f}, materializing = {m}"
    );
}

#[test]
fn fused_conv_stages_reuse_the_scratch_arena() {
    // Marginal allocations of one more convolution stage: the fused
    // pipeline reuses its (already warm) arena, the materializing path
    // pays a fresh scratch set per operator.
    let (a, b, b2, _, _, h) = inputs();
    let run_fused = |convs: usize| {
        let meter = BudgetMeter::unlimited();
        let mut p = Pipe::new(a.clone(), &meter).conv_upto(&b, h).unwrap();
        for _ in 0..convs {
            p = p.conv_upto(&b2, h).unwrap();
        }
        std::hint::black_box(p.finish());
    };
    let run_mat = |convs: usize| {
        let meter = BudgetMeter::unlimited();
        let mut cur = a.try_conv_upto(&b, h, &meter).unwrap();
        for _ in 0..convs {
            cur = cur.try_conv_upto(&b2, h, &meter).unwrap();
        }
        std::hint::black_box(cur);
    };
    run_fused(4);
    run_mat(4);
    let counts = |run: &dyn Fn(usize)| {
        Some((allocs_of(|| run(1))?, allocs_of(|| run(4))?))
    };
    let (Some((f1, f4)), Some((m1, m4))) = (counts(&run_fused), counts(&run_mat)) else {
        eprintln!("count-allocs feature off; skipping");
        return;
    };
    let fused_marginal = (f4 - f1) / 3;
    let mat_marginal = (m4 - m1) / 3;
    assert!(
        fused_marginal < mat_marginal,
        "an extra fused conv stage should cost fewer allocations than an \
         extra materializing conv: fused {fused_marginal}/stage \
         (total {f1} → {f4}), materializing {mat_marginal}/stage \
         (total {m1} → {m4})"
    );
    // O(1) intermediate buffers: the per-stage overhead is a small
    // constant (output rewrites into the warm arena), not a buffer set.
    assert!(
        fused_marginal <= 16,
        "fused conv stage marginal allocations grew past a small constant: \
         {fused_marginal}/stage"
    );
}
