//! Maximum-busy-window bounds.
//!
//! Every bound this crate computes lives inside a *busy window*: a maximal
//! interval in which the server is continuously backlogged. For a stable
//! system (total demand rate strictly below the guaranteed service rate)
//! the busy-window length is bounded by the smallest `L > 0` with
//! `rbf_total(L) ≤ β(L)`, obtained here by the classical fixpoint
//! iteration `L ← β⁻¹(rbf_total(L))`. All path exploration and deviation
//! suprema can then be restricted to `[0, L]` — the finitary argument that
//! keeps every computation exact and finite.

use crate::error::AnalysisError;
use srtw_minplus::{Curve, Ext, Q};
use srtw_workload::{long_run_utilization, DrtTask, Rbf};

/// The busy-window bound of a set of streams sharing a server, together
/// with the per-stream request-bound functions materialized to that bound.
#[derive(Debug, Clone)]
pub struct BusyWindow {
    /// A sound upper bound on every busy-window length.
    pub bound: Q,
    /// Per-stream rbf, valid on `[0, bound]`.
    pub rbfs: Vec<Rbf>,
    /// Total long-run utilization of all streams.
    pub utilization: Q,
    /// Fixpoint iterations used.
    pub iterations: usize,
}

impl BusyWindow {
    /// Total demand of all streams in a window of length `t ≤ bound`.
    pub fn total_rbf(&self, t: Q) -> Q {
        self.rbfs
            .iter()
            .map(|r| r.eval(t))
            .fold(Q::ZERO, |a, b| a + b)
    }
}

/// Computes a busy-window bound for `tasks` jointly served by a resource
/// with lower service curve `beta`.
///
/// # Errors
///
/// [`AnalysisError::Unstable`] when the summed utilization reaches the
/// service rate; [`AnalysisError::BusyWindowDiverged`] if the fixpoint does
/// not converge within the iteration cap.
///
/// # Examples
///
/// ```
/// use srtw_core::busy_window;
/// use srtw_minplus::{Curve, Q};
/// use srtw_workload::DrtTaskBuilder;
///
/// let mut b = DrtTaskBuilder::new("loop");
/// let v = b.vertex("v", Q::int(2));
/// b.edge(v, v, Q::int(5));
/// let task = b.build().unwrap();
/// let beta = Curve::affine(Q::ZERO, Q::ONE); // dedicated unit server
///
/// let bw = busy_window(&[task], &beta).unwrap();
/// assert_eq!(bw.bound, Q::int(2)); // one job, done before the next
/// ```
pub fn busy_window(tasks: &[DrtTask], beta: &Curve) -> Result<BusyWindow, AnalysisError> {
    let utilization = tasks
        .iter()
        .map(long_run_utilization)
        .fold(Q::ZERO, |a, b| a + b);
    let rate = beta.rate();
    if utilization >= rate {
        // Acyclic-only workloads have utilization 0 < any positive rate; a
        // zero rate with nonzero demand is saturation.
        if rate.is_zero() {
            return Err(AnalysisError::ServiceSaturated);
        }
        return Err(AnalysisError::Unstable {
            utilization,
            service_rate: rate,
        });
    }

    let mut horizon = Q::ONE;
    let mut rbfs: Vec<Rbf> = tasks
        .iter()
        .map(|t| Rbf::compute(t, horizon))
        .collect();
    let mut level = Q::ZERO;
    let mut iterations = 0usize;
    const CAP: usize = 100_000;
    loop {
        iterations += 1;
        if iterations > CAP {
            return Err(AnalysisError::BusyWindowDiverged { reached: level });
        }
        let demand: Q = rbfs
            .iter()
            .map(|r| r.eval(level.min(r.horizon())))
            .fold(Q::ZERO, |a, b| a + b);
        let next = match beta.pseudo_inverse(demand) {
            Ext::Finite(t) => t,
            Ext::Infinite => return Err(AnalysisError::ServiceSaturated),
        };
        if next <= level {
            // Fixpoint: service catches up with demand at `level`.
            let bound = level.max(Q::ONE);
            // Materialize rbfs on the final bound.
            let rbfs = tasks.iter().map(|t| Rbf::compute(t, bound)).collect();
            return Ok(BusyWindow {
                bound,
                rbfs,
                utilization,
                iterations,
            });
        }
        level = next;
        if level > horizon {
            horizon = level + level; // grow geometrically to amortize
            rbfs = tasks.iter().map(|t| Rbf::compute(t, horizon)).collect();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtw_minplus::q;
    use srtw_workload::DrtTaskBuilder;

    fn looped(wcet: i128, sep: i128) -> DrtTask {
        let mut b = DrtTaskBuilder::new("loop");
        let v = b.vertex("v", Q::int(wcet));
        b.edge(v, v, Q::int(sep));
        b.build().unwrap()
    }

    #[test]
    fn single_job_busy_window() {
        let t = looped(2, 5);
        let beta = Curve::affine(Q::ZERO, Q::ONE);
        let bw = busy_window(&[t], &beta).unwrap();
        assert_eq!(bw.bound, Q::int(2));
        assert_eq!(bw.utilization, q(2, 5));
    }

    #[test]
    fn slow_server_long_window() {
        // wcet 2 every 5 on a half-rate server: busy window spans several
        // releases: rbf(t) = 2·(1+⌊t/5⌋), β(t)=t/2.
        // L: 2 -> β⁻¹(2)=4 -> rbf(4)=2 -> stop? rbf(4)=2, β(4)=2 ⇒ fix at 4.
        let t = looped(2, 5);
        let beta = Curve::affine(Q::ZERO, q(1, 2));
        let bw = busy_window(&[t], &beta).unwrap();
        assert_eq!(bw.bound, Q::int(4));
    }

    #[test]
    fn latency_extends_window() {
        let t = looped(2, 5);
        let beta = Curve::rate_latency(Q::ONE, Q::int(4));
        // β(t) = t−4. L: demand 2 → β⁻¹ = 6 → rbf(6)=4 → β⁻¹(4)=8 → rbf(8)=4
        // → stop at 8.
        let bw = busy_window(&[t], &beta).unwrap();
        assert_eq!(bw.bound, Q::int(8));
        // And indeed rbf(8) = 4 ≤ β(8) = 4.
        assert_eq!(bw.total_rbf(Q::int(8)), Q::int(4));
    }

    #[test]
    fn multi_stream_window() {
        let t1 = looped(1, 4);
        let t2 = looped(2, 6);
        let beta = Curve::affine(Q::ZERO, Q::ONE);
        let bw = busy_window(&[t1, t2], &beta).unwrap();
        // demand(0)=3 → 3 → rbf(3)=3 → stop at 3.
        assert_eq!(bw.bound, Q::int(3));
        assert_eq!(bw.utilization, q(1, 4) + q(1, 3));
        assert_eq!(bw.rbfs.len(), 2);
    }

    #[test]
    fn unstable_rejected() {
        let t = looped(3, 4); // U = 3/4
        let beta = Curve::affine(Q::ZERO, q(1, 2));
        assert!(matches!(
            busy_window(&[t], &beta),
            Err(AnalysisError::Unstable { .. })
        ));
    }

    #[test]
    fn saturated_service_rejected() {
        let t = looped(3, 4);
        let beta = Curve::constant(Q::int(100));
        assert!(matches!(
            busy_window(&[t], &beta),
            Err(AnalysisError::ServiceSaturated)
        ));
    }

    #[test]
    fn acyclic_workload_any_positive_rate() {
        let mut b = DrtTaskBuilder::new("dag");
        let a = b.vertex("a", Q::int(5));
        let c = b.vertex("b", Q::int(5));
        b.edge(a, c, Q::ONE);
        let t = b.build().unwrap();
        let beta = Curve::affine(Q::ZERO, q(1, 10));
        let bw = busy_window(&[t], &beta).unwrap();
        // All 10 units must eventually drain at rate 1/10: window 100.
        assert_eq!(bw.bound, Q::int(100));
    }
}
