//! The reusable crash-containment primitive underneath the ladder.
//!
//! [`contain`] runs a closure on a dedicated thread behind `catch_unwind`
//! while the calling thread doubles as its watchdog: when the hard
//! deadline passes it raises the attempt's [`CancelToken`] (tripping the
//! closure's [`srtw_minplus::BudgetMeter`] at its next metered
//! operation), waits out the grace period, and abandons the thread if it
//! still has not wound down. The batch ladder ([`crate::run_supervised`])
//! and the analysis service (`srtw-serve`) both build on this one
//! primitive, so "a panicking analysis cannot take the process down"
//! holds identically for a batch job and for an HTTP request.

use srtw_minplus::CancelToken;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

/// How a contained closure ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Contained<T> {
    /// The closure ran to completion. Containment is orthogonal to the
    /// closure's own result type: `T` may well be a `Result`.
    Completed(T),
    /// The closure panicked; the payload is rendered as text and the
    /// worker thread is gone (the unwind was caught).
    Panicked {
        /// The panic payload, downcast to text where possible.
        message: String,
    },
    /// The watchdog cancelled the attempt and the thread did not wind
    /// down within the grace period; it was abandoned (detached) and
    /// keeps a core busy until it next polls its meter.
    HardTimeout,
    /// The OS refused to spawn the worker thread.
    SpawnFailed,
}

impl<T> Contained<T> {
    /// The completed value, if the closure ran to completion.
    pub fn completed(self) -> Option<T> {
        match self {
            Contained::Completed(v) => Some(v),
            _ => None,
        }
    }
}

/// Runs `f` on its own named thread behind `catch_unwind`, supervised by
/// the calling thread.
///
/// * `timeout` is the hard wall-clock deadline; `None` waits forever
///   (the closure can then only end cooperatively).
/// * On timeout the watchdog calls `token.cancel()` — the closure is
///   expected to poll that token through a meter — and allows `grace`
///   for it to wind down to a clean (degraded-but-sound) result, which
///   is then returned as [`Contained::Completed`]. Only a thread that
///   overruns the grace period too is abandoned as
///   [`Contained::HardTimeout`].
///
/// Never panics and never blocks past `timeout + grace`.
///
/// # Examples
///
/// ```
/// use srtw_supervisor::{contain, Contained};
/// use srtw_minplus::CancelToken;
///
/// let token = CancelToken::new();
/// let out = contain("double", None, std::time::Duration::ZERO, &token, || 21 * 2);
/// assert_eq!(out, Contained::Completed(42));
///
/// let out: Contained<()> = contain("boom", None, std::time::Duration::ZERO, &token, || {
///     panic!("injected");
/// });
/// assert!(matches!(out, Contained::Panicked { message } if message == "injected"));
/// ```
pub fn contain<T, F>(
    name: &str,
    timeout: Option<Duration>,
    grace: Duration,
    token: &CancelToken,
    f: F,
) -> Contained<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (tx, rx) = mpsc::channel();
    let spawned = thread::Builder::new()
        .name(name.to_string())
        .spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            // The receiver may be gone if the watchdog abandoned us.
            let _ = tx.send(result);
        });
    if spawned.is_err() {
        return Contained::SpawnFailed;
    }

    let received = match timeout {
        None => rx.recv().ok(),
        Some(deadline) => match rx.recv_timeout(deadline) {
            Ok(r) => Some(r),
            Err(mpsc::RecvTimeoutError::Disconnected) => None,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // Watchdog fires: cancellation trips the meter at the
                // closure's next metered operation; give it the grace
                // period to wind down to a sound degraded result, then
                // abandon it.
                token.cancel();
                rx.recv_timeout(grace).ok()
            }
        },
    };
    match received {
        None => Contained::HardTimeout,
        Some(Ok(v)) => Contained::Completed(v),
        Some(Err(payload)) => Contained::Panicked {
            message: panic_message(payload.as_ref()),
        },
    }
}

/// Renders a caught panic payload as text (`&str` and `String` payloads
/// pass through; anything else becomes `"unknown panic"`).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "unknown panic".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtw_minplus::{Budget, BudgetMeter};
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn completes_and_returns_the_value() {
        let token = CancelToken::new();
        let out = contain("ok", None, Duration::ZERO, &token, || "value".to_string());
        assert_eq!(out, Contained::Completed("value".to_string()));
    }

    #[test]
    fn panic_is_contained_with_its_message() {
        let token = CancelToken::new();
        let out: Contained<u32> = contain("boom", None, Duration::ZERO, &token, || {
            panic!("deliberate {}", 7);
        });
        match out {
            Contained::Panicked { message } => assert_eq!(message, "deliberate 7"),
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_cancels_a_cooperative_closure_within_grace() {
        let token = CancelToken::new();
        let meter = Arc::new(BudgetMeter::new(
            &Budget::default().with_cancel(token.clone()),
        ));
        let polled = Arc::clone(&meter);
        let started = Instant::now();
        let out = contain(
            "coop",
            Some(Duration::from_millis(30)),
            Duration::from_secs(5),
            &token,
            move || {
                // Spin until the meter observes the cancellation.
                while polled.tick_path() {
                    std::thread::yield_now();
                }
                "wound down"
            },
        );
        assert_eq!(out, Contained::Completed("wound down"));
        assert!(started.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn stuck_closure_is_abandoned_as_hard_timeout() {
        let token = CancelToken::new();
        let out: Contained<()> = contain(
            "stuck",
            Some(Duration::from_millis(10)),
            Duration::from_millis(10),
            &token,
            || {
                // Ignores cancellation entirely.
                std::thread::sleep(Duration::from_secs(600));
            },
        );
        assert_eq!(out, Contained::HardTimeout);
        assert!(token.is_cancelled());
    }
}
