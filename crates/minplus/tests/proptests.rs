//! Property-based tests for the (min,+) curve algebra.
//!
//! Random curves are generated from a small constructor grammar (affine,
//! rate-latency, staircases, shifts, scales) and the algebraic laws of the
//! operators are checked against dense-grid pointwise evaluation.

use proptest::prelude::*;
use srtw_minplus::{Curve, Ext, Q};

/// A small positive rational with numerator/denominator bounded for speed.
fn small_pos_q() -> impl Strategy<Value = Q> {
    (1i128..=12, 1i128..=4).prop_map(|(n, d)| Q::new(n, d))
}

/// A small non-negative rational.
fn small_q() -> impl Strategy<Value = Q> {
    (0i128..=12, 1i128..=4).prop_map(|(n, d)| Q::new(n, d))
}

/// Random curve from the constructor grammar.
fn curve() -> impl Strategy<Value = Curve> {
    let leaf = prop_oneof![
        small_q().prop_map(Curve::constant),
        (small_q(), small_q()).prop_map(|(b, r)| Curve::affine(b, r)),
        (small_pos_q(), small_q()).prop_map(|(r, t)| Curve::rate_latency(r, t)),
        (small_pos_q(), small_pos_q()).prop_map(|(p, h)| Curve::staircase(p, h)),
        (small_pos_q(), small_pos_q()).prop_map(|(p, h)| Curve::staircase_lower(p, h)),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), small_q()).prop_map(|(c, d)| c.shift_up(d)),
            (inner.clone(), small_q()).prop_map(|(c, d)| c.shift_right(d)),
            (inner.clone(), small_q()).prop_map(|(c, k)| c.scale(k)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.pointwise_min(&b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.pointwise_add(&b)),
        ]
    })
}

/// Sample grid reaching well past typical tail starts.
fn grid() -> Vec<Q> {
    let mut ts = Vec::new();
    for i in 0..120 {
        ts.push(Q::new(i, 3));
    }
    ts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn q_field_laws(a in -1000i128..1000, b in 1i128..60, c in -1000i128..1000, d in 1i128..60) {
        let x = Q::new(a, b);
        let y = Q::new(c, d);
        prop_assert_eq!(x + y, y + x);
        prop_assert_eq!(x * y, y * x);
        prop_assert_eq!(x - y, -(y - x));
        prop_assert_eq!((x + y) - y, x);
        if !y.is_zero() {
            prop_assert_eq!((x / y) * y, x);
        }
        prop_assert_eq!(x * (y + Q::ONE), x * y + x);
    }

    #[test]
    fn q_ordering_consistent_with_f64(a in -500i128..500, b in 1i128..40, c in -500i128..500, d in 1i128..40) {
        let x = Q::new(a, b);
        let y = Q::new(c, d);
        let fx = x.to_f64();
        let fy = y.to_f64();
        if (fx - fy).abs() > 1e-9 {
            prop_assert_eq!(x < y, fx < fy);
        }
        prop_assert!(Q::int(x.floor()) <= x);
        prop_assert!(Q::int(x.ceil()) >= x);
    }

    #[test]
    fn curves_are_monotone(c in curve()) {
        let ts = grid();
        for w in ts.windows(2) {
            prop_assert!(c.eval(w[0]) <= c.eval(w[1]),
                "not monotone at {} -> {}", w[0], w[1]);
            prop_assert!(c.eval_left(w[1]) <= c.eval(w[1]));
        }
    }

    #[test]
    fn pointwise_ops_match_eval(a in curve(), b in curve()) {
        let mn = a.pointwise_min(&b);
        let mx = a.pointwise_max(&b);
        let ad = a.pointwise_add(&b);
        for t in grid() {
            let (va, vb) = (a.eval(t), b.eval(t));
            prop_assert_eq!(mn.eval(t), va.min(vb), "min at {}", t);
            prop_assert_eq!(mx.eval(t), va.max(vb), "max at {}", t);
            prop_assert_eq!(ad.eval(t), va + vb, "add at {}", t);
        }
    }

    #[test]
    fn pointwise_ops_algebra(a in curve(), b in curve(), c in curve()) {
        // Commutativity and associativity, checked on the grid.
        let ts = grid();
        let ab = a.pointwise_min(&b);
        let ba = b.pointwise_min(&a);
        let abc1 = ab.pointwise_min(&c);
        let abc2 = a.pointwise_min(&b.pointwise_min(&c));
        for &t in &ts {
            prop_assert_eq!(ab.eval(t), ba.eval(t));
            prop_assert_eq!(abc1.eval(t), abc2.eval(t));
        }
        // Distribution: add over min — min(a,b)+c == min(a+c, b+c).
        let lhs = ab.pointwise_add(&c);
        let rhs = a.pointwise_add(&c).pointwise_min(&b.pointwise_add(&c));
        for &t in &ts {
            prop_assert_eq!(lhs.eval(t), rhs.eval(t));
        }
    }

    #[test]
    fn conv_bounds_and_commutes(a in curve(), b in curve()) {
        let h = Q::int(25);
        let ab = a.conv_upto(&b, h);
        let ba = b.conv_upto(&a, h);
        for t in grid() {
            if t > h { break; }
            // Commutativity.
            prop_assert_eq!(ab.eval(t), ba.eval(t), "conv commutativity at {}", t);
            // f ⊗ g ≤ f(t) + g(0) and ≤ f(0) + g(t).
            let ub = (a.eval(t) + b.eval(Q::ZERO)).min(a.eval(Q::ZERO) + b.eval(t));
            prop_assert!(ab.eval(t) <= ub, "conv upper bound at {}", t);
            // Grid lower-bound check: conv ≤ every split, so every split
            // must be ≥ the computed value.
            for i in 0..=12 {
                let s = t * Q::new(i, 12);
                prop_assert!(ab.eval(t) <= a.eval(s) + b.eval(t - s),
                    "conv exceeds split at t={} s={}", t, s);
            }
        }
    }

    #[test]
    fn conv_monotone_in_horizon(a in curve(), b in curve()) {
        // Exactness on the prefix: enlarging the horizon must not change
        // values below the smaller horizon.
        let c1 = a.conv_upto(&b, Q::int(12));
        let c2 = a.conv_upto(&b, Q::int(24));
        for t in grid() {
            if t > Q::int(12) { break; }
            prop_assert_eq!(c1.eval(t), c2.eval(t), "horizon instability at {}", t);
        }
    }

    #[test]
    fn pseudo_inverse_galois(c in curve(), wn in 0i128..40, wd in 1i128..4) {
        let w = Q::new(wn, wd);
        match c.pseudo_inverse(w) {
            Ext::Finite(t) => {
                // f(t) ≥ w at the inverse point...
                prop_assert!(c.eval(t) >= w, "f({}) = {} < {}", t, c.eval(t), w);
                // ...and nothing earlier reaches w (checked on a grid).
                for i in 0..24 {
                    let s = t * Q::new(i, 24);
                    prop_assert!(c.eval(s) < w || s == t || c.eval(s) == c.eval(t) && c.eval(t) == w,
                        "f({}) = {} already ≥ {} before inverse {}", s, c.eval(s), w, t);
                }
            }
            Ext::Infinite => {
                // The curve must never reach w on a long prefix and have
                // non-increasing reachability (rate sanity).
                prop_assert!(c.eval(Q::int(500)) < w);
            }
        }
    }

    #[test]
    fn hdev_vdev_sound_vs_grid(a in curve(), b in curve()) {
        // Any grid-sampled deviation is a lower bound on the exact one.
        let hd = a.hdev(&b);
        let vd = a.vdev(&b);
        for t in grid() {
            let diff = a.eval(t) - b.eval(t);
            match vd {
                Ext::Finite(v) => prop_assert!(diff <= v, "vdev violated at {}", t),
                Ext::Infinite => {}
            }
            match hd {
                Ext::Finite(d) => {
                    // Demand at t must be served by t + d.
                    prop_assert!(a.eval(t) <= b.eval(t + d),
                        "hdev violated at {}: {} > {}", t, a.eval(t), b.eval(t + d));
                }
                Ext::Infinite => {}
            }
        }
    }

    #[test]
    fn sub_clamped_monotone_is_sound(a in curve(), b in curve()) {
        let d = a.sub_clamped_monotone(&b);
        let ts = grid();
        for w in ts.windows(2) {
            prop_assert!(d.eval(w[0]) <= d.eval(w[1]), "not monotone");
        }
        for &t in &ts {
            // d(t) ≥ (a(t) − b(t))⁺ and d is the smallest such running max
            // on the grid.
            prop_assert!(d.eval(t) >= (a.eval(t) - b.eval(t)).clamp_nonneg());
        }
    }

    #[test]
    fn dominated_by_is_a_partial_order_on_samples(a in curve(), b in curve()) {
        if a.dominated_by(&b) {
            for t in grid() {
                prop_assert!(a.eval(t) <= b.eval(t), "domination violated at {}", t);
            }
        }
        prop_assert!(a.dominated_by(&a));
    }
}
