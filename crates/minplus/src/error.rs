//! Error types for curve construction and algebra.

use crate::meter::BudgetKind;
use crate::ratio::Q;
use std::fmt;

/// Failure of exact rational arithmetic.
///
/// All analysis arithmetic runs on `i128` rationals; adversarial inputs
/// (huge coprime periods, astronomically long horizons) can overflow it.
/// The fallible curve-algebra entry points (`Curve::try_*`) surface the
/// condition as an error instead of aborting the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithmeticError {
    /// An intermediate value exceeded the `i128` range.
    Overflow,
}

impl fmt::Display for ArithmeticError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArithmeticError::Overflow => {
                write!(f, "exact rational arithmetic overflowed the i128 range")
            }
        }
    }
}

impl std::error::Error for ArithmeticError {}

/// Errors produced when constructing or combining curves.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CurveError {
    /// A curve must contain at least one piece.
    Empty,
    /// The first piece must start at time zero.
    FirstPieceNotAtZero {
        /// The offending start time.
        start: Q,
    },
    /// Piece start times must be strictly increasing.
    NonIncreasingStarts {
        /// Index of the piece whose start is not after its predecessor's.
        index: usize,
    },
    /// Curves must be non-decreasing: every slope must be `>= 0`.
    NegativeSlope {
        /// Index of the offending piece.
        index: usize,
        /// The offending slope.
        slope: Q,
    },
    /// Curves must be non-decreasing: a piece's start value may not be below
    /// the left limit of its predecessor.
    DecreasingJump {
        /// Index of the piece that jumps down.
        index: usize,
    },
    /// The periodic tail descriptor is inconsistent (bad pattern index,
    /// non-positive period, negative increment, or a pattern that would make
    /// the periodic extension decrease).
    InvalidPeriodicTail {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// The requested operation needs a strictly positive long-run rate (or
    /// other property) that the operand lacks.
    Unsupported {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// Exact arithmetic overflowed inside the operation (fallible `try_*`
    /// entry points only; the classic API panics instead).
    Arithmetic(ArithmeticError),
    /// A cooperative [`crate::Budget`] was exhausted mid-operation
    /// (fallible `try_*` entry points only). The caller is expected to
    /// degrade soundly, e.g. by truncating its horizon.
    Budget(BudgetKind),
}

impl fmt::Display for CurveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CurveError::Empty => write!(f, "curve must contain at least one piece"),
            CurveError::FirstPieceNotAtZero { start } => {
                write!(f, "first piece must start at 0, found {start}")
            }
            CurveError::NonIncreasingStarts { index } => {
                write!(f, "piece {index} does not start after its predecessor")
            }
            CurveError::NegativeSlope { index, slope } => {
                write!(f, "piece {index} has negative slope {slope}")
            }
            CurveError::DecreasingJump { index } => {
                write!(f, "piece {index} jumps below the previous piece's left limit")
            }
            CurveError::InvalidPeriodicTail { reason } => {
                write!(f, "invalid periodic tail: {reason}")
            }
            CurveError::Unsupported { reason } => write!(f, "unsupported operation: {reason}"),
            CurveError::Arithmetic(e) => write!(f, "{e}"),
            CurveError::Budget(kind) => write!(f, "analysis budget exhausted: {kind}"),
        }
    }
}

impl std::error::Error for CurveError {}
