//! Service counters and a fixed-size latency ring.
//!
//! Counters are lock-free atomics bumped by workers and the acceptor;
//! latencies go into a bounded ring (old samples are overwritten), so
//! observability costs O(1) memory regardless of uptime — the same
//! "never unbounded" discipline as the admission queue.

use srtw_core::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Capacity of the latency ring (recent `/analyze` requests).
pub const LATENCY_RING: usize = 1024;

#[derive(Debug)]
struct Ring {
    samples_us: Vec<u64>,
    next: usize,
    len: usize,
}

/// Point-in-time gauges the server samples when rendering `/stats` (they
/// live on the server/mux, not in the counter block).
#[derive(Debug, Clone, Copy, Default)]
pub struct Gauges {
    /// Admission-queue depth.
    pub queue_depth: usize,
    /// Analyses currently in flight.
    pub inflight: usize,
    /// Configured worker count.
    pub workers: usize,
    /// Connections currently tracked by the multiplexed acceptor.
    pub open_conns: usize,
    /// Open file descriptors of this process (`None` off procfs).
    pub fds: Option<usize>,
    /// `true` while draining.
    pub draining: bool,
    /// Replica index when running as a supervised replica.
    pub replica: Option<usize>,
    /// Approximate bytes retained by the result cache.
    pub cache_bytes: u64,
    /// Result-cache entries evicted under the byte budget.
    pub cache_evictions: u64,
}

/// Shared service counters; all methods are callable from any thread.
#[derive(Debug)]
pub struct Stats {
    /// Connections admitted past the gate.
    pub accepted: AtomicU64,
    /// Connections refused with 503 (queue full, connection cap, memory
    /// cap, or draining).
    pub shed: AtomicU64,
    /// Requests routed (all endpoints — the process-fault trigger counts
    /// these).
    pub requests: AtomicU64,
    /// Keep-alive connection reuses (requests beyond the first on one
    /// connection).
    pub reused: AtomicU64,
    /// Connections answered 408 after stalling past a read deadline.
    pub timeouts: AtomicU64,
    /// Connections answered 431 for an oversized request head.
    pub oversized_heads: AtomicU64,
    /// `/analyze` requests answered 200 with exact bounds.
    pub completed: AtomicU64,
    /// `/analyze` requests answered 200 with a degraded (still sound)
    /// bound.
    pub degraded: AtomicU64,
    /// `/analyze` requests answered 4xx/5xx.
    pub failed: AtomicU64,
    /// `POST /batch` requests accepted for streaming.
    pub batches: AtomicU64,
    /// Batch jobs executed fresh (supervised runs, not replays).
    pub batch_jobs: AtomicU64,
    /// Batch jobs answered from the journal instead of recomputed.
    pub batch_replayed: AtomicU64,
    /// `/analyze` (and `/analyze/delta`) answers replayed from the
    /// content-addressed result cache.
    pub cache_hits: AtomicU64,
    /// Cache-eligible requests that had to run the analysis.
    pub cache_misses: AtomicU64,
    /// `/analyze/delta` requests where the conservative cut could not
    /// prove reuse safe and every stream was re-analysed.
    pub delta_full_fallbacks: AtomicU64,
    /// Cache entries warm-loaded from the spill store at startup.
    pub persist_loaded: AtomicU64,
    /// Cache entries spilled durably to disk.
    pub persist_stored: AtomicU64,
    /// Persistence failures (open/append/verify) — each degrades to a
    /// cold in-memory cache, never to a changed response.
    pub persist_errors: AtomicU64,
    ring: Mutex<Ring>,
}

impl Default for Stats {
    fn default() -> Stats {
        Stats {
            accepted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            reused: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            oversized_heads: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batch_jobs: AtomicU64::new(0),
            batch_replayed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            delta_full_fallbacks: AtomicU64::new(0),
            persist_loaded: AtomicU64::new(0),
            persist_stored: AtomicU64::new(0),
            persist_errors: AtomicU64::new(0),
            ring: Mutex::new(Ring {
                samples_us: vec![0; LATENCY_RING],
                next: 0,
                len: 0,
            }),
        }
    }
}

impl Stats {
    /// Fresh zeroed counters.
    pub fn new() -> Stats {
        Stats::default()
    }

    /// Records one `/analyze` latency (microseconds).
    pub fn note_latency_us(&self, us: u64) {
        let mut r = self.ring.lock().unwrap();
        let slot = r.next;
        r.samples_us[slot] = us;
        r.next = (slot + 1) % LATENCY_RING;
        r.len = (r.len + 1).min(LATENCY_RING);
    }

    /// `(count, p50, p99)` in microseconds over the ring, if any samples
    /// were recorded.
    pub fn latency_quantiles_us(&self) -> Option<(usize, u64, u64)> {
        let r = self.ring.lock().unwrap();
        if r.len == 0 {
            return None;
        }
        let mut window: Vec<u64> = r.samples_us[..r.len].to_vec();
        drop(r);
        window.sort_unstable();
        let quantile = |q_num: usize, q_den: usize| {
            // Nearest-rank on the sorted window.
            let rank = (window.len() * q_num).div_ceil(q_den).max(1);
            window[rank - 1]
        };
        Some((window.len(), quantile(50, 100), quantile(99, 100)))
    }

    /// The `Retry-After` seconds for a 503 shed, adaptive to load: the
    /// time the backlog plausibly needs to clear — queue depth (plus the
    /// shed request itself) times the p99 service time, spread over the
    /// workers — clamped to `[1, 30]`. With no latency samples yet the
    /// floor of 1 second applies, matching the old constant.
    pub fn retry_after_secs(&self, queue_depth: usize, workers: usize) -> u64 {
        let p99_us = self
            .latency_quantiles_us()
            .map(|(_, _, p99)| p99)
            .unwrap_or(0);
        let backlog_us = (queue_depth as u64 + 1).saturating_mul(p99_us) / workers.max(1) as u64;
        backlog_us.div_ceil(1_000_000).clamp(1, 30)
    }

    /// The `/stats` document.
    pub fn to_json(&self, g: &Gauges) -> Json {
        let latency = match self.latency_quantiles_us() {
            None => Json::object(vec![("count", Json::Int(0))]),
            Some((count, p50, p99)) => Json::object(vec![
                ("count", Json::Int(count as i128)),
                ("p50_ms", Json::Float(p50 as f64 / 1_000.0)),
                ("p99_ms", Json::Float(p99 as f64 / 1_000.0)),
            ]),
        };
        let mut members = Vec::new();
        if let Some(replica) = g.replica {
            members.push(("replica", Json::Int(replica as i128)));
        }
        let count = |c: &AtomicU64| Json::Int(c.load(Ordering::Relaxed) as i128);
        members.extend([
            ("accepted", count(&self.accepted)),
            ("shed", count(&self.shed)),
            ("requests", count(&self.requests)),
            ("reused", count(&self.reused)),
            ("timeouts_408", count(&self.timeouts)),
            ("oversized_heads_431", count(&self.oversized_heads)),
            ("completed", count(&self.completed)),
            ("degraded", count(&self.degraded)),
            ("failed", count(&self.failed)),
            ("batches", count(&self.batches)),
            ("batch_jobs", count(&self.batch_jobs)),
            ("batch_replayed", count(&self.batch_replayed)),
            ("cache_hits", count(&self.cache_hits)),
            ("cache_misses", count(&self.cache_misses)),
            ("cache_evictions", Json::Int(g.cache_evictions as i128)),
            ("cache_bytes", Json::Int(g.cache_bytes as i128)),
            ("delta_full_fallbacks", count(&self.delta_full_fallbacks)),
            ("persist_loaded", count(&self.persist_loaded)),
            ("persist_stored", count(&self.persist_stored)),
            ("persist_errors", count(&self.persist_errors)),
            ("queue_depth", Json::Int(g.queue_depth as i128)),
            ("inflight", Json::Int(g.inflight as i128)),
            ("open_conns", Json::Int(g.open_conns as i128)),
            (
                "fds",
                g.fds.map(|n| Json::Int(n as i128)).unwrap_or(Json::Null),
            ),
            ("workers", Json::Int(g.workers as i128)),
            ("draining", Json::Bool(g.draining)),
            ("latency", latency),
        ]);
        Json::object(members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_over_a_partial_ring() {
        let s = Stats::new();
        assert_eq!(s.latency_quantiles_us(), None);
        for us in 1..=100 {
            s.note_latency_us(us);
        }
        let (count, p50, p99) = s.latency_quantiles_us().unwrap();
        assert_eq!(count, 100);
        assert_eq!(p50, 50);
        assert_eq!(p99, 99);
    }

    #[test]
    fn ring_overwrites_old_samples() {
        let s = Stats::new();
        for _ in 0..LATENCY_RING {
            s.note_latency_us(1);
        }
        for _ in 0..LATENCY_RING {
            s.note_latency_us(1_000);
        }
        let (count, p50, _) = s.latency_quantiles_us().unwrap();
        assert_eq!(count, LATENCY_RING);
        assert_eq!(p50, 1_000, "old generation fully overwritten");
    }

    #[test]
    fn retry_after_adapts_to_queue_depth_and_p99() {
        let s = Stats::new();
        // No samples: the 1-second floor.
        assert_eq!(s.retry_after_secs(100, 2), 1);
        // p99 = 2 s: depth 5 (+1 for the shed request) over 2 workers
        // → 6 s of backlog.
        for _ in 0..100 {
            s.note_latency_us(2_000_000);
        }
        assert_eq!(s.retry_after_secs(5, 2), 6);
        // Clamped above…
        assert_eq!(s.retry_after_secs(10_000, 1), 30);
        // …and below (tiny p99 rounds up to the floor).
        let fast = Stats::new();
        fast.note_latency_us(10);
        assert_eq!(fast.retry_after_secs(0, 4), 1);
    }

    #[test]
    fn stats_document_shape() {
        let s = Stats::new();
        s.accepted.fetch_add(3, Ordering::Relaxed);
        s.shed.fetch_add(1, Ordering::Relaxed);
        let doc = s
            .to_json(&Gauges {
                queue_depth: 2,
                inflight: 1,
                workers: 4,
                open_conns: 7,
                fds: Some(12),
                draining: false,
                replica: Some(1),
                cache_bytes: 9,
                cache_evictions: 0,
            })
            .render();
        for needle in [
            "\"replica\":1",
            "\"accepted\":3",
            "\"shed\":1",
            "\"requests\":0",
            "\"reused\":0",
            "\"timeouts_408\":0",
            "\"oversized_heads_431\":0",
            "\"batches\":0",
            "\"batch_jobs\":0",
            "\"batch_replayed\":0",
            "\"cache_hits\":0",
            "\"cache_misses\":0",
            "\"cache_evictions\":0",
            "\"cache_bytes\":9",
            "\"delta_full_fallbacks\":0",
            "\"persist_loaded\":0",
            "\"persist_stored\":0",
            "\"persist_errors\":0",
            "\"queue_depth\":2",
            "\"inflight\":1",
            "\"open_conns\":7",
            "\"fds\":12",
            "\"workers\":4",
            "\"draining\":false",
            "\"latency\":{\"count\":0}",
        ] {
            assert!(doc.contains(needle), "{needle} missing from {doc}");
        }
    }
}
