#!/usr/bin/env bash
# Tier-1 verification, fully offline.
#
#   scripts/verify.sh
#
# Steps:
#   1. zero-dependency audit: no Cargo.toml may pull anything from a
#      registry — every dependency must be a workspace path crate;
#   2. `cargo build --release` and `cargo test -q` with --offline
#      (the workspace must build with no network and no vendored deps);
#   3. build all five examples;
#   4. CLI smoke test on the shipped sample system.
#
# Benchmarks run separately (they are slow by design):
#   cargo run -p srtw-bench --release --bin experiments

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== 1/4 dependency audit (path-only policy) =="
# Inside [dependencies*] / [workspace.dependencies] sections, every
# dependency line must carry `path =` or `workspace = true`; a version
# requirement ("1.0", { version = ... }) means a registry dependency.
violations=$(awk '
    /^\[/ {
        in_deps = ($0 ~ /^\[(workspace\.)?(dev-|build-)?dependencies\]?/)
        next
    }
    in_deps && /=/ && !/^[[:space:]]*#/ {
        if ($0 !~ /path[[:space:]]*=/ && $0 !~ /workspace[[:space:]]*=[[:space:]]*true/)
            printf "%s: %s\n", FILENAME, $0
    }
' Cargo.toml crates/*/Cargo.toml)
if [ -n "$violations" ]; then
    echo "error: non-path dependencies found (zero-dependency policy):" >&2
    echo "$violations" >&2
    exit 1
fi
echo "ok: all dependencies are workspace path crates"

echo "== 2/4 offline build + tests =="
cargo build --release --offline --workspace
SRTW_BENCH_FAST=1 cargo test -q --offline --workspace

echo "== 3/4 examples build =="
cargo build --release --offline --examples

echo "== 4/4 CLI smoke test =="
out=$(cargo run --release --offline -q --bin srtw -- analyze systems/decoder.srtw)
echo "$out" | grep -q "RTC baseline" || {
    echo "error: analyze output missing the RTC baseline line" >&2
    exit 1
}
json=$(cargo run --release --offline -q --bin srtw -- analyze systems/decoder.srtw --json)
case "$json" in
    "{"*"}") : ;;
    *) echo "error: --json output is not a JSON object" >&2; exit 1 ;;
esac

echo "verify: OK"
