//! Error types for resource-model construction.

use std::fmt;

/// Errors produced when building resource models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ResourceError {
    /// A model parameter is out of range.
    InvalidParameter {
        /// Human-readable description.
        reason: &'static str,
    },
}

impl fmt::Display for ResourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceError::InvalidParameter { reason } => {
                write!(f, "invalid resource parameter: {reason}")
            }
        }
    }
}

impl std::error::Error for ResourceError {}
