//! # srtw-detrand — deterministic randomness without dependencies
//!
//! The workspace's zero-external-dependency policy (see the "Self-contained
//! build" section of the top-level README) means neither `rand` nor
//! `proptest` are available. This crate replaces both for our purposes:
//!
//! * [`Rng`] — a small, fast, deterministic PRNG (SplitMix64 core) with
//!   unbiased integer range sampling, shuffling and weighted choice. Every
//!   generator in `srtw-gen` and every trace generator in `srtw-sim` is
//!   seeded through it, so experiments and simulations are reproducible
//!   bit-for-bit across platforms.
//! * [`prop`] — a seeded property-test harness: `N` deterministic cases per
//!   property, failing-seed reporting (replayable via an environment
//!   variable) and bounded input shrinking by halving the size budget.
//!
//! # Example
//!
//! ```
//! use srtw_detrand::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let die = rng.random_range(1i128..=6);
//! assert!((1..=6).contains(&die));
//!
//! // Determinism: the same seed yields the same stream.
//! let mut a = Rng::seed_from_u64(7);
//! let mut b = Rng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod prop;
mod rng;

pub use rng::{Rng, SampleRange};
