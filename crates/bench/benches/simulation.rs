//! B4 — simulator throughput: jobs per second on fluid and TDMA service
//! processes.
//!
//! Run with `cargo bench -p srtw-bench --bench simulation`; set
//! `SRTW_BENCH_FAST=1` for a quick smoke run.

use srtw_bench::suites::simulation_suite;
use srtw_bench::timing::{print_samples, Timer};

fn main() {
    print_samples(&simulation_suite(&Timer::from_env()));
}
