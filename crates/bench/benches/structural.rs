//! B3 — the structural delay analysis end to end: scaling with graph size
//! and the effect of dominance pruning (the ablation measures).
//!
//! Run with `cargo bench -p srtw-bench --bench structural`; set
//! `SRTW_BENCH_FAST=1` for a quick smoke run.

use srtw_bench::suites::structural_suite;
use srtw_bench::timing::{print_samples, Timer};

fn main() {
    print_samples(&structural_suite(&Timer::from_env()));
}
