//! Rationals extended with `+∞`, used for deviations and bounds that may be
//! unbounded (e.g. the delay of an unstable system).

use crate::ratio::Q;
use std::cmp::Ordering;
use std::fmt;

/// A rational extended with positive infinity.
///
/// The ordering places [`Ext::Infinite`] above every finite value, so
/// `max`/`min` behave as expected for bounds.
///
/// # Examples
///
/// ```
/// use srtw_minplus::{Ext, Q};
///
/// let d = Ext::Finite(Q::new(3, 2));
/// assert!(d < Ext::Infinite);
/// assert_eq!(d.finite(), Some(Q::new(3, 2)));
/// assert_eq!(Ext::Infinite.finite(), None);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ext {
    /// A finite rational value.
    Finite(Q),
    /// Positive infinity.
    Infinite,
}

impl Ext {
    /// The extended zero.
    pub const ZERO: Ext = Ext::Finite(Q::ZERO);

    /// Returns the finite value, or `None` for infinity.
    #[inline]
    pub fn finite(self) -> Option<Q> {
        match self {
            Ext::Finite(v) => Some(v),
            Ext::Infinite => None,
        }
    }

    /// Returns `true` for [`Ext::Infinite`].
    #[inline]
    pub fn is_infinite(self) -> bool {
        matches!(self, Ext::Infinite)
    }

    /// Returns `true` for a finite value.
    #[inline]
    pub fn is_finite(self) -> bool {
        matches!(self, Ext::Finite(_))
    }

    /// Returns the finite value.
    ///
    /// # Panics
    ///
    /// Panics if the value is infinite.
    #[inline]
    #[track_caller]
    pub fn unwrap_finite(self) -> Q {
        match self {
            Ext::Finite(v) => v,
            Ext::Infinite => panic!("unwrap_finite on Ext::Infinite"),
        }
    }



    /// The smaller value.
    #[inline]
    pub fn min(self, rhs: Ext) -> Ext {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }

    /// The larger value.
    #[inline]
    pub fn max(self, rhs: Ext) -> Ext {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }

    /// Lossy conversion to `f64`; infinity maps to `f64::INFINITY`.
    pub fn to_f64(self) -> f64 {
        match self {
            Ext::Finite(v) => v.to_f64(),
            Ext::Infinite => f64::INFINITY,
        }
    }
}

impl std::ops::Add for Ext {
    type Output = Ext;

    /// Addition; infinity is absorbing.
    #[inline]
    fn add(self, rhs: Ext) -> Ext {
        match (self, rhs) {
            (Ext::Finite(a), Ext::Finite(b)) => Ext::Finite(a + b),
            _ => Ext::Infinite,
        }
    }
}

impl From<Q> for Ext {
    #[inline]
    fn from(v: Q) -> Ext {
        Ext::Finite(v)
    }
}

impl PartialOrd for Ext {
    #[inline]
    fn partial_cmp(&self, other: &Ext) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ext {
    fn cmp(&self, other: &Ext) -> Ordering {
        match (self, other) {
            (Ext::Finite(a), Ext::Finite(b)) => a.cmp(b),
            (Ext::Finite(_), Ext::Infinite) => Ordering::Less,
            (Ext::Infinite, Ext::Finite(_)) => Ordering::Greater,
            (Ext::Infinite, Ext::Infinite) => Ordering::Equal,
        }
    }
}

impl fmt::Display for Ext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ext::Finite(v) => write!(f, "{v}"),
            Ext::Infinite => write!(f, "∞"),
        }
    }
}

impl fmt::Debug for Ext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ext({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratio::q;

    #[test]
    fn ordering_places_infinity_on_top() {
        assert!(Ext::Finite(q(1, 1)) < Ext::Infinite);
        assert!(Ext::Infinite == Ext::Infinite);
        assert!(Ext::Finite(q(1, 2)) < Ext::Finite(q(2, 3)));
        assert_eq!(Ext::Infinite.max(Ext::Finite(Q::ZERO)), Ext::Infinite);
        assert_eq!(Ext::Infinite.min(Ext::Finite(Q::ZERO)), Ext::ZERO);
    }

    #[test]
    fn addition_absorbs_infinity() {
        assert_eq!(Ext::Finite(q(1, 2)) + Ext::Finite(q(1, 2)), Ext::Finite(Q::ONE));
        assert_eq!(Ext::Infinite + Ext::Finite(Q::ONE), Ext::Infinite);
        assert_eq!(Ext::Finite(Q::ONE) + Ext::Infinite, Ext::Infinite);
    }

    #[test]
    fn accessors() {
        assert_eq!(Ext::Finite(q(1, 2)).finite(), Some(q(1, 2)));
        assert_eq!(Ext::Infinite.finite(), None);
        assert!(Ext::Infinite.is_infinite());
        assert!(Ext::Finite(Q::ZERO).is_finite());
        assert_eq!(Ext::Finite(q(1, 2)).unwrap_finite(), q(1, 2));
    }

    #[test]
    #[should_panic(expected = "unwrap_finite")]
    fn unwrap_finite_panics_on_infinity() {
        let _ = Ext::Infinite.unwrap_finite();
    }

    #[test]
    fn display() {
        assert_eq!(Ext::Finite(q(3, 4)).to_string(), "3/4");
        assert_eq!(Ext::Infinite.to_string(), "∞");
    }

    #[test]
    fn to_f64() {
        assert!(Ext::Infinite.to_f64().is_infinite());
        assert!((Ext::Finite(q(1, 2)).to_f64() - 0.5).abs() < 1e-12);
    }
}
