//! Abstract-path exploration with dominance pruning.
//!
//! The structural analyses of this workspace all reduce to enumerating the
//! *abstract paths* of a [`DrtTask`]: walks `v₁ → … → vₖ` abstracted to
//! demand pairs `(span, work)` where `span` is the minimum time between the
//! first and last release and `work` the total WCET. Two paths ending at
//! the same vertex compare by Pareto dominance — `(span′ ≤ span, work′ ≥
//! work)` dominates — and dominance is preserved under extension, so
//! dominated paths can be pruned without affecting any maximisation of the
//! form `max f(work) − g(span)` with monotone `f`, `g`. This is the
//! classical demand-tuple technique of the DRT analysis literature and the
//! engine behind both the request-bound function and the structural delay
//! analysis.

use crate::digraph::{DrtTask, VertexId};
use srtw_minplus::{BudgetKind, BudgetMeter, Q};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One non-dominated abstract path, ending at [`PathNode::vertex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathNode {
    /// The vertex whose job is released last on this path.
    pub vertex: VertexId,
    /// Minimum time between the path's first and last release.
    pub span: Q,
    /// Total WCET of all jobs on the path (including the last).
    pub work: Q,
    /// Number of jobs on the path.
    pub len: usize,
    /// Arena index of the predecessor node.
    pub(crate) parent: Option<usize>,
}

/// Configuration of a path exploration.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Only paths with `span ≤ horizon` are enumerated.
    pub horizon: Q,
    /// Optional bound on the number of jobs per path (`None` = unbounded).
    /// Used by the abstraction-depth ablation.
    pub max_len: Option<usize>,
    /// Enable Pareto dominance pruning (disable only to measure its effect).
    pub prune: bool,
    /// Safety valve: stop retaining nodes beyond this count (default one
    /// million). Reaching it interrupts the exploration gracefully — the
    /// result reports [`Exploration::interrupted`] and a correspondingly
    /// reduced [`Exploration::complete_span`] — exactly like tripping an
    /// explored-paths budget.
    pub node_limit: usize,
}

impl ExploreConfig {
    /// Standard configuration: given horizon, unbounded length, pruning on.
    pub fn new(horizon: Q) -> ExploreConfig {
        ExploreConfig {
            horizon,
            max_len: None,
            prune: true,
            node_limit: 1_000_000,
        }
    }

    /// Limits the number of jobs per path.
    #[must_use]
    pub fn with_max_len(mut self, max_len: usize) -> ExploreConfig {
        self.max_len = Some(max_len);
        self
    }

    /// Disables dominance pruning.
    #[must_use]
    pub fn without_pruning(mut self) -> ExploreConfig {
        self.prune = false;
        self
    }
}

/// Result of a path exploration: the arena of retained (non-dominated)
/// nodes plus bookkeeping counters.
#[derive(Debug, Clone)]
pub struct Exploration {
    nodes: Vec<PathNode>,
    /// Number of candidate nodes generated (before pruning).
    pub generated: usize,
    /// Number of candidates discarded by dominance.
    pub pruned: usize,
    /// The horizon the exploration ran to.
    pub horizon: Q,
    /// Whether path length was capped (some continuations not explored).
    pub truncated_by_len: bool,
    /// Spans **strictly below** this value are completely enumerated even
    /// if the exploration was interrupted. Candidates pop in ascending
    /// span order, so an interruption at span `s` leaves every span `< s`
    /// final — the basis of the sound horizon-truncation fallback. Equals
    /// `horizon` (and covers it inclusively) for uninterrupted runs.
    pub complete_span: Q,
    /// `Some(kind)` when a budget dimension (or the node limit, reported
    /// as [`BudgetKind::Paths`]) stopped the exploration early.
    pub interrupted: Option<BudgetKind>,
}

impl Exploration {
    /// The retained path nodes, in non-decreasing span order.
    pub fn nodes(&self) -> &[PathNode] {
        &self.nodes
    }

    /// Reconstructs the vertex sequence of the path ending at `node_index`.
    pub fn path_of(&self, node_index: usize) -> Vec<VertexId> {
        let mut rev = Vec::new();
        let mut cur = Some(node_index);
        while let Some(i) = cur {
            rev.push(self.nodes[i].vertex);
            cur = self.nodes[i].parent;
        }
        rev.reverse();
        rev
    }

    /// Finds the arena index of a node (identity by value triple).
    pub fn index_of(&self, node: &PathNode) -> Option<usize> {
        self.nodes.iter().position(|n| n == node)
    }
}

/// Heap entry ordered by ascending span (BinaryHeap is a max-heap, so the
/// ordering is reversed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Candidate {
    span: Q,
    work: Q,
    vertex: VertexId,
    len: usize,
    parent: Option<usize>,
}

impl Ord for Candidate {
    fn cmp(&self, other: &Candidate) -> Ordering {
        // Reverse span; tie-break on descending work so the strongest
        // tuple at a span is installed first (maximising pruning). The
        // final parent tie-break makes the order *total* over distinct
        // candidates, so the pop sequence — and with it the witness
        // retained among fully tied tuples — is deterministic and can be
        // reproduced exactly by the sort-based parallel engine.
        other
            .span
            .cmp(&self.span)
            .then(self.work.cmp(&other.work))
            .then(self.vertex.cmp(&other.vertex).reverse())
            .then(self.len.cmp(&other.len).reverse())
            .then(self.parent.cmp(&other.parent).reverse())
    }
}

/// The order candidates leave the max-heap: ascending span, then
/// descending work, ascending vertex, ascending length, ascending parent.
fn pop_order(a: &Candidate, b: &Candidate) -> Ordering {
    b.cmp(a)
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Candidate) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-vertex Pareto frontier: entries `(span, work, node_index)` strictly
/// increasing in both `span` and `work`.
#[derive(Debug, Default, Clone)]
struct Frontier {
    entries: Vec<(Q, Q, usize)>,
}

impl Frontier {
    /// Is `(span, work)` dominated by an existing entry?
    fn dominated(&self, span: Q, work: Q) -> bool {
        // Last entry with span' ≤ span carries the best work at or before
        // `span` (entries are increasing in both coordinates).
        match self.entries.iter().rev().find(|e| e.0 <= span) {
            Some(&(_, w, _)) => w >= work,
            None => false,
        }
    }

    /// Inserts a non-dominated `(span, work, idx)` and evicts entries it
    /// dominates.
    fn insert(&mut self, span: Q, work: Q, idx: usize) {
        let pos = self.entries.partition_point(|e| e.0 < span);
        // Evict subsequent entries with work ≤ work (they have span ≥ span).
        let mut end = pos;
        while end < self.entries.len() && self.entries[end].1 <= work {
            end += 1;
        }
        self.entries.splice(pos..end, [(span, work, idx)]);
    }
}

/// Explores all non-dominated abstract paths of `task` within the
/// configuration's horizon.
///
/// # Examples
///
/// ```
/// use srtw_workload::{DrtTaskBuilder, explore, ExploreConfig};
/// use srtw_minplus::Q;
///
/// let mut b = DrtTaskBuilder::new("loop");
/// let v = b.vertex("v", Q::int(2));
/// b.edge(v, v, Q::int(5));
/// let task = b.build().unwrap();
///
/// let ex = explore(&task, &ExploreConfig::new(Q::int(12)));
/// // Paths: v (span 0), v→v (span 5), v→v→v (span 10).
/// assert_eq!(ex.nodes().len(), 3);
/// assert_eq!(ex.nodes()[2].work, Q::int(6));
/// ```
pub fn explore(task: &DrtTask, cfg: &ExploreConfig) -> Exploration {
    explore_metered(task, cfg, &BudgetMeter::unlimited())
}

/// Budgeted [`explore`]: ticks the explored-paths budget once per heap pop
/// and stops at a **clean prefix** when any dimension (or the
/// [`ExploreConfig::node_limit`]) trips.
///
/// Because candidates pop in ascending span order (successors strictly
/// increase the span — separations are positive), interruption at a
/// candidate of span `s` leaves every abstract path of span `< s` fully
/// enumerated. The result's [`Exploration::complete_span`] records that
/// exclusive frontier; retained nodes at span `≥ s` are genuine paths too
/// (sound for maximisation) but possibly not exhaustive.
pub fn explore_metered(task: &DrtTask, cfg: &ExploreConfig, meter: &BudgetMeter) -> Exploration {
    let mut nodes: Vec<PathNode> = Vec::new();
    let mut frontiers: Vec<Frontier> = vec![Frontier::default(); task.num_vertices()];
    let mut heap: BinaryHeap<Candidate> = BinaryHeap::new();
    let mut generated = 0usize;
    let mut pruned = 0usize;
    let mut truncated_by_len = false;
    let mut complete_span = cfg.horizon;
    let mut interrupted: Option<BudgetKind> = None;

    for v in task.vertex_ids() {
        generated += 1;
        heap.push(Candidate {
            span: Q::ZERO,
            work: task.wcet(v),
            vertex: v,
            len: 1,
            parent: None,
        });
    }

    while let Some(c) = heap.pop() {
        if !meter.tick_path() {
            interrupted = meter.tripped().or(Some(BudgetKind::Paths));
            complete_span = c.span;
            break;
        }
        if cfg.prune && frontiers[c.vertex.index()].dominated(c.span, c.work) {
            pruned += 1;
            continue;
        }
        if !cfg.prune {
            // Even without pruning, drop exact duplicates to stay finite.
            if nodes
                .iter()
                .any(|n| n.vertex == c.vertex && n.span == c.span && n.work == c.work && n.len == c.len)
            {
                pruned += 1;
                continue;
            }
        }
        let idx = nodes.len();
        if idx >= cfg.node_limit {
            interrupted = Some(BudgetKind::Paths);
            complete_span = c.span;
            break;
        }
        nodes.push(PathNode {
            vertex: c.vertex,
            span: c.span,
            work: c.work,
            len: c.len,
            parent: c.parent,
        });
        if cfg.prune {
            frontiers[c.vertex.index()].insert(c.span, c.work, idx);
        }
        if let Some(ml) = cfg.max_len {
            if c.len >= ml {
                if !task.out_edges(c.vertex).is_empty() {
                    truncated_by_len = true;
                }
                continue;
            }
        }
        for e in task.out_edges(c.vertex) {
            let span = c.span + e.separation;
            if span > cfg.horizon {
                continue;
            }
            generated += 1;
            heap.push(Candidate {
                span,
                work: c.work + task.wcet(e.to),
                vertex: e.to,
                len: c.len + 1,
                parent: Some(idx),
            });
        }
    }

    Exploration {
        nodes,
        generated,
        pruned,
        horizon: cfg.horizon,
        truncated_by_len,
        complete_span,
        interrupted,
    }
}

// ---------------------------------------------------------------------------
// Parallel exploration engine
// ---------------------------------------------------------------------------
//
// `explore_parallel` reproduces the sequential heap loop *bit for bit* while
// fanning the expensive per-candidate work out to a fixed worker pool. The
// key observation is that candidates pop in ascending span order and every
// successor strictly increases the span (separations are positive), so the
// frontier can be processed in *windows*: all pending candidates with span
// in `[s, s + min_sep)` are already present in the queue when the window
// starts — no candidate processed inside the window can generate another
// one into it. Within a window the engine runs three phases:
//
//  1. **Classify** (sharded): sort each shard into the exact heap pop order
//     (`pop_order`, total thanks to the parent tie-break) and flag each
//     candidate as dominated-or-not against the *frozen* pre-window Pareto
//     frontiers. Freezing is exact: an entry evicted from the frontier
//     during the window is only evicted by an entry that dominates it, so
//     `frozen-dominated ∨ window-dominated` equals the sequential live
//     check (dominance is a disjunction over entries).
//  2. **Retain** (sequential spine): walk the merged window in pop order,
//     issuing `meter.tick_path()` per candidate *in exactly the sequential
//     order* — budget trips, injected faults and the node limit therefore
//     fire at the same logical operation, leaving the same retained prefix
//     and the same `complete_span`. Window-local dominance uses small
//     per-vertex scratch frontiers holding only this window's insertions.
//  3. **Expand** (sharded): generate successors of the retained nodes.
//     Each successor lands in a later window, and the windows are fully
//     re-sorted, so the emission order across shards is irrelevant.
//
// The merge of shard results is deterministic because `pop_order` is a
// total order over distinct candidates (span, work, vertex, len, parent) —
// fully tied candidates are identical tuples, for which any order yields
// the same exploration.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, RwLock};

/// Windows smaller than this are classified inline by the coordinator:
/// sharding them would cost more in handoff than the scan saves.
const CLASSIFY_GRAIN: usize = 192;
/// Minimum retained nodes before successor expansion is sharded.
const EXPAND_GRAIN: usize = 48;

/// A unit of work handed to the pool.
enum Job {
    /// Sort the chunk into pop order and flag frozen-frontier dominance.
    Classify { chunk: Vec<Candidate> },
    /// Expand successors of retained `(arena_index, node)` pairs.
    Expand {
        nodes: Arc<Vec<(usize, PathNode)>>,
        lo: usize,
        hi: usize,
    },
}

/// The result of one [`Job`].
enum JobOut {
    Classify {
        chunk: Vec<Candidate>,
        dominated: Vec<bool>,
    },
    Expand {
        succ: Vec<Candidate>,
        generated: usize,
    },
}

/// A fixed worker pool for one exploration: a shared job queue drained by
/// `threads` scoped workers. Jobs own their inputs (or share them through
/// `Arc`), so no `unsafe` lifetime laundering is needed; the per-window
/// shared state (Pareto frontiers) lives behind an `RwLock` the workers
/// only ever read.
struct Pool {
    state: Mutex<PoolState>,
    work: Condvar,
    done: Condvar,
}

struct PoolState {
    jobs: VecDeque<Job>,
    outs: Vec<JobOut>,
    pending: usize,
    shutdown: bool,
    /// Set when a worker panicked mid-job; `run` re-raises on the
    /// coordinator so the panic surfaces through the usual `catch_unwind`
    /// layers instead of deadlocking the barrier.
    poisoned: bool,
}

impl Pool {
    fn new() -> Pool {
        Pool {
            state: Mutex::new(PoolState {
                jobs: VecDeque::new(),
                outs: Vec::new(),
                pending: 0,
                shutdown: false,
                poisoned: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        }
    }

    /// Submits `jobs` and blocks until all of them completed, returning the
    /// outputs (in arbitrary order — every merge downstream is order-free).
    fn run(&self, jobs: Vec<Job>) -> Vec<JobOut> {
        let n = jobs.len();
        {
            let mut st = self.state.lock().unwrap();
            st.jobs.extend(jobs);
            st.pending += n;
        }
        self.work.notify_all();
        let mut st = self.state.lock().unwrap();
        while st.pending > 0 && !st.poisoned {
            st = self.done.wait(st).unwrap();
        }
        if st.poisoned {
            st.shutdown = true;
            drop(st);
            self.work.notify_all();
            panic!("parallel exploration worker panicked");
        }
        std::mem::take(&mut st.outs)
    }

    fn shutdown(&self) {
        let mut st = self.state.lock().unwrap();
        st.shutdown = true;
        drop(st);
        self.work.notify_all();
    }
}

/// Marks the pool poisoned if a worker unwinds mid-job (kept disarmed via
/// `mem::forget` on the normal path).
struct PoisonGuard<'a> {
    pool: &'a Pool,
}

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.pool.state.lock().unwrap();
        st.poisoned = true;
        self.pool.done.notify_all();
    }
}

/// Shuts the pool down when the coordinator leaves its scope — including by
/// panic, so workers never block a `thread::scope` join forever.
struct ShutdownGuard<'a> {
    pool: &'a Pool,
}

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        self.pool.shutdown();
    }
}

fn worker_loop(pool: &Pool, frontiers: &RwLock<Vec<Frontier>>, task: &DrtTask, horizon: Q) {
    loop {
        let job = {
            let mut st = pool.state.lock().unwrap();
            loop {
                if let Some(j) = st.jobs.pop_front() {
                    break j;
                }
                if st.shutdown {
                    return;
                }
                st = pool.work.wait(st).unwrap();
            }
        };
        let guard = PoisonGuard { pool };
        let out = match job {
            Job::Classify { mut chunk } => {
                chunk.sort_unstable_by(pop_order);
                let f = frontiers.read().unwrap();
                let dominated = chunk
                    .iter()
                    .map(|c| f[c.vertex.index()].dominated(c.span, c.work))
                    .collect();
                JobOut::Classify { chunk, dominated }
            }
            Job::Expand { nodes, lo, hi } => {
                let mut succ = Vec::new();
                let mut generated = 0usize;
                for &(idx, n) in &nodes[lo..hi] {
                    for e in task.out_edges(n.vertex) {
                        let span = n.span + e.separation;
                        if span > horizon {
                            continue;
                        }
                        generated += 1;
                        succ.push(Candidate {
                            span,
                            work: n.work + task.wcet(e.to),
                            vertex: e.to,
                            len: n.len + 1,
                            parent: Some(idx),
                        });
                    }
                }
                JobOut::Expand { succ, generated }
            }
        };
        std::mem::forget(guard);
        let mut st = pool.state.lock().unwrap();
        st.outs.push(out);
        st.pending -= 1;
        if st.pending == 0 {
            pool.done.notify_all();
        }
    }
}

/// Merges two pop-order-sorted shard results into one. Ties under
/// [`pop_order`] are *identical* candidates, so either pick is the same.
fn merge_classified(
    a: (Vec<Candidate>, Vec<bool>),
    b: (Vec<Candidate>, Vec<bool>),
) -> (Vec<Candidate>, Vec<bool>) {
    let (ac, af) = a;
    let (bc, bf) = b;
    let mut cands = Vec::with_capacity(ac.len() + bc.len());
    let mut flags = Vec::with_capacity(af.len() + bf.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < ac.len() && j < bc.len() {
        if pop_order(&ac[i], &bc[j]) != Ordering::Greater {
            cands.push(ac[i]);
            flags.push(af[i]);
            i += 1;
        } else {
            cands.push(bc[j]);
            flags.push(bf[j]);
            j += 1;
        }
    }
    cands.extend_from_slice(&ac[i..]);
    flags.extend_from_slice(&af[i..]);
    cands.extend_from_slice(&bc[j..]);
    flags.extend_from_slice(&bf[j..]);
    (cands, flags)
}

/// Shards `cands` across the pool for sorting + frozen-dominance
/// classification, then k-way merges back into global pop order.
fn classify_parallel(
    pool: &Pool,
    mut cands: Vec<Candidate>,
    threads: usize,
) -> (Vec<Candidate>, Vec<bool>) {
    let chunk_size = cands.len().div_ceil(threads);
    let mut jobs = Vec::with_capacity(threads);
    while !cands.is_empty() {
        let at = cands.len().saturating_sub(chunk_size);
        jobs.push(Job::Classify {
            chunk: cands.split_off(at),
        });
    }
    let parts: Vec<(Vec<Candidate>, Vec<bool>)> = pool
        .run(jobs)
        .into_iter()
        .map(|o| match o {
            JobOut::Classify { chunk, dominated } => (chunk, dominated),
            JobOut::Expand { .. } => unreachable!("classify phase got an expand result"),
        })
        .collect();
    parts
        .into_iter()
        .reduce(merge_classified)
        .unwrap_or_default()
}

/// Parallel [`explore_metered`]: shards the per-window candidate work
/// across a fixed pool of `threads` scoped workers while a sequential
/// coordinator spine replays the exact heap pop order. The result is
/// **bit-identical** to the sequential engine — same retained nodes in the
/// same arena order (hence identical witnesses), same `generated` /
/// `pruned` counters, same `complete_span` and same interruption cause
/// under path caps, node limits, cancellation and injected faults.
///
/// `threads ≤ 1` runs the sequential engine directly. Explorations without
/// pruning (`ExploreConfig::prune == false`, the ablation mode) also fall
/// back to the sequential engine: their exact-duplicate scan is inherently
/// serial and never performance-critical.
///
/// Wall-clock budgets remain time-dependent in *where* they trip (exactly
/// as in the sequential engine); all deterministic budget dimensions are
/// reproduced exactly.
pub fn explore_metered_threads(
    task: &DrtTask,
    cfg: &ExploreConfig,
    meter: &BudgetMeter,
    threads: usize,
) -> Exploration {
    if threads <= 1 || !cfg.prune || task.num_vertices() == 0 {
        return explore_metered(task, cfg, meter);
    }
    explore_parallel(task, cfg, meter, threads)
}

fn explore_parallel(
    task: &DrtTask,
    cfg: &ExploreConfig,
    meter: &BudgetMeter,
    threads: usize,
) -> Exploration {
    let mut nodes: Vec<PathNode> = Vec::new();
    let mut generated = 0usize;
    let mut pruned = 0usize;
    let mut truncated_by_len = false;
    let mut complete_span = cfg.horizon;
    let mut interrupted: Option<BudgetKind> = None;

    // Pending candidates, grouped by span. The window loop below drains
    // all groups with span < current + min_sep at once: successors of a
    // window land strictly beyond it, so each window is complete when it
    // starts.
    let mut buckets: BTreeMap<Q, Vec<Candidate>> = BTreeMap::new();
    for v in task.vertex_ids() {
        generated += 1;
        buckets.entry(Q::ZERO).or_default().push(Candidate {
            span: Q::ZERO,
            work: task.wcet(v),
            vertex: v,
            len: 1,
            parent: None,
        });
    }
    let min_sep: Option<Q> = task
        .vertex_ids()
        .flat_map(|v| task.out_edges(v).iter().map(|e| e.separation))
        .min();

    let frontiers: RwLock<Vec<Frontier>> = RwLock::new(vec![Frontier::default(); task.num_vertices()]);
    let pool = Pool::new();
    // Per-window scratch frontiers (only this window's insertions), with a
    // touched list so clearing is O(touched) not O(vertices).
    let mut win_frontiers: Vec<Frontier> = vec![Frontier::default(); task.num_vertices()];
    let mut touched: Vec<usize> = Vec::new();

    std::thread::scope(|s| {
        let _shutdown = ShutdownGuard { pool: &pool };
        for _ in 0..threads {
            let pool = &pool;
            let frontiers = &frontiers;
            let horizon = cfg.horizon;
            s.spawn(move || worker_loop(pool, frontiers, task, horizon));
        }

        'windows: while let Some((&w_start, _)) = buckets.first_key_value() {
            // Phase 0: collect the window `[w_start, w_start + min_sep)`.
            let mut window: Vec<Candidate> = Vec::new();
            match min_sep {
                Some(m) => {
                    let end = w_start + m;
                    while let Some(e) = buckets.first_entry() {
                        if *e.key() < end {
                            window.extend(e.remove());
                        } else {
                            break;
                        }
                    }
                }
                // No edges: every candidate is a root; a single group.
                None => window = buckets.pop_first().map(|(_, v)| v).unwrap_or_default(),
            }

            // Phase 1: sort into pop order + frozen-frontier dominance.
            let (window, dominated) = if window.len() >= CLASSIFY_GRAIN {
                classify_parallel(&pool, window, threads)
            } else {
                let mut w = window;
                w.sort_unstable_by(pop_order);
                let f = frontiers.read().unwrap();
                let d = w
                    .iter()
                    .map(|c| f[c.vertex.index()].dominated(c.span, c.work))
                    .collect();
                (w, d)
            };

            // Phase 2: sequential retention spine — ticks, window-local
            // dominance and the node limit in exact pop order.
            for i in touched.drain(..) {
                win_frontiers[i].entries.clear();
            }
            let base = nodes.len();
            let mut expand: Vec<(usize, PathNode)> = Vec::new();
            let mut broke = false;
            for (i, c) in window.iter().enumerate() {
                if !meter.tick_path() {
                    interrupted = meter.tripped().or(Some(BudgetKind::Paths));
                    complete_span = c.span;
                    broke = true;
                    break;
                }
                let vi = c.vertex.index();
                if dominated[i] || win_frontiers[vi].dominated(c.span, c.work) {
                    pruned += 1;
                    continue;
                }
                let idx = nodes.len();
                if idx >= cfg.node_limit {
                    interrupted = Some(BudgetKind::Paths);
                    complete_span = c.span;
                    broke = true;
                    break;
                }
                let node = PathNode {
                    vertex: c.vertex,
                    span: c.span,
                    work: c.work,
                    len: c.len,
                    parent: c.parent,
                };
                nodes.push(node);
                if win_frontiers[vi].entries.is_empty() {
                    touched.push(vi);
                }
                win_frontiers[vi].insert(c.span, c.work, idx);
                if let Some(ml) = cfg.max_len {
                    if c.len >= ml {
                        if !task.out_edges(c.vertex).is_empty() {
                            truncated_by_len = true;
                        }
                        continue;
                    }
                }
                expand.push((idx, node));
            }

            // Publish this window's insertions into the shared frontiers
            // (in pop order; the resulting Pareto set is order-free).
            {
                let mut f = frontiers.write().unwrap();
                for (off, n) in nodes[base..].iter().enumerate() {
                    f[n.vertex.index()].insert(n.span, n.work, base + off);
                }
            }

            if broke {
                // The sequential loop would already have pushed (and
                // counted) the successors of everything retained before
                // the breaking candidate; none of them are ever popped,
                // so only the `generated` count needs reproducing.
                for &(_, n) in &expand {
                    for e in task.out_edges(n.vertex) {
                        if n.span + e.separation <= cfg.horizon {
                            generated += 1;
                        }
                    }
                }
                break 'windows;
            }

            // Phase 3: successor expansion.
            if expand.len() >= EXPAND_GRAIN {
                let chunk = expand.len().div_ceil(threads);
                let shared = Arc::new(expand);
                let jobs: Vec<Job> = (0..threads)
                    .map(|t| Job::Expand {
                        nodes: Arc::clone(&shared),
                        lo: (t * chunk).min(shared.len()),
                        hi: ((t + 1) * chunk).min(shared.len()),
                    })
                    .filter(|j| match j {
                        Job::Expand { lo, hi, .. } => lo < hi,
                        _ => true,
                    })
                    .collect();
                for out in pool.run(jobs) {
                    match out {
                        JobOut::Expand { succ, generated: g } => {
                            generated += g;
                            for c in succ {
                                buckets.entry(c.span).or_default().push(c);
                            }
                        }
                        JobOut::Classify { .. } => {
                            unreachable!("expand phase got a classify result")
                        }
                    }
                }
            } else {
                for &(idx, n) in &expand {
                    for e in task.out_edges(n.vertex) {
                        let span = n.span + e.separation;
                        if span > cfg.horizon {
                            continue;
                        }
                        generated += 1;
                        buckets.entry(span).or_default().push(Candidate {
                            span,
                            work: n.work + task.wcet(e.to),
                            vertex: e.to,
                            len: n.len + 1,
                            parent: Some(idx),
                        });
                    }
                }
            }
        }
    });

    Exploration {
        nodes,
        generated,
        pruned,
        horizon: cfg.horizon,
        truncated_by_len,
        complete_span,
        interrupted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DrtTaskBuilder;

    fn diamond() -> DrtTask {
        // a -> b (sep 3, e=1), a -> c (sep 4, e=5), b -> d, c -> d
        let mut b = DrtTaskBuilder::new("diamond");
        let a = b.vertex("a", Q::int(2));
        let bb = b.vertex("b", Q::ONE);
        let c = b.vertex("c", Q::int(5));
        let d = b.vertex("d", Q::ONE);
        b.edge(a, bb, Q::int(3));
        b.edge(a, c, Q::int(4));
        b.edge(bb, d, Q::int(3));
        b.edge(c, d, Q::int(2));
        b.build().unwrap()
    }

    #[test]
    fn explore_single_loop() {
        let mut b = DrtTaskBuilder::new("loop");
        let v = b.vertex("v", Q::int(2));
        b.edge(v, v, Q::int(5));
        let task = b.build().unwrap();
        let ex = explore(&task, &ExploreConfig::new(Q::int(20)));
        let spans: Vec<Q> = ex.nodes().iter().map(|n| n.span).collect();
        assert_eq!(
            spans,
            vec![Q::ZERO, Q::int(5), Q::int(10), Q::int(15), Q::int(20)]
        );
        let works: Vec<Q> = ex.nodes().iter().map(|n| n.work).collect();
        assert_eq!(
            works,
            vec![Q::int(2), Q::int(4), Q::int(6), Q::int(8), Q::int(10)]
        );
    }

    #[test]
    fn explore_diamond_prunes_weak_branch() {
        let task = diamond();
        let ex = explore(&task, &ExploreConfig::new(Q::int(100)));
        // Path a→c→d (span 6, work 8) dominates a→b→d (span 6, work 4):
        // only one node at vertex d with span 6 must remain.
        let d_nodes: Vec<&PathNode> = ex
            .nodes()
            .iter()
            .filter(|n| n.vertex.index() == 3 && n.span == Q::int(6))
            .collect();
        assert_eq!(d_nodes.len(), 1);
        assert_eq!(d_nodes[0].work, Q::int(8));
        assert!(ex.pruned > 0);
    }

    #[test]
    fn witness_reconstruction() {
        let task = diamond();
        let ex = explore(&task, &ExploreConfig::new(Q::int(100)));
        let best_d = ex
            .nodes()
            .iter()
            .enumerate()
            .filter(|(_, n)| n.vertex.index() == 3)
            .max_by_key(|(_, n)| n.work)
            .map(|(i, _)| i)
            .unwrap();
        let path = ex.path_of(best_d);
        let labels: Vec<&str> = path
            .iter()
            .map(|&v| task.vertex(v).label.as_str())
            .collect();
        assert_eq!(labels, vec!["a", "c", "d"]);
    }

    #[test]
    fn max_len_truncation_flag() {
        let mut b = DrtTaskBuilder::new("loop");
        let v = b.vertex("v", Q::ONE);
        b.edge(v, v, Q::ONE);
        let task = b.build().unwrap();
        let ex = explore(&task, &ExploreConfig::new(Q::int(50)).with_max_len(3));
        assert!(ex.truncated_by_len);
        assert!(ex.nodes().iter().all(|n| n.len <= 3));
        let full = explore(&task, &ExploreConfig::new(Q::int(50)));
        assert!(!full.truncated_by_len);
    }

    #[test]
    fn pruning_preserves_rbf_envelope() {
        // With and without pruning, the attainable (span, work) envelope
        // must agree: for every unpruned node there is a pruned-run node
        // with span ≤ and work ≥.
        let task = diamond();
        let pruned = explore(&task, &ExploreConfig::new(Q::int(30)));
        let raw = explore(&task, &ExploreConfig::new(Q::int(30)).without_pruning());
        assert!(raw.nodes().len() >= pruned.nodes().len());
        for n in raw.nodes() {
            assert!(
                pruned
                    .nodes()
                    .iter()
                    .any(|m| m.vertex == n.vertex && m.span <= n.span && m.work >= n.work),
                "node {n:?} not covered"
            );
        }
    }

    #[test]
    fn metered_explore_stops_at_clean_prefix() {
        use srtw_minplus::Budget;
        let mut b = DrtTaskBuilder::new("loop");
        let v = b.vertex("v", Q::int(2));
        b.edge(v, v, Q::int(5));
        let task = b.build().unwrap();
        let cfg = ExploreConfig::new(Q::int(1000));
        let meter = BudgetMeter::new(&Budget::default().with_max_paths(10));
        let ex = explore_metered(&task, &cfg, &meter);
        assert_eq!(ex.interrupted, Some(BudgetKind::Paths));
        assert!(ex.complete_span < Q::int(1000));
        // Exclusive completeness: compare against an unmetered run capped
        // at the reported complete span.
        let full = explore(&task, &ExploreConfig::new(Q::int(1000)));
        let expect: Vec<&PathNode> = full
            .nodes()
            .iter()
            .filter(|n| n.span < ex.complete_span)
            .collect();
        for want in &expect {
            assert!(
                ex.nodes().iter().any(|n| n.span == want.span
                    && n.work == want.work
                    && n.vertex == want.vertex),
                "missing complete-prefix node {want:?}"
            );
        }
        // An unmetered run reports full completeness.
        assert_eq!(full.interrupted, None);
        assert_eq!(full.complete_span, Q::int(1000));
    }

    #[test]
    fn node_limit_interrupts_instead_of_panicking() {
        let mut b = DrtTaskBuilder::new("loop");
        let v = b.vertex("v", Q::ONE);
        b.edge(v, v, Q::ONE);
        let task = b.build().unwrap();
        let mut cfg = ExploreConfig::new(Q::int(10_000));
        cfg.node_limit = 5;
        let ex = explore(&task, &cfg);
        assert_eq!(ex.interrupted, Some(BudgetKind::Paths));
        assert_eq!(ex.nodes().len(), 5);
        assert!(ex.complete_span <= Q::int(5));
    }

    /// All-pairs digraph with separations cycling through `seps` — fat
    /// span windows (many collisions), the parallel engine's stress shape.
    fn dense(n: usize, seps: &[i128]) -> DrtTask {
        let mut b = DrtTaskBuilder::new("dense");
        let ids: Vec<_> = (0..n)
            .map(|i| b.vertex(format!("v{i}"), Q::int(1 + (i as i128 * 7) % 5)))
            .collect();
        let mut k = 0usize;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    b.edge(ids[i], ids[j], Q::int(seps[k % seps.len()]));
                    k += 1;
                }
            }
        }
        b.build().unwrap()
    }

    fn assert_same(seq: &Exploration, par: &Exploration, what: &str) {
        assert_eq!(seq.nodes(), par.nodes(), "{what}: nodes differ");
        assert_eq!(seq.generated, par.generated, "{what}: generated differs");
        assert_eq!(seq.pruned, par.pruned, "{what}: pruned differs");
        assert_eq!(seq.horizon, par.horizon, "{what}: horizon differs");
        assert_eq!(
            seq.truncated_by_len, par.truncated_by_len,
            "{what}: truncated_by_len differs"
        );
        assert_eq!(
            seq.complete_span, par.complete_span,
            "{what}: complete_span differs"
        );
        assert_eq!(seq.interrupted, par.interrupted, "{what}: interrupted differs");
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        for (task, horizon) in [
            (diamond(), Q::int(100)),
            (dense(8, &[5, 10, 15]), Q::int(60)),
            (dense(16, &[5, 7]), Q::int(60)), // multi-group windows, sharded classify
            (dense(50, &[5, 7]), Q::int(40)), // sharded classify *and* expand
        ] {
            let cfg = ExploreConfig::new(horizon);
            let seq = explore_metered(&task, &cfg, &BudgetMeter::unlimited());
            for threads in [2usize, 4, 8] {
                let par =
                    explore_metered_threads(&task, &cfg, &BudgetMeter::unlimited(), threads);
                assert_same(&seq, &par, &format!("{} @ {threads} threads", task.name()));
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_under_budgets_and_faults() {
        use srtw_minplus::{Budget, FaultKind, FaultPlan};
        let task = dense(10, &[5, 7]);
        let cfg = ExploreConfig::new(Q::int(80));
        for cap in [0u64, 1, 5, 17, 100, 1000] {
            let b = Budget::default().with_max_paths(cap);
            let seq = explore_metered(&task, &cfg, &BudgetMeter::new(&b));
            let par =
                explore_metered_threads(&task, &cfg, &BudgetMeter::new(&b), 4);
            assert_same(&seq, &par, &format!("max_paths {cap}"));
        }
        for at in [1u64, 3, 10, 50, 500] {
            let b = Budget::default().with_fault(FaultPlan::new(at, FaultKind::TripBudget));
            let seq = explore_metered(&task, &cfg, &BudgetMeter::new(&b));
            let par =
                explore_metered_threads(&task, &cfg, &BudgetMeter::new(&b), 4);
            assert_same(&seq, &par, &format!("trip@{at}"));
        }
        for limit in [1usize, 7, 40] {
            let mut lcfg = cfg.clone();
            lcfg.node_limit = limit;
            let seq = explore_metered(&task, &lcfg, &BudgetMeter::unlimited());
            let par = explore_metered_threads(&task, &lcfg, &BudgetMeter::unlimited(), 4);
            assert_same(&seq, &par, &format!("node_limit {limit}"));
        }
    }

    #[test]
    fn parallel_respects_max_len_truncation() {
        let task = dense(8, &[5, 10]);
        let cfg = ExploreConfig::new(Q::int(60)).with_max_len(3);
        let seq = explore_metered(&task, &cfg, &BudgetMeter::unlimited());
        let par = explore_metered_threads(&task, &cfg, &BudgetMeter::unlimited(), 4);
        assert_same(&seq, &par, "max_len 3");
        assert!(par.truncated_by_len);
    }

    #[test]
    fn parallel_without_pruning_falls_back_to_sequential() {
        let task = diamond();
        let cfg = ExploreConfig::new(Q::int(30)).without_pruning();
        let seq = explore_metered(&task, &cfg, &BudgetMeter::unlimited());
        let par = explore_metered_threads(&task, &cfg, &BudgetMeter::unlimited(), 4);
        assert_same(&seq, &par, "no-prune fallback");
    }

    #[test]
    fn frontier_insert_and_dominate() {
        let mut f = Frontier::default();
        f.insert(Q::ZERO, Q::ONE, 0);
        assert!(f.dominated(Q::ONE, Q::ONE));
        assert!(!f.dominated(Q::ONE, Q::TWO));
        f.insert(Q::ONE, Q::int(3), 1);
        // New stronger entry at same span evicts weaker-later ones.
        f.insert(Q::ONE, Q::int(5), 2);
        assert!(f.dominated(Q::int(2), Q::int(5)));
        assert_eq!(f.entries.len(), 2);
    }
}
