//! A minimal, hardened HTTP/1.1 subset: just enough to parse requests
//! from an untrusted client and write responses, with explicit caps on
//! the head and body so a hostile peer can never make the server buffer
//! unbounded input.
//!
//! The parser comes in two shapes sharing one grammar:
//!
//! * [`read_request`] — the classic blocking form over any [`BufRead`],
//!   used by the trusted admin plane and the unit tests;
//! * [`scan_head`] + [`parse_head`] + [`body_need`] — the incremental
//!   form the multiplexed acceptor ([`crate::mux`]) drives over a byte
//!   buffer it fills with non-blocking reads, so a slow-loris client
//!   never ties up anything but its own small buffer.
//!
//! Keep-alive is supported: a response carries an explicit `close` flag,
//! and the acceptor recycles connections whose requests allow reuse.

use std::io::{self, BufRead, Read, Write};

/// Maximum accepted size of the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The request method, verbatim (`GET`, `POST`, …).
    pub method: String,
    /// The request target, verbatim (`/analyze`, …).
    pub target: String,
    /// Header name/value pairs in arrival order (names lower-cased).
    pub headers: Vec<(String, String)>,
    /// The request body (`Content-Length` bytes, within the cap).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of header `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == lower)
            .map(|(_, v)| v.as_str())
    }

    /// `true` when this request permits connection reuse: HTTP/1.1
    /// default-keep-alive unless the client sent `Connection: close`.
    pub fn wants_keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be parsed. Each variant maps to one status
/// code; see [`RequestError::status`].
#[derive(Debug)]
pub enum RequestError {
    /// Malformed request line, header, or `Content-Length` → 400.
    BadRequest(String),
    /// The request head (request line + headers) exceeds
    /// [`MAX_HEAD_BYTES`] → 431.
    HeadTooLarge,
    /// The declared body exceeds the cap → 413 (nothing past the head is
    /// read, so the oversized body is never buffered).
    TooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// The enforced cap.
        cap: usize,
    },
    /// A request with a body but no `Content-Length` → 411.
    LengthRequired,
    /// The client stalled past its read deadline mid-request → 408.
    Timeout,
    /// The socket failed or timed out mid-request → 408 on timeout,
    /// otherwise the connection is just dropped.
    Io(io::Error),
}

impl RequestError {
    /// The HTTP status this error answers with.
    pub fn status(&self) -> u16 {
        match self {
            RequestError::BadRequest(_) => 400,
            RequestError::HeadTooLarge => 431,
            RequestError::TooLarge { .. } => 413,
            RequestError::LengthRequired => 411,
            RequestError::Timeout | RequestError::Io(_) => 408,
        }
    }
}

/// The parsed head of a request: everything except the body.
#[derive(Debug, Clone)]
pub struct Head {
    /// The request method, verbatim.
    pub method: String,
    /// The request target, verbatim.
    pub target: String,
    /// Headers in arrival order (names lower-cased, values trimmed).
    pub headers: Vec<(String, String)>,
}

impl Head {
    /// The first value of header `name` (lower-case lookup).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Attaches a body, producing the full [`Request`].
    pub fn into_request(self, body: Vec<u8>) -> Request {
        Request {
            method: self.method,
            target: self.target,
            headers: self.headers,
            body,
        }
    }
}

/// What an incremental [`scan_head`] pass over a growing buffer found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeadScan {
    /// No head terminator yet — keep reading (the buffer is still within
    /// [`MAX_HEAD_BYTES`]).
    Partial,
    /// The buffer exceeded [`MAX_HEAD_BYTES`] without completing a head
    /// → answer 431 and close.
    TooLarge,
    /// A complete head occupies `buf[..head_len]` (terminator included).
    Complete {
        /// Bytes of the head, including the blank-line terminator.
        head_len: usize,
    },
}

/// Scans a byte buffer for a complete request head: the first blank line
/// (`\r\n\r\n` or `\n\n`), within [`MAX_HEAD_BYTES`]. O(buf) per call —
/// callers growing the buffer incrementally should rescan from a little
/// before the previous end, but heads are small enough that a full
/// rescan is fine.
pub fn scan_head(buf: &[u8]) -> HeadScan {
    let window = &buf[..buf.len().min(MAX_HEAD_BYTES + 4)];
    // A head ends at the first empty line; accept bare-LF line endings.
    let mut i = 0;
    while let Some(off) = window[i..].iter().position(|&b| b == b'\n') {
        let line_end = i + off;
        let line = &window[i..line_end];
        let line = if line.ends_with(b"\r") {
            &line[..line.len() - 1]
        } else {
            line
        };
        if line.is_empty() && line_end > 0 {
            let head_len = line_end + 1;
            if head_len > MAX_HEAD_BYTES {
                return HeadScan::TooLarge;
            }
            return HeadScan::Complete { head_len };
        }
        i = line_end + 1;
    }
    if buf.len() > MAX_HEAD_BYTES {
        HeadScan::TooLarge
    } else {
        HeadScan::Partial
    }
}

/// Parses a complete head (`buf[..head_len]` from a
/// [`HeadScan::Complete`]) into its parts.
pub fn parse_head(head: &[u8]) -> Result<Head, RequestError> {
    let text = std::str::from_utf8(head)
        .map_err(|_| RequestError::BadRequest("non-UTF-8 header bytes".into()))?;
    let mut lines = text.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines
        .next()
        .filter(|l| !l.is_empty())
        .ok_or_else(|| RequestError::BadRequest("empty request line".into()))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| RequestError::BadRequest("empty request line".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| RequestError::BadRequest("request line lacks a target".into()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| RequestError::BadRequest("request line lacks a version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::BadRequest(format!(
            "unsupported protocol '{version}'"
        )));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| RequestError::BadRequest(format!("malformed header '{line}'")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(Head {
        method,
        target,
        headers,
    })
}

/// How many body bytes a parsed head declares, enforcing `body_cap` and
/// the `Content-Length`-required rule for bodied methods.
pub fn body_need(head: &Head, body_cap: usize) -> Result<usize, RequestError> {
    match head.header("content-length") {
        None if head.method == "POST" || head.method == "PUT" => Err(RequestError::LengthRequired),
        None => Ok(0),
        Some(v) => {
            let declared: usize = v
                .parse()
                .map_err(|_| RequestError::BadRequest(format!("bad Content-Length '{v}'")))?;
            if declared > body_cap {
                return Err(RequestError::TooLarge {
                    declared,
                    cap: body_cap,
                });
            }
            Ok(declared)
        }
    }
}

/// Reads one request from `reader`, enforcing [`MAX_HEAD_BYTES`] on the
/// head and `body_cap` on the declared body length. Blocking; used by the
/// trusted admin plane and the tests — untrusted data-plane sockets go
/// through the incremental scan instead.
pub fn read_request(reader: &mut impl BufRead, body_cap: usize) -> Result<Request, RequestError> {
    let mut buf = Vec::new();
    loop {
        match scan_head(&buf) {
            HeadScan::TooLarge => return Err(RequestError::HeadTooLarge),
            HeadScan::Complete { head_len } => {
                let head = parse_head(&buf[..head_len])?;
                let need = body_need(&head, body_cap)?;
                let mut body = buf[head_len..].to_vec();
                if body.len() < need {
                    let missing = need - body.len();
                    let start = body.len();
                    body.resize(need, 0);
                    reader
                        .read_exact(&mut body[start..start + missing])
                        .map_err(RequestError::Io)?;
                }
                body.truncate(need);
                return Ok(head.into_request(body));
            }
            HeadScan::Partial => {
                // Pull whatever is buffered (at least one byte, blocking).
                let chunk = reader.fill_buf().map_err(RequestError::Io)?;
                if chunk.is_empty() {
                    return Err(RequestError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-head",
                    )));
                }
                // In the Partial state `buf` is within the cap; allow one
                // byte past it so the next scan reports TooLarge.
                let take = chunk.len().min(MAX_HEAD_BYTES + 1 - buf.len());
                buf.extend_from_slice(&chunk[..take]);
                reader.consume(take);
            }
        }
    }
}

/// One response. `close` controls the `Connection:` header — the
/// multiplexed acceptor recycles connections whose responses keep alive.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond the always-present set.
    pub headers: Vec<(&'static str, String)>,
    /// The response body (JSON on every endpoint).
    pub body: String,
    /// `true` → `Connection: close`; `false` → `Connection: keep-alive`.
    pub close: bool,
}

impl Response {
    /// A JSON response with the given status (defaults to
    /// `Connection: close`; the serving path flips it for reusable
    /// connections).
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body,
            close: true,
        }
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.headers.push((name, value.into()));
        self
    }

    /// Marks the response keep-alive (connection will be reused).
    #[must_use]
    pub fn keep_alive(mut self) -> Response {
        self.close = false;
        self
    }

    /// Serializes the response head + body into a byte buffer (what the
    /// non-blocking writer needs: one buffer it can flush in pieces).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.body.len() + 128);
        let _ = write!(
            out,
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            reason(self.status),
            self.body.len(),
            if self.close { "close" } else { "keep-alive" },
        );
        for (name, value) in &self.headers {
            let _ = write!(out, "{name}: {value}\r\n");
        }
        let _ = write!(out, "\r\n{}", self.body);
        out
    }

    /// Serializes the response to `w`.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(&self.to_bytes())?;
        w.flush()
    }
}

/// The terminal frame of a chunked stream: the zero-length chunk.
pub const CHUNK_TERMINATOR: &[u8] = b"0\r\n\r\n";

/// The head of a streaming response using HTTP/1.1 chunked transfer
/// encoding. No `Content-Length` is (or can be) declared; the body
/// follows as [`chunk`]-framed pieces ended by [`CHUNK_TERMINATOR`].
/// Streaming responses always close: the producing side cannot know the
/// framing stayed intact after a mid-stream failure.
pub fn chunked_head(status: u16, content_type: &str) -> Vec<u8> {
    format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
        status,
        reason(status),
    )
    .into_bytes()
}

/// Frames one payload as a chunk: hex length, CRLF, payload, CRLF.
/// Zero-length payloads are skipped (an empty chunk would terminate the
/// stream).
pub fn chunk(payload: &[u8]) -> Vec<u8> {
    if payload.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(payload.len() + 16);
    let _ = write!(out, "{:x}\r\n", payload.len());
    out.extend_from_slice(payload);
    out.extend_from_slice(b"\r\n");
    out
}

/// Decodes a chunked transfer body. Lenient by design: returns the
/// concatenated payload of every *complete* chunk plus whether the
/// terminal chunk arrived — a stream cut mid-chunk (server killed, client
/// hung up) still yields everything that made it through intact.
pub fn decode_chunked(raw: &[u8]) -> (Vec<u8>, bool) {
    let mut out = Vec::with_capacity(raw.len());
    let mut pos = 0;
    loop {
        // Chunk size line: hex digits up to CRLF (extensions ignored).
        let Some(nl) = raw[pos..].iter().position(|&b| b == b'\n') else {
            return (out, false);
        };
        let line = &raw[pos..pos + nl];
        let line = line.strip_suffix(b"\r").unwrap_or(line);
        let hex = line
            .split(|&b| b == b';')
            .next()
            .unwrap_or_default();
        let Ok(size) = usize::from_str_radix(&String::from_utf8_lossy(hex), 16) else {
            return (out, false);
        };
        pos += nl + 1;
        if size == 0 {
            return (out, true);
        }
        if pos + size > raw.len() {
            return (out, false); // torn mid-chunk
        }
        out.extend_from_slice(&raw[pos..pos + size]);
        pos += size;
        // The CRLF after the payload.
        if raw.get(pos) == Some(&b'\r') {
            pos += 1;
        }
        if raw.get(pos) == Some(&b'\n') {
            pos += 1;
        } else if pos >= raw.len() {
            return (out, false);
        }
    }
}

/// What [`client_roundtrip`] hands back: `(status, headers, body)`.
pub type ClientResponse = (u16, Vec<(String, String)>, String);

/// A tiny blocking client for one request/response exchange, used by the
/// test suites and the throughput bench (the workspace has no external
/// HTTP client either). Sends `Connection: close` (so the read-to-EOF
/// framing below stays valid against a keep-alive server) and
/// `Content-Length` whenever a body is present or the method is `POST`,
/// and returns `(status, headers, body)`.
pub fn client_roundtrip(
    addr: &std::net::SocketAddr,
    method: &str,
    target: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<ClientResponse> {
    let stream = std::net::TcpStream::connect(addr)?;
    client_roundtrip_on(stream, method, target, headers, body)
}

/// [`client_roundtrip`] over an already-connected stream (lets callers
/// use `connect_timeout`).
pub fn client_roundtrip_on(
    mut stream: std::net::TcpStream,
    method: &str,
    target: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<ClientResponse> {
    stream.set_read_timeout(Some(std::time::Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(std::time::Duration::from_secs(30)))?;
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nHost: srtw\r\nConnection: close\r\n"
    )?;
    for (name, value) in headers {
        write!(stream, "{name}: {value}\r\n")?;
    }
    if !body.is_empty() || method == "POST" || method == "PUT" {
        write!(stream, "Content-Length: {}\r\n", body.len())?;
    }
    stream.write_all(b"\r\n")?;
    // Best-effort body write: a server that rejects early (413) may close
    // its read side before the body is through; the response is already
    // on the wire and must still be read.
    let _ = stream.write_all(body);
    let _ = stream.flush();

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8(raw)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response"))?;
    let (head, resp_body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "response lacks a head"))?;
    let mut lines = head.lines();
    let status_line = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty response"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let parsed_headers: Vec<(String, String)> = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let chunked = parsed_headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let resp_body = if chunked {
        let (decoded, _complete) = decode_chunked(resp_body.as_bytes());
        String::from_utf8(decoded)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 chunked body"))?
    } else {
        resp_body.to_string()
    };
    Ok((status, parsed_headers, resp_body))
}

/// The reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(text: &str) -> Result<Request, RequestError> {
        read_request(&mut BufReader::new(text.as_bytes()), 1 << 20)
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse("POST /analyze HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/analyze");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"hello");
        assert!(req.wants_keep_alive());
    }

    #[test]
    fn connection_close_disables_keep_alive() {
        let req =
            parse("GET / HTTP/1.1\r\nConnection: Close\r\n\r\n").unwrap();
        assert!(!req.wants_keep_alive());
    }

    #[test]
    fn parses_get_without_body_and_bare_lf() {
        let req = parse("GET /healthz HTTP/1.1\nX-Deadline-Ms: 250\n\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.header("x-deadline-ms"), Some("250"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn post_without_length_is_411() {
        let e = parse("POST /analyze HTTP/1.1\r\n\r\n").unwrap_err();
        assert_eq!(e.status(), 411);
    }

    #[test]
    fn oversized_declared_body_is_413_without_buffering() {
        let e = read_request(
            &mut BufReader::new(&b"POST /analyze HTTP/1.1\r\nContent-Length: 999999\r\n\r\n"[..]),
            1_000,
        )
        .unwrap_err();
        match e {
            RequestError::TooLarge { declared, cap } => {
                assert_eq!((declared, cap), (999_999, 1_000));
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn malformed_inputs_are_400() {
        for bad in [
            "\r\n",
            "GET\r\n\r\n",
            "GET /x\r\n\r\n",
            "GET /x SPDY/9\r\n\r\n",
            "GET /x HTTP/1.1\r\nbroken header\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: minus\r\n\r\n",
        ] {
            let e = parse(bad).unwrap_err();
            assert_eq!(e.status(), 400, "for {bad:?}");
        }
    }

    #[test]
    fn head_cap_is_enforced_as_431() {
        let huge = format!(
            "GET / HTTP/1.1\r\nX-Filler: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES)
        );
        let e = parse(&huge).unwrap_err();
        assert_eq!(e.status(), 431);
        assert!(matches!(e, RequestError::HeadTooLarge));
    }

    #[test]
    fn truncated_request_is_an_io_error() {
        let e = parse("POST /analyze HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort").unwrap_err();
        assert!(matches!(e, RequestError::Io(_)));
    }

    #[test]
    fn incremental_scan_finds_the_head_across_chunks() {
        let text = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\nEXTRA";
        for cut in 0..text.len() {
            let scan = scan_head(&text[..cut]);
            if cut < text.len() - 5 {
                assert_eq!(scan, HeadScan::Partial, "cut={cut}");
            }
        }
        match scan_head(text) {
            HeadScan::Complete { head_len } => {
                assert_eq!(&text[head_len..], b"EXTRA");
                let head = parse_head(&text[..head_len]).unwrap();
                assert_eq!(head.method, "GET");
                assert_eq!(head.header("host"), Some("x"));
                assert_eq!(body_need(&head, 10).unwrap(), 0);
            }
            other => panic!("expected complete head, got {other:?}"),
        }
    }

    #[test]
    fn incremental_scan_rejects_oversized_heads() {
        let huge = vec![b'a'; MAX_HEAD_BYTES + 1];
        assert_eq!(scan_head(&huge), HeadScan::TooLarge);
        // Exactly at the cap and unterminated: still waiting.
        let edge = vec![b'a'; MAX_HEAD_BYTES];
        assert_eq!(scan_head(&edge), HeadScan::Partial);
    }

    #[test]
    fn body_need_enforces_length_rules() {
        let head = parse_head(b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\n").unwrap();
        assert_eq!(body_need(&head, 10).unwrap(), 5);
        assert!(matches!(
            body_need(&head, 4),
            Err(RequestError::TooLarge { declared: 5, cap: 4 })
        ));
        let head = parse_head(b"POST /x HTTP/1.1\r\n\r\n").unwrap();
        assert!(matches!(
            body_need(&head, 10),
            Err(RequestError::LengthRequired)
        ));
    }

    #[test]
    fn response_serialization() {
        let mut out = Vec::new();
        Response::json(503, "{}".into())
            .with_header("Retry-After", "1")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn keep_alive_response_serialization() {
        let text = String::from_utf8(Response::json(200, "{}".into()).keep_alive().to_bytes())
            .unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
    }

    #[test]
    fn chunked_round_trip() {
        let mut wire = chunked_head(200, "application/x-ndjson");
        assert!(String::from_utf8_lossy(&wire).contains("Transfer-Encoding: chunked\r\n"));
        wire.clear();
        wire.extend_from_slice(&chunk(b"{\"a\":1}\n"));
        wire.extend_from_slice(&chunk(b""));
        wire.extend_from_slice(&chunk(b"{\"b\":2}\n"));
        wire.extend_from_slice(CHUNK_TERMINATOR);
        let (decoded, complete) = decode_chunked(&wire);
        assert!(complete);
        assert_eq!(decoded, b"{\"a\":1}\n{\"b\":2}\n");
    }

    #[test]
    fn chunked_decode_tolerates_torn_streams() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&chunk(b"first\n"));
        wire.extend_from_slice(&chunk(b"second-never-finishes"));
        wire.truncate(wire.len() - 10); // cut mid-chunk
        let (decoded, complete) = decode_chunked(&wire);
        assert!(!complete);
        assert_eq!(decoded, b"first\n");
        let (decoded, complete) = decode_chunked(b"not hex\r\ngarbage");
        assert!(!complete);
        assert!(decoded.is_empty());
    }
}
