//! The service itself: multiplexed admission, per-request supervision,
//! and graceful drain.
//!
//! Request lifecycle: the multiplexed acceptor ([`crate::mux`]) owns
//! every connection until a *complete* request is buffered — slow or
//! hostile clients are bounded by per-connection deadlines (`408`), head
//! caps (`431`), the connection cap and the bounded [`Gate`] (`503` with
//! an adaptive `Retry-After`), never by worker starvation. A pool worker
//! then routes the request; `/analyze` runs behind
//! [`srtw_supervisor::contain`] with a per-request [`CancelToken`] and an
//! optional `X-Deadline-Ms` wall budget, so an adversarial system
//! degrades soundly to the RTC bound instead of stalling the worker, and
//! a panicking analysis becomes a typed 500 while the server keeps
//! serving. Keep-alive connections cycle back to the acceptor after each
//! response instead of occupying a worker between requests.

use crate::cache::{CacheKey, MemoStore, ResultCache};
use crate::fault::{ProcessFault, ProcessFaultArm, ProcessFaultKind};
use crate::gate::Gate;
use crate::http::{Request, RequestError, Response, MAX_HEAD_BYTES};
use crate::mux::{self, ConnJob, MuxConfig, MuxHandle, ReturnedConn, Returner};
use crate::pool::Pool;
use crate::report::{fifo_report, fifo_report_with_memo, FifoReport};
use crate::stats::{Gauges, Stats};
use crate::sys;
use srtw_core::textfmt::{parse_system, ParseError, ParseErrorKind, MAX_INPUT_BYTES};
use srtw_core::{AnalysisConfig, Json};
use srtw_minplus::{Budget, CancelToken, FaultPlan};
use srtw_persist::{load_dir, PersistFault, Store};
use srtw_supervisor::{contain, Contained, JournalFault};
use srtw_workload::{CanonicalForm, RbfMemo};
use std::io::{self, Read as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Global budget of declared-but-unread body bytes buffered by the
/// acceptor (beyond it, new bodied requests shed with 503).
const MAX_BUFFERED_BODIES: usize = 16 * 1024 * 1024;
/// Requests served on one connection before it is closed anyway (bounds
/// per-connection state against an immortal client).
const MAX_REQUESTS_PER_CONN: u32 = 1024;

/// Service configuration; [`ServeConfig::default`] matches the CLI
/// defaults.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`host:port`; port `0` picks an ephemeral port).
    pub addr: String,
    /// Fixed worker-pool size (clamped to at least 1).
    pub workers: usize,
    /// Admission-queue bound: pending requests beyond this are shed.
    pub queue: usize,
    /// Most connections the acceptor tracks at once; beyond it new
    /// connections shed with 503 (and, further out, silently).
    pub max_conns: usize,
    /// How long a graceful drain waits for in-flight and queued work
    /// before cancelling stragglers.
    pub drain: Duration,
    /// Wind-down window granted after a cancellation (watchdog or drain)
    /// before a thread is abandoned.
    pub grace: Duration,
    /// Deadline for a fresh connection to complete its request head
    /// (stalling past it is a typed 408).
    pub header_timeout: Duration,
    /// Deadline for the declared body to arrive / for response writes /
    /// for keep-alive idleness.
    pub read_timeout: Duration,
    /// Deadline applied to `/analyze` requests that carry no
    /// `X-Deadline-Ms` header (`None` = unbounded).
    pub default_deadline_ms: Option<u64>,
    /// Path-exploration threads per request (bit-identical at any value).
    pub threads: usize,
    /// Deterministic fault injected into every request's meter (testing
    /// the shed/degrade/crash paths without timing races).
    pub fault: Option<FaultPlan>,
    /// Deterministic process-level fault (abort/stall/closefd at the Nth
    /// routed request) for driving the supervision tree.
    pub process_fault: Option<ProcessFault>,
    /// Replica index when running as a supervised replica (surfaces in
    /// `/stats`).
    pub replica: Option<usize>,
    /// Journal path prefix for `POST /batch` durability: each batch
    /// appends per-job outcomes to `<prefix>.<digest>` (keyed by the
    /// manifest digest) as they finish, and a batch re-POSTed after a
    /// crash replays journaled jobs instead of recomputing them.
    /// `None` disables journaling.
    pub journal: Option<String>,
    /// Deterministic journal-write fault (`torn@N` | `jcorrupt@N`)
    /// injected into batch journal appends. A fired fault aborts the
    /// process — durability is load-bearing, so its failure is treated
    /// exactly like a crash, which under `--replicas` drives the
    /// supervision tree's restart + resume path.
    pub journal_fault: Option<JournalFault>,
    /// Byte budget of the content-addressed result cache (`0` disables
    /// caching). Each replica owns an independent cache of this size.
    pub cache_bytes: usize,
    /// Spill directory for the crash-safe persistent result store:
    /// cached `/analyze` results are appended durably to per-shard spill
    /// files and warm-loaded at startup, so a restarted process (or a
    /// respawned replica, which reads every replica's files) answers
    /// repeat requests byte-identically without recomputing. `None`
    /// disables persistence. Any persistence failure degrades to a cold
    /// in-memory cache with a typed `srtw-persist:` warning — it never
    /// changes an HTTP status or a result byte.
    pub persist: Option<String>,
    /// Deterministic spill-write fault (`pers-torn@N` | `pers-corrupt@N`
    /// | `pers-enospc@N`) injected into persist appends. Unlike journal
    /// faults, a fired persist fault does *not* crash anything: the store
    /// disables itself and the service continues cold, which is the
    /// degradation contract under test.
    pub persist_fault: Option<PersistFault>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue: 64,
            max_conns: 1024,
            drain: Duration::from_secs(5),
            grace: Duration::from_secs(2),
            header_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(5),
            default_deadline_ms: None,
            threads: 1,
            fault: None,
            process_fault: None,
            replica: None,
            journal: None,
            journal_fault: None,
            cache_bytes: 64 * 1024 * 1024,
            persist: None,
            persist_fault: None,
        }
    }
}

/// What the graceful drain accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// `true` when every admitted request finished within the drain
    /// window, with no cancellation needed.
    pub drained: bool,
    /// In-flight requests cancelled via their tokens after the window
    /// (they still answer, with degraded-but-sound bounds).
    pub cancelled: u64,
    /// Workers respawned after handler panics over the server's lifetime.
    pub respawned: u64,
    /// Worker threads still stuck after cancellation + grace; detached.
    pub abandoned: usize,
}

impl DrainReport {
    /// `true` when shutdown left nothing behind: no cancelled stragglers
    /// and no abandoned threads.
    pub fn clean(&self) -> bool {
        self.drained && self.cancelled == 0 && self.abandoned == 0
    }
}

pub(crate) struct Shared {
    pub(crate) cfg: ServeConfig,
    pub(crate) gate: Arc<Gate<ConnJob>>,
    pub(crate) stats: Arc<Stats>,
    pub(crate) returner: Returner,
    pub(crate) fault_arm: ProcessFaultArm,
    pub(crate) draining: AtomicBool,
    pub(crate) shutdown_req: AtomicBool,
    /// Set when the drain window has expired: new analyses start
    /// pre-cancelled so queued stragglers answer immediately with the
    /// RTC-degraded bound.
    pub(crate) hard_cancel: AtomicBool,
    pub(crate) inflight: Mutex<Vec<CancelToken>>,
    /// Content-addressed `/analyze` result cache (per process — replicas
    /// are shared-nothing and each own an independent cache).
    pub(crate) cache: ResultCache,
    /// Promoted exact rbfs reused across requests (and across renamed /
    /// re-ordered variants the result cache cannot serve).
    pub(crate) memo_store: MemoStore,
    /// Crash-safe spill store behind the result cache (`--persist DIR`).
    /// `None` when persistence is off or degraded cold after a failure.
    pub(crate) persist: Option<Store>,
}

impl Shared {
    pub(crate) fn register(&self, token: CancelToken) {
        self.inflight.lock().unwrap().push(token);
    }

    /// Stores a freshly computed exact result in the in-memory cache and,
    /// when the entry was accepted and persistence is on, spills it
    /// durably to this replica's shard file. A spill failure warns once
    /// (typed, `srtw-persist:`-prefixed), bumps `persist_errors`, and the
    /// service continues with the in-memory entry — persistence never
    /// changes a response.
    pub(crate) fn cache_insert(
        &self,
        key: CacheKey,
        form: CanonicalForm,
        presentation: u64,
        body: &str,
        report: FifoReport,
    ) {
        let shard = ResultCache::shard_index(&key);
        let canon = key.canon;
        let deadline_ms = key.deadline_ms;
        let threads = key.threads;
        let stored = self.cache.insert(
            key,
            form.clone(),
            presentation,
            body.to_string(),
            Some(report),
        );
        if !stored {
            return;
        }
        if let Some(store) = &self.persist {
            match store.append(
                shard,
                canon,
                deadline_ms,
                threads as u32,
                presentation,
                form.code(),
                body,
            ) {
                Ok(()) => {
                    if !store.disabled() {
                        self.stats.persist_stored.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Err(e) => {
                    self.stats.persist_errors.fetch_add(1, Ordering::Relaxed);
                    eprintln!("srtw-persist: {e}; continuing with a cold in-memory cache");
                }
            }
        }
    }

    pub(crate) fn unregister(&self, token: &CancelToken) {
        // Tokens compare by identity, so this removes exactly ours.
        self.inflight.lock().unwrap().retain(|t| t != token);
    }

    pub(crate) fn draining_or_requested(&self) -> bool {
        self.draining.load(Ordering::Relaxed) || self.shutdown_req.load(Ordering::Relaxed)
    }
}

/// A running analysis service. Dropping the handle does *not* stop the
/// server; call [`Server::shutdown`] for a graceful drain.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    mux: MuxHandle,
    pool: Pool,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

impl Server {
    /// Binds and starts the service (mux acceptor + worker pool).
    pub fn spawn(cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        Server::from_listener(listener, cfg)
    }

    /// Starts the service over an already-bound listener — the shape a
    /// supervised replica uses after inheriting the shared listening
    /// socket from its parent.
    pub fn from_listener(listener: TcpListener, cfg: ServeConfig) -> io::Result<Server> {
        let addr = listener.local_addr()?;
        let gate = Arc::new(Gate::new(cfg.queue));
        let stats = Arc::new(Stats::new());
        let workers = cfg.workers.max(1);
        let mux_cfg = MuxConfig {
            max_conns: cfg.max_conns.max(workers + 1),
            header_timeout: cfg.header_timeout,
            read_timeout: cfg.read_timeout,
            max_buffered: MAX_BUFFERED_BODIES,
            body_cap: MAX_INPUT_BYTES,
            workers,
        };
        let mux = mux::spawn(listener, mux_cfg, Arc::clone(&gate), Arc::clone(&stats))?;
        let cache = ResultCache::new(cfg.cache_bytes);
        let persist = match &cfg.persist {
            None => None,
            Some(dir) => {
                let dir_path = std::path::Path::new(dir);
                let load = load_dir(dir_path);
                for w in &load.warnings {
                    eprintln!("{w}");
                }
                let max_gen = load.records.iter().map(|r| r.generation).max().unwrap_or(0);
                for rec in load.records {
                    // Re-verify the content hash from the stored lanes: a
                    // record that survived CRC checks but carries the
                    // wrong form can only miss, never lie.
                    let form = CanonicalForm::from_code(rec.form);
                    if form.hash() != rec.canon {
                        stats.persist_errors.fetch_add(1, Ordering::Relaxed);
                        eprintln!(
                            "srtw-persist: {}: byte 0: canonical-hash mismatch on a decoded \
                             record — skipped",
                            dir_path.display()
                        );
                        continue;
                    }
                    let key = CacheKey {
                        canon: rec.canon,
                        deadline_ms: rec.deadline_ms,
                        threads: rec.threads as usize,
                    };
                    // Warm entries replay their body verbatim but carry no
                    // structured report; ascending generation order
                    // reconstructs LRU recency under `cache_bytes`.
                    if cache.insert(key, form, rec.presentation, rec.body, None) {
                        stats.persist_loaded.fetch_add(1, Ordering::Relaxed);
                    }
                }
                match Store::open(
                    dir_path,
                    cfg.replica.unwrap_or(0),
                    crate::cache::SHARDS,
                    max_gen + 1,
                    cfg.persist_fault,
                ) {
                    Ok(store) => Some(store),
                    Err(e) => {
                        stats.persist_errors.fetch_add(1, Ordering::Relaxed);
                        eprintln!("srtw-persist: {e}; continuing with a cold in-memory cache");
                        None
                    }
                }
            }
        };
        let shared = Arc::new(Shared {
            fault_arm: ProcessFaultArm::new(cfg.process_fault),
            cache,
            memo_store: MemoStore::new(),
            persist,
            cfg,
            gate: Arc::clone(&gate),
            stats,
            returner: mux.returner(),
            draining: AtomicBool::new(false),
            shutdown_req: AtomicBool::new(false),
            hard_cancel: AtomicBool::new(false),
            inflight: Mutex::new(Vec::new()),
        });
        let pool = {
            let shared = Arc::clone(&shared);
            Pool::spawn(
                workers,
                gate,
                Arc::new(move |job: ConnJob| handle_conn(&shared, job)),
            )
        };
        Ok(Server {
            addr,
            shared,
            mux,
            pool,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Binds a second, *trusted* listener serving the same routes
    /// blockingly (no mux, no caps beyond the parser's): the private
    /// admin plane a supervised replica announces to its parent for
    /// health checks, stats scraping, and shutdown, kept off the shared
    /// public socket so the parent always reaches *this* replica rather
    /// than whichever one the kernel picks. Returns the bound address;
    /// the thread exits when the server starts draining.
    pub fn spawn_admin(&self, addr: &str) -> io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?;
        let shared = Arc::clone(&self.shared);
        thread::Builder::new()
            .name("srtw-serve-admin".into())
            .spawn(move || {
                while !shared.draining.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _peer)) => serve_admin_conn(&shared, stream),
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(20));
                        }
                        Err(_) => thread::sleep(Duration::from_millis(20)),
                    }
                }
            })?;
        Ok(bound)
    }

    /// `true` once `POST /shutdown` was served or a handled process
    /// signal arrived; the owner should then call [`Server::shutdown`].
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown_req.load(Ordering::Relaxed) || crate::signal::triggered()
    }

    /// Requests a shutdown programmatically (same effect as
    /// `POST /shutdown`).
    pub fn request_shutdown(&self) {
        self.shared.shutdown_req.store(true, Ordering::Relaxed);
    }

    /// Blocks until a shutdown is requested (polling; the signal handler
    /// can only raise a flag).
    pub fn wait_shutdown(&self) {
        while !self.shutdown_requested() {
            thread::sleep(Duration::from_millis(50));
        }
    }

    /// Gracefully drains and stops: stop accepting, let admitted work
    /// finish for up to `cfg.drain`, then cancel stragglers via their
    /// tokens and give them `cfg.grace` to wind down before abandoning.
    pub fn shutdown(self) -> DrainReport {
        self.shared.draining.store(true, Ordering::Relaxed);
        // Stop the acceptor: the listener closes and connections without a
        // complete request drop (there is nothing admitted to answer on
        // them); admitted work continues below.
        self.mux.stop();
        self.shared.gate.close();
        let drained = self.pool.wait_idle(self.shared.cfg.drain);
        let mut cancelled = 0u64;
        if !drained {
            self.shared.hard_cancel.store(true, Ordering::Relaxed);
            for token in self.shared.inflight.lock().unwrap().iter() {
                token.cancel();
                cancelled += 1;
            }
        }
        let patience = if drained {
            Duration::ZERO
        } else {
            // Cancelled analyses trip at their next metered op and still
            // write their (degraded) responses within the grace window.
            self.shared.cfg.grace + Duration::from_millis(200)
        };
        let report = self.pool.stop(patience);
        DrainReport {
            drained,
            cancelled,
            respawned: report.respawned,
            abandoned: report.abandoned,
        }
    }
}

/// The typed error body: the CLI's `{"error":{code,kind,message}}` object
/// (`srtw --json` exit paths emit the same shape), with optional extra
/// members such as the parse-error kind and span.
pub(crate) fn error_body(code: i128, kind: &str, message: &str, extra: Vec<(&str, Json)>) -> String {
    let mut members = vec![
        ("code", Json::Int(code)),
        ("kind", Json::str(kind)),
        ("message", Json::str(message)),
    ];
    members.extend(extra);
    format!("{}\n", Json::object(vec![("error", Json::object(members))]))
}

/// One blocking request/response exchange on the trusted admin plane.
fn serve_admin_conn(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = io::BufReader::new(read_half);
    match crate::http::read_request(&mut reader, MAX_INPUT_BYTES) {
        Ok(req) => {
            let _ = route(shared, &req).write_to(&mut stream);
        }
        Err(RequestError::Io(_)) => {}
        Err(e) => {
            let _ = request_error_response(&e).write_to(&mut stream);
        }
    }
}

fn handle_conn(shared: &Shared, job: ConnJob) {
    let ConnJob {
        mut stream,
        request,
        served,
        leftover,
    } = job;
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.cfg.read_timeout));
    shared.stats.requests.fetch_add(1, Ordering::Relaxed);
    if let Some(kind) = shared.fault_arm.fire() {
        match kind {
            // Abort never returns from fire(); these two are ours to act
            // on in context.
            ProcessFaultKind::Abort => unreachable!("abort executes inside fire()"),
            ProcessFaultKind::Stall(ms) => thread::sleep(Duration::from_millis(ms)),
            ProcessFaultKind::CloseFd => {
                // Vanish mid-request: the client sees a reset, the
                // supervisor sees a still-healthy replica.
                return;
            }
        }
    }
    if request.method == "POST" && request.target == "/batch" {
        // The batch endpoint streams its own (chunked) response and
        // always closes: a long-lived stream must not pin a keep-alive
        // slot, and `Connection: close` is what lets the client detect a
        // mid-stream crash as truncation.
        let started = Instant::now();
        crate::batch::stream_batch(shared, &request, &mut stream);
        shared
            .stats
            .note_latency_us(started.elapsed().as_micros() as u64);
        linger_close(&mut stream);
        return;
    }
    let mut response = route(shared, &request);
    let reuse = request.wants_keep_alive()
        && !shared.draining_or_requested()
        && served + 1 < MAX_REQUESTS_PER_CONN;
    if reuse {
        response = response.keep_alive();
    }
    if response.write_to(&mut stream).is_err() {
        return;
    }
    if reuse {
        shared.returner.return_conn(ReturnedConn {
            stream,
            served: served + 1,
            leftover,
        });
    } else {
        linger_close(&mut stream);
    }
}

/// Lingering close: give the client a beat to read the response before
/// the socket drops (closing with unread pipelined bytes in the receive
/// buffer would RST the response away).
fn linger_close(stream: &mut TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut scratch = [0u8; 8 * 1024];
    for _ in 0..4 {
        match stream.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

pub(crate) fn request_error_response(e: &RequestError) -> Response {
    let (kind, message, extra) = match e {
        RequestError::BadRequest(m) => ("input", m.clone(), vec![]),
        RequestError::HeadTooLarge => (
            "input",
            format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
            vec![],
        ),
        RequestError::TooLarge { declared, cap } => (
            "input",
            format!("request body is {declared} bytes, the cap is {cap}"),
            vec![(
                "parse_kind",
                Json::str(ParseErrorKind::InputTooLarge.as_str()),
            )],
        ),
        RequestError::LengthRequired => ("input", "Content-Length is required".to_string(), vec![]),
        RequestError::Timeout | RequestError::Io(_) => {
            ("input", "request timed out".to_string(), vec![])
        }
    };
    Response::json(e.status(), error_body(2, kind, &message, extra))
}

fn route(shared: &Shared, req: &Request) -> Response {
    match (req.method.as_str(), req.target.as_str()) {
        ("GET", "/healthz") => Response::json(200, "{\"status\":\"ok\"}\n".into()),
        ("GET", "/readyz") => {
            if shared.draining_or_requested() {
                Response::json(503, "{\"status\":\"draining\"}\n".into())
            } else {
                Response::json(200, "{\"status\":\"ready\"}\n".into())
            }
        }
        ("GET", "/stats") => {
            let gauges = Gauges {
                queue_depth: shared.gate.depth(),
                inflight: shared.inflight.lock().unwrap().len(),
                workers: shared.cfg.workers.max(1),
                open_conns: shared.returner.open_conns(),
                fds: sys::open_fd_count(),
                draining: shared.draining_or_requested(),
                replica: shared.cfg.replica,
                cache_bytes: shared.cache.bytes(),
                cache_evictions: shared.cache.evictions(),
            };
            let doc = shared.stats.to_json(&gauges);
            Response::json(200, format!("{doc}\n"))
        }
        ("POST", "/shutdown") => {
            shared.shutdown_req.store(true, Ordering::Relaxed);
            Response::json(200, "{\"status\":\"draining\"}\n".into())
        }
        ("POST", "/analyze") => {
            let started = Instant::now();
            let response = analyze(shared, req);
            shared
                .stats
                .note_latency_us(started.elapsed().as_micros() as u64);
            response
        }
        ("POST", "/analyze/delta") => {
            let started = Instant::now();
            let response = crate::delta::analyze_delta(shared, req);
            shared
                .stats
                .note_latency_us(started.elapsed().as_micros() as u64);
            response
        }
        (
            _,
            "/healthz" | "/readyz" | "/stats" | "/shutdown" | "/analyze" | "/analyze/delta"
            | "/batch",
        ) => {
            Response::json(
                405,
                error_body(
                    2,
                    "input",
                    &format!("method {} not allowed here", req.method),
                    vec![],
                ),
            )
        }
        (_, target) => Response::json(
            404,
            error_body(2, "input", &format!("unknown endpoint '{target}'"), vec![]),
        ),
    }
}

pub(crate) fn parse_error_response(e: &ParseError) -> Response {
    let status = if e.kind == ParseErrorKind::InputTooLarge {
        413
    } else {
        400
    };
    Response::json(
        status,
        error_body(
            2,
            "input",
            &e.to_string(),
            vec![
                ("parse_kind", Json::str(e.kind.as_str())),
                ("line", Json::Int(e.line as i128)),
                ("column", Json::Int(e.column as i128)),
            ],
        ),
    )
}

fn analyze(shared: &Shared, req: &Request) -> Response {
    let fail = |shared: &Shared, resp: Response| {
        shared.stats.failed.fetch_add(1, Ordering::Relaxed);
        resp
    };

    let Ok(text) = std::str::from_utf8(&req.body) else {
        return fail(
            shared,
            Response::json(
                400,
                error_body(2, "input", "request body is not UTF-8", vec![]),
            ),
        );
    };
    let deadline_ms = match req.header("x-deadline-ms") {
        None => shared.cfg.default_deadline_ms,
        Some(v) => match v.parse::<u64>() {
            Ok(ms) => Some(ms),
            Err(_) => {
                return fail(
                    shared,
                    Response::json(
                        400,
                        error_body(
                            2,
                            "input",
                            &format!("bad X-Deadline-Ms '{v}': expected milliseconds"),
                            vec![],
                        ),
                    ),
                )
            }
        },
    };
    let sys = match parse_system(text) {
        Ok(sys) => sys,
        Err(e) => return fail(shared, parse_error_response(&e)),
    };
    let beta = match &sys.server {
        None => {
            return fail(
                shared,
                Response::json(
                    400,
                    error_body(
                        2,
                        "input",
                        "the system declares no server (add a 'server …' line)",
                        vec![],
                    ),
                ),
            )
        }
        Some(s) => match s.beta_lower() {
            Ok(beta) => beta,
            Err(e) => return fail(shared, parse_error_response(&e)),
        },
    };

    // Content-addressed cache: a fault-free request whose canonical form,
    // presentation, and budget class all match a stored result replays
    // its body byte-for-byte (modulo `runtime_secs`, which the stored
    // body simply carries from the original run). With a configured
    // fault plan every request must execute the metered path, so the
    // cache is bypassed entirely.
    let threads = shared.cfg.threads.max(1);
    let cacheable = shared.cfg.fault.is_none();
    let hard_cancel = shared.hard_cancel.load(Ordering::Relaxed);
    let form = sys.canonical_form();
    let presentation = sys.presentation_digest();
    let key = CacheKey {
        canon: form.hash(),
        deadline_ms,
        threads,
    };
    if cacheable {
        if let Some(hit) = shared.cache.lookup(&key, &form, presentation) {
            shared.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            shared.stats.completed.fetch_add(1, Ordering::Relaxed);
            return Response::json(200, hit.body);
        }
        shared.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    let token = CancelToken::new();
    if hard_cancel {
        // The drain window is over: run straight to the degraded (RTC)
        // answer instead of starting fresh work.
        token.cancel();
    }
    shared.register(token.clone());
    let mut budget = Budget::default().with_cancel(token.clone());
    if let Some(ms) = deadline_ms {
        budget = budget.with_wall_ms(ms);
    }
    if let Some(f) = shared.cfg.fault {
        budget = budget.with_fault(f);
    }
    let cfg = AnalysisConfig {
        budget,
        threads,
        ..Default::default()
    };
    // Warm rbf memo only on unmetered requests: a memo hit skips the
    // exploration's budget ticks, so a metered run (wall deadline, fault,
    // drain cancel) must start cold to keep degraded outputs replaying
    // tick-for-tick against the CLI.
    let warm = cacheable && deadline_ms.is_none() && !hard_cancel;
    let memo = Arc::new(if warm {
        shared
            .memo_store
            .warm(&crate::delta::task_hashes(&sys.tasks))
    } else {
        RbfMemo::new(0)
    });
    // The deadline is purely cooperative: the wall budget trips inside
    // the meter and the analysis winds down through the sound degradation
    // path, which does bounded (but nonzero) post-trip work to produce
    // the RTC fallback. A hard watchdog here would race that wind-down
    // and turn sound degradation into failure — so none is armed; truly
    // stuck workers are bounded by the socket timeouts and the
    // drain-time cancel/abandon path instead.
    let tasks = sys.tasks;
    let contained = {
        let memo = Arc::clone(&memo);
        contain(
            "srtw-serve-analyze",
            None,
            shared.cfg.grace,
            &token,
            move || {
                if warm {
                    fifo_report_with_memo(&tasks, &beta, &cfg, &memo).map(|r| (r, tasks))
                } else {
                    fifo_report(&tasks, &beta, &cfg).map(|r| (r, tasks))
                }
            },
        )
    };
    shared.unregister(&token);

    match contained {
        Contained::Completed(Ok((report, tasks))) => {
            if report.degraded() {
                shared.stats.degraded.fetch_add(1, Ordering::Relaxed);
            } else {
                shared.stats.completed.fetch_add(1, Ordering::Relaxed);
            }
            if warm {
                shared
                    .memo_store
                    .promote(&crate::delta::task_hashes(&tasks), &memo);
            }
            let body = format!("{}\n", report.to_json());
            if cacheable && !report.degraded() {
                shared.cache_insert(key, form, presentation, &body, report);
            }
            Response::json(200, body)
        }
        Contained::Completed(Err(e)) => fail(
            shared,
            Response::json(500, error_body(3, "internal", &e.to_string(), vec![])),
        ),
        Contained::Panicked { message } => fail(
            shared,
            Response::json(
                500,
                error_body(3, "panic", &format!("analysis panicked: {message}"), vec![]),
            ),
        ),
        Contained::HardTimeout => fail(
            shared,
            Response::json(
                500,
                error_body(
                    3,
                    "internal",
                    "hard timeout: request abandoned by the watchdog",
                    vec![],
                ),
            ),
        ),
        Contained::SpawnFailed => fail(
            shared,
            Response::json(
                500,
                error_body(3, "internal", "could not spawn the analysis thread", vec![]),
            ),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::client_roundtrip;

    const SMALL: &str = "task t\nvertex a wcet=2 deadline=9\nedge a a sep=8\nserver fluid rate=1\n";

    fn spawn_small(cfg: ServeConfig) -> Server {
        Server::spawn(cfg).expect("bind ephemeral port")
    }

    #[test]
    fn health_analyze_stats_and_clean_drain() {
        let server = spawn_small(ServeConfig::default());
        let addr = server.addr();
        let (status, _, body) = client_roundtrip(&addr, "GET", "/healthz", &[], b"").unwrap();
        assert_eq!((status, body.as_str()), (200, "{\"status\":\"ok\"}\n"));

        let (status, _, body) =
            client_roundtrip(&addr, "POST", "/analyze", &[], SMALL.as_bytes()).unwrap();
        assert_eq!(status, 200, "{body}");
        assert!(body.starts_with("{\"scheduler\":\"fifo\",\"degraded\":false,"));

        let (status, _, body) = client_roundtrip(&addr, "GET", "/stats", &[], b"").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"accepted\":"), "{body}");
        assert!(body.contains("\"open_conns\":"), "{body}");
        assert!(body.contains("\"p50_ms\":"), "{body}");

        let report = server.shutdown();
        assert!(report.clean(), "{report:?}");
    }

    #[test]
    fn unknown_endpoint_and_bad_method() {
        let server = spawn_small(ServeConfig::default());
        let addr = server.addr();
        let (status, _, body) = client_roundtrip(&addr, "GET", "/nope", &[], b"").unwrap();
        assert_eq!(status, 404);
        assert!(body.contains("\"kind\":\"input\""));
        let (status, _, _) = client_roundtrip(&addr, "GET", "/shutdown", &[], b"").unwrap();
        assert_eq!(status, 405);
        assert!(server.shutdown().clean());
    }

    #[test]
    fn shutdown_endpoint_flips_readyz_and_requests_drain() {
        let server = spawn_small(ServeConfig::default());
        let addr = server.addr();
        assert!(!server.shutdown_requested());
        let (status, _, _) = client_roundtrip(&addr, "GET", "/readyz", &[], b"").unwrap();
        assert_eq!(status, 200);
        let (status, _, body) = client_roundtrip(&addr, "POST", "/shutdown", &[], b"").unwrap();
        assert_eq!((status, body.as_str()), (200, "{\"status\":\"draining\"}\n"));
        assert!(server.shutdown_requested());
        let (status, _, _) = client_roundtrip(&addr, "GET", "/readyz", &[], b"").unwrap();
        assert_eq!(status, 503);
        assert!(server.shutdown().clean());
    }

    #[test]
    fn keep_alive_connection_serves_sequential_requests() {
        use std::io::{BufRead as _, BufReader, Write as _};
        let server = spawn_small(ServeConfig::default());
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        for round in 0..3 {
            stream
                .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap();
            // Read one framed response off the shared connection.
            let mut status = String::new();
            reader.read_line(&mut status).unwrap();
            assert!(status.starts_with("HTTP/1.1 200 "), "round {round}: {status}");
            let mut content_length = 0usize;
            loop {
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                let line = line.trim_end();
                if line.is_empty() {
                    break;
                }
                if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                    content_length = v.trim().parse().unwrap();
                }
            }
            let mut body = vec![0u8; content_length];
            reader.read_exact(&mut body).unwrap();
            assert_eq!(body, b"{\"status\":\"ok\"}\n");
        }
        drop(reader);
        drop(stream);
        let (status, _, body) =
            client_roundtrip(&server.addr(), "GET", "/stats", &[], b"").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"reused\":2"), "{body}");
        assert!(server.shutdown().clean());
    }

    /// A temp dir holding `n` copies of the small system plus a manifest
    /// of absolute paths; returns `(dir, manifest_body)`.
    fn batch_fixture(tag: &str, n: usize) -> (std::path::PathBuf, String) {
        let dir = std::env::temp_dir().join(format!(
            "srtw-serve-batch-{tag}-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let mut manifest = String::from("# served batch\n");
        for i in 0..n {
            let path = dir.join(format!("sys-{i}.srtw"));
            std::fs::write(&path, SMALL).unwrap();
            manifest.push_str(&format!("{}\n", path.display()));
        }
        (dir, manifest)
    }

    #[test]
    fn batch_streams_one_line_per_job_plus_summary() {
        let (dir, manifest) = batch_fixture("stream", 3);
        let server = spawn_small(ServeConfig::default());
        let addr = server.addr();
        let (status, headers, body) =
            client_roundtrip(&addr, "POST", "/batch", &[], manifest.as_bytes()).unwrap();
        assert_eq!(status, 200, "{body}");
        assert!(
            headers.iter().any(|(k, v)| k == "transfer-encoding" && v == "chunked"),
            "{headers:?}"
        );
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 4, "3 job lines + summary: {body}");
        for (i, line) in lines[..3].iter().enumerate() {
            assert!(line.contains(&format!("\"name\":\"sys-{i}\"")), "{line}");
            assert!(line.contains("\"status\":\"exact\""), "{line}");
        }
        assert!(
            lines[3].starts_with("{\"summary\":{\"total\":3,\"exact\":3,"),
            "{}",
            lines[3]
        );
        let (_, _, stats) = client_roundtrip(&addr, "GET", "/stats", &[], b"").unwrap();
        assert!(stats.contains("\"batches\":1"), "{stats}");
        assert!(stats.contains("\"batch_jobs\":3"), "{stats}");
        assert!(stats.contains("\"batch_replayed\":0"), "{stats}");
        assert!(server.shutdown().clean());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn batch_journal_replays_completed_jobs_byte_identically() {
        let (dir, manifest) = batch_fixture("journal", 2);
        let prefix = dir.join("batch.journal");
        let server = spawn_small(ServeConfig {
            journal: Some(prefix.display().to_string()),
            ..ServeConfig::default()
        });
        let addr = server.addr();
        let (status, _, first) =
            client_roundtrip(&addr, "POST", "/batch", &[], manifest.as_bytes()).unwrap();
        assert_eq!(status, 200, "{first}");
        // The same manifest again: every job replays from the journal —
        // the job lines (wall times included) come back byte-identical,
        // which is the provenance a client uses to tell a replay from a
        // recompute.
        let (status, _, second) =
            client_roundtrip(&addr, "POST", "/batch", &[], manifest.as_bytes()).unwrap();
        assert_eq!(status, 200, "{second}");
        let job_lines = |body: &str| -> Vec<String> {
            body.lines()
                .filter(|l| !l.starts_with("{\"summary\""))
                .map(str::to_string)
                .collect()
        };
        assert_eq!(job_lines(&first), job_lines(&second));
        assert!(
            second.lines().last().unwrap().contains("\"replayed\":2"),
            "{second}"
        );
        let (_, _, stats) = client_roundtrip(&addr, "GET", "/stats", &[], b"").unwrap();
        assert!(stats.contains("\"batch_jobs\":2"), "{stats}");
        assert!(stats.contains("\"batch_replayed\":2"), "{stats}");
        assert!(server.shutdown().clean());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn batch_rejects_bad_manifests_and_bad_methods() {
        let server = spawn_small(ServeConfig::default());
        let addr = server.addr();
        let (status, _, body) = client_roundtrip(&addr, "POST", "/batch", &[], b"# only\n").unwrap();
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("manifest lists no systems"), "{body}");
        let (status, _, _) = client_roundtrip(&addr, "GET", "/batch", &[], b"").unwrap();
        assert_eq!(status, 405);
        // An unreadable path degrades that one job, not the exchange.
        let (status, _, body) =
            client_roundtrip(&addr, "POST", "/batch", &[], b"/nonexistent/x.srtw\n").unwrap();
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"status\":\"failed\""), "{body}");
        assert!(body.contains("\"failed\":1"), "{body}");
        assert!(server.shutdown().clean());
    }

    #[test]
    fn process_fault_closefd_drops_exactly_the_nth_request() {
        let server = spawn_small(ServeConfig {
            process_fault: Some(ProcessFault::new(2, ProcessFaultKind::CloseFd)),
            ..ServeConfig::default()
        });
        let addr = server.addr();
        let (status, _, _) = client_roundtrip(&addr, "GET", "/healthz", &[], b"").unwrap();
        assert_eq!(status, 200);
        // Request 2: connection dies with no response bytes at all.
        let err = client_roundtrip(&addr, "GET", "/healthz", &[], b"");
        assert!(err.is_err(), "closefd must yield an unreadable response");
        // Request 3: service is healthy again.
        let (status, _, _) = client_roundtrip(&addr, "GET", "/healthz", &[], b"").unwrap();
        assert_eq!(status, 200);
        assert!(server.shutdown().clean());
    }
}
