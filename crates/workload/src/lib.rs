//! # srtw-workload — structural real-time workload models
//!
//! The *structural* workload model of this workspace is the **digraph
//! real-time task** ([`DrtTask`]): job types as graph vertices (with WCETs
//! and optional deadlines), minimum inter-release separations as edge
//! labels, and legal behaviours as timed walks. Classical periodic,
//! sporadic and generalized-multiframe tasks embed as special graphs
//! ([`PeriodicTask`], [`SporadicTask`], [`MultiframeTask`]).
//!
//! On top of the model the crate provides the analyses every delay bound
//! builds upon:
//!
//! * [`explore`] — abstract-path enumeration with Pareto dominance pruning
//!   (the demand-tuple technique),
//! * [`Rbf`] / [`Dbf`] — request- and demand-bound functions as exact
//!   staircases,
//! * [`long_run_utilization`] / [`critical_cycle`] — exact maximum cycle
//!   ratio,
//! * [`ReleaseTrace`] — concrete behaviours with legality checking.
//!
//! # Example
//!
//! ```
//! use srtw_workload::{DrtTaskBuilder, Rbf, long_run_utilization};
//! use srtw_minplus::{q, Q};
//!
//! // A video-decoder-like task: I-frames are heavy, P-frames light.
//! let mut b = DrtTaskBuilder::new("decoder");
//! let i = b.vertex("I", Q::int(6));
//! let p = b.vertex("P", Q::int(2));
//! b.edge(i, p, Q::int(10));
//! b.edge(p, p, Q::int(10));
//! b.edge(p, i, Q::int(12));
//! let task = b.build().unwrap();
//!
//! // Cycles: P→P has ratio 2/10; I→P→I has ratio (6+2)/(10+12) = 4/11.
//! assert_eq!(long_run_utilization(&task), q(4, 11));
//!
//! // Worst demand in any window of length 10: an I followed by a P.
//! let rbf = Rbf::compute(&task, Q::int(30));
//! assert_eq!(rbf.eval(Q::int(10)), Q::int(8));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod canon;
mod dbf;
mod digraph;
mod error;
mod models;
mod paths;
mod rbf;
mod trace;
mod utilization;

pub use canon::{canonical_task_form, combine_forms, CanonicalForm, StructHasher};
pub use dbf::{Dbf, MissingDeadline};
pub use digraph::{DrtTask, DrtTaskBuilder, Edge, Vertex, VertexId};
pub use error::WorkloadError;
pub use models::{
    Frame, MultiframeTask, PeriodicTask, RbNode, RecurringBranchingTask, SporadicTask,
};
pub use paths::{
    explore, explore_metered, explore_metered_threads, ExploreConfig, Exploration, PathNode,
};
pub use rbf::{rbf_samples, Rbf, RbfMemo};
pub use trace::{Release, ReleaseTrace};
pub use utilization::{critical_cycle, long_run_utilization, CriticalCycle};
