//! Crash-safe on-disk result store for the serve result cache.
//!
//! `srtw-persist` spills every cached `/analyze` result to disk so a
//! restarted process (or a respawned replica) starts warm instead of
//! cold. The store is an append-only *spill file per cache shard*,
//! reusing the journal's framing discipline from
//! [`srtw_supervisor::journal`]: each record is `u32 LE len | u32 LE
//! CRC-32 | payload`, written with a single `write` call in append mode
//! and `sync_data`'d before the append is reported durable. Reopening a
//! file truncates any torn tail first; recovery skips CRC-mismatched
//! records with a warning and never panics.
//!
//! ## On-disk format
//!
//! ```text
//! file:   DIR/r{replica}.s{shard}.spill
//! header: b"SRTWSPIL" | u32 LE version
//! record: u32 LE payload length | u32 LE CRC-32 of payload | payload
//! ```
//!
//! The payload carries (generation, canonical hash, deadline class,
//! threads, presentation digest, canonical code lanes, rendered body
//! verbatim). The body is replayed byte-identically on a warm hit, and
//! the canonical-form lanes let the loader re-verify the content hash —
//! a corrupt or stale entry can only *miss*, never lie.
//!
//! ## Sharing discipline
//!
//! Replicas share one spill directory: each replica writes only its own
//! shard files (`r{replica}.s*`), but loads *every* replica's files at
//! startup. Writes stay shared-nothing (no cross-process file is ever
//! appended by two writers), while a respawned replica inherits the
//! whole fleet's warm set.
//!
//! ## Failure policy
//!
//! Persistence must never change an HTTP status or a result byte. Any
//! open/read/write failure (ENOSPC, EACCES, malformed header, injected
//! fault) produces a typed [`PersistError`], disables the store, and the
//! service continues with a cold in-memory cache. All recovery warnings
//! carry the file path and byte offset and are printed with a uniform
//! `srtw-persist:` prefix so replica logs are machine-greppable.

use srtw_supervisor::journal::{crc32, frame, FrameScanner, ScannedFrame};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Magic bytes opening every spill file.
pub const SPILL_MAGIC: &[u8; 8] = b"SRTWSPIL";
/// Current on-disk format version.
pub const SPILL_VERSION: u32 = 1;
/// Header size: magic + version.
pub const SPILL_HEADER_BYTES: usize = 8 + 4;
/// Upper bound on a single spill payload (mirrors the journal's cap).
const MAX_SPILL_BYTES: usize = 1 << 26;

/// How a persistence failure is classified for the typed warning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersistErrorKind {
    /// `ENOSPC`: the disk is full.
    NoSpace,
    /// `EACCES`/`EPERM`: the store is not writable.
    Denied,
    /// Any other I/O failure.
    Io,
}

impl PersistErrorKind {
    fn as_str(self) -> &'static str {
        match self {
            PersistErrorKind::NoSpace => "enospc",
            PersistErrorKind::Denied => "eacces",
            PersistErrorKind::Io => "io",
        }
    }
}

/// A typed persistence failure: what broke, where, and why. Serve and
/// batch print it (with the uniform `srtw-persist:` prefix) and continue
/// cold — persistence failure never changes an HTTP status or a result
/// byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistError {
    /// Failure class (drives the typed prefix in the warning).
    pub kind: PersistErrorKind,
    /// The file or directory involved.
    pub path: PathBuf,
    /// The underlying OS error text.
    pub detail: String,
}

impl PersistError {
    /// Classifies an `io::Error` against the path it hit.
    pub fn classify(path: &Path, err: &io::Error) -> PersistError {
        let kind = match err.raw_os_error() {
            Some(28) => PersistErrorKind::NoSpace, // ENOSPC
            Some(13) | Some(1) => PersistErrorKind::Denied, // EACCES / EPERM
            _ if err.kind() == io::ErrorKind::PermissionDenied => PersistErrorKind::Denied,
            _ => PersistErrorKind::Io,
        };
        PersistError {
            kind,
            path: path.to_path_buf(),
            detail: err.to_string(),
        }
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}: {}",
            self.path.display(),
            self.kind.as_str(),
            self.detail
        )
    }
}

/// One recovery warning from loading a spill directory, pinned to the
/// file and byte offset where the damage was found. Displays with the
/// uniform machine-greppable prefix:
/// `srtw-persist: PATH: byte OFFSET: MESSAGE`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpillWarning {
    /// The spill file involved.
    pub path: PathBuf,
    /// Byte offset in the file where the problem starts.
    pub offset: usize,
    /// What was skipped or truncated.
    pub message: String,
}

impl fmt::Display for SpillWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "srtw-persist: {}: byte {}: {}",
            self.path.display(),
            self.offset,
            self.message
        )
    }
}

/// Which way an injected persistence fault breaks the append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersistFaultKind {
    /// Truncate the record mid-frame (a crash between `write` and the
    /// record's final byte): the spill tail is torn.
    Torn,
    /// Flip one payload byte before writing the full frame: framing is
    /// intact but the CRC no longer matches.
    Corrupt,
    /// Report `ENOSPC` without writing anything: the disk "fills up" at
    /// exactly this append.
    Enospc,
}

/// Deterministic spill-write fault: breaks the `at_record`-th append
/// (1-based, counted across all shards) and disables the store, exactly
/// as a real failure would. Parsed from `pers-torn@N` / `pers-corrupt@N`
/// / `pers-enospc@N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersistFault {
    /// Which append (1-based) to break.
    pub at_record: u64,
    /// How to break it.
    pub kind: PersistFaultKind,
}

impl PersistFault {
    /// Parses `pers-torn@N` / `pers-corrupt@N` / `pers-enospc@N`. Returns
    /// `None` when the spec is not persist-fault grammar at all (so other
    /// fault layers can claim it), `Some(Err)` when it is but the count
    /// is malformed.
    pub fn parse(spec: &str) -> Option<Result<PersistFault, String>> {
        let (kind_str, n) = spec.split_once('@')?;
        let kind = match kind_str {
            "pers-torn" => PersistFaultKind::Torn,
            "pers-corrupt" => PersistFaultKind::Corrupt,
            "pers-enospc" => PersistFaultKind::Enospc,
            _ => return None,
        };
        Some(match n.parse::<u64>() {
            Ok(at) if at >= 1 => Ok(PersistFault { at_record: at, kind }),
            _ => Err(format!(
                "bad persist fault '{spec}': expected {kind_str}@N with N >= 1"
            )),
        })
    }
}

impl fmt::Display for PersistFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            PersistFaultKind::Torn => "pers-torn",
            PersistFaultKind::Corrupt => "pers-corrupt",
            PersistFaultKind::Enospc => "pers-enospc",
        };
        write!(f, "{kind}@{}", self.at_record)
    }
}

/// One spilled cache entry: the full cache key, the canonical-form code
/// lanes (so the loader can re-verify the content hash), and the rendered
/// body verbatim (so a warm hit replays byte-identical bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpillRecord {
    /// Monotone per-store insertion counter; the loader replays records
    /// in ascending generation order so LRU recency survives a restart.
    pub generation: u64,
    /// 128-bit canonical content hash (the cache key's primary part).
    pub canon: u128,
    /// Deadline class of the request, if any.
    pub deadline_ms: Option<u64>,
    /// Thread count the analysis ran with.
    pub threads: u32,
    /// Presentation digest (names/order) — second verification key.
    pub presentation: u64,
    /// The canonical form's code lanes, verbatim.
    pub form: Vec<u64>,
    /// The rendered response body, verbatim.
    pub body: String,
}

impl SpillRecord {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.form.len() * 8 + self.body.len());
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&self.canon.to_le_bytes());
        match self.deadline_ms {
            Some(d) => {
                out.push(1);
                out.extend_from_slice(&d.to_le_bytes());
            }
            None => out.push(0),
        }
        out.extend_from_slice(&self.threads.to_le_bytes());
        out.extend_from_slice(&self.presentation.to_le_bytes());
        out.extend_from_slice(&(self.form.len() as u32).to_le_bytes());
        for lane in &self.form {
            out.extend_from_slice(&lane.to_le_bytes());
        }
        out.extend_from_slice(&(self.body.len() as u32).to_le_bytes());
        out.extend_from_slice(self.body.as_bytes());
        out
    }

    fn decode(payload: &[u8]) -> Option<SpillRecord> {
        let mut cur = Cursor {
            buf: payload,
            pos: 0,
        };
        let generation = cur.take_u64()?;
        let canon = cur.take_u128()?;
        let deadline_ms = match cur.take_u8()? {
            0 => None,
            1 => Some(cur.take_u64()?),
            _ => return None,
        };
        let threads = cur.take_u32()?;
        let presentation = cur.take_u64()?;
        let lanes = cur.take_u32()? as usize;
        if lanes > MAX_SPILL_BYTES / 8 {
            return None;
        }
        let mut form = Vec::with_capacity(lanes);
        for _ in 0..lanes {
            form.push(cur.take_u64()?);
        }
        let blen = cur.take_u32()? as usize;
        if blen > MAX_SPILL_BYTES {
            return None;
        }
        let body = String::from_utf8(cur.take(blen)?.to_vec()).ok()?;
        if cur.pos != payload.len() {
            return None;
        }
        Some(SpillRecord {
            generation,
            canon,
            deadline_ms,
            threads,
            presentation,
            form,
            body,
        })
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn take_u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn take_u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn take_u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn take_u128(&mut self) -> Option<u128> {
        Some(u128::from_le_bytes(self.take(16)?.try_into().ok()?))
    }
}

/// What [`load_dir`] salvaged from a spill directory.
#[derive(Debug, Clone, Default)]
pub struct SpillLoad {
    /// Every intact record across all spill files, de-duplicated by full
    /// cache key (latest generation wins), sorted ascending by generation
    /// so replaying them in order reconstructs LRU recency.
    pub records: Vec<SpillRecord>,
    /// Recovery warnings — anything skipped, truncated, or unreadable.
    pub warnings: Vec<SpillWarning>,
}

/// Reads every `*.spill` file in `dir`, salvaging every intact record.
/// Tolerates missing directories, unreadable files, malformed headers,
/// torn tails, and bit corruption; never panics and never errors — a
/// broken spill set loads as a smaller (possibly empty) warm set plus
/// warnings.
pub fn load_dir(dir: &Path) -> SpillLoad {
    let mut load = SpillLoad::default();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(err) if err.kind() == io::ErrorKind::NotFound => return load,
        Err(err) => {
            load.warnings.push(SpillWarning {
                path: dir.to_path_buf(),
                offset: 0,
                message: format!("cannot list spill directory: {err}"),
            });
            return load;
        }
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "spill"))
        .collect();
    paths.sort();
    let mut best: std::collections::HashMap<(u128, Option<u64>, u32, u64), SpillRecord> =
        Default::default();
    for path in paths {
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(err) => {
                load.warnings.push(SpillWarning {
                    path: path.clone(),
                    offset: 0,
                    message: format!("cannot read spill file: {err}"),
                });
                continue;
            }
        };
        scan_spill(&path, &bytes, &mut best, &mut load.warnings);
    }
    load.records = best.into_values().collect();
    load.records.sort_by_key(|r| r.generation);
    load
}

fn scan_spill(
    path: &Path,
    bytes: &[u8],
    best: &mut std::collections::HashMap<(u128, Option<u64>, u32, u64), SpillRecord>,
    warnings: &mut Vec<SpillWarning>,
) {
    if bytes.len() < SPILL_HEADER_BYTES
        || &bytes[..8] != SPILL_MAGIC
        || u32::from_le_bytes(bytes[8..12].try_into().unwrap()) != SPILL_VERSION
    {
        warnings.push(SpillWarning {
            path: path.to_path_buf(),
            offset: 0,
            message: "spill header missing or malformed; file ignored".into(),
        });
        return;
    }
    let mut index = 0u64;
    for item in FrameScanner::new(bytes, SPILL_HEADER_BYTES) {
        index += 1;
        match item {
            ScannedFrame::Trailing {
                offset,
                bytes: rest,
            } => warnings.push(SpillWarning {
                path: path.to_path_buf(),
                offset,
                message: format!(
                    "torn tail: {rest} trailing byte(s) after record {} — dropped",
                    index - 1
                ),
            }),
            ScannedFrame::Torn {
                offset,
                declared,
                available,
            } => warnings.push(SpillWarning {
                path: path.to_path_buf(),
                offset,
                message: format!(
                    "torn or corrupt frame at record {index} (declared {declared} bytes, \
                     {available} available) — spill truncated here"
                ),
            }),
            ScannedFrame::BadCrc { offset } => warnings.push(SpillWarning {
                path: path.to_path_buf(),
                offset,
                message: format!("CRC mismatch on record {index} — record skipped"),
            }),
            ScannedFrame::Payload { offset, payload } => match SpillRecord::decode(payload) {
                Some(rec) => {
                    let key = (rec.canon, rec.deadline_ms, rec.threads, rec.presentation);
                    match best.get(&key) {
                        Some(have) if have.generation >= rec.generation => {}
                        _ => {
                            best.insert(key, rec);
                        }
                    }
                }
                None => warnings.push(SpillWarning {
                    path: path.to_path_buf(),
                    offset,
                    message: format!(
                        "record {index} has a valid CRC but does not decode — record skipped"
                    ),
                }),
            },
        }
    }
}

/// The crash-safe spill store: one append-only file per cache shard,
/// owned exclusively by this replica. Appends are framed, CRC'd, written
/// in one call, and `sync_data`'d. The first append error (real or
/// injected) disables the store permanently — the in-memory cache keeps
/// serving, cold for new entries.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    replica: usize,
    shards: Vec<Mutex<Option<File>>>,
    generation: AtomicU64,
    appends: AtomicU64,
    fault: Option<PersistFault>,
    disabled: AtomicBool,
}

impl Store {
    /// The spill file this replica writes for the given shard.
    pub fn shard_path(dir: &Path, replica: usize, shard: usize) -> PathBuf {
        dir.join(format!("r{replica}.s{shard}.spill"))
    }

    /// Opens the store for `replica` over `dir` with `shard_count` shard
    /// files, creating the directory if needed. `next_generation` seeds
    /// the insertion clock (pass max loaded generation + 1 so recency
    /// keeps advancing across restarts). Fails typed when the directory
    /// cannot be created — the caller warns and runs cold.
    pub fn open(
        dir: &Path,
        replica: usize,
        shard_count: usize,
        next_generation: u64,
        fault: Option<PersistFault>,
    ) -> Result<Store, PersistError> {
        fs::create_dir_all(dir).map_err(|e| PersistError::classify(dir, &e))?;
        Ok(Store {
            dir: dir.to_path_buf(),
            replica,
            shards: (0..shard_count).map(|_| Mutex::new(None)).collect(),
            generation: AtomicU64::new(next_generation),
            appends: AtomicU64::new(0),
            fault,
            disabled: AtomicBool::new(false),
        })
    }

    /// True once an append or open has failed: the store no longer writes
    /// and the cache continues cold for new entries.
    pub fn disabled(&self) -> bool {
        self.disabled.load(Ordering::Relaxed)
    }

    /// Appends one entry to the given shard's spill file durably, stamping
    /// the next generation. On any failure (real I/O error or injected
    /// fault) the store disables itself and returns the typed error once;
    /// later appends are silent no-ops. The caller must never let this
    /// error change a response.
    #[allow(clippy::too_many_arguments)]
    pub fn append(
        &self,
        shard: usize,
        canon: u128,
        deadline_ms: Option<u64>,
        threads: u32,
        presentation: u64,
        form: &[u64],
        body: &str,
    ) -> Result<(), PersistError> {
        if self.disabled() {
            return Ok(());
        }
        let rec = SpillRecord {
            generation: self.generation.fetch_add(1, Ordering::Relaxed),
            canon,
            deadline_ms,
            threads,
            presentation,
            form: form.to_vec(),
            body: body.to_string(),
        };
        let path = Store::shard_path(&self.dir, self.replica, shard % self.shards.len());
        let result = self.append_record(shard % self.shards.len(), &path, &rec);
        if result.is_err() {
            self.disabled.store(true, Ordering::Relaxed);
        }
        result
    }

    fn append_record(&self, shard: usize, path: &Path, rec: &SpillRecord) -> Result<(), PersistError> {
        let mut guard = self.shards[shard].lock().unwrap();
        if guard.is_none() {
            *guard = Some(open_shard(path).map_err(|e| PersistError::classify(path, &e))?);
        }
        let file = guard.as_mut().unwrap();
        let payload = rec.encode();
        let mut framed = frame(&payload);
        let n = self.appends.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(fault) = self.fault {
            if fault.at_record == n {
                match fault.kind {
                    PersistFaultKind::Torn => {
                        // Stop mid-frame: keep the length word and roughly
                        // half the payload, like a crash between write()
                        // and the final byte reaching the disk.
                        let cut = (8 + payload.len() / 2).min(framed.len() - 1);
                        framed.truncate(cut);
                    }
                    PersistFaultKind::Corrupt => {
                        framed[8 + payload.len() / 2] ^= 0x20;
                    }
                    PersistFaultKind::Enospc => {
                        return Err(PersistError {
                            kind: PersistErrorKind::NoSpace,
                            path: path.to_path_buf(),
                            detail: format!("injected persist fault {fault} fired on append {n}"),
                        });
                    }
                }
                let write = file
                    .write_all(&framed)
                    .and_then(|()| file.sync_data())
                    .map_err(|e| PersistError::classify(path, &e));
                return write.and(Err(PersistError {
                    kind: PersistErrorKind::Io,
                    path: path.to_path_buf(),
                    detail: format!("injected persist fault {fault} fired on append {n}"),
                }));
            }
        }
        file.write_all(&framed)
            .and_then(|()| file.sync_data())
            .map_err(|e| PersistError::classify(path, &e))
    }
}

/// Opens (or creates) one shard spill file for appending. An existing
/// file gets its torn tail truncated first — recovery stops scanning at a
/// torn frame, so appending after one would write records no future load
/// can see. A file with a malformed header is recreated from scratch:
/// spill data is a cache, so losing it is always safe.
fn open_shard(path: &Path) -> io::Result<File> {
    match fs::read(path) {
        Err(err) if err.kind() == io::ErrorKind::NotFound => {
            let mut file = OpenOptions::new().append(true).create(true).open(path)?;
            let mut header = Vec::with_capacity(SPILL_HEADER_BYTES);
            header.extend_from_slice(SPILL_MAGIC);
            header.extend_from_slice(&SPILL_VERSION.to_le_bytes());
            file.write_all(&header)?;
            file.sync_data()?;
            Ok(file)
        }
        Err(err) => Err(err),
        Ok(bytes) => {
            let keep = if bytes.len() < SPILL_HEADER_BYTES
                || &bytes[..8] != SPILL_MAGIC
                || u32::from_le_bytes(bytes[8..12].try_into().unwrap()) != SPILL_VERSION
            {
                0
            } else {
                FrameScanner::valid_end(&bytes, SPILL_HEADER_BYTES)
            };
            if keep < bytes.len() || keep == 0 {
                let trunc = OpenOptions::new().write(true).open(path)?;
                trunc.set_len(keep as u64)?;
                trunc.sync_data()?;
            }
            let mut file = OpenOptions::new().append(true).open(path)?;
            if keep == 0 {
                let mut header = Vec::with_capacity(SPILL_HEADER_BYTES);
                header.extend_from_slice(SPILL_MAGIC);
                header.extend_from_slice(&SPILL_VERSION.to_le_bytes());
                file.write_all(&header)?;
                file.sync_data()?;
            }
            Ok(file)
        }
    }
}

/// Exposes [`crc32`] so fuzz harnesses can re-frame mutated payloads
/// without reaching into `srtw-supervisor` directly.
pub fn payload_crc(bytes: &[u8]) -> u32 {
    crc32(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("srtw-persist-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        fs::create_dir_all(&p).unwrap();
        p
    }

    fn rec(gen: u64, canon: u128, body: &str) -> SpillRecord {
        SpillRecord {
            generation: gen,
            canon,
            deadline_ms: Some(10),
            threads: 1,
            presentation: canon as u64 ^ 0xdead,
            form: vec![1, 2, 3, canon as u64],
            body: body.to_string(),
        }
    }

    fn append_all(store: &Store, recs: &[SpillRecord]) {
        for r in recs {
            store
                .append(
                    (r.canon as usize) & 7,
                    r.canon,
                    r.deadline_ms,
                    r.threads,
                    r.presentation,
                    &r.form,
                    &r.body,
                )
                .unwrap();
        }
    }

    #[test]
    fn round_trips_across_shards() {
        let dir = tmpdir("roundtrip");
        let store = Store::open(&dir, 0, 8, 1, None).unwrap();
        let recs: Vec<SpillRecord> = (0..20).map(|i| rec(0, i as u128, &format!("body {i}\n"))).collect();
        append_all(&store, &recs);
        let load = load_dir(&dir);
        fs::remove_dir_all(&dir).unwrap();
        assert!(load.warnings.is_empty(), "{:?}", load.warnings);
        assert_eq!(load.records.len(), recs.len());
        // Ascending generation = insertion order.
        for (i, r) in load.records.iter().enumerate() {
            assert_eq!(r.canon, i as u128);
            assert_eq!(r.body, format!("body {i}\n"));
            assert_eq!(r.form, vec![1, 2, 3, i as u64]);
        }
    }

    #[test]
    fn latest_generation_wins_on_duplicate_keys() {
        let dir = tmpdir("dedup");
        let store = Store::open(&dir, 0, 8, 1, None).unwrap();
        append_all(&store, &[rec(0, 5, "old\n"), rec(0, 5, "new\n")]);
        let load = load_dir(&dir);
        fs::remove_dir_all(&dir).unwrap();
        assert_eq!(load.records.len(), 1);
        assert_eq!(load.records[0].body, "new\n");
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated_on_reopen() {
        let dir = tmpdir("torn");
        let store = Store::open(&dir, 0, 1, 1, None).unwrap();
        append_all(&store, &[rec(0, 1, "one\n"), rec(0, 2, "two\n")]);
        drop(store);
        let path = Store::shard_path(&dir, 0, 0);
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 3]).unwrap();
        let load = load_dir(&dir);
        assert_eq!(load.records.len(), 1);
        assert_eq!(load.records[0].body, "one\n");
        assert_eq!(load.warnings.len(), 1);
        assert!(load.warnings[0].to_string().starts_with("srtw-persist: "));
        // Reopen-for-append truncates the torn tail, then the new record
        // lands where every future load can see it.
        let store = Store::open(&dir, 0, 1, 10, None).unwrap();
        append_all(&store, &[rec(0, 3, "three\n")]);
        let load = load_dir(&dir);
        fs::remove_dir_all(&dir).unwrap();
        assert!(load.warnings.is_empty(), "{:?}", load.warnings);
        let bodies: Vec<&str> = load.records.iter().map(|r| r.body.as_str()).collect();
        assert_eq!(bodies, ["one\n", "three\n"]);
    }

    #[test]
    fn crc_mismatch_skips_one_record() {
        let dir = tmpdir("crc");
        let store = Store::open(&dir, 0, 1, 1, None).unwrap();
        append_all(&store, &[rec(0, 1, "one\n"), rec(0, 2, "two\n")]);
        drop(store);
        let path = Store::shard_path(&dir, 0, 0);
        let mut bytes = fs::read(&path).unwrap();
        bytes[SPILL_HEADER_BYTES + 8 + 4] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let load = load_dir(&dir);
        fs::remove_dir_all(&dir).unwrap();
        assert_eq!(load.records.len(), 1);
        assert_eq!(load.records[0].body, "two\n");
        assert!(load.warnings.iter().any(|w| w.message.contains("CRC")));
        assert!(load.warnings[0].offset >= SPILL_HEADER_BYTES);
    }

    #[test]
    fn malformed_header_is_ignored_then_recreated() {
        let dir = tmpdir("header");
        let path = Store::shard_path(&dir, 0, 0);
        fs::write(&path, b"garbage, not a spill file").unwrap();
        let load = load_dir(&dir);
        assert!(load.records.is_empty());
        assert!(load.warnings.iter().any(|w| w.message.contains("header")));
        // The writer recreates the file; the cache entry lands cleanly.
        let store = Store::open(&dir, 0, 1, 1, None).unwrap();
        append_all(&store, &[rec(0, 9, "nine\n")]);
        let load = load_dir(&dir);
        fs::remove_dir_all(&dir).unwrap();
        assert!(load.warnings.is_empty(), "{:?}", load.warnings);
        assert_eq!(load.records.len(), 1);
    }

    #[test]
    fn replicas_share_reads_but_not_writes() {
        let dir = tmpdir("replicas");
        let a = Store::open(&dir, 0, 8, 1, None).unwrap();
        let b = Store::open(&dir, 1, 8, 1, None).unwrap();
        append_all(&a, &[rec(0, 1, "from a\n")]);
        append_all(&b, &[rec(0, 2, "from b\n")]);
        let load = load_dir(&dir);
        fs::remove_dir_all(&dir).unwrap();
        assert_eq!(load.records.len(), 2);
    }

    #[test]
    fn fault_parse_grammar() {
        assert!(matches!(
            PersistFault::parse("pers-torn@3"),
            Some(Ok(PersistFault {
                at_record: 3,
                kind: PersistFaultKind::Torn
            }))
        ));
        assert!(matches!(
            PersistFault::parse("pers-enospc@1"),
            Some(Ok(PersistFault {
                at_record: 1,
                kind: PersistFaultKind::Enospc
            }))
        ));
        assert!(PersistFault::parse("pers-torn@0").unwrap().is_err());
        assert!(PersistFault::parse("pers-corrupt@x").unwrap().is_err());
        assert!(PersistFault::parse("torn@1").is_none());
        assert!(PersistFault::parse("abort").is_none());
    }

    #[test]
    fn torn_fault_disables_store_and_leaves_recoverable_file() {
        let dir = tmpdir("fault-torn");
        let store = Store::open(
            &dir,
            0,
            1,
            1,
            Some(PersistFault {
                at_record: 2,
                kind: PersistFaultKind::Torn,
            }),
        )
        .unwrap();
        store
            .append(0, 1, None, 1, 11, &[1], "one\n")
            .unwrap();
        let err = store
            .append(0, 2, None, 1, 22, &[2], "two\n")
            .unwrap_err();
        assert_eq!(err.kind, PersistErrorKind::Io);
        assert!(store.disabled());
        // Disabled: further appends are silent no-ops.
        store.append(0, 3, None, 1, 33, &[3], "three\n").unwrap();
        let load = load_dir(&dir);
        fs::remove_dir_all(&dir).unwrap();
        assert_eq!(load.records.len(), 1);
        assert_eq!(load.records[0].body, "one\n");
        assert!(!load.warnings.is_empty());
    }

    #[test]
    fn enospc_fault_yields_typed_error() {
        let dir = tmpdir("fault-enospc");
        let store = Store::open(
            &dir,
            0,
            1,
            1,
            Some(PersistFault {
                at_record: 1,
                kind: PersistFaultKind::Enospc,
            }),
        )
        .unwrap();
        let err = store.append(0, 1, None, 1, 11, &[1], "one\n").unwrap_err();
        assert_eq!(err.kind, PersistErrorKind::NoSpace);
        assert!(err.to_string().contains("enospc"));
        assert!(store.disabled());
        let load = load_dir(&dir);
        fs::remove_dir_all(&dir).unwrap();
        assert!(load.records.is_empty());
    }

    #[test]
    fn denied_directory_is_a_typed_open_error() {
        // A directory path that is actually a file: create_dir_all fails
        // with a plain Io error; the point is the typed, non-panicking
        // degradation path.
        let dir = tmpdir("denied");
        let file_as_dir = dir.join("not-a-dir");
        fs::write(&file_as_dir, b"x").unwrap();
        let err = Store::open(&file_as_dir, 0, 1, 1, None).unwrap_err();
        fs::remove_dir_all(&dir).unwrap();
        assert!(matches!(
            err.kind,
            PersistErrorKind::Io | PersistErrorKind::Denied
        ));
    }

    #[test]
    fn load_missing_directory_is_empty_and_quiet() {
        let mut p = std::env::temp_dir();
        p.push(format!("srtw-persist-missing-{}", std::process::id()));
        let load = load_dir(&p);
        assert!(load.records.is_empty());
        assert!(load.warnings.is_empty());
    }

    #[test]
    fn generation_clock_resumes_past_loaded_records() {
        let dir = tmpdir("genclock");
        let store = Store::open(&dir, 0, 1, 1, None).unwrap();
        append_all(&store, &[rec(0, 1, "one\n"), rec(0, 2, "two\n")]);
        drop(store);
        let load = load_dir(&dir);
        let next = load.records.iter().map(|r| r.generation).max().unwrap() + 1;
        let store = Store::open(&dir, 0, 1, next, None).unwrap();
        // Overwrite key 1: must win the dedup because its generation is
        // newer than the loaded one.
        store
            .append(0, 1, Some(10), 1, 1u64 ^ 0xdead, &[9], "newer\n")
            .unwrap();
        let load = load_dir(&dir);
        fs::remove_dir_all(&dir).unwrap();
        let one: Vec<&SpillRecord> = load.records.iter().filter(|r| r.canon == 1).collect();
        assert_eq!(one.len(), 1, "same full key dedups");
        assert_eq!(one[0].body, "newer\n", "newer generation must win");
    }
}
