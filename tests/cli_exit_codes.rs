//! Integration tests for the CLI exit-code contract and the
//! machine-readable degradation status:
//!
//! * `0` — success: exact bounds, or degraded bounds plus a stderr warning;
//! * `2` — input error (unreadable file, parse error, bad flags);
//! * `3` — internal (analysis failure or residual panic);
//! * `4` — batch: some jobs failed every rung of the retry/degrade ladder.
//!
//! With `--json`, exits 2 and 3 additionally emit a machine-readable
//! `{"error": …}` document on stdout.

use std::process::Command;

/// Runs the compiled `srtw` binary, returning `(code, stdout, stderr)`.
fn run_srtw(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_srtw"))
        .args(args)
        .output()
        .expect("spawn srtw");
    (
        out.status.code().expect("exit code (not signal-killed)"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn sample_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/systems/decoder.srtw")
}

fn temp_file(name: &str, content: &str) -> String {
    let dir = std::env::temp_dir().join("srtw-cli-exit-codes");
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    std::fs::write(&p, content).unwrap();
    p.to_str().unwrap().to_owned()
}

#[test]
fn exact_run_exits_zero_without_warning() {
    let (code, out, err) = run_srtw(&["analyze", sample_path(), "--json"]);
    assert_eq!(code, 0, "stderr: {err}");
    assert!(err.is_empty(), "no warning expected: {err}");
    assert!(out.contains("\"degraded\":false"), "{out}");
    assert!(out.contains("\"quality\":{\"exact\":true}"), "{out}");
}

#[test]
fn budget_tripped_run_exits_zero_with_warning_and_degraded_json() {
    // A tiny path cap trips on the decoder system; its coarse packing
    // rates (12/15 + 1/25) stay below the unit service rate, so the
    // analysis degrades gracefully instead of failing.
    let (code, out, err) = run_srtw(&[
        "analyze",
        sample_path(),
        "--json",
        "--max-paths",
        "3",
    ]);
    assert_eq!(code, 0, "stderr: {err}");
    assert!(
        err.contains("degraded"),
        "stderr must warn about degradation: {err}"
    );
    assert!(out.contains("\"degraded\":true"), "{out}");
    assert!(out.contains("\"exact\":false"), "{out}");
    assert!(out.contains("\"fallback\""), "{out}");
    assert!(out.contains("\"degradations\":["), "{out}");
}

#[test]
fn budget_tripped_text_output_marks_degradation() {
    let (code, out, err) = run_srtw(&["analyze", sample_path(), "--max-paths", "3"]);
    assert_eq!(code, 0, "stderr: {err}");
    assert!(out.contains("DEGRADED"), "{out}");
    assert!(err.contains("sound but degraded"), "{err}");
}

#[test]
fn malformed_file_exits_two() {
    let p = temp_file("bad.srtw", "task t\nvertex a wcet=oops\n");
    let (code, _, err) = run_srtw(&["analyze", &p]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("line 2"), "{err}");
}

#[test]
fn missing_file_exits_two() {
    let (code, _, err) = run_srtw(&["analyze", "/nonexistent/nope.srtw"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("cannot read"), "{err}");
}

#[test]
fn bad_flag_value_exits_two() {
    let (code, _, err) = run_srtw(&["analyze", sample_path(), "--max-paths", "many"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("bad --max-paths"), "{err}");
    let (code, _, err) = run_srtw(&["analyze", sample_path(), "--budget-ms", "-5"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("bad --budget-ms"), "{err}");
}

#[test]
fn unknown_command_and_scheduler_exit_two() {
    let (code, _, _) = run_srtw(&["frobnicate", sample_path()]);
    assert_eq!(code, 2);
    let (code, _, err) = run_srtw(&["analyze", sample_path(), "--scheduler", "lottery"]);
    assert_eq!(code, 2, "stderr: {err}");
}

#[test]
fn unstable_system_exits_three() {
    // Utilization 5/4 on a unit-rate server: an analysis error, not an
    // input error — the file itself is well-formed.
    let p = temp_file(
        "unstable.srtw",
        "task hot\nvertex v wcet=5\nedge v v sep=4\nserver fluid rate=1\n",
    );
    let (code, _, err) = run_srtw(&["analyze", &p]);
    assert_eq!(code, 3, "stderr: {err}");
    assert!(err.contains("unstable"), "{err}");
}

#[test]
fn adversarial_system_degrades_within_wall_budget() {
    // `systems/adversarial.srtw` is constructed so that exact exploration
    // does not finish (its Pareto frontier grows exponentially over a deep
    // busy window); a 1 s wall budget must still produce a sound bound,
    // flagged as degraded, with exit code 0.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/systems/adversarial.srtw");
    let t0 = std::time::Instant::now();
    let (code, out, err) = run_srtw(&["analyze", path, "--json", "--budget-ms", "1000"]);
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(60),
        "budgeted run overran: {:?}",
        t0.elapsed()
    );
    assert_eq!(code, 0, "stderr: {err}");
    assert!(err.contains("sound but degraded"), "{err}");
    assert!(out.contains("\"degraded\":true"), "{out}");
    assert!(out.contains("\"fallback\""), "{out}");
    assert!(out.contains("wall_clock"), "degradation record names the wall budget: {out}");
}

/// A directory of system files for `srtw batch` tests.
fn temp_batch_dir(name: &str, files: &[(&str, &str)]) -> String {
    let dir = std::env::temp_dir().join("srtw-cli-exit-codes").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for (fname, content) in files {
        std::fs::write(dir.join(fname), content).unwrap();
    }
    dir.to_str().unwrap().to_owned()
}

const SMALL_A: &str = "task a\nvertex v wcet=1\nedge v v sep=8\nserver fluid rate=1\n";
const SMALL_B: &str = "task b\nvertex v wcet=2\nedge v v sep=9\nserver rate-latency rate=1 latency=1\n";

#[test]
fn json_error_object_on_exit_two_and_three() {
    // Exit 2: parse error — stdout carries {"error": …} alongside stderr.
    let p = temp_file("bad-json.srtw", "task t\nvertex a wcet=oops\n");
    let (code, out, err) = run_srtw(&["analyze", &p, "--json"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(out.contains("\"error\""), "{out}");
    assert!(out.contains("\"kind\":\"input\""), "{out}");
    assert!(out.contains("\"code\":2"), "{out}");
    assert!(out.contains("line 2"), "the message keeps the span: {out}");

    // Exit 3: analysis failure (unstable system).
    let p = temp_file(
        "unstable-json.srtw",
        "task hot\nvertex v wcet=5\nedge v v sep=4\nserver fluid rate=1\n",
    );
    let (code, out, err) = run_srtw(&["analyze", &p, "--json"]);
    assert_eq!(code, 3, "stderr: {err}");
    assert!(out.contains("\"kind\":\"internal\""), "{out}");
    assert!(out.contains("\"code\":3"), "{out}");

    // Without --json, stdout stays clean.
    let (code, out, _) = run_srtw(&["analyze", &p]);
    assert_eq!(code, 3);
    assert!(out.is_empty(), "{out}");
}

#[test]
fn batch_all_exact_exits_zero_silently() {
    let dir = temp_batch_dir("all-exact", &[("a.srtw", SMALL_A), ("b.srtw", SMALL_B)]);
    let (code, out, err) = run_srtw(&["batch", &dir, "--jobs", "2"]);
    assert_eq!(code, 0, "stderr: {err}");
    assert!(err.is_empty(), "no warning expected: {err}");
    assert!(out.contains("2 exact"), "{out}");
    // Input order (sorted by file name), not completion order.
    let a_pos = out.find("a [").unwrap();
    let b_pos = out.find("b [").unwrap();
    assert!(a_pos < b_pos, "{out}");
}

#[test]
fn batch_manifest_preserves_listed_order() {
    let dir = temp_batch_dir("manifest", &[("x.srtw", SMALL_A), ("y.srtw", SMALL_B)]);
    let manifest = temp_file("manifest.txt", &format!("# queue\n{dir}/y.srtw\n{dir}/x.srtw\n"));
    let (code, out, err) = run_srtw(&["batch", &manifest, "--json"]);
    assert_eq!(code, 0, "stderr: {err}");
    let y_pos = out.find("\"name\":\"y\"").unwrap();
    let x_pos = out.find("\"name\":\"x\"").unwrap();
    assert!(y_pos < x_pos, "manifest order kept: {out}");
    assert!(out.contains("\"status\":\"all_exact\""), "{out}");
}

#[test]
fn batch_degraded_exits_zero_with_warning_and_provenance() {
    // An injected budget trip at the 3rd metered op: the exact rung
    // *completes* with a sound degraded bound — the cancellation path, on
    // purpose, is not a failure. (The trip must land early: the rbf memo
    // leaves this one-vertex system only a handful of metered ops.)
    let dir = temp_batch_dir("degraded", &[("a.srtw", SMALL_A)]);
    let (code, out, err) = run_srtw(&["batch", &dir, "--fault", "trip@3", "--json"]);
    assert_eq!(code, 0, "stderr: {err}");
    assert!(err.contains("degraded"), "{err}");
    assert!(out.contains("\"status\":\"some_degraded\""), "{out}");
    assert!(out.contains("\"rung\":{\"kind\":\"exact\"}"), "{out}");
    assert!(out.contains("\"degradations\":["), "{out}");
}

#[test]
fn batch_failed_jobs_exit_four_with_full_ladder_provenance() {
    let dir = temp_batch_dir("failed", &[("a.srtw", SMALL_A), ("b.srtw", SMALL_B)]);
    let (code, out, err) = run_srtw(&["batch", &dir, "--fault", "overflow@1", "--json"]);
    assert_eq!(code, 4, "stderr: {err}");
    assert!(err.contains("failed every rung"), "{err}");
    assert!(out.contains("\"status\":\"some_failed\""), "{out}");
    // Every job descended the whole default ladder: exact, 2 budgeted, rtc.
    assert!(out.contains("\"kind\":\"rtc\""), "{out}");
    assert!(out.contains("overflow"), "{out}");
}

#[test]
fn batch_parse_failure_is_a_job_failure_not_an_input_error() {
    let dir = temp_batch_dir(
        "mixed",
        &[("a_bad.srtw", "task t\nvertex a wcet=nope\n"), ("b_good.srtw", SMALL_B)],
    );
    let (code, out, err) = run_srtw(&["batch", &dir]);
    assert_eq!(code, 4, "stderr: {err}");
    assert!(out.contains("failed"), "{out}");
    assert!(out.contains("1 exact"), "the good job still ran: {out}");
    assert!(out.contains("line 2"), "parse failures keep their span: {out}");
}

#[test]
fn batch_fail_fast_skips_the_rest_of_the_queue() {
    let dir = temp_batch_dir(
        "fail-fast",
        &[("a_bad.srtw", "task t\nvertex a wcet=nope\n"), ("b_good.srtw", SMALL_B)],
    );
    let (code, out, _) = run_srtw(&["batch", &dir, "--fail-fast"]);
    assert_eq!(code, 4);
    assert!(out.contains("skipped"), "{out}");
    assert!(out.contains("0 exact"), "the good job never started: {out}");

    // --keep-going (the default, spelled out) runs everything.
    let (code, out, _) = run_srtw(&["batch", &dir, "--keep-going"]);
    assert_eq!(code, 4);
    assert!(out.contains("1 exact"), "{out}");
}

#[test]
fn batch_input_errors_exit_two() {
    let (code, _, err) = run_srtw(&["batch", "/nonexistent-dir-or-manifest"]);
    assert_eq!(code, 2, "stderr: {err}");

    let empty = temp_batch_dir("empty", &[]);
    let (code, _, err) = run_srtw(&["batch", &empty]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("no .srtw files"), "{err}");

    let dir = temp_batch_dir("flags", &[("a.srtw", SMALL_A)]);
    let (code, _, err) = run_srtw(&["batch", &dir, "--fault", "meteor@now"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("bad fault spec"), "{err}");
    let (code, _, err) = run_srtw(&["batch", &dir, "--fail-fast", "--keep-going"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("mutually exclusive"), "{err}");
}

#[test]
fn wall_clock_budget_still_succeeds_on_fast_system() {
    // A generous wall budget on a small system: must finish exactly.
    let (code, out, err) = run_srtw(&[
        "analyze",
        sample_path(),
        "--json",
        "--budget-ms",
        "60000",
    ]);
    assert_eq!(code, 0, "stderr: {err}");
    assert!(out.contains("\"degraded\":false"), "{out}");
}
