//! Byte-identity contract of the content-addressed result cache and
//! `POST /analyze/delta`, over real TCP:
//!
//! * a cache hit replays the **exact** bytes of the first response;
//! * a delta answer is byte-identical (modulo `runtime_secs`) to a cold
//!   `POST /analyze` of the edited system — whether the conservative cut
//!   spliced streams or fell back to a full re-analysis;
//! * under an injected deterministic fault the delta path runs the same
//!   metered computation as a cold server, so even degraded provenance
//!   (trip records, fallback quality) matches byte-for-byte.

use srtw::serve::http::client_roundtrip;
use srtw::serve::{ServeConfig, Server};
use srtw::FaultPlan;
use std::net::SocketAddr;

fn spawn(cfg: ServeConfig) -> Server {
    Server::spawn(cfg).expect("bind an ephemeral port")
}

fn post(addr: &SocketAddr, target: &str, body: &str) -> (u16, Vec<(String, String)>, String) {
    client_roundtrip(addr, "POST", target, &[], body.as_bytes()).expect("round trip")
}

fn get_stats(addr: &SocketAddr) -> String {
    let (status, _, body) = client_roundtrip(addr, "GET", "/stats", &[], b"").expect("round trip");
    assert_eq!(status, 200);
    body
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

/// Strips every `"runtime_secs":<number>` value (the document's one
/// nondeterministic field).
fn strip_runtime(doc: &str) -> String {
    let mut out = String::with_capacity(doc.len());
    let mut rest = doc;
    while let Some(pos) = rest.find("\"runtime_secs\":") {
        let after = pos + "\"runtime_secs\":".len();
        out.push_str(&rest[..after]);
        out.push('0');
        let tail = &rest[after..];
        let end = tail.find([',', '}']).unwrap_or(tail.len());
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

fn decoder() -> String {
    std::fs::read_to_string("systems/decoder.srtw").expect("shipped system")
}

#[test]
fn cache_hit_replays_the_exact_first_response() {
    let text = decoder();
    let server = spawn(ServeConfig::default());
    let (s1, _, first) = post(&server.addr(), "/analyze", &text);
    let (s2, _, second) = post(&server.addr(), "/analyze", &text);
    assert_eq!((s1, s2), (200, 200), "{first}");
    // Not merely modulo runtime: the stored body is replayed verbatim.
    assert_eq!(first, second, "cache hit must replay the original bytes");

    let stats = get_stats(&server.addr());
    assert!(stats.contains("\"cache_hits\":1"), "{stats}");
    assert!(stats.contains("\"cache_misses\":1"), "{stats}");
    assert!(!stats.contains("\"cache_bytes\":0,"), "{stats}");
    assert!(server.shutdown().clean());
}

#[test]
fn renamed_system_misses_the_cache_but_still_answers() {
    let text = decoder();
    let renamed = text
        .replace("task telemetry", "task metrics")
        .replace("vertex t ", "vertex m ")
        .replace("edge t t ", "edge m m ");
    let server = spawn(ServeConfig::default());
    let (s1, _, first) = post(&server.addr(), "/analyze", &text);
    let (s2, _, second) = post(&server.addr(), "/analyze", &renamed);
    assert_eq!((s1, s2), (200, 200));
    // Same structure, different names: structurally equal systems, but
    // the rendered bodies differ, so the cache must not replay.
    assert_ne!(first, second);
    assert!(second.contains("\"metrics\""), "{second}");
    let stats = get_stats(&server.addr());
    assert!(stats.contains("\"cache_hits\":0"), "{stats}");
    assert!(stats.contains("\"cache_misses\":2"), "{stats}");
    assert!(server.shutdown().clean());
}

#[test]
fn deadline_delta_splices_and_matches_a_cold_run() {
    let base = decoder();
    // A deadline edit is rbf-invariant: the conservative cut proves the
    // unedited telemetry stream reusable and splices it from the cache.
    let edited_text = base.replace("deadline=25", "deadline=24");
    let delta_body = format!("{base}@delta\ndeadline decoder B 24\n");

    let warm = spawn(ServeConfig::default());
    let (s0, _, _) = post(&warm.addr(), "/analyze", &base);
    assert_eq!(s0, 200);
    let (s1, headers, delta_answer) = post(&warm.addr(), "/analyze/delta", &delta_body);
    assert_eq!(s1, 200, "{delta_answer}");
    let reuse = header(&headers, "x-delta-reuse").expect("delta provenance header");
    assert!(
        reuse.contains("reused=1") && reuse.contains("reanalysed=1"),
        "deadline edit must re-analyse strictly fewer streams: {reuse}"
    );
    assert!(reuse.contains("full_fallback=false"), "{reuse}");

    let cold = spawn(ServeConfig::default());
    let (s2, _, cold_answer) = post(&cold.addr(), "/analyze", &edited_text);
    assert_eq!(s2, 200);
    assert_eq!(
        strip_runtime(&delta_answer),
        strip_runtime(&cold_answer),
        "spliced delta answer diverged from a cold run of the edited system"
    );

    let stats = get_stats(&warm.addr());
    assert!(stats.contains("\"delta_full_fallbacks\":0"), "{stats}");
    assert!(warm.shutdown().clean());
    assert!(cold.shutdown().clean());
}

#[test]
fn wcet_delta_falls_back_fully_and_matches_a_cold_run() {
    let base = decoder();
    // A WCET edit changes the edited task's rbf, so the cut cannot prove
    // the other stream reusable: full re-analysis, still byte-identical.
    let edited_text = base.replace("vertex t wcet=1", "vertex t wcet=2");
    let delta_body = format!("{base}@delta\nwcet telemetry t 2\n");

    let warm = spawn(ServeConfig::default());
    let (s0, _, _) = post(&warm.addr(), "/analyze", &base);
    assert_eq!(s0, 200);
    let (s1, headers, delta_answer) = post(&warm.addr(), "/analyze/delta", &delta_body);
    assert_eq!(s1, 200, "{delta_answer}");
    let reuse = header(&headers, "x-delta-reuse").expect("delta provenance header");
    assert!(reuse.contains("full_fallback=true"), "{reuse}");

    let cold = spawn(ServeConfig::default());
    let (s2, _, cold_answer) = post(&cold.addr(), "/analyze", &edited_text);
    assert_eq!(s2, 200);
    assert_eq!(
        strip_runtime(&delta_answer),
        strip_runtime(&cold_answer),
        "fallback delta answer diverged from a cold run of the edited system"
    );

    let stats = get_stats(&warm.addr());
    assert!(stats.contains("\"delta_full_fallbacks\":1"), "{stats}");
    assert!(warm.shutdown().clean());
    assert!(cold.shutdown().clean());
}

#[test]
fn delta_under_injected_fault_matches_cold_fault_provenance() {
    let base = decoder();
    let edited_text = base.replace("deadline=25", "deadline=24");
    let delta_body = format!("{base}@delta\ndeadline decoder B 24\n");
    let faulty = || {
        spawn(ServeConfig {
            fault: Some(FaultPlan::parse("trip@5").unwrap()),
            ..ServeConfig::default()
        })
    };

    // With a configured fault every request must run the metered path:
    // no caching, no splicing — the delta endpoint degrades on exactly
    // the same tick as a cold analyze of the edited system, provenance
    // included.
    let a = faulty();
    let (s0, _, _) = post(&a.addr(), "/analyze", &base);
    assert_eq!(s0, 200);
    let (s1, headers, delta_answer) = post(&a.addr(), "/analyze/delta", &delta_body);
    assert_eq!(s1, 200, "{delta_answer}");
    assert!(delta_answer.contains("\"degraded\":true"), "{delta_answer}");
    let reuse = header(&headers, "x-delta-reuse").expect("delta provenance header");
    assert!(reuse.contains("full_fallback=true"), "{reuse}");

    let b = faulty();
    let (s2, _, cold_answer) = post(&b.addr(), "/analyze", &edited_text);
    assert_eq!(s2, 200);
    assert_eq!(
        strip_runtime(&delta_answer),
        strip_runtime(&cold_answer),
        "metered delta diverged from a cold faulted run (tick-exact replay broken)"
    );

    let stats = get_stats(&a.addr());
    assert!(stats.contains("\"cache_hits\":0"), "{stats}");
    assert!(stats.contains("\"delta_full_fallbacks\":1"), "{stats}");
    assert!(a.shutdown().clean());
    assert!(b.shutdown().clean());
}

#[test]
fn delta_rejects_malformed_scripts_with_typed_errors() {
    let base = decoder();
    let server = spawn(ServeConfig::default());
    // No separator line.
    let (s, _, body) = post(&server.addr(), "/analyze/delta", &base);
    assert_eq!(s, 400, "{body}");
    assert!(body.contains("@delta"), "{body}");
    // Unknown task in an otherwise well-formed script.
    let (s, _, body) = post(
        &server.addr(),
        "/analyze/delta",
        &format!("{base}@delta\nwcet nosuch t 2\n"),
    );
    assert_eq!(s, 400, "{body}");
    assert!(body.contains("unknown task"), "{body}");
    assert!(body.contains("\"edit_line\":1"), "{body}");
    // Empty edit script.
    let (s, _, body) = post(&server.addr(), "/analyze/delta", &format!("{base}@delta\n"));
    assert_eq!(s, 400, "{body}");
    // GET on the endpoint is a 405, not a 404.
    let (s, _, _) =
        client_roundtrip(&server.addr(), "GET", "/analyze/delta", &[], b"").expect("round trip");
    assert_eq!(s, 405);
    assert!(server.shutdown().clean());
}

#[test]
fn zero_cache_budget_disables_caching() {
    let text = decoder();
    let server = spawn(ServeConfig {
        cache_bytes: 0,
        ..ServeConfig::default()
    });
    let (s1, _, first) = post(&server.addr(), "/analyze", &text);
    let (s2, _, second) = post(&server.addr(), "/analyze", &text);
    assert_eq!((s1, s2), (200, 200));
    assert_eq!(strip_runtime(&first), strip_runtime(&second));
    let stats = get_stats(&server.addr());
    assert!(stats.contains("\"cache_hits\":0"), "{stats}");
    assert!(stats.contains("\"cache_bytes\":0"), "{stats}");
    assert!(server.shutdown().clean());
}
