//! Cross-crate property-based tests: the analysis theorems must hold for
//! arbitrary generated workloads and servers.
//!
//! Runs on the in-house seeded harness ([`srtw_detrand::prop`]); set
//! `SRTW_PROP_CASES` / `SRTW_PROP_SEED` / `SRTW_PROP_REPLAY` to control it.

use srtw::prop::forall;
use srtw::{
    earliest_random_walk, generate_drt, q, rtc_delay, simulate_fifo, structural_delay,
    structural_delay_with, AnalysisConfig, Curve, DrtGenConfig, DrtTask, Q, Rng, Server,
    ServiceProcess,
};

/// Generator: a random generated task plus the parameters that shaped it.
fn task(rng: &mut Rng) -> DrtTask {
    let cfg = DrtGenConfig {
        vertices: rng.random_range(2usize..7),
        extra_edges: rng.random_range(0usize..8),
        separation_range: (3, 20),
        wcet_range: (1, 6),
        target_utilization: Some(Q::new(rng.random_range(1i128..8), 10)),
        deadline_factor: None,
    };
    generate_drt(&cfg, rng.next_u64())
}

/// Generator: a random stable server for the given demand-rate ceiling.
fn server(rng: &mut Rng) -> Curve {
    match rng.random_range(0u32..3) {
        0 => Curve::rate_latency(
            q(rng.random_range(8i128..=20), 10),
            Q::int(rng.random_range(0i128..=8)),
        ),
        1 => Curve::affine(Q::ZERO, Q::ONE),
        _ => {
            let slot = rng.random_range(1i128..=3);
            let cycle = rng.random_range(4i128..=6);
            srtw::TdmaServer::new(Q::int(slot), Q::int(cycle), Q::int(2))
                .expect("valid tdma")
                .beta_lower()
        }
    }
}

/// Generator: a `(task, server)` pair with the stability side-condition
/// `U < rate(β)` built in (the old `prop_assume!`): draw until it holds,
/// falling back to the always-stable unit-rate server after a bounded
/// number of rejections (target utilizations top out at 0.8 < 1).
fn stable_pair(rng: &mut Rng) -> (DrtTask, Curve) {
    for _ in 0..64 {
        let t = task(rng);
        let beta = server(rng);
        if srtw::long_run_utilization(&t) < beta.rate() {
            return (t, beta);
        }
    }
    let t = task(rng);
    let beta = Curve::affine(Q::ZERO, Q::ONE);
    assert!(srtw::long_run_utilization(&t) < beta.rate());
    (t, beta)
}

#[test]
fn stream_max_equals_rtc() {
    forall(
        "stream_max_equals_rtc",
        |rng, _| stable_pair(rng),
        |(task, beta)| {
            let s = structural_delay(task, beta).unwrap();
            let r = rtc_delay(task, beta).unwrap();
            assert_eq!(s.stream_bound, r.bound);
            for vb in &s.per_vertex {
                assert!(vb.bound <= r.bound);
            }
        },
    );
}

#[test]
fn pruning_is_lossless() {
    forall(
        "pruning_is_lossless",
        |rng, _| stable_pair(rng),
        |(task, beta)| {
            let pruned = structural_delay(task, beta).unwrap();
            let raw = structural_delay_with(
                task,
                beta,
                &AnalysisConfig {
                    no_prune: true,
                    ..Default::default()
                },
            )
            .unwrap();
            for (a, b) in pruned.per_vertex.iter().zip(raw.per_vertex.iter()) {
                assert_eq!(a.bound, b.bound, "pruning changed a bound");
            }
            assert!(raw.paths_retained >= pruned.paths_retained);
        },
    );
}

#[test]
fn horizon_fraction_is_sound_and_bracketed() {
    forall(
        "horizon_fraction_is_sound_and_bracketed",
        |rng, _| {
            let (task, beta) = stable_pair(rng);
            (task, beta, rng.random_range(0i128..=4))
        },
        |(task, beta, knum)| {
            let full = structural_delay(task, beta).unwrap();
            let rtc = rtc_delay(task, beta).unwrap();
            let a = structural_delay_with(
                task,
                beta,
                &AnalysisConfig {
                    horizon_fraction: Some(q(*knum, 4)),
                    ..Default::default()
                },
            )
            .unwrap();
            let max = a.per_vertex.iter().map(|b| b.bound).fold(Q::ZERO, Q::max);
            assert!(max <= rtc.bound, "partial analysis worse than RTC");
            for (x, f) in a.per_vertex.iter().zip(full.per_vertex.iter()) {
                assert!(x.bound >= f.bound, "partial analysis unsound vs full");
            }
        },
    );
}

#[test]
fn simulated_delays_below_bounds() {
    forall(
        "simulated_delays_below_bounds",
        |rng, _| (task(rng), rng.next_u64()),
        |(task, trace_seed)| {
            let rate = Q::ONE;
            let beta = Curve::affine(Q::ZERO, rate);
            // Generated target utilizations are ≤ 0.8, so the unit-rate
            // server is always stable (the old assume was vacuous here).
            assert!(srtw::long_run_utilization(task) < rate);
            let analysis = structural_delay(task, &beta).unwrap();
            let trace = earliest_random_walk(task, Q::int(150), None, *trace_seed);
            assert!(trace.is_legal(task));
            let out = simulate_fifo(
                std::slice::from_ref(task),
                std::slice::from_ref(&trace),
                &ServiceProcess::fluid(rate),
            );
            for v in task.vertex_ids() {
                assert!(out.max_delay_of(0, v) <= analysis.bound_of(v));
            }
        },
    );
}

#[test]
fn rbf_envelope_dominates_every_trace() {
    forall(
        "rbf_envelope_dominates_every_trace",
        |rng, _| (task(rng), rng.next_u64()),
        |(task, seed)| {
            let rbf = srtw::Rbf::compute(task, Q::int(100));
            let trace = earliest_random_walk(task, Q::int(100), None, *seed);
            // Any window of any legal trace carries at most rbf(len) work.
            let releases = trace.releases();
            for i in 0..releases.len() {
                for j in i..releases.len() {
                    let len = releases[j].time - releases[i].time;
                    let work: Q = releases[i..=j]
                        .iter()
                        .map(|r| task.wcet(r.vertex))
                        .fold(Q::ZERO, |a, b| a + b);
                    assert!(work <= rbf.eval(len), "trace window exceeds rbf");
                }
            }
        },
    );
}

#[test]
fn utilization_bounds_rbf_growth() {
    forall(
        "utilization_bounds_rbf_growth",
        |rng, _| task(rng),
        |task| {
            // rbf(t) ≤ U·t + n·max_wcet (coarse linear envelope).
            let u = srtw::long_run_utilization(task);
            let rbf = srtw::Rbf::compute(task, Q::int(200));
            let slack = task.max_wcet() * Q::int(task.num_vertices() as i128 + 1);
            for i in 0..=20 {
                let t = Q::int(i * 10);
                assert!(
                    rbf.eval(t) <= u * t + slack,
                    "rbf({t}) = {} exceeds linear envelope",
                    rbf.eval(t)
                );
            }
        },
    );
}
