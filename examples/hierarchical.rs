//! Hierarchical scheduling: a component with a periodic-resource interface
//! `Γ(Π, Θ)` hosting two structural tasks under fixed-priority scheduling.
//!
//! ```text
//! cargo run --example hierarchical
//! ```
//!
//! This is the compositional-scheduling setting: the component is
//! guaranteed `Θ` units of processor time in every period `Π` (worst-case
//! positioning), and inside the component a control task preempts a
//! logging task. The analysis chain is: periodic-resource lower curve →
//! leftover per priority → per-job-type structural bounds.

use srtw::{
    edf_schedulable, fixed_priority_structural, DrtTaskBuilder, PeriodicResource, Q, Server,
};

fn main() {
    // The component interface: 3 units of budget every 8.
    let interface = PeriodicResource::new(Q::int(8), Q::int(3)).expect("valid interface");
    let beta = interface.beta_lower();
    println!("component interface: {}", interface.describe());
    println!("worst-case blackout: {}", Q::int(2) * (Q::int(8) - Q::int(3)));

    // High priority: a mode-switching controller with per-mode deadlines.
    let control = {
        let mut b = DrtTaskBuilder::new("control");
        let nominal = b.vertex_with_deadline("nominal", Q::ONE, Q::int(24));
        let recovery = b.vertex_with_deadline("recovery", Q::int(2), Q::int(32));
        b.edge(nominal, nominal, Q::int(12));
        b.edge(nominal, recovery, Q::int(12));
        b.edge(recovery, nominal, Q::int(16));
        b.build().expect("valid control graph")
    };

    // Low priority: periodic logging.
    let logging = {
        let mut b = DrtTaskBuilder::new("logging");
        let v = b.vertex_with_deadline("flush", Q::ONE, Q::int(40));
        b.edge(v, v, Q::int(20));
        b.build().expect("valid logging graph")
    };

    let tasks = vec![control.clone(), logging.clone()];
    let per = fixed_priority_structural(&tasks, &beta).expect("stable component");
    for (i, a) in per.iter().enumerate() {
        println!("\npriority {i}:\n{a}");
    }

    // Deadline verdicts per job type at each level.
    let mut all_ok = true;
    for (task, a) in tasks.iter().zip(per.iter()) {
        for vb in &a.per_vertex {
            let d = task.deadline(vb.vertex).expect("deadlines set");
            let ok = vb.bound <= d;
            all_ok &= ok;
            println!(
                "{:<10} {:<10} bound {:>6} deadline {:>4}  {}",
                task.name(),
                vb.label,
                vb.bound.to_string(),
                d.to_string(),
                if ok { "OK" } else { "MISS" }
            );
        }
    }
    println!("\nfixed-priority component schedulable: {all_ok}");
    assert!(all_ok);

    // For comparison: EDF inside the same interface (strictly more
    // permissive — it would also accept tighter budgets).
    let edf = edf_schedulable(&tasks, &beta).expect("analysable");
    println!("EDF inside the same interface: schedulable = {}", edf.schedulable);

    // How small can the budget get under EDF before the component breaks?
    let mut theta = Q::int(3);
    while theta > Q::ZERO {
        let trial = PeriodicResource::new(Q::int(8), theta).expect("valid");
        match edf_schedulable(&tasks, &trial.beta_lower()) {
            Ok(r) if r.schedulable => {
                theta -= Q::new(1, 4);
            }
            _ => break,
        }
    }
    println!(
        "minimal EDF-schedulable budget (granularity 1/4): Θ = {}",
        theta + Q::new(1, 4)
    );
}
