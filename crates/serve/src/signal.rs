//! Process-signal plumbing for graceful drain (`SIGINT`/`SIGTERM`).
//!
//! The only piece of the workspace that needs `unsafe`: std has no signal
//! API, so a minimal `signal(2)` binding installs an async-signal-safe
//! handler that merely raises a static atomic flag. The serve loop polls
//! [`triggered`] and runs the exact same drain path as `POST /shutdown`.
//! Handlers are installed only by the long-running CLI subcommand — never
//! by in-process test servers, which drain via the API instead.

use std::sync::atomic::{AtomicBool, Ordering};

static TRIGGERED: AtomicBool = AtomicBool::new(false);

/// `true` once `SIGINT` or `SIGTERM` was received (after
/// [`install_handlers`]); latches until the process exits.
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::Relaxed)
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use super::TRIGGERED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    // `signal(2)` from libc, which every unix target already links.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // A relaxed store is async-signal-safe.
        TRIGGERED.store(true, Ordering::Relaxed);
    }

    pub fn install() {
        // SAFETY: `on_signal` only performs an atomic store, which is
        // async-signal-safe; `signal` itself is safe to call with a valid
        // non-returning-into-Rust handler.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the `SIGINT`/`SIGTERM` handlers (no-op off unix). Call at
/// most once, from the process' serve entry point.
pub fn install_handlers() {
    imp::install();
}
