//! Seeded fuzz suite for journal recovery.
//!
//! Random structural and byte-level mutations of a genuine journal image
//! (truncations, bit flips, duplicated slices, reordered records, and
//! pure noise) are fed to `journal::recover_bytes`. Three invariants:
//!
//! 1. recovery never panics — every image, however mangled, yields a
//!    `Recovery`;
//! 2. recovery never *invents* a completion: every record it salvages
//!    must be byte-identical (name and stored JSON alike) to one that
//!    was genuinely journaled — a job that was never written can never
//!    come back marked complete;
//! 3. replay stays idempotent — no duplicate job names survive recovery.
//!
//! Case counts follow `SRTW_PROP_CASES` (default 64); failures print a
//! `SRTW_PROP_REPLAY=<seed>:<size>` handle for exact reproduction.

use srtw_detrand::prop::forall;
use srtw_detrand::Rng;
use srtw_supervisor::journal::{recover_bytes, JournalRecord, JournalWriter, JOURNAL_MAGIC};
use srtw_supervisor::{JobOutcome, JobStatus};
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Duration;

const DIGEST: u64 = 0x5eed_cafe;

fn outcome(name: &str, status: JobStatus) -> JobOutcome {
    let mut o = match status {
        JobStatus::Failed => JobOutcome::pre_failed(name, "synthetic failure"),
        JobStatus::Skipped => JobOutcome::skipped(name),
        _ => {
            let mut o = JobOutcome::pre_failed(name, "");
            o.status = status;
            o.error = None;
            o.rung = Some(srtw_supervisor::Rung::Exact);
            o
        }
    };
    o.wall = Duration::from_micros(1000 + name.len() as u64 * 37);
    o
}

/// The genuine records the fuzz cases start from, plus each record's
/// exact on-disk frame bytes (captured by writing a one-record journal
/// and stripping the header).
struct Base {
    records: Vec<JournalRecord>,
    frames: Vec<Vec<u8>>,
    header: Vec<u8>,
}

fn base() -> &'static Base {
    static BASE: OnceLock<Base> = OnceLock::new();
    BASE.get_or_init(|| {
        let outcomes = vec![
            outcome("alpha", JobStatus::Exact),
            outcome("beta", JobStatus::Degraded),
            outcome("gamma", JobStatus::Failed),
            outcome("delta", JobStatus::Exact),
        ];
        let records: Vec<JournalRecord> =
            outcomes.iter().map(JournalRecord::from_outcome).collect();
        let mut frames = Vec::new();
        let mut header = Vec::new();
        for (i, r) in records.iter().enumerate() {
            let path = tmp(&format!("frame-{i}"));
            let mut w = JournalWriter::create(&path, DIGEST).unwrap();
            w.append(r).unwrap();
            drop(w);
            let bytes = std::fs::read(&path).unwrap();
            std::fs::remove_file(&path).unwrap();
            let header_len = JOURNAL_MAGIC.len() + 4 + 8;
            if header.is_empty() {
                header = bytes[..header_len].to_vec();
            }
            frames.push(bytes[header_len..].to_vec());
        }
        Base {
            records,
            frames,
            header,
        }
    })
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("srtw-fuzz-journal-{}-{name}", std::process::id()));
    p
}

/// One seeded journal image: the genuine frames in a random order (with
/// possible duplicates), then `size`-scaled byte-level mutations.
fn mutated(rng: &mut Rng, size: u32) -> Vec<u8> {
    let base = base();
    let mut image = base.header.clone();
    // Reorder/duplicate at the record level first: a random sequence of
    // genuine frames, each possibly appearing more than once or not at
    // all.
    let picks = rng.random_range(0usize..base.frames.len() * 2);
    for _ in 0..picks {
        let f = rng.random_range(0usize..base.frames.len());
        image.extend_from_slice(&base.frames[f]);
    }
    // Then mangle bytes.
    let mutations = (size as usize) / 8;
    for _ in 0..mutations {
        match rng.random_range(0u32..5) {
            // Flip a random bit.
            0 if !image.is_empty() => {
                let i = rng.random_range(0usize..image.len());
                image[i] ^= 1 << rng.random_range(0u32..8);
            }
            // Truncate at a random point (torn tail; may even eat the
            // header).
            1 if !image.is_empty() => {
                let i = rng.random_range(0usize..image.len());
                image.truncate(i);
            }
            // Duplicate a random slice (repeated/overlapping frames).
            2 if image.len() >= 2 => {
                let a = rng.random_range(0usize..image.len() - 1);
                let b = rng.random_range(a + 1..image.len());
                let slice = image[a..b].to_vec();
                let i = rng.random_range(0usize..image.len() + 1);
                image.splice(i..i, slice);
            }
            // Insert random bytes.
            3 => {
                let i = rng.random_range(0usize..image.len() + 1);
                let chunk: Vec<u8> = (0..rng.random_range(1usize..16))
                    .map(|_| rng.next_u64() as u8)
                    .collect();
                image.splice(i..i, chunk);
            }
            // Replace everything with noise.
            _ => {
                image = (0..rng.random_range(0usize..512))
                    .map(|_| rng.next_u64() as u8)
                    .collect();
            }
        }
    }
    image
}

#[test]
fn mutated_journals_recover_without_panics_or_invented_completions() {
    let genuine = &base().records;
    forall("journal recovery tolerates arbitrary corruption", mutated, |image| {
        let rec = recover_bytes(image);
        // Invariant 2: every salvaged record is byte-identical to a
        // genuinely journaled one. (A CRC collision on mutated bytes is
        // the only way to break this, and the seeded corpus has none.)
        for r in &rec.records {
            assert!(
                genuine.iter().any(|g| g == r),
                "recovery invented a record for job '{}' that was never journaled",
                r.name
            );
        }
        // Invariant 3: replay idempotence — keep-first dedup by name.
        for (i, r) in rec.records.iter().enumerate() {
            assert!(
                rec.records[..i].iter().all(|prev| prev.name != r.name),
                "duplicate job '{}' survived recovery",
                r.name
            );
        }
    });
}

#[test]
fn truncation_sweep_never_loses_fully_synced_prefix_records() {
    // Deterministic sweep, not seeded: for every possible truncation
    // point, recovery yields exactly the records whose frames fit wholly
    // inside the prefix — fsync-before-ack means those are the jobs a
    // crash can never take back.
    let base = base();
    let mut image = base.header.clone();
    let mut boundaries = vec![image.len()];
    for f in &base.frames {
        image.extend_from_slice(f);
        boundaries.push(image.len());
    }
    for cut in base.header.len()..=image.len() {
        let rec = recover_bytes(&image[..cut]);
        let complete = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        assert_eq!(
            rec.records.len(),
            complete,
            "truncation at byte {cut} must keep exactly the {complete} fully-written record(s)"
        );
        for (r, g) in rec.records.iter().zip(&base.records) {
            assert_eq!(r, g, "prefix records must replay byte-identically");
        }
    }
}
