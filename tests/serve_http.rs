//! End-to-end robustness coverage of the analysis service over real TCP:
//! deadline propagation (sound degradation within the deadline), fault
//! injection (typed error bodies, correct statuses, a server that keeps
//! serving), load shedding, and the hardened request limits.

use srtw::serve::http::client_roundtrip;
use srtw::serve::{ServeConfig, Server};
use srtw::textfmt::parse_system;
use srtw::{fifo_report, q, AnalysisConfig, FaultPlan, Q};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

fn spawn(cfg: ServeConfig) -> Server {
    Server::spawn(cfg).expect("bind an ephemeral port")
}

fn post_analyze(addr: &SocketAddr, headers: &[(&str, &str)], body: &str) -> (u16, String) {
    let (status, _, body) =
        client_roundtrip(addr, "POST", "/analyze", headers, body.as_bytes()).expect("round trip");
    (status, body)
}

/// Every `"key":{"num":N,"den":D…}` rational in document order.
fn rationals(doc: &str, key: &str) -> Vec<Q> {
    let needle = format!("\"{key}\":{{\"num\":");
    let mut out = Vec::new();
    let mut rest = doc;
    while let Some(pos) = rest.find(&needle) {
        let tail = &rest[pos + needle.len()..];
        let num_end = tail.find(',').expect("num is followed by den");
        let num: i128 = tail[..num_end].parse().expect("integer numerator");
        let tail = &tail[num_end..];
        let den_start = tail.find("\"den\":").expect("den member") + "\"den\":".len();
        let den_end = den_start
            + tail[den_start..]
                .find(',')
                .expect("den is followed by approx");
        let den: i128 = tail[den_start..den_end].parse().expect("integer denominator");
        out.push(q(num, den));
        rest = &rest[pos + needle.len()..];
    }
    out
}

#[test]
fn deadline_header_degrades_soundly_within_the_deadline() {
    let text = std::fs::read_to_string("systems/adversarial.srtw").expect("shipped system");
    let server = spawn(ServeConfig::default());
    let started = Instant::now();
    let (status, body) = post_analyze(&server.addr(), &[("X-Deadline-Ms", "1500")], &text);
    let elapsed = started.elapsed();
    assert_eq!(status, 200, "{body}");
    assert!(
        body.contains("\"degraded\":true"),
        "an exact run of the adversarial system cannot finish in 1.5s: {body}"
    );
    // The cooperative deadline must actually hold: the trip lands within
    // the deadline, then bounded post-trip work builds the RTC fallback
    // (generous slack for a loaded debug-build CI machine — still far
    // below the exact run's effectively unbounded time).
    assert!(
        elapsed < Duration::from_secs(60),
        "deadline did not bound the request: {elapsed:?}"
    );
    // The wall trip must be recorded as provenance, with real (finite,
    // positive) degraded bounds attached.
    assert!(body.contains("\"exact\":false"), "{body}");
    assert!(!body.contains("\"degradations\":[]"), "{body}");
    let stream_bounds = rationals(&body, "stream_bound");
    assert!(!stream_bounds.is_empty());
    for sb in &stream_bounds {
        assert!(*sb > Q::ZERO, "degenerate degraded bound {sb}");
    }
    assert!(server.shutdown().clean());
}

#[test]
fn injected_trip_fault_sandwiches_between_exact_and_rtc() {
    let text = std::fs::read_to_string("systems/decoder.srtw").expect("shipped system");
    let sys = parse_system(&text).unwrap();
    let beta = sys.server.as_ref().unwrap().beta_lower().unwrap();
    let exact = fifo_report(&sys.tasks, &beta, &AnalysisConfig::default()).unwrap();

    let server = spawn(ServeConfig {
        fault: Some(FaultPlan::parse("trip@5").unwrap()),
        ..Default::default()
    });
    let (status, body) = post_analyze(&server.addr(), &[], &text);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"degraded\":true"), "{body}");

    let rtc = rationals(&body, "bound")[0];
    let degraded_streams = rationals(&body, "stream_bound");
    assert_eq!(degraded_streams.len(), exact.per.len());
    for (d, e) in degraded_streams.iter().zip(exact.per.iter()) {
        assert!(
            *d >= e.stream_bound,
            "degraded {d} below exact {}",
            e.stream_bound
        );
        assert!(*d <= rtc, "degraded {d} above RTC {rtc}");
    }
    assert!(server.shutdown().clean());
}

#[test]
fn injected_overflow_fault_is_a_typed_500_and_the_server_survives() {
    let text = std::fs::read_to_string("systems/decoder.srtw").expect("shipped system");
    let server = spawn(ServeConfig {
        fault: Some(FaultPlan::parse("overflow@1").unwrap()),
        ..Default::default()
    });
    let (status, body) = post_analyze(&server.addr(), &[], &text);
    assert_eq!(status, 500, "{body}");
    assert!(body.contains("\"code\":3"), "{body}");
    assert!(body.contains("\"kind\":\"internal\""), "{body}");
    let (status, _, _) = client_roundtrip(&server.addr(), "GET", "/healthz", &[], b"").unwrap();
    assert_eq!(status, 200, "the failed request must not poison the server");
    assert!(server.shutdown().clean());
}

#[test]
fn injected_panic_fault_is_contained_to_a_typed_500() {
    let text = std::fs::read_to_string("systems/decoder.srtw").expect("shipped system");
    let server = spawn(ServeConfig {
        fault: Some(FaultPlan::parse("panic@1").unwrap()),
        ..Default::default()
    });
    for _ in 0..3 {
        let (status, body) = post_analyze(&server.addr(), &[], &text);
        assert_eq!(status, 500, "{body}");
        assert!(body.contains("\"kind\":\"panic\""), "{body}");
        assert!(body.contains("injected fault"), "{body}");
    }
    let (status, _, _) = client_roundtrip(&server.addr(), "GET", "/healthz", &[], b"").unwrap();
    assert_eq!(status, 200);
    let report = server.shutdown();
    assert_eq!(
        report.abandoned, 0,
        "contained panics must not leak threads: {report:?}"
    );
}

#[test]
fn full_queue_sheds_with_503_and_retry_after() {
    let adversarial = std::fs::read_to_string("systems/adversarial.srtw").expect("shipped system");
    let server = spawn(ServeConfig {
        workers: 1,
        queue: 1,
        // The blocking request winds down on its own well before drain.
        default_deadline_ms: Some(2_000),
        ..Default::default()
    });
    let addr = server.addr();
    let blocker = {
        let adversarial = adversarial.clone();
        std::thread::spawn(move || post_analyze(&addr, &[], &adversarial))
    };
    // Give the blocker time to occupy the single worker.
    std::thread::sleep(Duration::from_millis(300));
    // Concurrent probes: with the worker busy and a queue of one, at most
    // one probe can be queued — the rest must shed immediately.
    let probes: Vec<_> = (0..6)
        .map(|_| std::thread::spawn(move || client_roundtrip(&addr, "GET", "/healthz", &[], b"")))
        .collect();
    let mut shed = 0;
    for probe in probes {
        let (status, headers, body) = probe.join().unwrap().unwrap();
        match status {
            200 => {}
            503 => {
                shed += 1;
                // The adaptive hint scales with queue depth and observed
                // latency; whatever it computes must be a sane, clamped
                // number of seconds.
                let retry: u64 = headers
                    .iter()
                    .find(|(k, _)| k == "retry-after")
                    .unwrap_or_else(|| panic!("503 without Retry-After: {headers:?}"))
                    .1
                    .parse()
                    .expect("Retry-After is integral seconds");
                assert!((1..=30).contains(&retry), "Retry-After {retry} out of range");
                assert!(body.contains("\"kind\":\"shed\""), "{body}");
            }
            other => panic!("unexpected status {other}: {body}"),
        }
    }
    assert!(
        shed >= 4,
        "one busy worker and a queue of one must shed most of 6 probes, shed only {shed}"
    );
    let (status, body) = blocker.join().unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"degraded\":true"), "{body}");
    let report = server.shutdown();
    assert_eq!(report.abandoned, 0, "{report:?}");
}

#[test]
fn request_limits_and_parse_errors_are_typed() {
    let server = spawn(ServeConfig::default());
    let addr = server.addr();

    // Oversized body: the textfmt cap, enforced before buffering.
    let huge = "x".repeat(1024 * 1024 + 1);
    let (status, body) = post_analyze(&addr, &[], &huge);
    assert_eq!(status, 413, "{body}");
    assert!(body.contains("\"code\":2"), "{body}");
    assert!(body.contains("\"parse_kind\":\"input_too_large\""), "{body}");

    // Malformed system: 400 with the typed parse kind and span.
    let (status, body) = post_analyze(&addr, &[], "task t\nvertex broken\n");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"kind\":\"input\""), "{body}");
    assert!(body.contains("\"parse_kind\":"), "{body}");
    assert!(body.contains("\"line\":"), "{body}");

    // A system without a server line cannot be analyzed.
    let (status, body) = post_analyze(&addr, &[], "task t\nvertex a wcet=1\nedge a a sep=5\n");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("declares no server"), "{body}");

    // Bad deadline header.
    let (status, body) = post_analyze(
        &addr,
        &[("X-Deadline-Ms", "soon")],
        "task t\nvertex a wcet=1\nedge a a sep=5\nserver fluid rate=1\n",
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("X-Deadline-Ms"), "{body}");

    assert!(server.shutdown().clean());
}
