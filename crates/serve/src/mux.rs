//! The readiness-based multiplexed acceptor.
//!
//! One mux thread owns the listener and every connection that is not
//! currently being *served*: it accepts, reads request bytes
//! non-blockingly as they arrive, and only hands a connection to the
//! worker pool once a **complete** request is buffered. A slow-loris
//! client — drip-feeding header bytes, or opening thousands of idle
//! sockets — therefore never occupies a worker; it costs one `pollfd`
//! and a small buffer until its per-connection deadline expires (typed
//! `408`) or the connection cap sheds it (`503`).
//!
//! Memory stays bounded by construction: at most [`MuxConfig::max_conns`]
//! tracked connections, at most [`crate::http::MAX_HEAD_BYTES`] of head
//! per connection, and a global [`MuxConfig::max_buffered`] budget on
//! declared body bytes — admission (the bounded gate) is checked *before*
//! a body is buffered, so a flood of oversized POSTs sheds at the head.
//!
//! Keep-alive: after a worker writes a keep-alive response it hands the
//! connection back via [`MuxHandle::return_conn`]; the mux re-registers
//! it (with any pipelined bytes already buffered) and a self-pipe wake
//! makes the turnaround immediate rather than poll-timeout-bounded.

use crate::gate::{Admission, Gate};
use crate::http::{
    body_need, parse_head, scan_head, Head, HeadScan, Request, RequestError, Response,
};
use crate::stats::Stats;
use crate::sys::{self, PollFd, POLLIN, POLLOUT};
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How long a finished error/shed response may linger draining the
/// client's unread bytes before the socket is closed.
const LINGER: Duration = Duration::from_millis(500);
/// Most bytes a lingering close will discard before giving up.
const LINGER_BUDGET: usize = 64 * 1024;
/// Most connections accepted per wakeup (fairness against floods).
const ACCEPT_BURST: usize = 64;

/// Tuning for the mux; the server derives it from
/// [`crate::ServeConfig`].
#[derive(Debug, Clone)]
pub struct MuxConfig {
    /// Most connections tracked at once; beyond it new connections shed.
    pub max_conns: usize,
    /// Deadline for a fresh connection to complete its request head.
    pub header_timeout: Duration,
    /// Deadline for the declared body to arrive, for response writes,
    /// and for keep-alive idleness.
    pub read_timeout: Duration,
    /// Global budget of declared-but-unread body bytes across all
    /// connections.
    pub max_buffered: usize,
    /// Largest accepted request body (the textfmt input cap).
    pub body_cap: usize,
    /// Worker count (for the adaptive `Retry-After`).
    pub workers: usize,
}

/// A complete request ready for a worker, with the socket that carried
/// it. The worker writes the response and either closes the stream or
/// returns it through [`MuxHandle::return_conn`].
#[derive(Debug)]
pub struct ConnJob {
    /// The connection, switched to blocking mode for the worker.
    pub stream: TcpStream,
    /// The fully-buffered request.
    pub request: Request,
    /// Requests already served on this connection (0 for the first).
    pub served: u32,
    /// Pipelined bytes read past this request's body, if any.
    pub leftover: Vec<u8>,
}

/// A connection a worker hands back for keep-alive reuse.
#[derive(Debug)]
pub struct ReturnedConn {
    /// The connection (still blocking; the mux flips it back).
    pub stream: TcpStream,
    /// Requests served on it so far.
    pub served: u32,
    /// Pipelined bytes already read.
    pub leftover: Vec<u8>,
}

/// State shared between the mux thread and the rest of the server.
#[derive(Debug)]
pub struct MuxShared {
    returns: Mutex<Vec<ReturnedConn>>,
    open_conns: AtomicUsize,
    stop: AtomicBool,
    wake_tx: Mutex<TcpStream>,
}

impl MuxShared {
    fn wake(&self) {
        // Non-blocking: a full wake pipe already guarantees a wakeup.
        let _ = self.wake_tx.lock().unwrap().write(&[1]);
    }
}

/// A lightweight, cloneable way back into the mux: pool workers hold one
/// to return keep-alive connections and the stats path reads its gauge.
#[derive(Debug, Clone)]
pub struct Returner {
    shared: Arc<MuxShared>,
}

impl Returner {
    /// Hands a keep-alive connection back for its next request.
    pub fn return_conn(&self, conn: ReturnedConn) {
        self.shared.returns.lock().unwrap().push(conn);
        self.shared.wake();
    }

    /// Connections currently tracked by the mux (gauge).
    pub fn open_conns(&self) -> usize {
        self.shared.open_conns.load(Ordering::Relaxed)
    }
}

/// Handle to a running mux thread.
#[derive(Debug)]
pub struct MuxHandle {
    shared: Arc<MuxShared>,
    handle: Option<JoinHandle<()>>,
}

impl MuxHandle {
    /// A cloneable return-path handle for pool workers.
    pub fn returner(&self) -> Returner {
        Returner {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Hands a keep-alive connection back for its next request.
    pub fn return_conn(&self, conn: ReturnedConn) {
        self.shared.returns.lock().unwrap().push(conn);
        self.shared.wake();
    }

    /// Connections currently tracked by the mux (gauge).
    pub fn open_conns(&self) -> usize {
        self.shared.open_conns.load(Ordering::Relaxed)
    }

    /// Stops the mux: the listener closes, tracked connections are
    /// dropped (in-flight *worker* requests are unaffected — their
    /// sockets moved out of the mux at dispatch), and the thread joins.
    pub fn stop(mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        self.shared.wake();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

enum State {
    /// Accumulating head bytes (for an idle keep-alive connection the
    /// buffer starts with the previous request's pipelined leftover).
    ReadHead { buf: Vec<u8>, fresh: bool },
    /// Head parsed; accumulating the declared body. `buf` holds body
    /// bytes only (head already stripped); `reserved` is this
    /// connection's charge against the global buffer budget.
    ReadBody {
        head: Box<Head>,
        buf: Vec<u8>,
        need: usize,
        reserved: usize,
    },
    /// Flushing an error/shed response the mux itself produced.
    Write {
        buf: Vec<u8>,
        off: usize,
        then: After,
    },
    /// Write done; draining the client's unread bytes so closing cannot
    /// RST the response away.
    Linger { budget: usize },
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum After {
    Close,
    Linger,
}

struct Conn {
    stream: TcpStream,
    state: State,
    deadline: Instant,
    served: u32,
}

enum Verdict {
    /// Keep tracking (possibly in a new state).
    Keep,
    /// Forget the connection (dispatched or closed).
    Gone,
}

struct Mux {
    listener: TcpListener,
    cfg: MuxConfig,
    gate: Arc<Gate<ConnJob>>,
    stats: Arc<Stats>,
    shared: Arc<MuxShared>,
    wake_rx: TcpStream,
    conns: Vec<Conn>,
    buffered: usize,
}

/// Builds the self-pipe the mux sleeps on: a loopback socket pair (std
/// has no `pipe(2)`), both ends non-blocking.
fn wake_pair() -> io::Result<(TcpStream, TcpStream)> {
    let l = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(l.local_addr()?)?;
    let (rx, _) = l.accept()?;
    rx.set_nonblocking(true)?;
    tx.set_nonblocking(true)?;
    Ok((tx, rx))
}

/// Spawns the mux thread over an already-bound listener.
pub fn spawn(
    listener: TcpListener,
    cfg: MuxConfig,
    gate: Arc<Gate<ConnJob>>,
    stats: Arc<Stats>,
) -> io::Result<MuxHandle> {
    listener.set_nonblocking(true)?;
    let (wake_tx, wake_rx) = wake_pair()?;
    let shared = Arc::new(MuxShared {
        returns: Mutex::new(Vec::new()),
        open_conns: AtomicUsize::new(0),
        stop: AtomicBool::new(false),
        wake_tx: Mutex::new(wake_tx),
    });
    let mux_shared = Arc::clone(&shared);
    let handle = thread::Builder::new()
        .name("srtw-serve-mux".into())
        .spawn(move || {
            Mux {
                listener,
                cfg,
                gate,
                stats,
                shared: mux_shared,
                wake_rx,
                conns: Vec::new(),
                buffered: 0,
            }
            .run()
        })?;
    Ok(MuxHandle {
        shared,
        handle: Some(handle),
    })
}

impl Mux {
    fn run(mut self) {
        while !self.shared.stop.load(Ordering::Relaxed) {
            self.adopt_returns();
            self.poll_once();
            self.sweep_deadlines();
            self.shared
                .open_conns
                .store(self.conns.len(), Ordering::Relaxed);
        }
        // Drain: drop the listener and every tracked connection. Requests
        // already dispatched to workers are unaffected; connections still
        // mid-read have no complete request to answer.
        self.conns.clear();
        self.shared.open_conns.store(0, Ordering::Relaxed);
    }

    /// One poll + event-handling round.
    fn poll_once(&mut self) {
        let now = Instant::now();
        let next_deadline = self
            .conns
            .iter()
            .map(|c| c.deadline)
            .min()
            .map(|d| d.saturating_duration_since(now))
            .unwrap_or(Duration::from_millis(500));
        let timeout_ms = next_deadline.min(Duration::from_millis(500)).as_millis() as i32 + 1;

        // Connections accepted/adopted during event handling are appended
        // past `polled` and have no pollfd this round; the walk below must
        // not index fds for them.
        let polled = self.conns.len();
        let mut fds = Vec::with_capacity(polled + 2);
        fds.push(PollFd::new(raw_fd(&self.wake_rx), POLLIN));
        fds.push(PollFd::new(raw_fd(&self.listener), POLLIN));
        for c in &self.conns {
            let interest = match c.state {
                State::ReadHead { .. } | State::ReadBody { .. } | State::Linger { .. } => POLLIN,
                State::Write { .. } => POLLOUT,
            };
            fds.push(PollFd::new(raw_fd(&c.stream), interest));
        }
        let n = sys::poll_fds(&mut fds, timeout_ms);
        if n <= 0 {
            return; // timeout, EINTR, or nothing ready: sweep and re-poll
        }
        if fds[0].readable() {
            let mut sink = [0u8; 64];
            while matches!(self.wake_rx.read(&mut sink), Ok(n) if n > 0) {}
            // Returns are adopted at the top of the loop.
        }
        if fds[1].readable() {
            self.accept_burst();
        }
        // Walk the polled connections back-to-front so swap_remove keeps
        // unvisited (smaller) indices aligned with their pollfds; tail
        // elements moved into visited slots are the freshly accepted
        // connections, which had no pollfd anyway.
        for i in (0..polled).rev() {
            let ready = fds[i + 2];
            if ready.revents == 0 {
                continue;
            }
            let mut conn = self.conns.swap_remove(i);
            match self.advance(&mut conn) {
                Verdict::Keep => self.conns.push(conn),
                Verdict::Gone => {}
            }
        }
    }

    fn adopt_returns(&mut self) {
        let returned: Vec<ReturnedConn> = std::mem::take(&mut *self.shared.returns.lock().unwrap());
        for r in returned {
            if r.stream.set_nonblocking(true).is_err() {
                continue;
            }
            let mut conn = Conn {
                stream: r.stream,
                state: State::ReadHead {
                    buf: r.leftover,
                    fresh: false,
                },
                // Idle keep-alive window; tightens to the header deadline
                // once the next request starts arriving.
                deadline: Instant::now() + self.cfg.read_timeout,
                served: r.served,
            };
            // A pipelined request may already be fully buffered.
            if let Verdict::Keep = self.try_advance_buffer(&mut conn) {
                self.conns.push(conn);
            }
        }
    }

    fn accept_burst(&mut self) {
        for _ in 0..ACCEPT_BURST {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_write_timeout(Some(self.cfg.read_timeout));
                    let tracked = self.conns.len();
                    if tracked >= self.cfg.max_conns + self.cfg.max_conns / 4 + 16 {
                        // Hard cap (sheds already queued for their write):
                        // drop without a response; accounting only.
                        self.stats.shed.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    if tracked >= self.cfg.max_conns {
                        self.shed(stream, "shed", "connection limit reached; retry later");
                        continue;
                    }
                    let mut conn = Conn {
                        stream,
                        state: State::ReadHead {
                            buf: Vec::new(),
                            fresh: true,
                        },
                        deadline: Instant::now() + self.cfg.header_timeout,
                        served: 0,
                    };
                    // Fast path: the request is often already readable.
                    if let Verdict::Keep = self.advance(&mut conn) {
                        self.conns.push(conn);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => return, // transient (EMFILE, resets): retry next round
            }
        }
    }

    /// Sheds a brand-new connection with the adaptive 503.
    fn shed(&mut self, stream: TcpStream, kind: &str, message: &str) {
        self.stats.shed.fetch_add(1, Ordering::Relaxed);
        let retry = self
            .stats
            .retry_after_secs(self.gate.depth(), self.cfg.workers);
        let resp = Response::json(503, crate::server::error_body(4, kind, message, vec![]))
            .with_header("Retry-After", retry.to_string());
        let mut conn = Conn {
            stream,
            state: State::Write {
                buf: resp.to_bytes(),
                off: 0,
                then: After::Linger,
            },
            deadline: Instant::now() + self.cfg.read_timeout,
            served: 0,
        };
        if let Verdict::Keep = self.advance(&mut conn) {
            self.conns.push(conn);
        }
    }

    /// Converts a connection to flushing `resp`, counting it `failed`
    /// when `resp` is a client-error answer produced here.
    fn respond(&mut self, conn: &mut Conn, resp: Response, then: After) {
        conn.state = State::Write {
            buf: resp.to_bytes(),
            off: 0,
            then,
        };
        conn.deadline = Instant::now() + self.cfg.read_timeout;
    }

    /// Drives a connection as far as its buffered bytes and socket allow.
    fn advance(&mut self, conn: &mut Conn) -> Verdict {
        loop {
            match &mut conn.state {
                State::ReadHead { buf, .. } => {
                    // Read whatever is available, capped just past the
                    // head limit so an oversized head is detectable.
                    match read_some(&mut conn.stream, buf, crate::http::MAX_HEAD_BYTES + 1) {
                        ReadSome::Closed => {
                            // EOF: silent close — either an idle client
                            // hanging up (fine) or an incomplete request
                            // (nobody left to answer).
                            return Verdict::Gone;
                        }
                        ReadSome::Blocked | ReadSome::Progress => {}
                    }
                    return self.try_advance_buffer(conn);
                }
                State::ReadBody { buf, need, .. } => {
                    let want = *need;
                    match read_some(&mut conn.stream, buf, want) {
                        ReadSome::Closed => {
                            if let State::ReadBody { reserved, .. } = conn.state {
                                self.buffered -= reserved;
                            }
                            return Verdict::Gone;
                        }
                        ReadSome::Blocked | ReadSome::Progress => {}
                    }
                    if buf.len() < want {
                        return Verdict::Keep;
                    }
                    return self.dispatch(conn);
                }
                State::Write { buf, off, then } => {
                    while *off < buf.len() {
                        match conn.stream.write(&buf[*off..]) {
                            Ok(0) => return Verdict::Gone,
                            Ok(n) => *off += n,
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                return Verdict::Keep
                            }
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                            Err(_) => return Verdict::Gone,
                        }
                    }
                    let after = *then;
                    let _ = conn.stream.shutdown(Shutdown::Write);
                    if after == After::Close {
                        return Verdict::Gone;
                    }
                    conn.state = State::Linger {
                        budget: LINGER_BUDGET,
                    };
                    conn.deadline = Instant::now() + LINGER;
                }
                State::Linger { budget } => {
                    let mut sink = [0u8; 8 * 1024];
                    loop {
                        match conn.stream.read(&mut sink) {
                            Ok(0) => return Verdict::Gone,
                            Ok(n) => {
                                *budget = budget.saturating_sub(n);
                                if *budget == 0 {
                                    return Verdict::Gone;
                                }
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                return Verdict::Keep
                            }
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                            Err(_) => return Verdict::Gone,
                        }
                    }
                }
            }
        }
    }

    /// Advances a `ReadHead` connection purely from its buffer (no
    /// socket reads): scans/parses the head, checks admission, and moves
    /// to body accumulation or dispatch.
    fn try_advance_buffer(&mut self, conn: &mut Conn) -> Verdict {
        let State::ReadHead { buf, fresh } = &mut conn.state else {
            return Verdict::Keep;
        };
        if !*fresh && !buf.is_empty() {
            // The next keep-alive request has started: tighten the idle
            // window to the header deadline. (Idempotent enough — the
            // deadline only ever tightens while a head is pending.)
            conn.deadline = conn
                .deadline
                .min(Instant::now() + self.cfg.header_timeout);
        }
        match scan_head(buf) {
            HeadScan::Partial => Verdict::Keep,
            HeadScan::TooLarge => {
                self.stats.oversized_heads.fetch_add(1, Ordering::Relaxed);
                self.stats.failed.fetch_add(1, Ordering::Relaxed);
                let resp = crate::server::request_error_response(&RequestError::HeadTooLarge);
                self.respond(conn, resp, After::Linger);
                self.advance_tail(conn)
            }
            HeadScan::Complete { head_len } => {
                let head = match parse_head(&buf[..head_len]) {
                    Ok(h) => h,
                    Err(e) => {
                        self.stats.failed.fetch_add(1, Ordering::Relaxed);
                        let resp = crate::server::request_error_response(&e);
                        self.respond(conn, resp, After::Linger);
                        return self.advance_tail(conn);
                    }
                };
                let need = match body_need(&head, self.cfg.body_cap) {
                    Ok(n) => n,
                    Err(e) => {
                        self.stats.failed.fetch_add(1, Ordering::Relaxed);
                        let resp = crate::server::request_error_response(&e);
                        self.respond(conn, resp, After::Linger);
                        return self.advance_tail(conn);
                    }
                };
                // Shed *before* buffering the body: a full queue or an
                // exhausted body budget answers 503 at the head.
                if self.gate.is_full() {
                    self.stats.shed.fetch_add(1, Ordering::Relaxed);
                    let retry = self
                        .stats
                        .retry_after_secs(self.gate.depth(), self.cfg.workers);
                    let resp = Response::json(
                        503,
                        crate::server::error_body(
                            4,
                            "shed",
                            "admission queue full; retry later",
                            vec![],
                        ),
                    )
                    .with_header("Retry-After", retry.to_string());
                    self.respond(conn, resp, After::Linger);
                    return self.advance_tail(conn);
                }
                if need > 0 && self.buffered + need > self.cfg.max_buffered {
                    self.stats.shed.fetch_add(1, Ordering::Relaxed);
                    let retry = self
                        .stats
                        .retry_after_secs(self.gate.depth(), self.cfg.workers);
                    let resp = Response::json(
                        503,
                        crate::server::error_body(
                            4,
                            "shed",
                            "request-buffer budget exhausted; retry later",
                            vec![],
                        ),
                    )
                    .with_header("Retry-After", retry.to_string());
                    self.respond(conn, resp, After::Linger);
                    return self.advance_tail(conn);
                }
                self.buffered += need;
                let body = buf[head_len..].to_vec();
                conn.state = State::ReadBody {
                    head: Box::new(head),
                    buf: body,
                    need,
                    reserved: need,
                };
                conn.deadline = Instant::now() + self.cfg.read_timeout;
                if let State::ReadBody { buf, .. } = &conn.state {
                    if buf.len() >= need {
                        return self.dispatch(conn);
                    }
                }
                Verdict::Keep
            }
        }
    }

    /// Runs the Write/Linger tail of a response the buffer path queued.
    fn advance_tail(&mut self, conn: &mut Conn) -> Verdict {
        self.advance(conn)
    }

    /// Hands a complete request to the pool (or sheds if the gate filled
    /// up while the body streamed in).
    fn dispatch(&mut self, conn: &mut Conn) -> Verdict {
        let state = std::mem::replace(
            &mut conn.state,
            State::Linger { budget: 0 },
        );
        let State::ReadBody {
            head,
            mut buf,
            need,
            reserved,
        } = state
        else {
            return Verdict::Gone;
        };
        self.buffered -= reserved;
        let leftover = buf.split_off(need);
        let request = head.into_request(buf);
        let Ok(stream) = conn.stream.try_clone() else {
            return Verdict::Gone;
        };
        let _ = stream.set_nonblocking(false);
        if conn.served > 0 {
            self.stats.reused.fetch_add(1, Ordering::Relaxed);
        }
        let job = ConnJob {
            stream,
            request,
            served: conn.served,
            leftover,
        };
        match self.gate.offer(job) {
            Ok(()) => {
                self.stats.accepted.fetch_add(1, Ordering::Relaxed);
                Verdict::Gone
            }
            Err(Admission::Shed(job)) => {
                let _ = job.stream.set_nonblocking(true);
                conn.stream = job.stream;
                self.stats.shed.fetch_add(1, Ordering::Relaxed);
                let retry = self
                    .stats
                    .retry_after_secs(self.gate.depth(), self.cfg.workers);
                let resp = Response::json(
                    503,
                    crate::server::error_body(4, "shed", "admission queue full; retry later", vec![]),
                )
                .with_header("Retry-After", retry.to_string());
                self.respond(conn, resp, After::Close);
                self.advance_tail(conn)
            }
            Err(Admission::Closed(job)) => {
                let _ = job.stream.set_nonblocking(true);
                conn.stream = job.stream;
                self.stats.shed.fetch_add(1, Ordering::Relaxed);
                let resp = Response::json(
                    503,
                    crate::server::error_body(4, "draining", "server is draining; retry elsewhere", vec![]),
                );
                self.respond(conn, resp, After::Close);
                self.advance_tail(conn)
            }
        }
    }

    /// Expires connections past their deadlines: stalled requests get a
    /// typed 408, idle keep-alive connections and stuck writes close.
    fn sweep_deadlines(&mut self) {
        let now = Instant::now();
        for i in (0..self.conns.len()).rev() {
            if self.conns[i].deadline > now {
                continue;
            }
            let mut conn = self.conns.swap_remove(i);
            let verdict = match &conn.state {
                State::ReadHead { buf, fresh } => {
                    if buf.is_empty() && !fresh {
                        Verdict::Gone // idle keep-alive: close silently
                    } else {
                        self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                        self.stats.failed.fetch_add(1, Ordering::Relaxed);
                        let resp = crate::server::request_error_response(&RequestError::Timeout);
                        self.respond(&mut conn, resp, After::Close);
                        self.advance(&mut conn)
                    }
                }
                State::ReadBody { reserved, .. } => {
                    self.buffered -= *reserved;
                    self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                    self.stats.failed.fetch_add(1, Ordering::Relaxed);
                    let resp = crate::server::request_error_response(&RequestError::Timeout);
                    conn.state = State::Write {
                        buf: resp.to_bytes(),
                        off: 0,
                        then: After::Close,
                    };
                    conn.deadline = Instant::now() + self.cfg.read_timeout;
                    self.advance(&mut conn)
                }
                State::Write { .. } | State::Linger { .. } => Verdict::Gone,
            };
            if let Verdict::Keep = verdict {
                self.conns.push(conn);
            }
        }
    }
}

/// The raw descriptor the poll set watches; off unix the fallback poller
/// ignores it, so any value does.
#[cfg(unix)]
fn raw_fd<T: std::os::unix::io::AsRawFd>(t: &T) -> i32 {
    t.as_raw_fd()
}

#[cfg(not(unix))]
fn raw_fd<T>(_t: &T) -> i32 {
    -1
}

/// `true` once `stream`'s peer is gone. The probe is a zero-timeout
/// `poll(2)` for readability on the raw descriptor: a client that has
/// already delivered its complete request sends nothing more, so the
/// socket turning readable means FIN, RST, or hangup. A nonblocking
/// `peek` would work too, but flipping `O_NONBLOCK` acts on the *shared*
/// file description and would race response writes on a clone of the
/// stream — so the flag is never touched.
#[cfg(unix)]
pub(crate) fn peer_closed(stream: &TcpStream) -> bool {
    let mut fds = [PollFd::new(raw_fd(stream), POLLIN)];
    sys::poll_fds(&mut fds, 0) > 0 && fds[0].readable()
}

/// Off unix the fallback poller reports every descriptor ready, which
/// would read as a permanent disconnect; the probe degrades to "never
/// disconnected" instead (cancellation then rests on write failures).
#[cfg(not(unix))]
pub(crate) fn peer_closed(_stream: &TcpStream) -> bool {
    false
}

enum ReadSome {
    Progress,
    Blocked,
    Closed,
}

/// Reads available bytes into `buf` up to `cap` total, without blocking.
fn read_some(stream: &mut TcpStream, buf: &mut Vec<u8>, cap: usize) -> ReadSome {
    let mut progressed = false;
    let mut chunk = [0u8; 8 * 1024];
    while buf.len() < cap {
        let want = chunk.len().min(cap - buf.len());
        match stream.read(&mut chunk[..want]) {
            Ok(0) => return ReadSome::Closed,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                progressed = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                return if progressed {
                    ReadSome::Progress
                } else {
                    ReadSome::Blocked
                };
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return ReadSome::Closed,
        }
    }
    ReadSome::Progress
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::SocketAddr;

    fn mux_fixture(cfg: MuxConfig) -> (SocketAddr, Arc<Gate<ConnJob>>, MuxHandle) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let gate = Arc::new(Gate::new(8));
        let handle = spawn(listener, cfg, Arc::clone(&gate), Arc::new(Stats::new())).unwrap();
        (addr, gate, handle)
    }

    fn small_cfg() -> MuxConfig {
        MuxConfig {
            max_conns: 32,
            header_timeout: Duration::from_millis(200),
            read_timeout: Duration::from_millis(400),
            max_buffered: 1 << 20,
            body_cap: 1 << 20,
            workers: 1,
        }
    }

    fn read_all(mut s: TcpStream) -> String {
        let mut out = Vec::new();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let _ = s.read_to_end(&mut out);
        String::from_utf8_lossy(&out).into_owned()
    }

    #[test]
    fn complete_request_is_dispatched_with_its_body() {
        let (addr, gate, handle) = mux_fixture(small_cfg());
        let mut c = TcpStream::connect(addr).unwrap();
        c.write_all(b"POST /analyze HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello")
            .unwrap();
        let job = gate.take().expect("job dispatched");
        assert_eq!(job.request.method, "POST");
        assert_eq!(job.request.body, b"hello");
        assert_eq!(job.served, 0);
        assert!(job.leftover.is_empty());
        handle.stop();
    }

    #[test]
    fn slow_loris_head_gets_a_typed_408_not_a_worker() {
        let (addr, gate, handle) = mux_fixture(small_cfg());
        let mut c = TcpStream::connect(addr).unwrap();
        // Drip a partial head and stall past the header deadline.
        c.write_all(b"GET /healthz HT").unwrap();
        let body = read_all(c);
        assert!(body.starts_with("HTTP/1.1 408 "), "{body}");
        assert!(body.contains("\"kind\":\"input\""), "{body}");
        assert_eq!(gate.depth(), 0, "the stalled head must never dispatch");
        handle.stop();
    }

    #[test]
    fn oversized_head_gets_431() {
        let (addr, _gate, handle) = mux_fixture(small_cfg());
        let mut c = TcpStream::connect(addr).unwrap();
        let huge = format!(
            "GET / HTTP/1.1\r\nX-Filler: {}\r\n\r\n",
            "a".repeat(crate::http::MAX_HEAD_BYTES)
        );
        c.write_all(huge.as_bytes()).unwrap();
        let body = read_all(c);
        assert!(body.starts_with("HTTP/1.1 431 "), "{body}");
        handle.stop();
    }

    #[test]
    fn connection_cap_sheds_with_503() {
        let mut cfg = small_cfg();
        cfg.max_conns = 2;
        cfg.header_timeout = Duration::from_secs(5);
        let (addr, _gate, handle) = mux_fixture(cfg);
        // Two idle connections occupy the cap (no bytes sent).
        let _a = TcpStream::connect(addr).unwrap();
        let _b = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        let c = TcpStream::connect(addr).unwrap();
        let body = read_all(c);
        assert!(body.starts_with("HTTP/1.1 503 "), "{body}");
        assert!(body.contains("retry later"), "{body}");
        assert!(body.contains("Retry-After:"), "{body}");
        handle.stop();
    }

    #[test]
    fn returned_connection_serves_a_pipelined_request() {
        let (addr, gate, handle) = mux_fixture(small_cfg());
        let mut c = TcpStream::connect(addr).unwrap();
        // Two pipelined requests in one write.
        c.write_all(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n")
            .unwrap();
        let first = gate.take().expect("first request");
        assert_eq!(first.request.target, "/a");
        assert!(!first.leftover.is_empty());
        // Worker-style return: hand the connection back with the
        // leftover; the mux must dispatch the second request from the
        // buffer alone.
        handle.return_conn(ReturnedConn {
            stream: first.stream,
            served: 1,
            leftover: first.leftover,
        });
        let second = gate.take().expect("pipelined request");
        assert_eq!(second.request.target, "/b");
        assert_eq!(second.served, 1);
        handle.stop();
    }
}
