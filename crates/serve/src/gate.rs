//! The bounded admission queue ("gate") between the acceptor and the
//! worker pool.
//!
//! The gate is the server's *only* buffer of pending work, and it is
//! bounded: when it is full the acceptor sheds the connection with a 503
//! instead of queueing it, so memory stays bounded no matter how hard
//! clients push — load shedding is an admission-control decision, not an
//! out-of-memory crash. Closing the gate (graceful drain) lets workers
//! finish what was already admitted: `take` keeps handing out queued jobs
//! and only returns `None` once the gate is both closed and empty.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why an offer was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum Admission<J> {
    /// The queue is at capacity; the job is handed back (shed → 503 +
    /// `Retry-After`).
    Shed(J),
    /// The gate is closed (draining); the job is handed back.
    Closed(J),
}

struct GateState<J> {
    queue: VecDeque<J>,
    open: bool,
}

/// A bounded MPMC queue with explicit admission control.
#[derive(Debug)]
pub struct Gate<J> {
    state: Mutex<GateState<J>>,
    takers: Condvar,
    cap: usize,
}

impl<J> std::fmt::Debug for GateState<J> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GateState")
            .field("queued", &self.queue.len())
            .field("open", &self.open)
            .finish()
    }
}

impl<J> Gate<J> {
    /// An open gate holding at most `cap` pending jobs (`cap` is clamped
    /// to at least 1 — a gate that can admit nothing would shed even an
    /// idle server's work).
    pub fn new(cap: usize) -> Gate<J> {
        Gate {
            state: Mutex::new(GateState {
                queue: VecDeque::new(),
                open: true,
            }),
            takers: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Admits `job`, or hands it back when the queue is full or the gate
    /// is closed. Never blocks.
    pub fn offer(&self, job: J) -> Result<(), Admission<J>> {
        let mut s = self.state.lock().unwrap();
        if !s.open {
            return Err(Admission::Closed(job));
        }
        if s.queue.len() >= self.cap {
            return Err(Admission::Shed(job));
        }
        s.queue.push_back(job);
        drop(s);
        self.takers.notify_one();
        Ok(())
    }

    /// Takes the next job, blocking while the gate is open but empty.
    /// Returns `None` once the gate is closed *and* drained — admitted
    /// work is never dropped by a close.
    pub fn take(&self) -> Option<J> {
        let mut s = self.state.lock().unwrap();
        loop {
            if let Some(job) = s.queue.pop_front() {
                return Some(job);
            }
            if !s.open {
                return None;
            }
            s = self.takers.wait(s).unwrap();
        }
    }

    /// Closes the gate: future offers are refused, blocked takers wake,
    /// and already-admitted jobs drain normally.
    pub fn close(&self) {
        self.state.lock().unwrap().open = false;
        self.takers.notify_all();
    }

    /// Number of jobs currently queued (racy by nature; for stats).
    pub fn depth(&self) -> usize {
        self.state.lock().unwrap().queue.len()
    }

    /// `true` while the queue is at capacity (racy by nature; the
    /// acceptor uses it to shed *before* buffering a request body —
    /// [`Gate::offer`] remains the authoritative admission decision).
    pub fn is_full(&self) -> bool {
        self.state.lock().unwrap().queue.len() >= self.cap
    }

    /// `true` once [`Gate::close`] has been called.
    pub fn is_closed(&self) -> bool {
        !self.state.lock().unwrap().open
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sheds_at_capacity_and_hands_the_job_back() {
        let g = Gate::new(2);
        assert!(g.offer(1).is_ok());
        assert!(g.offer(2).is_ok());
        assert_eq!(g.offer(3), Err(Admission::Shed(3)));
        assert_eq!(g.depth(), 2);
        assert_eq!(g.take(), Some(1));
        assert!(g.offer(3).is_ok(), "space freed by take re-admits");
    }

    #[test]
    fn close_refuses_new_work_but_drains_admitted_work() {
        let g = Gate::new(4);
        g.offer("a").unwrap();
        g.offer("b").unwrap();
        g.close();
        assert_eq!(g.offer("c"), Err(Admission::Closed("c")));
        assert_eq!(g.take(), Some("a"));
        assert_eq!(g.take(), Some("b"));
        assert_eq!(g.take(), None);
        assert!(g.is_closed());
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let g = Gate::new(0);
        assert!(g.offer(1).is_ok());
        assert_eq!(g.offer(2), Err(Admission::Shed(2)));
    }

    #[test]
    fn blocked_takers_wake_on_close() {
        let g = Arc::new(Gate::<u8>::new(1));
        let remote = Arc::clone(&g);
        let taker = std::thread::spawn(move || remote.take());
        std::thread::sleep(std::time::Duration::from_millis(20));
        g.close();
        assert_eq!(taker.join().unwrap(), None);
    }

    #[test]
    fn concurrent_offers_and_takes_preserve_every_admitted_job() {
        let g = Arc::new(Gate::<u32>::new(8));
        let taken: Vec<u32> = std::thread::scope(|s| {
            let takers: Vec<_> = (0..3)
                .map(|_| {
                    let g = Arc::clone(&g);
                    s.spawn(move || {
                        let mut got = Vec::new();
                        while let Some(j) = g.take() {
                            got.push(j);
                        }
                        got
                    })
                })
                .collect();
            let mut admitted = 0u32;
            for i in 0..1_000 {
                if g.offer(i).is_ok() {
                    admitted += 1;
                }
            }
            // Let the queue drain before closing so `admitted` jobs are
            // all actually handed out.
            while g.depth() > 0 {
                std::thread::yield_now();
            }
            g.close();
            let mut all: Vec<u32> = takers
                .into_iter()
                .flat_map(|t| t.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all.len() as u32, admitted);
            all
        });
        // No duplicates: each admitted job was taken exactly once.
        let mut dedup = taken.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), taken.len());
    }
}
