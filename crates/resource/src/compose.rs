//! Composition of servers: tandem concatenation and leftover service.
//!
//! * [`concatenate_upto`] — a flow crossing servers `β₁, β₂, …` in tandem
//!   sees the convolved end-to-end service `β₁ ⊗ β₂ ⊗ …` (pay-bursts-only-
//!   once), computed finitarily on a caller-chosen horizon.
//! * [`leftover_blind`] — under blind (arbitrary-order) multiplexing, a
//!   stream competing with interference bounded by `α` retains at least
//!   `[β − α]⁺↑` (the non-decreasing non-negative closure).
//! * [`leftover_chain`] — fixed-priority: each stream's leftover after all
//!   higher-priority arrival curves are subtracted.

use srtw_minplus::{BudgetMeter, Curve, Pipe, Q};

/// End-to-end service curve of a tandem of servers, exact on `[0, h]`.
///
/// # Examples
///
/// ```
/// use srtw_resource::concatenate_upto;
/// use srtw_minplus::{Curve, Q};
/// let b1 = Curve::rate_latency(Q::int(2), Q::int(1));
/// let b2 = Curve::rate_latency(Q::ONE, Q::int(2));
/// let e2e = concatenate_upto(&[b1, b2], Q::int(40));
/// // Latencies add, the slower rate dominates.
/// assert_eq!(e2e.eval(Q::int(3)), Q::ZERO);
/// assert_eq!(e2e.eval(Q::int(7)), Q::int(4));
/// ```
pub fn concatenate_upto(betas: &[Curve], h: Q) -> Curve {
    let mut iter = betas.iter();
    let first = iter
        .next()
        .expect("concatenate_upto needs at least one server")
        .clone();
    // Fused convolution chain: one scratch arena across all hops, no
    // intermediate validation scans, canonicalized once at the exit.
    let meter = BudgetMeter::unlimited();
    iter.fold(Pipe::new(first, &meter), |acc, b| {
        acc.conv_upto(b, h)
            .expect("unmetered tandem concatenation failed")
    })
    .finish()
}

/// Leftover (remaining) lower service curve under blind multiplexing:
/// `β′ = sup_{s≤t} max(0, β(s) − α(s))`.
///
/// Sound for any work-conserving arbitration when `α` upper-bounds the
/// total interfering workload.
pub fn leftover_blind(beta: &Curve, alpha: &Curve) -> Curve {
    beta.sub_clamped_monotone(alpha)
}

/// Fixed-priority leftovers: stream `i` (0 = highest priority) receives the
/// leftover of `beta` after the arrival curves of all higher-priority
/// streams.
pub fn leftover_chain(beta: &Curve, alphas: &[Curve]) -> Vec<Curve> {
    let mut out = Vec::with_capacity(alphas.len());
    // One fused subtraction chain; each level's published curve is a
    // canonical snapshot of the pipeline interior.
    let meter = BudgetMeter::unlimited();
    let mut current = Pipe::new(beta.clone(), &meter);
    for alpha in alphas {
        out.push(current.current().clone());
        current = current
            .sub_clamped(alpha)
            .expect("unmetered leftover subtraction failed");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtw_minplus::q;

    #[test]
    fn concatenation_of_rate_latencies() {
        let b1 = Curve::rate_latency(Q::int(2), Q::int(1));
        let b2 = Curve::rate_latency(Q::ONE, Q::int(2));
        let b3 = Curve::rate_latency(Q::int(3), Q::ONE);
        let e2e = concatenate_upto(&[b1, b2, b3], Q::int(60));
        let expect = Curve::rate_latency(Q::ONE, Q::int(4));
        for i in 0..=120 {
            let t = q(i, 2);
            assert_eq!(e2e.eval(t), expect.eval(t), "at {t}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn concatenate_empty_panics() {
        let _ = concatenate_upto(&[], Q::int(10));
    }

    #[test]
    fn leftover_blind_basic() {
        // Unit server minus periodic interference of 1 every 4.
        let beta = Curve::affine(Q::ZERO, Q::ONE);
        let alpha = Curve::staircase(Q::int(4), Q::ONE);
        let left = leftover_blind(&beta, &alpha);
        // Long-run leftover rate 1 − 1/4 = 3/4.
        assert_eq!(left.rate(), q(3, 4));
        // Leftover is zero until the server catches up with the burst.
        assert_eq!(left.eval(Q::ONE), Q::ZERO);
        assert!(left.eval(Q::int(100)).is_positive());
        // Monotone.
        let mut prev = Q::ZERO;
        for i in 0..200 {
            let v = left.eval(q(i, 2));
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn leftover_chain_priorities() {
        let beta = Curve::affine(Q::ZERO, Q::ONE);
        let a1 = Curve::staircase(Q::int(10), Q::int(2));
        let a2 = Curve::staircase(Q::int(10), Q::int(3));
        let chain = leftover_chain(&beta, &[a1, a2]);
        assert_eq!(chain.len(), 2);
        // Highest priority sees the full server.
        assert_eq!(chain[0], beta);
        // Second sees the leftover; rates: 1 − 2/10 = 4/5.
        assert_eq!(chain[1].rate(), q(4, 5));
        // Leftovers shrink with priority level (checked pointwise).
        for i in 0..100 {
            let t = q(i, 1);
            assert!(chain[1].eval(t) <= chain[0].eval(t));
        }
    }
}
