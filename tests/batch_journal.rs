//! End-to-end durability coverage of the batch journal, driven through
//! the real binary:
//!
//! - **Crash-point sweep** — for every journal record N, both fault
//!   kinds (`torn@N`, `jcorrupt@N`): the faulted run exits 3 mid-batch,
//!   and `--resume` replays the durable prefix and produces a final
//!   `--json` report *byte-identical* (modulo the two wall-clock
//!   fields) to an uninterrupted run of the same manifest.
//! - **Replica resume** — `srtw serve --replicas 2 --journal … --fault
//!   torn@2`: the faulted replica aborts mid-`/batch`-stream, the
//!   supervision tree restarts it, and the re-POSTed manifest replays
//!   the journaled job instead of recomputing it (asserted via per-job
//!   wall-time provenance: replayed lines are byte-identical across
//!   responses).
//! - **Disconnect cancellation** — a `/batch` client that hangs up
//!   mid-stream gets its remaining (deliberately slow) jobs cancelled:
//!   the server's inflight gauge returns to zero long before the jobs
//!   could have completed.
#![cfg(unix)]

use srtw::serve::http::client_roundtrip;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A scratch directory holding `n` copies of a system plus a manifest.
struct Fixture {
    dir: PathBuf,
    manifest: PathBuf,
}

impl Fixture {
    fn new(tag: &str, system: &str, n: usize) -> Fixture {
        let dir = std::env::temp_dir().join(format!(
            "srtw-batch-journal-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create fixture dir");
        let text = std::fs::read_to_string(
            Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("systems/{system}")),
        )
        .expect("read seed system");
        let mut manifest = String::new();
        for i in 0..n {
            let name = format!("job-{i}.srtw");
            std::fs::write(dir.join(&name), &text).expect("write job copy");
            manifest.push_str(&name);
            manifest.push('\n');
        }
        let manifest_path = dir.join("manifest.txt");
        std::fs::write(&manifest_path, manifest).expect("write manifest");
        Fixture {
            manifest: manifest_path,
            dir,
        }
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn srtw(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_srtw"))
        .args(args)
        .output()
        .expect("srtw runs")
}

/// Zeroes the two wall-clock fields (`wall_ms`, `runtime_secs`) — the
/// only nondeterminism in a batch report over deterministic systems.
fn normalize(doc: &str) -> String {
    let mut out = doc.to_string();
    for key in ["\"wall_ms\":", "\"runtime_secs\":"] {
        let mut next = String::with_capacity(out.len());
        let mut rest = out.as_str();
        while let Some(pos) = rest.find(key) {
            let after = pos + key.len();
            next.push_str(&rest[..after]);
            next.push('0');
            let tail = &rest[after..];
            let end = tail
                .find(|c: char| c != '.' && c != '-' && c != '+' && c != 'e' && !c.is_ascii_digit())
                .unwrap_or(tail.len());
            rest = &tail[end..];
        }
        next.push_str(rest);
        out = next;
    }
    out
}

#[test]
fn crash_point_sweep_resumes_byte_identically() {
    let fx = Fixture::new("sweep", "decoder.srtw", 4);
    let manifest = fx.manifest.to_str().unwrap();

    let clean_journal = fx.dir.join("clean.journal");
    let clean = srtw(&[
        "batch",
        manifest,
        "--json",
        "--journal",
        clean_journal.to_str().unwrap(),
    ]);
    assert!(clean.status.success(), "{clean:?}");
    let expected = normalize(&String::from_utf8(clean.stdout).unwrap());

    for kind in ["torn", "jcorrupt"] {
        for n in 1..=4u32 {
            let fault = format!("{kind}@{n}");
            let journal = fx.dir.join(format!("{kind}-{n}.journal"));
            let journal = journal.to_str().unwrap();

            let crashed = srtw(&["batch", manifest, "--json", "--journal", journal, "--fault", &fault]);
            assert_eq!(
                crashed.status.code(),
                Some(3),
                "{fault}: a fired journal fault is an internal error: {crashed:?}"
            );

            let resumed = srtw(&["batch", manifest, "--json", "--journal", journal, "--resume"]);
            let stderr = String::from_utf8_lossy(&resumed.stderr).into_owned();
            assert!(resumed.status.success(), "{fault}: resume failed: {stderr}");
            // Records before the fault point are durable; the faulted
            // record itself is torn or corrupt and must NOT replay.
            assert!(
                stderr.contains(&format!("replayed {} completed job(s)", n - 1)),
                "{fault}: wrong replay count in: {stderr}"
            );
            let report = normalize(&String::from_utf8(resumed.stdout).unwrap());
            assert_eq!(
                report, expected,
                "{fault}: resumed report must be byte-identical to the uninterrupted run"
            );
        }
    }
}

#[test]
fn resume_against_a_foreign_manifest_starts_fresh() {
    let fx = Fixture::new("foreign", "decoder.srtw", 2);
    let manifest = fx.manifest.to_str().unwrap();
    let journal = fx.dir.join("x.journal");
    let journal = journal.to_str().unwrap();
    let first = srtw(&["batch", manifest, "--json", "--journal", journal]);
    assert!(first.status.success());

    // Grow the manifest: the digest changes, so --resume must refuse the
    // stale journal (warn + fresh) instead of replaying outcomes for a
    // different job set.
    let mut text = std::fs::read_to_string(&fx.manifest).unwrap();
    std::fs::write(fx.dir.join("extra.srtw"), std::fs::read(fx.dir.join("job-0.srtw")).unwrap())
        .unwrap();
    text.push_str("extra.srtw\n");
    std::fs::write(&fx.manifest, text).unwrap();

    let resumed = srtw(&["batch", manifest, "--json", "--journal", journal, "--resume"]);
    let stderr = String::from_utf8_lossy(&resumed.stderr).into_owned();
    assert!(resumed.status.success(), "{stderr}");
    assert!(
        stderr.contains("different job list"),
        "must warn about the digest mismatch: {stderr}"
    );
    assert!(
        stderr.contains("replayed 0 completed job(s)"),
        "nothing may replay across manifests: {stderr}"
    );
}

/// A running `srtw serve` process (single or replicated) with stdout
/// captured for address discovery.
struct Served {
    child: Child,
    public: SocketAddr,
    admin: Option<SocketAddr>,
    log: Arc<Mutex<Vec<String>>>,
}

impl Served {
    fn spawn(args: &[&str], expect_admin: bool) -> Served {
        let mut child = Command::new(env!("CARGO_BIN_EXE_srtw"))
            .arg("serve")
            .args(args)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn srtw serve");
        let stdout = child.stdout.take().expect("stdout was piped");
        let log = Arc::new(Mutex::new(Vec::<String>::new()));
        let sink = Arc::clone(&log);
        std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines() {
                match line {
                    Ok(line) => sink.lock().unwrap().push(line),
                    Err(_) => return,
                }
            }
        });
        let deadline = Instant::now() + Duration::from_secs(20);
        let (mut public, mut admin) = (None, None);
        while Instant::now() < deadline {
            for line in log.lock().unwrap().iter() {
                if let Some(rest) = line.strip_prefix("srtw-serve listening on ") {
                    public = rest.trim().parse().ok();
                } else if let Some(rest) = line.strip_prefix("srtw-serve supervisor admin on ") {
                    admin = rest.trim().parse().ok();
                }
            }
            if public.is_some() && (admin.is_some() || !expect_admin) {
                return Served {
                    child,
                    public: public.unwrap(),
                    admin,
                    log,
                };
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        let _ = child.kill();
        let _ = child.wait();
        panic!("serve never announced; stdout: {:?}", log.lock().unwrap());
    }

    /// Graceful stop via whichever shutdown plane this mode has.
    fn stop(mut self) {
        let target = self.admin.unwrap_or(self.public);
        let _ = client_roundtrip(&target, "POST", "/shutdown", &[], b"");
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            if let Ok(Some(_)) = self.child.try_wait() {
                return;
            }
            if Instant::now() >= deadline {
                let _ = self.child.kill();
                let _ = self.child.wait();
                panic!("serve did not drain; stdout: {:?}", self.log.lock().unwrap());
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

impl Drop for Served {
    /// Safety net for assertion failures: a panic between spawn and
    /// `stop()` must not leak a supervision tree (whose replicas would
    /// keep burning CPU under every later test and benchmark). Tries a
    /// graceful drain first so replicated mode reaps its children, then
    /// kills the parent.
    fn drop(&mut self) {
        if let Ok(Some(_)) = self.child.try_wait() {
            return;
        }
        let target = self.admin.unwrap_or(self.public);
        let _ = client_roundtrip(&target, "POST", "/shutdown", &[], b"");
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            if let Ok(Some(_)) = self.child.try_wait() {
                return;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The job lines (everything but the trailing summary) of a `/batch`
/// ndjson body.
fn job_lines(body: &str) -> Vec<String> {
    body.lines()
        .filter(|l| !l.starts_with("{\"summary\""))
        .map(str::to_string)
        .collect()
}

#[test]
fn replica_killed_by_journal_fault_resumes_without_recomputing() {
    let fx = Fixture::new("replica", "decoder.srtw", 4);
    let journal_prefix = fx.dir.join("serve.journal");
    let served = Served::spawn(
        &[
            "--addr",
            "127.0.0.1:0",
            "--replicas",
            "2",
            "--workers",
            "2",
            "--drain-ms",
            "2000",
            "--journal",
            journal_prefix.to_str().unwrap(),
            "--fault",
            "torn@2",
        ],
        true,
    );

    // Manifests use absolute paths (replicas run from the same cwd, but
    // absolute is simply unambiguous). Each probe attempt gets its own
    // digest via a comment line, so a probe that lands on the healthy
    // replica completes an independent journal and changes nothing for
    // the next attempt. The kernel load-balances accepts, so a bounded
    // number of attempts reaches the faulted replica w.h.p.
    let base: String = (0..4)
        .map(|i| format!("{}\n", fx.dir.join(format!("job-{i}.srtw")).display()))
        .collect();
    let mut crashed_manifest = None;
    for attempt in 0..25 {
        let manifest = format!("# attempt {attempt}\n{base}");
        let outcome = client_roundtrip(&served.public, "POST", "/batch", &[], manifest.as_bytes());
        match outcome {
            Err(_) => {
                // The abort reset the connection before anything usable
                // arrived — still a crash observation.
                crashed_manifest = Some(manifest);
                break;
            }
            Ok((200, _, body)) if !body.contains("{\"summary\"") => {
                // Truncated stream: the replica died mid-batch. The jobs
                // that did stream were journaled first (durable-then-
                // visible), so they must replay verbatim below.
                crashed_manifest = Some(manifest);
                break;
            }
            Ok((200, _, _)) => continue, // landed on the healthy replica
            Ok(other) => panic!("unexpected /batch answer: {other:?}"),
        }
    }
    let manifest = crashed_manifest.expect("the torn@2 fault never fired in 25 attempts");

    // Re-POST the crashed manifest. Whichever replica answers (the
    // restarted one comes back fault-free) must replay the one record
    // that became durable before the tear — never zero, never all four.
    let resume = |tag: &str| -> String {
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            match client_roundtrip(&served.public, "POST", "/batch", &[], manifest.as_bytes()) {
                Ok((200, _, body)) if body.contains("{\"summary\"") => return body,
                _ if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(100));
                }
                other => panic!("{tag}: /batch never recovered: {other:?}"),
            }
        }
    };
    let first = resume("first resume");
    assert!(
        first.lines().last().unwrap().contains("\"replayed\":1"),
        "exactly the pre-tear record replays: {first}"
    );

    // A second identical POST replays everything — and the wall-time
    // provenance proves it: every job line is byte-identical to the
    // first resume's, which a recompute (fresh wall times) cannot be.
    let second = resume("second resume");
    assert!(
        second.lines().last().unwrap().contains("\"replayed\":4"),
        "{second}"
    );
    assert_eq!(job_lines(&first), job_lines(&second));

    served.stop();
}

#[test]
fn disconnecting_batch_client_cancels_the_remaining_jobs() {
    // Three copies of the adversarial system: each exact attempt runs
    // for many seconds, so without disconnect cancellation the batch
    // holds its inflight slot far past the assertion window.
    let fx = Fixture::new("disconnect", "adversarial.srtw", 3);
    let served = Served::spawn(&["--addr", "127.0.0.1:0", "--workers", "2"], false);

    let manifest: String = (0..3)
        .map(|i| format!("{}\n", fx.dir.join(format!("job-{i}.srtw")).display()))
        .collect();
    let mut stream = TcpStream::connect(served.public).unwrap();
    write!(
        stream,
        "POST /batch HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{manifest}",
        manifest.len()
    )
    .unwrap();
    stream.flush().unwrap();
    // Wait for the chunked head — proof the batch is running — then
    // vanish.
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut first = [0u8; 16];
    stream.read_exact(&mut first).unwrap();
    assert!(first.starts_with(b"HTTP/1.1 200"));
    drop(stream);

    // The watcher polls every 50 ms, cancellation degrades within the
    // grace window: inflight must hit zero well before even one
    // adversarial exact analysis could finish.
    let deadline = Instant::now() + Duration::from_secs(8);
    loop {
        let (status, _, body) = client_roundtrip(&served.public, "GET", "/stats", &[], b"").unwrap();
        assert_eq!(status, 200);
        if body.contains("\"inflight\":0") && body.contains("\"batches\":1") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "batch was not cancelled after disconnect: {body}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    served.stop();
}
