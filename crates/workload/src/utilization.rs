//! Long-run utilization of digraph tasks: the maximum cycle ratio
//! `U = max over cycles (Σ wcet) / (Σ separation)`.
//!
//! `U` is the task's asymptotic demand rate: `rbf(t) = U·t + O(1)`. The
//! delay analyses use it for the stability check (`U` must stay below the
//! service rate for any finite bound to exist) and for busy-window horizon
//! estimates.
//!
//! The computation uses the classical parametric-improvement scheme: start
//! from the ratio of any cycle, and while a cycle with positive reduced
//! weight `Σ (wcet − λ·separation) > 0` exists (detected by Bellman–Ford
//! longest-path relaxation), replace `λ` by that cycle's exact ratio. All
//! arithmetic is exact, so the result is the exact maximum cycle ratio.

use crate::digraph::{DrtTask, VertexId};
use srtw_minplus::Q;

/// A cycle witnessing the maximum ratio: vertex sequence (first vertex not
/// repeated at the end) and the exact ratio.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalCycle {
    /// The vertices of the cycle, in order.
    pub vertices: Vec<VertexId>,
    /// The exact cycle ratio `Σ wcet / Σ separation`.
    pub ratio: Q,
}

/// The long-run utilization of the task: the maximum cycle ratio, or zero
/// for an acyclic graph (finite total demand).
///
/// # Examples
///
/// ```
/// use srtw_workload::{DrtTaskBuilder, long_run_utilization};
/// use srtw_minplus::{q, Q};
///
/// let mut b = DrtTaskBuilder::new("loop");
/// let v = b.vertex("v", Q::int(2));
/// b.edge(v, v, Q::int(5));
/// let task = b.build().unwrap();
/// assert_eq!(long_run_utilization(&task), q(2, 5));
/// ```
pub fn long_run_utilization(task: &DrtTask) -> Q {
    critical_cycle(task).map(|c| c.ratio).unwrap_or(Q::ZERO)
}

/// Finds a cycle achieving the maximum ratio (`None` for acyclic graphs).
pub fn critical_cycle(task: &DrtTask) -> Option<CriticalCycle> {
    let mut cycle = any_cycle(task)?;
    let mut lambda = cycle_ratio(task, &cycle);
    // Improvement loop: each extracted cycle has a strictly larger ratio;
    // ratios come from a finite set, so this terminates.
    loop {
        match positive_cycle(task, lambda) {
            None => {
                return Some(CriticalCycle {
                    vertices: cycle,
                    ratio: lambda,
                });
            }
            Some(better) => {
                let r = cycle_ratio(task, &better);
                if r <= lambda {
                    // Defensive: extraction failed to improve (cannot happen
                    // for a correct positive-cycle witness); stop with the
                    // current — still valid — maximum candidate.
                    return Some(CriticalCycle {
                        vertices: cycle,
                        ratio: lambda,
                    });
                }
                lambda = r;
                cycle = better;
            }
        }
    }
}

/// The exact ratio of a vertex cycle.
fn cycle_ratio(task: &DrtTask, cycle: &[VertexId]) -> Q {
    let mut work = Q::ZERO;
    let mut span = Q::ZERO;
    for (i, &v) in cycle.iter().enumerate() {
        let next = cycle[(i + 1) % cycle.len()];
        work += task.wcet(next);
        let e = task
            .out_edges(v)
            .iter()
            .find(|e| e.to == next)
            .expect("cycle edge must exist");
        span += e.separation;
    }
    work / span
}

/// Any cycle of the graph, via DFS back-edge detection.
fn any_cycle(task: &DrtTask) -> Option<Vec<VertexId>> {
    let n = task.num_vertices();
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color = vec![Color::White; n];
    let mut stack_path: Vec<usize> = Vec::new();
    for start in 0..n {
        if color[start] != Color::White {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        color[start] = Color::Gray;
        stack_path.push(start);
        while let Some(&(v, ei)) = stack.last() {
            if ei < task.out_edges(VertexId(v)).len() {
                stack.last_mut().expect("non-empty").1 += 1;
                let w = task.out_edges(VertexId(v))[ei].to.0;
                match color[w] {
                    Color::Gray => {
                        // Found a back edge: the cycle is the path suffix
                        // from w.
                        let pos = stack_path
                            .iter()
                            .position(|&x| x == w)
                            .expect("gray vertex on path");
                        return Some(stack_path[pos..].iter().map(|&x| VertexId(x)).collect());
                    }
                    Color::White => {
                        color[w] = Color::Gray;
                        stack.push((w, 0));
                        stack_path.push(w);
                    }
                    Color::Black => {}
                }
            } else {
                color[v] = Color::Black;
                stack.pop();
                stack_path.pop();
            }
        }
    }
    None
}

/// Detects a cycle with strictly positive reduced weight
/// `Σ (wcet(target) − λ·separation)` via Bellman–Ford longest-path
/// relaxation from a virtual super-source, returning the cycle if found.
fn positive_cycle(task: &DrtTask, lambda: Q) -> Option<Vec<VertexId>> {
    let n = task.num_vertices();
    let mut dist = vec![Q::ZERO; n];
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut improved_vertex = None;
    for round in 0..n {
        let mut improved = false;
        for u in 0..n {
            for e in task.out_edges(VertexId(u)) {
                let w = task.wcet(e.to) - lambda * e.separation;
                let cand = dist[u] + w;
                if cand > dist[e.to.0] {
                    dist[e.to.0] = cand;
                    parent[e.to.0] = Some(u);
                    improved = true;
                    if round == n - 1 {
                        improved_vertex = Some(e.to.0);
                    }
                }
            }
        }
        if !improved {
            return None;
        }
    }
    let mut v = improved_vertex?;
    // Walk the parent chain until a vertex repeats: that vertex lies on the
    // positive cycle recorded by the parent pointers.
    let mut seen = vec![false; n];
    loop {
        if seen[v] {
            break;
        }
        seen[v] = true;
        v = parent[v]?;
    }
    // Extract the cycle through v.
    let mut cycle = vec![v];
    let mut cur = parent[v]?;
    while cur != v {
        cycle.push(cur);
        cur = parent[cur]?;
    }
    cycle.reverse();
    Some(cycle.into_iter().map(VertexId).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DrtTaskBuilder;
    use srtw_minplus::q;

    #[test]
    fn self_loop_ratio() {
        let mut b = DrtTaskBuilder::new("loop");
        let v = b.vertex("v", Q::int(3));
        b.edge(v, v, Q::int(7));
        let t = b.build().unwrap();
        assert_eq!(long_run_utilization(&t), q(3, 7));
        let c = critical_cycle(&t).unwrap();
        assert_eq!(c.vertices, vec![v]);
    }

    #[test]
    fn acyclic_is_zero() {
        let mut b = DrtTaskBuilder::new("dag");
        let a = b.vertex("a", Q::ONE);
        let c = b.vertex("b", Q::ONE);
        b.edge(a, c, Q::ONE);
        assert_eq!(long_run_utilization(&b.build().unwrap()), Q::ZERO);
    }

    #[test]
    fn picks_heavier_of_two_loops() {
        let mut b = DrtTaskBuilder::new("two-loops");
        let a = b.vertex("a", Q::ONE); // loop ratio 1/10
        let c = b.vertex("c", Q::int(4)); // loop ratio 4/9
        b.edge(a, a, Q::int(10));
        b.edge(c, c, Q::int(9));
        b.edge(a, c, Q::int(3));
        b.edge(c, a, Q::int(3));
        let t = b.build().unwrap();
        // Candidate cycles: a (1/10), c (4/9), a-c (5/6? work 1+4=5, span 6).
        // a→c→a: work e(c)+e(a)=5, span 3+3=6 ⇒ 5/6 — the maximum.
        assert_eq!(long_run_utilization(&t), q(5, 6));
    }

    #[test]
    fn mixed_cycle_beats_self_loops() {
        let mut b = DrtTaskBuilder::new("ring");
        let x = b.vertex("x", Q::int(2));
        let y = b.vertex("y", Q::int(2));
        let z = b.vertex("z", Q::int(2));
        b.edge(x, y, Q::int(2));
        b.edge(y, z, Q::int(2));
        b.edge(z, x, Q::int(2));
        let t = b.build().unwrap();
        assert_eq!(long_run_utilization(&t), Q::ONE);
    }

    #[test]
    fn ratio_matches_rbf_growth() {
        // rbf(t)/t → U for large t.
        let mut b = DrtTaskBuilder::new("two-mode");
        let h = b.vertex("h", Q::int(4));
        let l = b.vertex("l", Q::ONE);
        b.edge(h, l, Q::int(10));
        b.edge(l, h, Q::int(5));
        let t = b.build().unwrap();
        let u = long_run_utilization(&t);
        assert_eq!(u, q(5, 15)); // cycle h→l→h: work 5, span 15
        let rbf = crate::rbf::Rbf::compute(&t, Q::int(300));
        let big = rbf.eval(Q::int(300));
        // |rbf(t) − U·t| bounded: within one cycle's work of the line.
        let line = u * Q::int(300);
        assert!((big - line).abs() <= Q::int(5), "rbf deviates: {big} vs {line}");
    }

    #[test]
    fn utilization_of_branching_graph() {
        let mut b = DrtTaskBuilder::new("branching");
        let a = b.vertex("a", Q::int(3));
        let x = b.vertex("x", Q::ONE);
        let y = b.vertex("y", Q::int(2));
        b.edge(a, x, Q::int(4));
        b.edge(a, y, Q::int(6));
        b.edge(x, a, Q::int(4));
        b.edge(y, a, Q::int(3));
        let t = b.build().unwrap();
        // Cycles: a→x→a (work 4, span 8 = 1/2), a→y→a (work 5, span 9 = 5/9).
        assert_eq!(long_run_utilization(&t), q(5, 9));
        let c = critical_cycle(&t).unwrap();
        assert_eq!(c.vertices.len(), 2);
    }
}
