//! The FIFO simulation engine.
//!
//! Jobs from one or more traces are merged in release order and served
//! FIFO on a [`ServiceProcess`]: job `j` starts when both it has been
//! released and its predecessor has completed, and finishes once the
//! process has delivered its WCET of capacity. Per-job delays and the
//! maximum backlog are recorded exactly (rational arithmetic throughout).

use crate::service::ServiceProcess;
use srtw_minplus::Q;
use srtw_workload::{DrtTask, ReleaseTrace, VertexId};

/// One simulated job with its measured timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobRecord {
    /// Index of the originating stream (position in the `traces` slice).
    pub stream: usize,
    /// Job type.
    pub vertex: VertexId,
    /// Release time.
    pub release: Q,
    /// Completion time.
    pub completion: Q,
}

impl JobRecord {
    /// The job's response time.
    pub fn delay(&self) -> Q {
        self.completion - self.release
    }
}

/// Result of a FIFO simulation.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Every simulated job in completion order.
    pub jobs: Vec<JobRecord>,
    /// Maximum backlog observed (work released but not completed),
    /// sampled at release instants — where backlog peaks.
    pub max_backlog: Q,
}

impl SimOutcome {
    /// Maximum observed delay over all jobs (zero if no jobs ran).
    pub fn max_delay(&self) -> Q {
        self.jobs
            .iter()
            .map(JobRecord::delay)
            .fold(Q::ZERO, Q::max)
    }

    /// Maximum observed delay of jobs of `vertex` in `stream`.
    pub fn max_delay_of(&self, stream: usize, vertex: VertexId) -> Q {
        self.jobs
            .iter()
            .filter(|j| j.stream == stream && j.vertex == vertex)
            .map(JobRecord::delay)
            .fold(Q::ZERO, Q::max)
    }
}

/// Runs the FIFO simulation of `traces` (one per task, matched by index)
/// on the given service process.
///
/// # Panics
///
/// Panics if `tasks` and `traces` lengths differ, or if the service
/// process cannot eventually serve the demand (saturated cumulative
/// curve).
pub fn simulate_fifo(
    tasks: &[DrtTask],
    traces: &[ReleaseTrace],
    service: &ServiceProcess,
) -> SimOutcome {
    assert_eq!(tasks.len(), traces.len(), "one trace per task required");

    // Merge releases (stable order: time, then stream index).
    let mut jobs: Vec<(Q, usize, VertexId, Q)> = Vec::new(); // (release, stream, vertex, wcet)
    for (si, (task, trace)) in tasks.iter().zip(traces.iter()).enumerate() {
        for r in trace.releases() {
            jobs.push((r.time, si, r.vertex, task.wcet(r.vertex)));
        }
    }
    jobs.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));

    let mut records = Vec::with_capacity(jobs.len());
    let mut prev_completion = Q::ZERO;
    for &(release, stream, vertex, wcet) in &jobs {
        let start = release.max(prev_completion);
        let completion = service
            .finish_time(start, wcet)
            .expect("service process saturated below the demand");
        records.push(JobRecord {
            stream,
            vertex,
            release,
            completion,
        });
        prev_completion = completion;
    }

    // Backlog at each release instant: released work minus work served so
    // far. The in-flight job's served part is exact: the job occupies one
    // continuous busy stretch [begin, completion] over which the process
    // delivers exactly its WCET, so `begin` is recoverable from the
    // cumulative curve's pseudo-inverse.
    let mut max_backlog = Q::ZERO;
    for &(t, _, _, _) in &jobs {
        let released: Q = jobs
            .iter()
            .filter(|j| j.0 <= t)
            .map(|j| j.3)
            .fold(Q::ZERO, |a, b| a + b);
        let mut done = Q::ZERO;
        for (r, &(_, _, _, wcet)) in records.iter().zip(jobs.iter()) {
            if r.completion <= t {
                done += wcet;
            } else {
                let begin = service
                    .cumulative()
                    .pseudo_inverse(service.capacity_by(r.completion) - wcet)
                    .unwrap_finite();
                if begin < t && r.release <= t {
                    let served = service.capacity_by(t) - service.capacity_by(begin);
                    done += served.min(wcet).clamp_nonneg();
                }
                break; // FIFO: at most one job in flight
            }
        }
        max_backlog = max_backlog.max(released - done);
    }

    SimOutcome {
        jobs: records,
        max_backlog,
    }
}

/// Preemptive scheduling policy for [`simulate_preemptive`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Fixed priority: stream index (0 highest), then release order.
    FixedPriority,
    /// Earliest deadline first: absolute deadline `release + deadline(v)`
    /// (every vertex must carry a deadline), ties by stream then release.
    Edf,
}

/// Runs a **preemptive fixed-priority** simulation of `traces` (one per
/// task; priority = slice position, index 0 highest) on the service
/// process. At every instant the highest-priority pending job receives all
/// capacity; lower jobs resume where they were preempted.
///
/// # Panics
///
/// Panics if `tasks` and `traces` lengths differ, or if the service
/// process saturates below the demand.
pub fn simulate_fixed_priority(
    tasks: &[DrtTask],
    traces: &[ReleaseTrace],
    service: &ServiceProcess,
) -> SimOutcome {
    simulate_preemptive(tasks, traces, service, SchedPolicy::FixedPriority)
}

/// Runs a **preemptive EDF** simulation (dynamic priority by absolute
/// deadline). Every vertex must carry a deadline.
///
/// # Panics
///
/// As [`simulate_fixed_priority`], plus if any released vertex lacks a
/// deadline.
pub fn simulate_edf(
    tasks: &[DrtTask],
    traces: &[ReleaseTrace],
    service: &ServiceProcess,
) -> SimOutcome {
    simulate_preemptive(tasks, traces, service, SchedPolicy::Edf)
}

/// Shared preemptive engine for [`simulate_fixed_priority`] and
/// [`simulate_edf`].
pub fn simulate_preemptive(
    tasks: &[DrtTask],
    traces: &[ReleaseTrace],
    service: &ServiceProcess,
    policy: SchedPolicy,
) -> SimOutcome {
    assert_eq!(tasks.len(), traces.len(), "one trace per task required");

    // (release, stream, vertex, wcet), by release then stream.
    let mut jobs: Vec<(Q, usize, VertexId, Q)> = Vec::new();
    for (si, (task, trace)) in tasks.iter().zip(traces.iter()).enumerate() {
        for r in trace.releases() {
            jobs.push((r.time, si, r.vertex, task.wcet(r.vertex)));
        }
    }
    jobs.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));

    // Scheduling key per job (smaller = more urgent).
    let key_of = |job: usize| -> (Q, usize, Q, usize) {
        let (release, stream, vertex, _) = jobs[job];
        match policy {
            SchedPolicy::FixedPriority => (Q::ZERO, stream, release, job),
            SchedPolicy::Edf => {
                let d = tasks[stream]
                    .deadline(vertex)
                    .expect("EDF simulation requires deadlines on every vertex");
                (release + d, stream, release, job)
            }
        }
    };

    #[derive(Clone, Copy)]
    struct Pending {
        job: usize, // index into `jobs`
        remaining: Q,
    }

    let mut completions: Vec<Option<Q>> = vec![None; jobs.len()];
    let mut pending: Vec<Pending> = Vec::new(); // sorted by priority, then release order
    let mut next_release = 0usize;
    let mut tcur = Q::ZERO;

    while next_release < jobs.len() || !pending.is_empty() {
        // Horizon of this step: the next release (or unbounded).
        let t_next = jobs.get(next_release).map(|j| j.0);
        if pending.is_empty() {
            // Idle until the next release.
            tcur = t_next.expect("pending empty implies a release remains");
            while next_release < jobs.len() && jobs[next_release].0 <= tcur {
                let (_, _, _, w) = jobs[next_release];
                pending.push(Pending {
                    job: next_release,
                    remaining: w,
                });
                next_release += 1;
            }
            pending.sort_by_key(|p| key_of(p.job));
            continue;
        }
        // Serve the top job until it finishes or the next release arrives.
        let top = pending[0];
        let finish = service
            .finish_time(tcur, top.remaining)
            .expect("service process saturated below the demand");
        match t_next {
            Some(tn) if tn < finish => {
                // Preemption point: account the served part, admit releases.
                let served = service.capacity_by(tn) - service.capacity_by(tcur);
                pending[0].remaining = (top.remaining - served).clamp_nonneg();
                if pending[0].remaining.is_zero() {
                    // Completed exactly at tn (served == remaining).
                    completions[top.job] = Some(tn);
                    pending.remove(0);
                }
                tcur = tn;
                while next_release < jobs.len() && jobs[next_release].0 <= tcur {
                    let (_, _, _, w) = jobs[next_release];
                    pending.push(Pending {
                        job: next_release,
                        remaining: w,
                    });
                    next_release += 1;
                }
                pending.sort_by_key(|p| key_of(p.job));
            }
            _ => {
                completions[top.job] = Some(finish);
                pending.remove(0);
                tcur = finish;
            }
        }
    }

    let records: Vec<JobRecord> = jobs
        .iter()
        .enumerate()
        .map(|(i, &(release, stream, vertex, _))| JobRecord {
            stream,
            vertex,
            release,
            completion: completions[i].expect("all jobs complete"),
        })
        .collect();

    // Backlog at release instants: released minus completed-by-then work,
    // conservatively counting in-flight remainders as full backlog is
    // complex under preemption; we report released − served capacity while
    // busy, computed from completion records (exact at release instants
    // because service is continuous).
    let mut max_backlog = Q::ZERO;
    for &(t, _, _, _) in &jobs {
        let released: Q = jobs
            .iter()
            .filter(|j| j.0 <= t)
            .map(|j| j.3)
            .fold(Q::ZERO, |a, b| a + b);
        let done: Q = records
            .iter()
            .zip(jobs.iter())
            .filter(|(r, _)| r.completion <= t)
            .map(|(_, j)| j.3)
            .fold(Q::ZERO, |a, b| a + b);
        max_backlog = max_backlog.max(released - done);
    }

    SimOutcome {
        jobs: records,
        max_backlog,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracegen::witness_trace;
    use srtw_minplus::q;
    use srtw_workload::DrtTaskBuilder;

    fn looped(wcet: i128, sep: i128) -> DrtTask {
        let mut b = DrtTaskBuilder::new("loop");
        let v = b.vertex("v", Q::int(wcet));
        b.edge(v, v, Q::int(sep));
        b.build().unwrap()
    }

    #[test]
    fn fluid_service_single_job() {
        let task = looped(2, 5);
        let v = task.vertex_ids().next().unwrap();
        let trace = witness_trace(&task, &[v]);
        let out = simulate_fifo(
            std::slice::from_ref(&task),
            std::slice::from_ref(&trace),
            &ServiceProcess::fluid(Q::ONE),
        );
        assert_eq!(out.jobs.len(), 1);
        assert_eq!(out.jobs[0].completion, Q::int(2));
        assert_eq!(out.max_delay(), Q::int(2));
        assert_eq!(out.max_backlog, Q::int(2));
    }

    #[test]
    fn queueing_on_slow_server() {
        // wcet 2 every 5 at rate 1/2: each job takes 4; backlog persists.
        let task = looped(2, 5);
        let v = task.vertex_ids().next().unwrap();
        let trace = witness_trace(&task, &[v, v, v]);
        let out = simulate_fifo(
            std::slice::from_ref(&task),
            std::slice::from_ref(&trace),
            &ServiceProcess::fluid(q(1, 2)),
        );
        // Releases at 0, 5, 10; completions at 4, 9, 14.
        let completions: Vec<Q> = out.jobs.iter().map(|j| j.completion).collect();
        assert_eq!(completions, vec![Q::int(4), Q::int(9), Q::int(14)]);
        assert_eq!(out.max_delay(), Q::int(4));
    }

    #[test]
    fn tdma_gaps_delay_jobs() {
        let task = looped(2, 10);
        let v = task.vertex_ids().next().unwrap();
        let trace = witness_trace(&task, &[v, v]);
        // Slot [3, 5) of every 5: job at 0 waits 3, serves 2 by t=5.
        let service = ServiceProcess::tdma(Q::int(2), Q::int(5), Q::ONE, Q::int(3));
        let out = simulate_fifo(
            std::slice::from_ref(&task),
            std::slice::from_ref(&trace),
            &service,
        );
        assert_eq!(out.jobs[0].completion, Q::int(5));
        // Second release at 10: slot [13, 15): completes at 15.
        assert_eq!(out.jobs[1].completion, Q::int(15));
        assert_eq!(out.max_delay(), Q::int(5));
    }

    #[test]
    fn fifo_merges_two_streams() {
        let t1 = looped(2, 10);
        let t2 = looped(3, 10);
        let v1 = t1.vertex_ids().next().unwrap();
        let v2 = t2.vertex_ids().next().unwrap();
        let tr1 = witness_trace(&t1, &[v1]);
        let tr2 = witness_trace(&t2, &[v2]);
        let out = simulate_fifo(
            &[t1, t2],
            &[tr1, tr2],
            &ServiceProcess::fluid(Q::ONE),
        );
        // Both release at 0; stream 0 first (stable order): completes 2,
        // stream 1 completes 5.
        assert_eq!(out.jobs[0].stream, 0);
        assert_eq!(out.jobs[0].completion, Q::int(2));
        assert_eq!(out.jobs[1].completion, Q::int(5));
        assert_eq!(out.max_delay_of(1, v2), Q::int(5));
        assert_eq!(out.max_backlog, Q::int(5));
    }

    #[test]
    fn priority_preempts_lower_stream() {
        // hi: wcet 1 at t=0 and t=4; lo: wcet 3 at t=0. Unit fluid.
        let hi = looped(1, 4);
        let lo = looped(3, 10);
        let vh = hi.vertex_ids().next().unwrap();
        let vl = lo.vertex_ids().next().unwrap();
        let tr_hi = witness_trace(&hi, &[vh, vh]);
        let tr_lo = witness_trace(&lo, &[vl]);
        let out = simulate_fixed_priority(
            &[hi, lo],
            &[tr_hi, tr_lo],
            &ServiceProcess::fluid(Q::ONE),
        );
        // hi jobs: [0,1] and [4,5]; lo runs [1,4) gets 3 done? It needs 3
        // units: serves 1..4 → would finish at 4, but hi preempts at 4 for
        // one unit → lo finishes at 4 exactly (served 3 by t=4).
        let hi_records: Vec<_> = out.jobs.iter().filter(|j| j.stream == 0).collect();
        assert_eq!(hi_records[0].completion, Q::ONE);
        assert_eq!(hi_records[1].completion, Q::int(5));
        let lo_record = out.jobs.iter().find(|j| j.stream == 1).unwrap();
        assert_eq!(lo_record.completion, Q::int(4));
    }

    #[test]
    fn priority_sim_within_fp_analysis_bounds() {
        use srtw_core::fixed_priority_structural;
        use srtw_minplus::Curve;
        let hi = looped(2, 6);
        let lo = looped(2, 9);
        let beta = Curve::affine(Q::ZERO, Q::ONE);
        let bounds = fixed_priority_structural(&[hi.clone(), lo.clone()], &beta).unwrap();
        for seed in 0..20u64 {
            let tr_hi = crate::tracegen::earliest_random_walk(&hi, Q::int(200), None, seed);
            let tr_lo = crate::tracegen::earliest_random_walk(&lo, Q::int(200), None, seed + 1000);
            let out = simulate_fixed_priority(
                &[hi.clone(), lo.clone()],
                &[tr_hi, tr_lo],
                &ServiceProcess::fluid(Q::ONE),
            );
            for (si, b) in bounds.iter().enumerate() {
                for vb in &b.per_vertex {
                    let observed = out.max_delay_of(si, vb.vertex);
                    assert!(
                        observed <= vb.bound,
                        "seed {seed}, stream {si}: {observed} > {}",
                        vb.bound
                    );
                }
            }
        }
    }

    #[test]
    fn priority_sim_preemption_exact_split() {
        // lo releases at 0 (wcet 4); hi releases at 1 and 3 (wcet 1 each):
        // lo serves [0,1), [2,3), [4,6] → completion 6 on unit fluid.
        let hi = looped(1, 2);
        let lo = looped(4, 20);
        let vh = hi.vertex_ids().next().unwrap();
        let vl = lo.vertex_ids().next().unwrap();
        let mut tr_hi = srtw_workload::ReleaseTrace::new();
        tr_hi.push(Q::ONE, vh);
        tr_hi.push(Q::int(3), vh);
        let tr_lo = witness_trace(&lo, &[vl]);
        let out = simulate_fixed_priority(
            &[hi, lo],
            &[tr_hi, tr_lo],
            &ServiceProcess::fluid(Q::ONE),
        );
        let lo_rec = out.jobs.iter().find(|j| j.stream == 1).unwrap();
        assert_eq!(lo_rec.completion, Q::int(6));
        let hi_first = out
            .jobs
            .iter()
            .filter(|j| j.stream == 0)
            .map(|j| j.completion)
            .collect::<Vec<_>>();
        assert_eq!(hi_first, vec![Q::int(2), Q::int(4)]);
    }

    #[test]
    fn edf_orders_by_absolute_deadline() {
        // Two streams, both release at 0: stream 0 has the later deadline,
        // so under EDF stream 1 runs first (opposite of fixed priority).
        let mk = |wcet: i128, sep: i128, dl: i128| {
            let mut b = DrtTaskBuilder::new("t");
            let v = b.vertex_with_deadline("v", Q::int(wcet), Q::int(dl));
            b.edge(v, v, Q::int(sep));
            b.build().unwrap()
        };
        let relaxed = mk(2, 10, 20);
        let urgent = mk(2, 10, 5);
        let v0 = relaxed.vertex_ids().next().unwrap();
        let v1 = urgent.vertex_ids().next().unwrap();
        let tr0 = witness_trace(&relaxed, &[v0]);
        let tr1 = witness_trace(&urgent, &[v1]);
        let edf = simulate_edf(
            &[relaxed.clone(), urgent.clone()],
            &[tr0.clone(), tr1.clone()],
            &ServiceProcess::fluid(Q::ONE),
        );
        let urgent_done = edf.jobs.iter().find(|j| j.stream == 1).unwrap().completion;
        let relaxed_done = edf.jobs.iter().find(|j| j.stream == 0).unwrap().completion;
        assert_eq!(urgent_done, Q::int(2));
        assert_eq!(relaxed_done, Q::int(4));
        // Fixed priority (stream 0 first) inverts the order.
        let fp = simulate_fixed_priority(
            &[relaxed, urgent],
            &[tr0, tr1],
            &ServiceProcess::fluid(Q::ONE),
        );
        assert_eq!(fp.jobs.iter().find(|j| j.stream == 0).unwrap().completion, Q::int(2));
        assert_eq!(fp.jobs.iter().find(|j| j.stream == 1).unwrap().completion, Q::int(4));
    }

    #[test]
    fn edf_sim_meets_deadlines_when_analysis_says_so() {
        use srtw_core::edf_schedulable;
        use srtw_minplus::Curve;
        let mk = |name: &str, wcet: i128, sep: i128, dl: i128| {
            let mut b = DrtTaskBuilder::new(name);
            let v = b.vertex_with_deadline("v", Q::int(wcet), Q::int(dl));
            b.edge(v, v, Q::int(sep));
            b.build().unwrap()
        };
        let t1 = mk("a", 2, 6, 5);
        let t2 = mk("b", 1, 7, 6);
        let beta = Curve::affine(Q::ZERO, Q::ONE);
        let verdict = edf_schedulable(&[t1.clone(), t2.clone()], &beta).unwrap();
        assert!(verdict.schedulable);
        for seed in 0..20u64 {
            let tr1 = crate::tracegen::earliest_random_walk(&t1, Q::int(150), None, seed);
            let tr2 = crate::tracegen::earliest_random_walk(&t2, Q::int(150), None, seed + 999);
            let out = simulate_edf(
                &[t1.clone(), t2.clone()],
                &[tr1, tr2],
                &ServiceProcess::fluid(Q::ONE),
            );
            for j in &out.jobs {
                let task = if j.stream == 0 { &t1 } else { &t2 };
                let d = task.deadline(j.vertex).unwrap();
                assert!(
                    j.delay() <= d,
                    "seed {seed}: EDF missed a deadline the analysis certified"
                );
            }
        }
    }

    #[test]
    fn empty_traces_ok() {
        let task = looped(1, 5);
        let out = simulate_fifo(
            std::slice::from_ref(&task),
            &[srtw_workload::ReleaseTrace::new()],
            &ServiceProcess::fluid(Q::ONE),
        );
        assert!(out.jobs.is_empty());
        assert_eq!(out.max_delay(), Q::ZERO);
    }
}
