//! # srtw-gen — seeded random workload and server generation
//!
//! The experiment harness needs reproducible synthetic workloads in the
//! style used throughout the digraph-real-time-task literature: a random
//! strongly-connected base ring with extra chord edges, integer
//! separations and WCETs drawn from ranges, and an exact rescaling pass
//! that hits a target long-run utilization. All generation is seeded and
//! deterministic.
//!
//! # Example
//!
//! ```
//! use srtw_gen::{generate_drt, DrtGenConfig};
//! use srtw_minplus::{q, Q};
//! use srtw_workload::long_run_utilization;
//!
//! let cfg = DrtGenConfig {
//!     vertices: 6,
//!     extra_edges: 4,
//!     target_utilization: Some(q(3, 5)),
//!     ..DrtGenConfig::default()
//! };
//! let task = generate_drt(&cfg, 42);
//! assert_eq!(task.num_vertices(), 6);
//! assert_eq!(long_run_utilization(&task), q(3, 5));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

use srtw_detrand::Rng;
use srtw_minplus::Q;
use srtw_workload::{critical_cycle, DrtTask, DrtTaskBuilder, VertexId};

/// Configuration of the random digraph-task generator.
#[derive(Debug, Clone)]
pub struct DrtGenConfig {
    /// Number of vertices (≥ 1).
    pub vertices: usize,
    /// Number of extra chord edges beyond the Hamiltonian base ring.
    pub extra_edges: usize,
    /// Inclusive range of integer edge separations.
    pub separation_range: (i128, i128),
    /// Inclusive range of integer vertex WCETs (before rescaling).
    pub wcet_range: (i128, i128),
    /// If set, rescale all WCETs exactly so the maximum cycle ratio equals
    /// this utilization.
    pub target_utilization: Option<Q>,
    /// If set, assign each vertex the deadline
    /// `factor · min(incoming separations)`.
    pub deadline_factor: Option<Q>,
}

impl Default for DrtGenConfig {
    fn default() -> DrtGenConfig {
        DrtGenConfig {
            vertices: 8,
            extra_edges: 8,
            separation_range: (5, 50),
            wcet_range: (1, 10),
            target_utilization: None,
            deadline_factor: None,
        }
    }
}

/// Generates a random strongly-connected digraph task (base ring plus
/// random chords), deterministically from `seed`.
///
/// # Panics
///
/// Panics on degenerate configurations (zero vertices, empty ranges,
/// non-positive target utilization).
pub fn generate_drt(cfg: &DrtGenConfig, seed: u64) -> DrtTask {
    assert!(cfg.vertices >= 1, "need at least one vertex");
    let (smin, smax) = cfg.separation_range;
    let (wmin, wmax) = cfg.wcet_range;
    assert!(0 < smin && smin <= smax, "bad separation range");
    assert!(0 < wmin && wmin <= wmax, "bad wcet range");

    let mut rng = Rng::seed_from_u64(seed);
    let mut b = DrtTaskBuilder::new(format!("rand-{seed}"));
    let n = cfg.vertices;

    // Draw raw integer WCETs; rescale exactly later.
    let wcets: Vec<i128> = (0..n).map(|_| rng.random_range(wmin..=wmax)).collect();
    let ids: Vec<VertexId> = wcets
        .iter()
        .enumerate()
        .map(|(i, &w)| b.vertex(format!("v{i}"), Q::int(w)))
        .collect();

    // Base ring guarantees strong connectivity (and hence cycles);
    // a single vertex gets a self-loop.
    let mut present = std::collections::HashSet::new();
    for i in 0..n {
        let j = (i + 1) % n;
        let sep = rng.random_range(smin..=smax);
        b.edge(ids[i], ids[j], Q::int(sep));
        present.insert((i, j));
    }

    // Random chords.
    let mut added = 0;
    let mut attempts = 0;
    while added < cfg.extra_edges && attempts < cfg.extra_edges * 20 + 50 {
        attempts += 1;
        let i = rng.random_range(0..n);
        let j = rng.random_range(0..n);
        if present.contains(&(i, j)) {
            continue;
        }
        let sep = rng.random_range(smin..=smax);
        b.edge(ids[i], ids[j], Q::int(sep));
        present.insert((i, j));
        added += 1;
    }

    let task = b.build().expect("generated graph must be valid");

    // Exact utilization rescaling: cycle ratios scale linearly with WCETs.
    match cfg.target_utilization {
        Some(u) => {
            assert!(u.is_positive(), "target utilization must be positive");
            let u0 = critical_cycle(&task)
                .expect("ring graph always has a cycle")
                .ratio;
            rebuild_scaled(&task, u / u0, cfg.deadline_factor)
        }
        None => match cfg.deadline_factor {
            Some(_) => rebuild_scaled(&task, Q::ONE, cfg.deadline_factor),
            None => task,
        },
    }
}

/// Rebuilds a task with WCETs scaled by `factor` and optional deadlines
/// `deadline_factor · min(incoming separations)`.
fn rebuild_scaled(task: &DrtTask, factor: Q, deadline_factor: Option<Q>) -> DrtTask {
    let mut b = DrtTaskBuilder::new(task.name().to_owned());
    let n = task.num_vertices();
    // Min incoming separation per vertex.
    let mut min_in: Vec<Option<Q>> = vec![None; n];
    for v in task.vertex_ids() {
        for e in task.out_edges(v) {
            let slot = &mut min_in[e.to.index()];
            *slot = Some(match *slot {
                None => e.separation,
                Some(m) => m.min(e.separation),
            });
        }
    }
    let ids: Vec<VertexId> = task
        .vertex_ids()
        .map(|v| {
            let w = task.wcet(v) * factor;
            let id = b.vertex(task.vertex(v).label.clone(), w);
            if let Some(df) = deadline_factor {
                if let Some(m) = min_in[v.index()] {
                    b.set_deadline(id, df * m);
                }
            }
            id
        })
        .collect();
    for v in task.vertex_ids() {
        for e in task.out_edges(v) {
            b.edge(ids[v.index()], ids[e.to.index()], e.separation);
        }
    }
    b.build().expect("rescaled graph must be valid")
}

/// Pairwise-distinct primes used by the adversarial generators. Drawing
/// separations from here guarantees no two edge periods share a factor,
/// so rbf breakpoints never align and hyperperiods explode.
const COPRIME_POOL: &[i128] = &[
    10_007,
    10_009,
    10_037,
    100_003,
    100_019,
    100_043,
    999_983,
    1_299_709,
    15_485_863,
    179_424_673,
    982_451_653,
];

/// Adversarial: a ring whose separations are huge pairwise-coprime primes
/// and whose WCETs carry coprime denominators.
///
/// Stresses exact rational arithmetic (lcm growth in curve alignment) and
/// the segment budget: every pairwise sum of separations is a fresh rbf
/// breakpoint, none ever coincide, and normalisation denominators grow
/// multiplicatively. Utilization stays low (≤ `n · 10⁻⁴`), so systems
/// built from this task are schedulable on any unit-rate server — the
/// *analysis effort* is what blows up, not the load.
pub fn adversarial_coprime(n: usize, seed: u64) -> DrtTask {
    let n = n.clamp(1, COPRIME_POOL.len());
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = DrtTaskBuilder::new(format!("coprime-{seed}"));
    // Random rotation of the pool keeps different seeds structurally
    // different while preserving pairwise coprimality.
    let start = rng.random_range(0..COPRIME_POOL.len());
    let ids: Vec<VertexId> = (0..n)
        .map(|i| {
            // wcet = k + 1/den: an integer part for real demand plus a
            // prime denominator, so work sums never share factors and
            // rational normalisation does real lcm work. Denominators
            // stay in the small end of the pool: their running product
            // (the worst-case common denominator) must survive squaring
            // inside the curve algebra without overflowing `i128`.
            let den = COPRIME_POOL[(start + i) % 3];
            let k = rng.random_range(1i128..=3);
            b.vertex(format!("c{i}"), Q::int(k) + Q::new(1, den))
        })
        .collect();
    for i in 0..n {
        let p = COPRIME_POOL[(start + i) % COPRIME_POOL.len()];
        b.edge(ids[i], ids[(i + 1) % n], Q::int(p));
    }
    b.build().expect("coprime ring is a valid graph")
}

/// Adversarial: a deep chain `v0 → v1 → … → v_{depth-1} → v0` with tiny
/// forward separations and one long closing edge.
///
/// Stresses path exploration depth: abstract paths along the chain are
/// long and their spans dense, so the heap of open paths grows with the
/// busy-window horizon. The closing edge keeps the only cycle's ratio —
/// and hence the long-run utilization — near `1/12` regardless of depth.
pub fn adversarial_deep_chain(depth: usize, seed: u64) -> DrtTask {
    let depth = depth.max(2);
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = DrtTaskBuilder::new(format!("chain-{seed}"));
    let ids: Vec<VertexId> = (0..depth)
        .map(|i| b.vertex(format!("d{i}"), Q::ONE))
        .collect();
    for i in 0..depth - 1 {
        b.edge(ids[i], ids[i + 1], Q::int(rng.random_range(1i128..=3)));
    }
    b.edge(ids[depth - 1], ids[0], Q::int(10 * depth as i128));
    b.build().expect("chain is a valid graph")
}

/// Adversarial: a dense digraph — every ordered pair of distinct vertices
/// is an edge — with small random separations.
///
/// Stresses path *count*: exploration branches `n − 1` ways at every
/// vertex, so the number of abstract paths grows as `(n−1)^k` with depth
/// `k` and only Pareto pruning or a path budget keeps it finite. The raw
/// task is usually unstable on a unit-rate server; pass it through
/// [`rescale_utilization`] to obtain a schedulable stress instance.
pub fn adversarial_dense(n: usize, seed: u64) -> DrtTask {
    let n = n.max(2);
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = DrtTaskBuilder::new(format!("dense-{seed}"));
    let ids: Vec<VertexId> = (0..n)
        .map(|i| b.vertex(format!("x{i}"), Q::int(rng.random_range(1i128..=3))))
        .collect();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                b.edge(ids[i], ids[j], Q::int(rng.random_range(2i128..=7)));
            }
        }
    }
    b.build().expect("dense graph is a valid graph")
}

/// Rebuilds `task` with WCETs scaled exactly so its long-run utilization
/// (maximum cycle ratio) equals `target`.
///
/// # Panics
///
/// Panics if `target` is not positive or the task has no cycle.
pub fn rescale_utilization(task: &DrtTask, target: Q) -> DrtTask {
    assert!(target.is_positive(), "target utilization must be positive");
    let u0 = critical_cycle(task)
        .expect("rescaled task must contain a cycle")
        .ratio;
    rebuild_scaled(task, target / u0, None)
}

/// Generates a set of `count` tasks whose utilizations sum to
/// `total_utilization` (uniform split), for FIFO multiplex experiments.
pub fn generate_task_set(
    cfg: &DrtGenConfig,
    count: usize,
    total_utilization: Q,
    seed: u64,
) -> Vec<DrtTask> {
    assert!(count >= 1);
    let share = total_utilization / Q::int(count as i128);
    (0..count)
        .map(|i| {
            let mut c = cfg.clone();
            c.target_utilization = Some(share);
            generate_drt(&c, seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtw_minplus::q;
    use srtw_workload::long_run_utilization;

    #[test]
    fn generation_is_deterministic() {
        let cfg = DrtGenConfig::default();
        let a = generate_drt(&cfg, 1);
        let b = generate_drt(&cfg, 1);
        assert_eq!(a, b);
        let c = generate_drt(&cfg, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn hits_target_utilization_exactly() {
        for seed in 0..20 {
            let cfg = DrtGenConfig {
                vertices: 6,
                extra_edges: 5,
                target_utilization: Some(q(7, 10)),
                ..DrtGenConfig::default()
            };
            let t = generate_drt(&cfg, seed);
            assert_eq!(long_run_utilization(&t), q(7, 10), "seed {seed}");
        }
    }

    #[test]
    fn ring_always_cyclic_and_connected() {
        for n in 1..10 {
            let cfg = DrtGenConfig {
                vertices: n,
                extra_edges: 0,
                ..DrtGenConfig::default()
            };
            let t = generate_drt(&cfg, 99);
            assert_eq!(t.num_vertices(), n);
            assert!(t.has_cycle());
            assert_eq!(t.num_edges(), n);
        }
    }

    #[test]
    fn deadlines_assigned_when_requested() {
        let cfg = DrtGenConfig {
            vertices: 5,
            deadline_factor: Some(q(1, 2)),
            target_utilization: Some(q(1, 2)),
            ..DrtGenConfig::default()
        };
        let t = generate_drt(&cfg, 5);
        for v in t.vertex_ids() {
            let d = t.deadline(v).expect("deadline assigned");
            assert!(d.is_positive());
        }
    }

    #[test]
    fn task_set_split_utilization() {
        let cfg = DrtGenConfig {
            vertices: 4,
            ..DrtGenConfig::default()
        };
        let set = generate_task_set(&cfg, 3, q(3, 4), 7);
        assert_eq!(set.len(), 3);
        let total: Q = set
            .iter()
            .map(long_run_utilization)
            .fold(Q::ZERO, |a, b| a + b);
        assert_eq!(total, q(3, 4));
    }

    #[test]
    fn coprime_ring_has_coprime_separations_and_low_utilization() {
        let t = adversarial_coprime(5, 11);
        assert_eq!(t.num_vertices(), 5);
        let seps: Vec<i128> = t
            .vertex_ids()
            .flat_map(|v| t.out_edges(v).iter().map(|e| e.separation.numer()).collect::<Vec<_>>())
            .collect();
        for (i, a) in seps.iter().enumerate() {
            for b in &seps[i + 1..] {
                assert_ne!(a, b, "separations must be distinct primes");
                assert_eq!(gcd(*a, *b), 1, "{a} and {b} must be coprime");
            }
        }
        assert!(long_run_utilization(&t) < q(1, 100));
        assert_eq!(t, adversarial_coprime(5, 11), "deterministic");
    }

    fn gcd(a: i128, b: i128) -> i128 {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }

    #[test]
    fn deep_chain_has_bounded_utilization() {
        for depth in [2, 10, 40] {
            let t = adversarial_deep_chain(depth, 7);
            assert_eq!(t.num_vertices(), depth);
            assert_eq!(t.num_edges(), depth);
            let u = long_run_utilization(&t);
            assert!(u <= q(1, 10), "depth {depth}: utilization {u}");
        }
    }

    #[test]
    fn dense_graph_is_complete_and_rescalable() {
        let t = adversarial_dense(5, 13);
        assert_eq!(t.num_edges(), 20); // 5·4 ordered pairs
        let scaled = rescale_utilization(&t, q(2, 5));
        assert_eq!(long_run_utilization(&scaled), q(2, 5));
        assert_eq!(scaled.num_edges(), 20);
    }

    #[test]
    fn single_vertex_graph() {
        let cfg = DrtGenConfig {
            vertices: 1,
            extra_edges: 0,
            ..DrtGenConfig::default()
        };
        let t = generate_drt(&cfg, 3);
        assert_eq!(t.num_vertices(), 1);
        assert!(t.has_cycle()); // self-loop ring
    }
}
