#!/usr/bin/env bash
# Tier-1 verification, fully offline.
#
#   scripts/verify.sh
#
# Steps:
#   1. zero-dependency audit: no Cargo.toml may pull anything from a
#      registry — every dependency must be a workspace path crate;
#   2. `cargo build --release` and `cargo test -q` with --offline
#      (the workspace must build with no network and no vendored deps);
#   3. build all five examples;
#   4. CLI smoke test on the shipped sample system;
#   5. adversarial stress suite at elevated case counts (no-panic,
#      budget-respecting, structural ≤ degraded ≤ RTC sandwich), plus
#      the budgeted CLI run on systems/adversarial.srtw;
#   6. supervised batch smoke test: the shipped systems under a 2 s
#      watchdog must come back degraded-not-failed (exit 0), and a
#      fault-injected batch must exhaust the ladder and exit 4;
#   7. performance-regression gate: the newest committed BENCH_*.json
#      must not regress the `convolution` and `rbf` suite medians by
#      more than 1.5x against the best older committed document.
#
# Benchmarks run separately (they are slow by design):
#   cargo run -p srtw-bench --release --bin experiments

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== 1/7 dependency audit (path-only policy) =="
# Inside [dependencies*] / [workspace.dependencies] sections, every
# dependency line must carry `path =` or `workspace = true`; a version
# requirement ("1.0", { version = ... }) means a registry dependency.
violations=$(awk '
    /^\[/ {
        in_deps = ($0 ~ /^\[(workspace\.)?(dev-|build-)?dependencies\]?/)
        next
    }
    in_deps && /=/ && !/^[[:space:]]*#/ {
        if ($0 !~ /path[[:space:]]*=/ && $0 !~ /workspace[[:space:]]*=[[:space:]]*true/)
            printf "%s: %s\n", FILENAME, $0
    }
' Cargo.toml crates/*/Cargo.toml)
if [ -n "$violations" ]; then
    echo "error: non-path dependencies found (zero-dependency policy):" >&2
    echo "$violations" >&2
    exit 1
fi
echo "ok: all dependencies are workspace path crates"

echo "== 2/7 offline build + tests =="
cargo build --release --offline --workspace
SRTW_BENCH_FAST=1 cargo test -q --offline --workspace

echo "== 3/7 examples build =="
cargo build --release --offline --examples

echo "== 4/7 CLI smoke test =="
out=$(cargo run --release --offline -q --bin srtw -- analyze systems/decoder.srtw)
echo "$out" | grep -q "RTC baseline" || {
    echo "error: analyze output missing the RTC baseline line" >&2
    exit 1
}
json=$(cargo run --release --offline -q --bin srtw -- analyze systems/decoder.srtw --json)
case "$json" in
    "{"*"}") : ;;
    *) echo "error: --json output is not a JSON object" >&2; exit 1 ;;
esac

echo "== 5/7 adversarial stress suite =="
# Elevated case count for the seeded property suite; the release profile
# keeps the 150 ms wall budget per case meaningful.
SRTW_PROP_CASES=256 cargo test -q --release --offline --test stress
# The shipped adversarial system must degrade gracefully under a 1 s wall
# budget: exit 0, a degradation warning on stderr, "degraded":true in JSON.
adv_err=$(mktemp)
adv_json=$(cargo run --release --offline -q --bin srtw -- \
    analyze systems/adversarial.srtw --json --budget-ms 1000 2>"$adv_err") || {
    echo "error: budgeted adversarial run failed (exit $?)" >&2
    cat "$adv_err" >&2
    exit 1
}
case "$adv_json" in
    *'"degraded":true'*) : ;;
    *) echo 'error: adversarial run not flagged "degraded":true' >&2; exit 1 ;;
esac
grep -q "degraded" "$adv_err" || {
    echo "error: budgeted adversarial run missing the stderr warning" >&2
    exit 1
}
rm -f "$adv_err"

echo "== 6/7 supervised batch smoke test =="
# The shipped systems under a 2 s per-attempt watchdog: the adversarial
# job must wind down to a *degraded* (still sound) result, never a
# failure — batch exit 0, summary status "some_degraded".
batch_err=$(mktemp)
batch_json=$(cargo run --release --offline -q --bin srtw -- \
    batch systems/ --jobs 2 --timeout-ms 2000 --json 2>"$batch_err") || {
    echo "error: supervised batch run failed (exit $?)" >&2
    cat "$batch_err" >&2
    exit 1
}
case "$batch_json" in
    *'"some_degraded"'*) : ;;
    *) echo 'error: batch summary not "some_degraded"' >&2; exit 1 ;;
esac
case "$batch_json" in
    *'"failed":0'*) : ;;
    *) echo 'error: supervised batch reported failed jobs' >&2; exit 1 ;;
esac
grep -q "degraded" "$batch_err" || {
    echo "error: degraded batch missing the stderr warning" >&2
    exit 1
}
rm -f "$batch_err"
# Injected synthetic overflow at the first metered op must fail every
# rung of the ladder for every job: exit 4, summary status "some_failed".
set +e
fault_json=$(cargo run --release --offline -q --bin srtw -- \
    batch systems/ --fault overflow@1 --json 2>/dev/null)
fault_rc=$?
set -e
if [ "$fault_rc" -ne 4 ]; then
    echo "error: fault-injected batch exited $fault_rc, expected 4" >&2
    exit 1
fi
case "$fault_json" in
    *'"some_failed"'*) : ;;
    *) echo 'error: fault-injected batch summary not "some_failed"' >&2; exit 1 ;;
esac

echo "== 7/7 performance-regression gate =="
# Newest committed BENCH document vs every older one; the gate watches
# the algorithmic suites whose medians are stable across machines.
bench_docs=$(ls -1 BENCH_*.json 2>/dev/null | sort -t_ -k2 -n -r)
if [ "$(echo "$bench_docs" | wc -l)" -ge 2 ]; then
    # shellcheck disable=SC2086
    cargo run -p srtw-bench --release --offline -q --bin experiments -- \
        gate $bench_docs --factor 1.5 --groups convolution,rbf
else
    echo "skip: fewer than two BENCH_*.json documents committed"
fi

echo "verify: OK"
