//! # srtw-core — structure-aware delay analysis of real-time workload
//!
//! This crate is the workspace's headline: worst-case **delay** (response
//! time) and **backlog** bounds for [`srtw_workload::DrtTask`] streams
//! served on `srtw-resource` service-curve resources.
//!
//! Two analyses are provided and compared throughout the experiments:
//!
//! * [`rtc_delay`] / [`fifo_rtc`] — the classical Real-Time-Calculus
//!   baseline on the arrival-curve abstraction (one stream-wide bound);
//! * [`structural_delay`] / [`fifo_structural`] — the structure-aware
//!   analysis: abstract-path exploration inside the busy window yielding
//!   **per-job-type** bounds, with the stream-wide maximum provably equal
//!   to the RTC bound and the per-type bounds typically far tighter.
//!
//! The [`AnalysisConfig::horizon_fraction`] knob interpolates between the
//! two (the ablation axis), and [`busy_window`] exposes the finitary
//! horizon every bound is computed on. Beyond the headline analysis the
//! crate also provides [`edf_schedulable`] (the exact processor-demand
//! criterion on demand-bound functions) and [`tandem_delay`] (end-to-end
//! vs per-hop multi-server analysis — pay bursts only once).
//!
//! # Example
//!
//! ```
//! use srtw_core::{rtc_delay, structural_delay};
//! use srtw_minplus::{Curve, Q};
//! use srtw_workload::DrtTaskBuilder;
//!
//! let mut b = DrtTaskBuilder::new("hl");
//! let h = b.vertex("heavy", Q::int(4));
//! let l = b.vertex("light", Q::ONE);
//! b.edge(h, l, Q::int(6));
//! b.edge(l, h, Q::int(6));
//! let task = b.build().unwrap();
//! let beta = Curve::rate_latency(Q::ONE, Q::int(2));
//!
//! let s = structural_delay(&task, &beta).unwrap();
//! let r = rtc_delay(&task, &beta).unwrap();
//! assert_eq!(s.stream_bound, r.bound);          // theorem
//! assert!(s.bound_of(l) < r.bound);             // attribution pays off
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod analysis;
mod busy;
mod edf;
mod error;
mod fp;
pub mod json;
mod report;
mod tandem;
pub mod textfmt;

pub use analysis::{
    backlog_bound, fifo_rtc, fifo_rtc_with, fifo_structural, fifo_structural_subset,
    fifo_structural_with_memo, rtc_delay, rtc_delay_with, structural_delay, structural_delay_with,
    AnalysisConfig,
};
pub use busy::{busy_window, busy_window_metered, busy_window_metered_ext, BusyWindow};
pub use edf::{edf_schedulable, EdfReport};
pub use fp::{fixed_priority_structural, fixed_priority_structural_with};
pub use tandem::{tandem_backlog_at, tandem_delay, TandemReport};
pub use error::AnalysisError;
pub use json::Json;
pub use report::{
    BoundQuality, Degradation, DelayAnalysis, Fallback, RtcReport, VertexBound, WitnessPath,
};
// Budget types live in `srtw-minplus` (the metered hot loops sit there);
// re-exported here so analysis users need only this crate.
pub use srtw_minplus::{Budget, BudgetKind, BudgetMeter, CancelToken, FaultKind, FaultPlan};
