//! Determinism of the sharded path-exploration engine.
//!
//! The parallel engine's contract is **bit-identical output**: for every
//! system, every budget, and every injected fault, `threads = N` must
//! produce byte-for-byte the same analysis as `threads = 1` — bounds,
//! witnesses, degradation provenance, path counters, everything except
//! the measured wall time. These properties pin that contract over
//! seeded random systems (64 per property by default, scaled by
//! `SRTW_PROP_CASES`), plus a CLI spot check on the shipped systems and
//! a cross-thread cancellation stress test.

use srtw::gen::{adversarial_dense, rescale_utilization};
use srtw::prop::forall;
use srtw::{
    fifo_structural, generate_task_set, q, rtc_delay_with, structural_delay,
    structural_delay_with, AnalysisConfig, AnalysisError, Budget, CancelToken, Curve,
    DelayAnalysis, DrtGenConfig, DrtTask, FaultKind, FaultPlan, Json, Q, Rng,
};
use std::time::Duration;

/// A seeded multi-stream system on a rate-2 server: small enough that the
/// exact analysis stays cheap, rich enough (2–3 streams, 3–10 vertices)
/// that the exploration windows hold real work.
fn seeded_system(rng: &mut Rng, size: u32) -> (Vec<DrtTask>, Curve, u64) {
    let seed = rng.next_u64();
    let cfg = DrtGenConfig {
        vertices: 3 + size as usize % 8,
        extra_edges: 2 + size as usize % 5,
        separation_range: (5, 40),
        wcet_range: (1, 9),
        target_utilization: None,
        deadline_factor: None,
    };
    let count = 2 + size as usize % 2;
    let tasks = generate_task_set(&cfg, count, q(1, 2), seed);
    let latency = Q::int((size % 5) as i128);
    (tasks, Curve::rate_latency(Q::int(2), latency), rng.next_u64())
}

/// Renders a full per-stream report with the wall time zeroed — the one
/// field allowed to differ between runs.
fn render(mut per: Vec<DelayAnalysis>) -> String {
    for a in &mut per {
        a.runtime = Duration::ZERO;
    }
    Json::Array(per.iter().map(|a| a.to_json()).collect()).render()
}

#[test]
fn parallel_analysis_is_byte_identical_across_thread_counts() {
    forall("threads_byte_identical", seeded_system, |(tasks, beta, _)| {
        let cfg_of = |threads: usize| AnalysisConfig {
            threads,
            ..Default::default()
        };
        let seq = fifo_structural(tasks, beta, &cfg_of(1)).expect("seeded system analyses");
        let want = render(seq);
        for n in [2usize, 4, 8] {
            let par = fifo_structural(tasks, beta, &cfg_of(n)).expect("parallel run analyses");
            assert_eq!(
                want,
                render(par),
                "threads {n} diverged from the sequential engine"
            );
        }
    });
}

/// Budget caps and injected faults trip at one exact metered operation;
/// the sharded engine must hit the same operation, degrade the same way,
/// and record the same provenance (`degradations`, `quality`, path
/// counters) as the sequential engine.
#[test]
fn parallel_analysis_is_byte_identical_under_faults_and_caps() {
    forall("threads_byte_identical_faulted", seeded_system, |(tasks, beta, fseed)| {
        let plans = [
            Some(FaultPlan::new(1 + fseed % 200, FaultKind::TripBudget)),
            Some(FaultPlan::seeded(*fseed, 300)),
            None,
        ];
        for (i, plan) in plans.iter().enumerate() {
            let mut budget = Budget::default().with_max_paths(4 + fseed % 64);
            if let Some(p) = plan {
                budget = budget.with_fault(*p);
            }
            let cfg_of = |threads: usize| AnalysisConfig {
                budget: budget.clone(),
                threads,
                ..Default::default()
            };
            let seq = fifo_structural(tasks, beta, &cfg_of(1));
            for n in [2usize, 4, 8] {
                match (&seq, fifo_structural(tasks, beta, &cfg_of(n))) {
                    (Ok(a), Ok(b)) => assert_eq!(
                        render(a.clone()),
                        render(b),
                        "plan #{i} ({plan:?}): threads {n} diverged"
                    ),
                    (Err(ea), Err(eb)) => assert_eq!(
                        ea.to_string(),
                        eb.to_string(),
                        "plan #{i} ({plan:?}): threads {n} failed differently"
                    ),
                    (a, b) => panic!(
                        "plan #{i} ({plan:?}): threads {n} changed the outcome: \
                         sequential {a:?} vs parallel {b:?}"
                    ),
                }
            }
        }
    });
}

/// Satellite of the parallel engine: cancellation raised from *another*
/// thread mid-exploration must wind the sharded run down to a sound
/// degraded result — sandwiched between the exact bound and the RTC
/// baseline — or a typed refusal, never a panic and never an unsound
/// merge of a partially-processed shard window.
#[test]
fn cross_thread_cancellation_keeps_shard_merges_sound() {
    forall("cancel_mid_exploration", seeded_cancel_case, |(task, beta, delay_ops)| {
        let exact = structural_delay(task, beta).expect("stable instance");
        let rtc = rtc_delay_with(task, beta, &Budget::UNLIMITED).expect("stable instance");
        let token = CancelToken::new();
        let cfg = AnalysisConfig {
            budget: Budget::default().with_cancel(token.clone()),
            threads: 4,
            ..Default::default()
        };
        // The canceller races the analysis: a seeded spin (from nothing
        // to ~a millisecond) lands the cancel anywhere from before the
        // first window to after the last shard merge.
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for _ in 0..*delay_ops {
                    std::hint::spin_loop();
                }
                token.cancel();
            });
            match structural_delay_with(task, beta, &cfg) {
                Ok(a) => {
                    assert!(
                        a.stream_bound >= exact.stream_bound,
                        "cancelled run reported {} below the exact bound {}",
                        a.stream_bound,
                        exact.stream_bound
                    );
                    assert!(
                        a.stream_bound <= rtc.bound,
                        "cancelled run reported {} above the RTC baseline {}",
                        a.stream_bound,
                        rtc.bound
                    );
                    for (d, e) in a.per_vertex.iter().zip(exact.per_vertex.iter()) {
                        assert!(
                            d.bound >= e.bound,
                            "vertex '{}': cancelled bound {} below exact {}",
                            d.label,
                            d.bound,
                            e.bound
                        );
                    }
                    assert_eq!(a.quality.is_exact(), a.degradations.is_empty());
                }
                // A very early cancel can leave no sound coarse finish.
                Err(AnalysisError::BudgetExhausted { .. }) => {}
                Err(e) => panic!("cancelled run failed unexpectedly: {e}"),
            }
        });
    });
}

/// A small stable single task plus a seeded canceller delay.
fn seeded_cancel_case(rng: &mut Rng, size: u32) -> (DrtTask, Curve, u64) {
    let seed = rng.next_u64();
    let task = rescale_utilization(&adversarial_dense(2 + size as usize % 4, seed), q(1, 2));
    let latency = Q::int(rng.random_range(0i128..=3));
    let delay_ops = rng.random_range(0u64..200_000);
    (task, Curve::rate_latency(Q::int(2), latency), delay_ops)
}

/// Strips every `"runtime_secs":<number>` value from a JSON document (the
/// CLI's one nondeterministic field).
fn strip_runtime(doc: &str) -> String {
    let mut out = String::with_capacity(doc.len());
    let mut rest = doc;
    while let Some(pos) = rest.find("\"runtime_secs\":") {
        let after = pos + "\"runtime_secs\":".len();
        out.push_str(&rest[..after]);
        out.push('0');
        let tail = &rest[after..];
        let end = tail
            .find([',', '}'])
            .unwrap_or(tail.len());
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

/// End-to-end spot check through the real binary: `--threads N` must
/// produce byte-identical `--json` documents on the shipped systems,
/// including the degraded/provenance fields of a budgeted adversarial
/// run.
#[test]
fn cli_threads_flag_is_byte_identical() {
    let bin = env!("CARGO_BIN_EXE_srtw");
    let run = |args: &[&str]| -> String {
        let out = std::process::Command::new(bin)
            .args(args)
            .output()
            .expect("srtw runs");
        assert!(
            out.status.success(),
            "srtw {args:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        strip_runtime(&String::from_utf8(out.stdout).expect("utf-8 output"))
    };
    for (sys, extra) in [
        ("systems/decoder.srtw", &[][..]),
        ("systems/adversarial.srtw", &["--max-paths", "2000"][..]),
    ] {
        let mut base = vec!["analyze", sys, "--json", "--threads", "1"];
        base.extend_from_slice(extra);
        let want = run(&base);
        for n in ["2", "4"] {
            let mut args = vec!["analyze", sys, "--json", "--threads", n];
            args.extend_from_slice(extra);
            assert_eq!(
                want,
                run(&args),
                "{sys}: --threads {n} diverged from --threads 1"
            );
        }
    }
}
