//! A small line-based text format for task systems, used by the `srtw`
//! command-line tool and handy for examples and tests.
//!
//! # Format
//!
//! ```text
//! # comments start with '#'; blank lines are ignored
//! task decoder
//! vertex I wcet=12 deadline=60
//! vertex P wcet=6  deadline=35
//! edge I P sep=15
//! edge P I sep=45
//!
//! task telemetry
//! vertex t wcet=1
//! edge t t sep=25
//!
//! server rate-latency rate=1 latency=2
//! ```
//!
//! * `task NAME` starts a new task; the following `vertex`/`edge` lines
//!   belong to it.
//! * `vertex NAME wcet=Q [deadline=Q]` declares a job type. Numbers are
//!   exact rationals: `12`, `3/4`.
//! * `edge FROM TO sep=Q` declares a minimum inter-release separation.
//! * `server KIND key=value…` (at most one) declares the resource:
//!   `rate-latency rate=Q latency=Q`, `fluid rate=Q`,
//!   `tdma slot=Q cycle=Q capacity=Q`, or
//!   `periodic-resource period=Q budget=Q`.

use srtw_minplus::{Curve, Q};
use srtw_resource::{PeriodicResource, RateLatencyServer, Server, TdmaServer};
use srtw_workload::{DrtTask, DrtTaskBuilder, VertexId};
use std::collections::HashMap;
use std::fmt;

/// A parsed system: tasks plus an optional server declaration.
#[derive(Debug, Clone)]
pub struct SystemSpec {
    /// The parsed tasks, in file order.
    pub tasks: Vec<DrtTask>,
    /// The declared server, if any.
    pub server: Option<ServerSpec>,
}

/// A server declaration from a system file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerSpec {
    /// `rate-latency rate=Q latency=Q`
    RateLatency {
        /// Guaranteed rate.
        rate: Q,
        /// Worst-case initial latency.
        latency: Q,
    },
    /// `fluid rate=Q`
    Fluid {
        /// Constant service rate.
        rate: Q,
    },
    /// `tdma slot=Q cycle=Q capacity=Q`
    Tdma {
        /// Slot length.
        slot: Q,
        /// Cycle length.
        cycle: Q,
        /// Underlying resource rate.
        capacity: Q,
    },
    /// `periodic-resource period=Q budget=Q`
    PeriodicResource {
        /// Replenishment period Π.
        period: Q,
        /// Budget Θ per period.
        budget: Q,
    },
}

impl ServerSpec {
    /// The lower service curve of the declared server.
    pub fn beta_lower(&self) -> Result<Curve, ParseError> {
        let invalid = |what: &'static str| ParseError {
            line: 0,
            message: format!("invalid server parameters: {what}"),
        };
        Ok(match *self {
            ServerSpec::RateLatency { rate, latency } => RateLatencyServer::new(rate, latency)
                .map_err(|_| invalid("rate-latency"))?
                .beta_lower(),
            ServerSpec::Fluid { rate } => {
                if !rate.is_positive() {
                    return Err(invalid("fluid rate must be positive"));
                }
                Curve::affine(Q::ZERO, rate)
            }
            ServerSpec::Tdma {
                slot,
                cycle,
                capacity,
            } => TdmaServer::new(slot, cycle, capacity)
                .map_err(|_| invalid("tdma"))?
                .beta_lower(),
            ServerSpec::PeriodicResource { period, budget } => {
                PeriodicResource::new(period, budget)
                    .map_err(|_| invalid("periodic-resource"))?
                    .beta_lower()
            }
        })
    }
}

/// A parse error with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number (0 for errors without a location).
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses a system description in the text format.
///
/// # Examples
///
/// ```
/// let text = "
/// task t
/// vertex a wcet=2 deadline=8
/// edge a a sep=5
/// server fluid rate=1
/// ";
/// let sys = srtw::textfmt::parse_system(text).unwrap();
/// assert_eq!(sys.tasks.len(), 1);
/// assert!(sys.server.is_some());
/// ```
pub fn parse_system(text: &str) -> Result<SystemSpec, ParseError> {
    struct PendingTask {
        builder: DrtTaskBuilder,
        vertices: HashMap<String, VertexId>,
        started_at: usize,
    }
    let mut tasks: Vec<DrtTask> = Vec::new();
    let mut server: Option<ServerSpec> = None;
    let mut current: Option<PendingTask> = None;

    let err = |line: usize, message: String| ParseError { line, message };
    let finish = |p: PendingTask, tasks: &mut Vec<DrtTask>| -> Result<(), ParseError> {
        let started = p.started_at;
        let t = p
            .builder
            .build()
            .map_err(|e| err(started, format!("invalid task: {e}")))?;
        tasks.push(t);
        Ok(())
    };

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        let keyword = words.next().expect("non-empty line");
        match keyword {
            "task" => {
                let name = words
                    .next()
                    .ok_or_else(|| err(lineno, "task needs a name".into()))?;
                if let Some(p) = current.take() {
                    finish(p, &mut tasks)?;
                }
                if tasks.iter().any(|t| t.name() == name) {
                    return Err(err(lineno, format!("duplicate task '{name}'")));
                }
                current = Some(PendingTask {
                    builder: DrtTaskBuilder::new(name),
                    vertices: HashMap::new(),
                    started_at: lineno,
                });
            }
            "vertex" => {
                let p = current
                    .as_mut()
                    .ok_or_else(|| err(lineno, "vertex outside of a task".into()))?;
                let name = words
                    .next()
                    .ok_or_else(|| err(lineno, "vertex needs a name".into()))?;
                if p.vertices.contains_key(name) {
                    return Err(err(lineno, format!("duplicate vertex '{name}'")));
                }
                let kv = parse_kv(words, lineno)?;
                let wcet = need(&kv, "wcet", lineno)?;
                let id = match kv.get("deadline") {
                    Some(&d) => p.builder.vertex_with_deadline(name, wcet, d),
                    None => p.builder.vertex(name, wcet),
                };
                p.vertices.insert(name.to_owned(), id);
            }
            "edge" => {
                let p = current
                    .as_mut()
                    .ok_or_else(|| err(lineno, "edge outside of a task".into()))?;
                let from = words
                    .next()
                    .ok_or_else(|| err(lineno, "edge needs a source vertex".into()))?;
                let to = words
                    .next()
                    .ok_or_else(|| err(lineno, "edge needs a target vertex".into()))?;
                let kv = parse_kv(words, lineno)?;
                let sep = need(&kv, "sep", lineno)?;
                let &f = p
                    .vertices
                    .get(from)
                    .ok_or_else(|| err(lineno, format!("unknown vertex '{from}'")))?;
                let &t = p
                    .vertices
                    .get(to)
                    .ok_or_else(|| err(lineno, format!("unknown vertex '{to}'")))?;
                p.builder.edge(f, t, sep);
            }
            "server" => {
                if server.is_some() {
                    return Err(err(lineno, "duplicate server declaration".into()));
                }
                let kind = words
                    .next()
                    .ok_or_else(|| err(lineno, "server needs a kind".into()))?;
                let kv = parse_kv(words, lineno)?;
                server = Some(match kind {
                    "rate-latency" => ServerSpec::RateLatency {
                        rate: need(&kv, "rate", lineno)?,
                        latency: need(&kv, "latency", lineno)?,
                    },
                    "fluid" => ServerSpec::Fluid {
                        rate: need(&kv, "rate", lineno)?,
                    },
                    "tdma" => ServerSpec::Tdma {
                        slot: need(&kv, "slot", lineno)?,
                        cycle: need(&kv, "cycle", lineno)?,
                        capacity: need(&kv, "capacity", lineno)?,
                    },
                    "periodic-resource" => ServerSpec::PeriodicResource {
                        period: need(&kv, "period", lineno)?,
                        budget: need(&kv, "budget", lineno)?,
                    },
                    other => {
                        return Err(err(lineno, format!("unknown server kind '{other}'")))
                    }
                });
            }
            other => {
                return Err(err(lineno, format!("unknown keyword '{other}'")));
            }
        }
    }
    if let Some(p) = current.take() {
        finish(p, &mut tasks)?;
    }
    if tasks.is_empty() {
        return Err(ParseError {
            line: 0,
            message: "no tasks declared".into(),
        });
    }
    Ok(SystemSpec { tasks, server })
}

/// Parses the trailing `key=value` pairs of a line.
fn parse_kv<'a>(
    words: impl Iterator<Item = &'a str>,
    lineno: usize,
) -> Result<HashMap<&'a str, Q>, ParseError> {
    let mut out = HashMap::new();
    for w in words {
        let (k, v) = w.split_once('=').ok_or_else(|| ParseError {
            line: lineno,
            message: format!("expected key=value, found '{w}'"),
        })?;
        let value: Q = v.parse().map_err(|_| ParseError {
            line: lineno,
            message: format!("invalid rational '{v}' for '{k}'"),
        })?;
        if out.insert(k, value).is_some() {
            return Err(ParseError {
                line: lineno,
                message: format!("duplicate key '{k}'"),
            });
        }
    }
    Ok(out)
}

fn need(kv: &HashMap<&str, Q>, key: &str, lineno: usize) -> Result<Q, ParseError> {
    kv.get(key).copied().ok_or_else(|| ParseError {
        line: lineno,
        message: format!("missing required '{key}='"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtw_minplus::q;

    const GOOD: &str = "
# a decoder and a telemetry stream
task decoder
vertex I wcet=12 deadline=60
vertex P wcet=6 deadline=35
edge I P sep=15
edge P I sep=45

task telemetry
vertex t wcet=1/2
edge t t sep=25

server rate-latency rate=3/4 latency=2
";

    #[test]
    fn parses_complete_system() {
        let sys = parse_system(GOOD).unwrap();
        assert_eq!(sys.tasks.len(), 2);
        assert_eq!(sys.tasks[0].name(), "decoder");
        assert_eq!(sys.tasks[0].num_vertices(), 2);
        assert_eq!(sys.tasks[0].num_edges(), 2);
        assert_eq!(sys.tasks[1].wcet(sys.tasks[1].vertex_ids().next().unwrap()), q(1, 2));
        let server = sys.server.unwrap();
        assert_eq!(
            server,
            ServerSpec::RateLatency {
                rate: q(3, 4),
                latency: Q::int(2)
            }
        );
        let beta = server.beta_lower().unwrap();
        assert_eq!(beta.eval(Q::int(6)), Q::int(3));
    }

    #[test]
    fn error_locations_reported() {
        let bad = "task t\nvertex a wcet=zero\n";
        let e = parse_system(bad).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("invalid rational"));

        let e = parse_system("vertex a wcet=1\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("outside of a task"));

        let e = parse_system("task t\nvertex a wcet=1\nedge a b sep=1\n").unwrap_err();
        assert!(e.message.contains("unknown vertex 'b'"));

        let e = parse_system("task t\nfrobnicate\n").unwrap_err();
        assert!(e.message.contains("unknown keyword"));

        let e = parse_system("").unwrap_err();
        assert!(e.message.contains("no tasks"));
    }

    #[test]
    fn invalid_task_graphs_surface_build_errors() {
        // Zero WCET is rejected by the task builder.
        let e = parse_system("task t\nvertex a wcet=0\nedge a a sep=5\n").unwrap_err();
        assert!(e.message.contains("invalid task"), "{e}");
        // Duplicate vertex name.
        let e = parse_system("task t\nvertex a wcet=1\nvertex a wcet=2\n").unwrap_err();
        assert!(e.message.contains("duplicate vertex"));
    }

    #[test]
    fn duplicate_task_names_rejected_with_location() {
        let text = "task t\nvertex a wcet=1\nedge a a sep=5\n\ntask t\nvertex b wcet=1\nedge b b sep=5\n";
        let e = parse_system(text).unwrap_err();
        assert_eq!(e.line, 5);
        assert!(e.message.contains("duplicate task 't'"), "{e}");
    }

    #[test]
    fn all_server_kinds_parse() {
        for (line, check_rate) in [
            ("server fluid rate=2", Q::int(2)),
            ("server tdma slot=2 cycle=5 capacity=1", q(2, 5)),
            ("server periodic-resource period=5 budget=2", q(2, 5)),
        ] {
            let text = format!("task t\nvertex a wcet=1\nedge a a sep=9\n{line}\n");
            let sys = parse_system(&text).unwrap();
            let beta = sys.server.unwrap().beta_lower().unwrap();
            assert_eq!(beta.rate(), check_rate, "for {line}");
        }
        let e = parse_system("task t\nvertex a wcet=1\nserver warp speed=9\n").unwrap_err();
        assert!(e.message.contains("unknown server kind"));
    }

    #[test]
    fn parsed_system_is_analysable() {
        let sys = parse_system(GOOD).unwrap();
        let beta = sys.server.unwrap().beta_lower().unwrap();
        let a = srtw_core::fifo_structural(
            &sys.tasks,
            &beta,
            &srtw_core::AnalysisConfig::default(),
        )
        .unwrap();
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn comments_and_duplicate_keys() {
        let ok = "task t # trailing comment\nvertex a wcet=1 # another\nedge a a sep=5\n";
        assert!(parse_system(ok).is_ok());
        let e = parse_system("task t\nvertex a wcet=1 wcet=2\n").unwrap_err();
        assert!(e.message.contains("duplicate key"));
        let e = parse_system("task t\nvertex a wcet=1\nedge a a sep=5\nserver fluid rate=1\nserver fluid rate=2\n")
            .unwrap_err();
        assert!(e.message.contains("duplicate server"));
    }
}
