//! Differential property suite: streamed/fused kernels vs the materializing
//! operators.
//!
//! The fused pipeline ([`srtw_minplus::Pipe`]) and the i64 fixed-denominator
//! scalar convolution fast path are pure implementation strategies — the
//! contract is that their results are **byte-identical** to the
//! materializing exact-`Q` operators, and that the `BudgetMeter` sees the
//! identical tick sequence, so budget trips, cancellation, and injected
//! faults land on the same operation index either way. Every property here
//! runs ≥ 64 seeded cases (the harness default; `SRTW_PROP_CASES`
//! overrides).

use srtw_detrand::prop::forall;
use srtw_detrand::Rng;
use srtw_minplus::{Budget, BudgetMeter, Curve, Pipe, Q};

/// A small positive rational with bounded numerator/denominator.
fn small_pos_q(rng: &mut Rng) -> Q {
    Q::new(rng.random_range(1i128..=12), rng.random_range(1i128..=4))
}

/// A small non-negative rational.
fn small_q(rng: &mut Rng) -> Q {
    Q::new(rng.random_range(0i128..=12), rng.random_range(1i128..=4))
}

/// Random monotone curve from the constructor grammar.
fn curve(rng: &mut Rng) -> Curve {
    match rng.random_range(0u32..6) {
        0 => Curve::constant(small_q(rng)),
        1 => Curve::affine(small_q(rng), small_q(rng)),
        2 => Curve::rate_latency(small_pos_q(rng), small_q(rng)),
        3 => Curve::staircase(small_pos_q(rng), small_pos_q(rng)),
        4 => Curve::staircase_lower(small_pos_q(rng), small_pos_q(rng)),
        _ => {
            let a = Curve::staircase(small_pos_q(rng), small_pos_q(rng));
            a.shift_up(small_q(rng))
        }
    }
}

/// The materializing composition conv → min → sub_clamped, every operator
/// validated and canonicalized individually.
fn materialized(
    a: &Curve,
    b: &Curve,
    c: &Curve,
    d: &Curve,
    h: Q,
    meter: &BudgetMeter,
) -> Result<Curve, srtw_minplus::CurveError> {
    let conv = a.try_conv_upto(b, h, meter)?;
    let min = conv.try_pointwise_min(c, meter)?;
    min.try_sub_clamped_monotone(d, meter)
}

/// The same composition as one fused pipeline.
fn fused(
    a: &Curve,
    b: &Curve,
    c: &Curve,
    d: &Curve,
    h: Q,
    meter: &BudgetMeter,
) -> Result<Curve, srtw_minplus::CurveError> {
    Ok(Pipe::new(a.clone(), meter)
        .conv_upto(b, h)?
        .min(c)?
        .sub_clamped(d)?
        .finish())
}

#[test]
fn fused_pipeline_byte_identical() {
    forall(
        "fused_pipeline_byte_identical",
        |rng, _| {
            (
                curve(rng),
                curve(rng),
                curve(rng),
                curve(rng),
                Q::int(rng.random_range(1i128..=40)),
            )
        },
        |(a, b, c, d, h)| {
            let m1 = BudgetMeter::unlimited();
            let m2 = BudgetMeter::unlimited();
            let mat = materialized(a, b, c, d, *h, &m1).expect("materializing composition failed");
            let fus = fused(a, b, c, d, *h, &m2).expect("fused composition failed");
            assert_eq!(mat, fus, "fused pipeline diverged from materializing ops");
            // The delay exit agrees too (served demand chosen as `d`).
            let hd_m = d.try_hdev(&mat, &BudgetMeter::unlimited()).unwrap();
            let hd_f = Pipe::new(a.clone(), &BudgetMeter::unlimited())
                .conv_upto(b, *h)
                .unwrap()
                .min(c)
                .unwrap()
                .sub_clamped(d)
                .unwrap()
                .hdev_of(d)
                .unwrap();
            assert_eq!(hd_m, hd_f, "fused hdev exit diverged");
        },
    );
}

#[test]
fn fused_pipeline_identical_under_budget_trips() {
    forall(
        "fused_pipeline_identical_under_budget_trips",
        |rng, _| {
            (
                curve(rng),
                curve(rng),
                curve(rng),
                curve(rng),
                Q::int(rng.random_range(1i128..=30)),
                rng.random_range(1u64..=120),
            )
        },
        |(a, b, c, d, h, cap)| {
            // Identical caps: wherever the budget trips — mid-conv, mid-min,
            // mid-subtraction — both strategies must fail (or succeed) at
            // the same point with the same outcome.
            let m1 = BudgetMeter::new(&Budget::default().with_max_segments(*cap));
            let m2 = BudgetMeter::new(&Budget::default().with_max_segments(*cap));
            let mat = materialized(a, b, c, d, *h, &m1);
            let fus = fused(a, b, c, d, *h, &m2);
            assert_eq!(
                mat, fus,
                "budget trip at cap {cap} diverged between strategies"
            );
        },
    );
}

#[test]
fn scalar_fast_path_matches_scaled_exact() {
    forall(
        "scalar_fast_path_matches_scaled_exact",
        |rng, _| {
            (
                curve(rng),
                curve(rng),
                Q::int(rng.random_range(1i128..=25)),
            )
        },
        |(a, b, h)| {
            // Small inputs take the i64 scalar kernel; scaling values by a
            // huge factor k forces intermediate products past i64 so the
            // kernel spills to the exact-Q fallback mid-run. Linearity of
            // value scaling ((k·f) ⊗ (k·g) = k·(f ⊗ g)) makes the two runs
            // comparable: the fallback must land on the byte-identical
            // scaled result.
            let k = Q::int(1i128 << 40);
            let small = a.conv_upto(b, *h);
            let big = a.scale(k).conv_upto(&b.scale(k), *h);
            assert_eq!(
                big,
                small.scale(k),
                "i64→Q overflow fallback diverged from the exact kernel"
            );
        },
    );
}

#[test]
fn overflow_boundary_ticks_identically() {
    forall(
        "overflow_boundary_ticks_identically",
        |rng, _| {
            (
                curve(rng),
                curve(rng),
                Q::int(rng.random_range(1i128..=20)),
                rng.random_range(1u64..=80),
            )
        },
        |(a, b, h, cap)| {
            // The tick sequence is part of the contract: a capped meter must
            // trip at the same count whether the scalar kernel completed,
            // spilled at tick k and replayed in Q, or never started. Compare
            // the small-value run (scalar path) against the huge-value run
            // (spilling path) under the same cap: outcomes must agree
            // because the replayed Q prefix swallows already-issued ticks.
            let k = Q::int(1i128 << 40);
            let m1 = BudgetMeter::new(&Budget::default().with_max_segments(*cap));
            let m2 = BudgetMeter::new(&Budget::default().with_max_segments(*cap));
            let small = a.try_conv_upto(b, *h, &m1);
            let big = a.scale(k).try_conv_upto(&b.scale(k), *h, &m2);
            match (small, big) {
                (Ok(s), Ok(bg)) => assert_eq!(bg, s.scale(k), "results diverged"),
                (Err(es), Err(eb)) => assert_eq!(es, eb, "error kinds diverged"),
                (s, bg) => panic!(
                    "tick sequences diverged at cap {cap}: small = {s:?}, big = {bg:?}"
                ),
            }
        },
    );
}

#[test]
fn deconv_stage_matches_materializing() {
    forall(
        "deconv_stage_matches_materializing",
        |rng, _| {
            (
                curve(rng),
                Curve::rate_latency(small_pos_q(rng), small_q(rng)),
                Q::int(rng.random_range(1i128..=25)),
                Q::int(rng.random_range(1i128..=25)),
            )
        },
        |(a, beta, h, u_cap)| {
            let mat = a.deconv_upto(beta, *h, *u_cap);
            let meter = BudgetMeter::unlimited();
            let fus = Pipe::new(a.clone(), &meter)
                .deconv_upto(beta, *h, *u_cap)
                .expect("unmetered deconv stage failed")
                .finish();
            assert_eq!(mat, fus, "fused deconv stage diverged");
        },
    );
}
