//! B1 — (min,+) operator micro-benchmarks: convolution, deconvolution,
//! deviations, and pointwise ops on representative curve pairs.
//!
//! Run with `cargo bench -p srtw-bench --bench convolution`; set
//! `SRTW_BENCH_FAST=1` for a quick smoke run.

use srtw_bench::suites::convolution_suite;
use srtw_bench::timing::{print_samples, Timer};

fn main() {
    print_samples(&convolution_suite(&Timer::from_env()));
}
