//! # srtw — Delay Analysis of Structural Real-Time Workload
//!
//! A from-scratch Rust reproduction of the analysis stack behind *“Delay
//! analysis of structural real-time workload”* (DATE 2015): exact
//! Real-Time-Calculus curve algebra, the digraph real-time task model, a
//! structure-aware per-job-type delay analysis with its arrival-curve
//! (RTC) baseline, resource/server models, a validating simulator, and
//! reproducible workload generators.
//!
//! This facade re-exports the member crates under stable module names:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`minplus`] | `srtw-minplus` | rationals, curves, (min,+) operators, hdev/vdev |
//! | [`workload`] | `srtw-workload` | digraph tasks, rbf, utilization, traces |
//! | [`resource`] | `srtw-resource` | rate-latency / TDMA / periodic-resource servers |
//! | [`core`] | `srtw-core` | structural & RTC delay / backlog analyses |
//! | [`sim`] | `srtw-sim` | FIFO simulator, trace generators |
//! | [`gen`] | `srtw-gen` | seeded random workload generation |
//! | [`detrand`] | `srtw-detrand` | deterministic PRNG + property-test harness |
//! | [`supervisor`] | `srtw-supervisor` | crash-contained batch runs, watchdog, retry/degrade ladder |
//! | [`serve`] | `srtw-serve` | resilient analysis service: admission control, deadlines, drain |
//! | [`textfmt`] | `srtw-core` | the `.srtw` text format (hardened parser, caps, typed errors) |
//!
//! The most common items are additionally re-exported at the top level.
//!
//! # Quickstart
//!
//! ```
//! use srtw::{structural_delay, rtc_delay, Curve, DrtTaskBuilder, Q};
//!
//! // A mode-switching task: heavy job, then a light one, alternating.
//! let mut b = DrtTaskBuilder::new("modes");
//! let heavy = b.vertex("heavy", Q::int(4));
//! let light = b.vertex("light", Q::ONE);
//! b.edge(heavy, light, Q::int(6));
//! b.edge(light, heavy, Q::int(6));
//! let task = b.build().unwrap();
//!
//! // Served on a unit-rate resource that can be blocked for 2 time units.
//! let beta = Curve::rate_latency(Q::ONE, Q::int(2));
//!
//! let structural = structural_delay(&task, &beta).unwrap();
//! let baseline = rtc_delay(&task, &beta).unwrap();
//!
//! // The stream-wide bounds agree (theorem) …
//! assert_eq!(structural.stream_bound, baseline.bound);
//! // … but the structural analysis attributes delays per job type:
//! assert!(structural.bound_of(light) < baseline.bound);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use srtw_core::textfmt;

pub use srtw_core as core;
pub use srtw_serve as serve;
pub use srtw_detrand as detrand;
pub use srtw_detrand::prop;
pub use srtw_detrand::Rng;
pub use srtw_gen as gen;
pub use srtw_minplus as minplus;
pub use srtw_resource as resource;
pub use srtw_sim as sim;
pub use srtw_supervisor as supervisor;
pub use srtw_workload as workload;

pub use srtw_core::{
    backlog_bound, busy_window, busy_window_metered, edf_schedulable, fifo_rtc, fifo_rtc_with,
    fifo_structural, fixed_priority_structural, fixed_priority_structural_with, rtc_delay,
    rtc_delay_with, structural_delay, structural_delay_with, tandem_backlog_at, tandem_delay,
    AnalysisConfig, AnalysisError, BoundQuality, Budget, BudgetKind, BudgetMeter, BusyWindow,
    Degradation, DelayAnalysis, EdfReport, Fallback, Json, RtcReport, TandemReport, VertexBound,
    WitnessPath,
};
pub use srtw_gen::{generate_drt, generate_task_set, DrtGenConfig};
pub use srtw_minplus::{q, CancelToken, Curve, CurveError, Ext, FaultKind, FaultPlan, Piece, Q, Tail};
// `Server` stays behind `serve::` — the flat namespace already has the
// resource-model `Server` trait.
pub use srtw_serve::{fifo_report, DrainReport, FifoReport, ServeConfig};
pub use srtw_supervisor::{
    contain, run_batch, run_supervised, BatchConfig, BatchReport, BatchStatus, Contained,
    JobOutcome, JobSpec, JobStatus, Rung, SupervisorConfig,
};
pub use srtw_resource::{
    concatenate_upto, leftover_blind, leftover_chain, ExplicitServer, PeriodicResource,
    RateLatencyServer, ResourceError, Server, TdmaServer,
};
pub use srtw_sim::{
    earliest_random_walk, lazy_random_walk, simulate_edf, simulate_fifo, simulate_fixed_priority,
    simulate_preemptive, witness_trace, JobRecord, SchedPolicy, ServiceProcess, SimOutcome,
};
pub use srtw_workload::{
    critical_cycle, explore, explore_metered, explore_metered_threads, long_run_utilization,
    rbf_samples, Dbf, DrtTask, DrtTaskBuilder, ExploreConfig, Exploration, MultiframeTask,
    PathNode, PeriodicTask, Rbf, RbfMemo, RbNode, RecurringBranchingTask, ReleaseTrace,
    SporadicTask, VertexId, WorkloadError,
};
