//! Streaming durable batch: `POST /batch`.
//!
//! The request body is a batch manifest — one `.srtw` path per line,
//! `#` comments — resolved relative to the server's working directory.
//! The response is HTTP/1.1 chunked `application/x-ndjson`: one JSON
//! line per job *as it finishes* (the same per-job object as a
//! `srtw batch --json` `jobs[]` entry), then one `{"summary":…}` line,
//! so a client watches progress live instead of waiting out the batch.
//!
//! Each job runs under the full supervision ladder
//! ([`srtw_supervisor::run_batch_observed`]): retries, budget
//! degradation, panic containment, and per-attempt provenance all
//! behave exactly as in CLI batch mode. Two robustness properties are
//! layered on top:
//!
//! - **Disconnect cancellation** — a watcher thread polls the socket
//!   ([`crate::mux::peer_closed`]); when the client goes away
//!   mid-stream the batch's [`CancelToken`] is raised and the remaining
//!   jobs wind down through the sound degradation path instead of
//!   burning workers for a reader that no longer exists.
//! - **Durability** — with [`crate::ServeConfig::journal`] set, every
//!   outcome is appended (fsync'd, CRC-framed) to a journal keyed by
//!   the manifest digest *before* the line is streamed. A replica that
//!   dies mid-batch answers the re-POSTed manifest by replaying the
//!   journaled outcomes verbatim — byte-identical lines, original wall
//!   times — and recomputes only the unfinished tail. When the journal
//!   already covers *every* manifest entry, the whole report streams on
//!   a fast path with no supervisor, cancel token, or disconnect
//!   watcher at all. A journal append failure aborts the process:
//!   durability was requested, so losing it is a crash, and under
//!   `--replicas` the supervision tree turns that crash into exactly
//!   the restart + resume path it exists for. A journal *open* failure,
//!   by contrast, degrades: nothing durable has been promised yet, so
//!   the batch runs unjournaled with a typed `srtw-persist:` warning —
//!   persistence failure never changes an HTTP status or a result byte.

use crate::http::{chunk, chunked_head, Request, Response, CHUNK_TERMINATOR};
use crate::mux;
use crate::server::{error_body, Shared};
use srtw_core::textfmt::parse_system;
use srtw_core::Json;
use srtw_minplus::CancelToken;
use srtw_persist::PersistError;
use srtw_supervisor::journal::{self, JournalRecord, JournalWriter};
use srtw_supervisor::{
    run_batch_observed, BatchConfig, JobOutcome, JobSpec, OutcomeObserver, SupervisorConfig,
};
use std::collections::HashMap;
use std::io::{self, Write as _};
use std::net::TcpStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// How often the watcher probes the client socket for a hangup.
const DISCONNECT_POLL: Duration = Duration::from_millis(50);

/// One manifest entry: a loadable job or its pre-run failure (missing
/// file, parse error, absent server line) — the same containment as the
/// CLI queue loader, so one bad path degrades one line, not the batch.
enum Entry {
    Job(Box<JobSpec>),
    PreFailed(JournalRecord),
}

impl Entry {
    fn name(&self) -> &str {
        match self {
            Entry::Job(spec) => &spec.name,
            Entry::PreFailed(rec) => &rec.name,
        }
    }
}

/// Serves one `POST /batch` exchange, writing the entire (chunked)
/// response itself; the caller only lingers and closes afterwards.
pub(crate) fn stream_batch(shared: &Shared, req: &Request, stream: &mut TcpStream) {
    shared.stats.batches.fetch_add(1, Ordering::Relaxed);
    match prepare(shared, req) {
        Ok(prepared) => run_and_stream(shared, prepared, stream),
        Err(resp) => {
            shared.stats.failed.fetch_add(1, Ordering::Relaxed);
            let _ = resp.write_to(stream);
        }
    }
}

/// Everything decided before the first response byte: the parsed
/// entries, the journal (opened or created), the replayable records, and
/// whether the journal already covers the whole manifest.
struct Prepared {
    entries: Vec<Entry>,
    writer: Option<Arc<Mutex<JournalWriter>>>,
    replay: HashMap<String, JournalRecord>,
    /// `true` when every manifest entry has a journaled outcome: the
    /// response is a pure replay and skips the supervisor entirely.
    complete: bool,
}

fn prepare(shared: &Shared, req: &Request) -> Result<Prepared, Box<Response>> {
    if shared.draining_or_requested() {
        return Err(Box::new(Response::json(
            503,
            "{\"status\":\"draining\"}\n".into(),
        )));
    }
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return Err(Box::new(Response::json(
            400,
            error_body(2, "input", "manifest body is not UTF-8", vec![]),
        )));
    };
    let files: Vec<&str> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    if files.is_empty() {
        return Err(Box::new(Response::json(
            400,
            error_body(2, "input", "manifest lists no systems", vec![]),
        )));
    }
    let entries: Vec<Entry> = files.iter().map(|f| load_entry(f)).collect();

    // The journal is keyed by the digest of the manifest *body*: the
    // same manifest re-POSTed after a crash lands on the same file; a
    // different manifest can never replay foreign outcomes.
    let digest = journal::digest64(&req.body);
    let mut replay = HashMap::new();
    let mut complete = false;
    let writer = match &shared.cfg.journal {
        None => None,
        Some(prefix) => {
            let jpath = std::path::PathBuf::from(format!("{prefix}.{digest:016x}"));
            let writer = match journal::recover(&jpath) {
                Ok(rec) if rec.digest == digest => {
                    for w in &rec.warnings {
                        eprintln!("srtw-persist: {}: {w}", jpath.display());
                    }
                    complete = rec.covers(entries.iter().map(|e| e.name()));
                    for r in rec.records {
                        replay.insert(r.name.clone(), r);
                    }
                    JournalWriter::open_append(&jpath)
                }
                Ok(_) => {
                    eprintln!(
                        "srtw-persist: {}: byte 0: journal belongs to a different manifest; \
                         starting fresh",
                        jpath.display()
                    );
                    JournalWriter::create(&jpath, digest)
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    JournalWriter::create(&jpath, digest)
                }
                Err(e) => {
                    eprintln!(
                        "srtw-persist: {}: byte 0: journal is unreadable ({e}); starting fresh",
                        jpath.display()
                    );
                    JournalWriter::create(&jpath, digest)
                }
            };
            match writer {
                Ok(mut w) => {
                    w.set_fault(shared.cfg.journal_fault);
                    Some(Arc::new(Mutex::new(w)))
                }
                Err(e) => {
                    // Nothing durable has been promised yet, so an open
                    // failure degrades: the batch runs unjournaled with a
                    // typed warning. Only *append* failures (after the
                    // durability promise) are treated as crashes.
                    let typed = PersistError::classify(&jpath, &e);
                    shared.stats.persist_errors.fetch_add(1, Ordering::Relaxed);
                    eprintln!("srtw-persist: {typed}; batch continues without a journal");
                    None
                }
            }
        }
    };
    Ok(Prepared {
        entries,
        writer,
        replay,
        complete,
    })
}

/// Loads one manifest line the way the CLI queue loader does, containing
/// parse panics into a pre-failed record.
fn load_entry(file: &str) -> Entry {
    let path = std::path::Path::new(file);
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| file.to_string());
    let pre_failed = |name: &str, e: String| {
        Entry::PreFailed(JournalRecord::from_outcome(&JobOutcome::pre_failed(name, e)))
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return pre_failed(&name, format!("cannot read {file}: {e}")),
    };
    let loaded = catch_unwind(AssertUnwindSafe(|| -> Result<JobSpec, String> {
        let sys = parse_system(&text).map_err(|e| format!("{file}: {e}"))?;
        let server = sys
            .server
            .as_ref()
            .ok_or_else(|| format!("{file}: the system file declares no server"))?;
        let beta = server.beta_lower().map_err(|e| e.to_string())?;
        Ok(JobSpec::new(name.clone(), sys.tasks, beta))
    }));
    match loaded {
        Ok(Ok(spec)) => Entry::Job(Box::new(spec)),
        Ok(Err(e)) => pre_failed(&name, e),
        Err(_) => pre_failed(&name, "panic while parsing".into()),
    }
}

fn run_and_stream(shared: &Shared, prepared: Prepared, stream: &mut TcpStream) {
    let Prepared {
        entries,
        writer,
        mut replay,
        complete,
    } = prepared;

    // Everything past this point streams: head first, then one line per
    // job. All writes go through one clone of the stream behind a mutex
    // so the observer (on a supervisor worker thread) and this thread
    // never interleave chunks.
    let Ok(out_stream) = stream.try_clone() else {
        let _ = Response::json(
            500,
            error_body(3, "internal", "cannot clone the response stream", vec![]),
        )
        .write_to(stream);
        return;
    };
    let out = Arc::new(Mutex::new(out_stream));
    let alive = Arc::new(AtomicBool::new(true));
    let write_frame = {
        let out = Arc::clone(&out);
        let alive = Arc::clone(&alive);
        move |frame: &[u8]| {
            if !alive.load(Ordering::Acquire) {
                return;
            }
            let mut s = out.lock().unwrap();
            if s.write_all(frame).and_then(|()| s.flush()).is_err() {
                alive.store(false, Ordering::Release);
            }
        }
    };
    write_frame(&chunked_head(200, "application/x-ndjson"));

    // Warm-journal fast path: the journal fully covers the manifest, so
    // the entire report streams as a verbatim replay — no supervisor, no
    // cancel token, no disconnect watcher, nothing new to journal.
    if complete {
        let done: Vec<JournalRecord> = entries
            .iter()
            .map(|e| replay.get(e.name()).expect("complete covers every entry").clone())
            .collect();
        for rec in &done {
            write_frame(&chunk(format!("{}\n", rec.json).as_bytes()));
        }
        shared
            .stats
            .batch_replayed
            .fetch_add(done.len() as u64, Ordering::Relaxed);
        stream_summary(&write_frame, &done, done.len() as u64);
        return;
    }

    // The batch-wide cancel token: raised by drain (via inflight), by
    // hard-cancel, and by the disconnect watcher below.
    let token = CancelToken::new();
    if shared.hard_cancel.load(Ordering::Relaxed) {
        token.cancel();
    }
    shared.register(token.clone());
    let watcher_stop = Arc::new(AtomicBool::new(false));
    let watcher = stream.try_clone().ok().map(|probe| {
        let token = token.clone();
        let stop = Arc::clone(&watcher_stop);
        let alive = Arc::clone(&alive);
        thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                if mux::peer_closed(&probe) || !alive.load(Ordering::Acquire) {
                    token.cancel();
                    alive.store(false, Ordering::Release);
                    return;
                }
                thread::sleep(DISCONNECT_POLL);
            }
        })
    });

    // Replayed and pre-failed lines stream immediately, in manifest
    // order; fresh jobs queue for the supervised pool.
    let mut lines: Vec<Option<JournalRecord>> = Vec::with_capacity(entries.len());
    let mut fresh: Vec<(usize, JobSpec)> = Vec::new();
    let mut replayed = 0u64;
    for (i, entry) in entries.into_iter().enumerate() {
        if let Some(rec) = replay.remove(entry.name()) {
            replayed += 1;
            write_frame(&chunk(format!("{}\n", rec.json).as_bytes()));
            lines.push(Some(rec));
            continue;
        }
        match entry {
            Entry::PreFailed(rec) => {
                journal_append(&writer, &rec);
                write_frame(&chunk(format!("{}\n", rec.json).as_bytes()));
                lines.push(Some(rec));
            }
            Entry::Job(spec) => {
                fresh.push((i, *spec));
                lines.push(None);
            }
        }
    }
    shared
        .stats
        .batch_replayed
        .fetch_add(replayed, Ordering::Relaxed);
    shared
        .stats
        .batch_jobs
        .fetch_add(fresh.len() as u64, Ordering::Relaxed);

    let cfg = BatchConfig {
        jobs: 1,
        supervisor: SupervisorConfig {
            timeout: None,
            grace: shared.cfg.grace,
            budget_ms: 1_000,
            budget_retries: 2,
            fault: shared.cfg.fault,
            threads: shared.cfg.threads.max(1),
            cancel: Some(token.clone()),
        },
        fail_fast: false,
    };
    let observer: OutcomeObserver = {
        let writer = writer.clone();
        let write_frame = write_frame.clone();
        Arc::new(move |_i: usize, outcome: &JobOutcome| {
            let rec = JournalRecord::from_outcome(outcome);
            // Durable-then-visible: the line only reaches the wire after
            // the record is fsync'd, so a streamed outcome is always a
            // replayable one.
            journal_append(&writer, &rec);
            write_frame(&chunk(format!("{}\n", rec.json).as_bytes()));
        })
    };
    let specs: Vec<JobSpec> = fresh.iter().map(|(_, s)| s.clone()).collect();
    let report = run_batch_observed(specs, &cfg, Some(observer));
    for ((slot, _), outcome) in fresh.iter().zip(&report.jobs) {
        lines[*slot] = Some(JournalRecord::from_outcome(outcome));
    }

    watcher_stop.store(true, Ordering::Release);
    if let Some(handle) = watcher {
        let _ = handle.join();
    }
    shared.unregister(&token);

    // The summary line and terminator only go out on a live stream; a
    // vanished client gets truncation, which is the honest answer.
    let done: Vec<JournalRecord> = lines.into_iter().flatten().collect();
    stream_summary(&write_frame, &done, replayed);
}

/// Streams the `{"summary":…}` line plus the chunked terminator.
fn stream_summary(write_frame: &impl Fn(&[u8]), done: &[JournalRecord], replayed: u64) {
    let mut exact = 0i128;
    let mut degraded = 0i128;
    let mut failed = 0i128;
    let mut skipped = 0i128;
    for rec in done {
        match rec.status {
            srtw_supervisor::JobStatus::Exact => exact += 1,
            srtw_supervisor::JobStatus::Degraded => degraded += 1,
            srtw_supervisor::JobStatus::Failed => failed += 1,
            srtw_supervisor::JobStatus::Skipped => skipped += 1,
        }
    }
    let summary = Json::object(vec![(
        "summary",
        Json::object(vec![
            ("total", Json::Int(done.len() as i128)),
            ("exact", Json::Int(exact)),
            ("degraded", Json::Int(degraded)),
            ("failed", Json::Int(failed)),
            ("skipped", Json::Int(skipped)),
            ("replayed", Json::Int(replayed as i128)),
        ]),
    )]);
    write_frame(&chunk(format!("{summary}\n").as_bytes()));
    write_frame(CHUNK_TERMINATOR);
}

/// Appends one record to the batch journal, treating failure as fatal:
/// the journal exists to survive crashes, so an append that cannot be
/// made durable *is* a crash — under `--replicas` the supervision tree
/// restarts the replica and the re-POSTed batch resumes from the
/// records that did land.
fn journal_append(writer: &Option<Arc<Mutex<JournalWriter>>>, rec: &JournalRecord) {
    let Some(writer) = writer else { return };
    if let Err(e) = writer.lock().unwrap().append(rec) {
        eprintln!("srtw-serve: journal write failed ({e}); aborting for restart + resume");
        std::process::abort();
    }
}
