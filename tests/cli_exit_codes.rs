//! Integration tests for the CLI exit-code contract and the
//! machine-readable degradation status:
//!
//! * `0` — success: exact bounds, or degraded bounds plus a stderr warning;
//! * `2` — input error (unreadable file, parse error, bad flags);
//! * `3` — internal (analysis failure or residual panic).

use std::process::Command;

/// Runs the compiled `srtw` binary, returning `(code, stdout, stderr)`.
fn run_srtw(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_srtw"))
        .args(args)
        .output()
        .expect("spawn srtw");
    (
        out.status.code().expect("exit code (not signal-killed)"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn sample_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/systems/decoder.srtw")
}

fn temp_file(name: &str, content: &str) -> String {
    let dir = std::env::temp_dir().join("srtw-cli-exit-codes");
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    std::fs::write(&p, content).unwrap();
    p.to_str().unwrap().to_owned()
}

#[test]
fn exact_run_exits_zero_without_warning() {
    let (code, out, err) = run_srtw(&["analyze", sample_path(), "--json"]);
    assert_eq!(code, 0, "stderr: {err}");
    assert!(err.is_empty(), "no warning expected: {err}");
    assert!(out.contains("\"degraded\":false"), "{out}");
    assert!(out.contains("\"quality\":{\"exact\":true}"), "{out}");
}

#[test]
fn budget_tripped_run_exits_zero_with_warning_and_degraded_json() {
    // A tiny path cap trips on the decoder system; its coarse packing
    // rates (12/15 + 1/25) stay below the unit service rate, so the
    // analysis degrades gracefully instead of failing.
    let (code, out, err) = run_srtw(&[
        "analyze",
        sample_path(),
        "--json",
        "--max-paths",
        "3",
    ]);
    assert_eq!(code, 0, "stderr: {err}");
    assert!(
        err.contains("degraded"),
        "stderr must warn about degradation: {err}"
    );
    assert!(out.contains("\"degraded\":true"), "{out}");
    assert!(out.contains("\"exact\":false"), "{out}");
    assert!(out.contains("\"fallback\""), "{out}");
    assert!(out.contains("\"degradations\":["), "{out}");
}

#[test]
fn budget_tripped_text_output_marks_degradation() {
    let (code, out, err) = run_srtw(&["analyze", sample_path(), "--max-paths", "3"]);
    assert_eq!(code, 0, "stderr: {err}");
    assert!(out.contains("DEGRADED"), "{out}");
    assert!(err.contains("sound but degraded"), "{err}");
}

#[test]
fn malformed_file_exits_two() {
    let p = temp_file("bad.srtw", "task t\nvertex a wcet=oops\n");
    let (code, _, err) = run_srtw(&["analyze", &p]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("line 2"), "{err}");
}

#[test]
fn missing_file_exits_two() {
    let (code, _, err) = run_srtw(&["analyze", "/nonexistent/nope.srtw"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("cannot read"), "{err}");
}

#[test]
fn bad_flag_value_exits_two() {
    let (code, _, err) = run_srtw(&["analyze", sample_path(), "--max-paths", "many"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("bad --max-paths"), "{err}");
    let (code, _, err) = run_srtw(&["analyze", sample_path(), "--budget-ms", "-5"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("bad --budget-ms"), "{err}");
}

#[test]
fn unknown_command_and_scheduler_exit_two() {
    let (code, _, _) = run_srtw(&["frobnicate", sample_path()]);
    assert_eq!(code, 2);
    let (code, _, err) = run_srtw(&["analyze", sample_path(), "--scheduler", "lottery"]);
    assert_eq!(code, 2, "stderr: {err}");
}

#[test]
fn unstable_system_exits_three() {
    // Utilization 5/4 on a unit-rate server: an analysis error, not an
    // input error — the file itself is well-formed.
    let p = temp_file(
        "unstable.srtw",
        "task hot\nvertex v wcet=5\nedge v v sep=4\nserver fluid rate=1\n",
    );
    let (code, _, err) = run_srtw(&["analyze", &p]);
    assert_eq!(code, 3, "stderr: {err}");
    assert!(err.contains("unstable"), "{err}");
}

#[test]
fn adversarial_system_degrades_within_wall_budget() {
    // `systems/adversarial.srtw` is constructed so that exact exploration
    // does not finish (its Pareto frontier grows exponentially over a deep
    // busy window); a 1 s wall budget must still produce a sound bound,
    // flagged as degraded, with exit code 0.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/systems/adversarial.srtw");
    let t0 = std::time::Instant::now();
    let (code, out, err) = run_srtw(&["analyze", path, "--json", "--budget-ms", "1000"]);
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(60),
        "budgeted run overran: {:?}",
        t0.elapsed()
    );
    assert_eq!(code, 0, "stderr: {err}");
    assert!(err.contains("sound but degraded"), "{err}");
    assert!(out.contains("\"degraded\":true"), "{out}");
    assert!(out.contains("\"fallback\""), "{out}");
    assert!(out.contains("wall_clock"), "degradation record names the wall budget: {out}");
}

#[test]
fn wall_clock_budget_still_succeeds_on_fast_system() {
    // A generous wall budget on a small system: must finish exactly.
    let (code, out, err) = run_srtw(&[
        "analyze",
        sample_path(),
        "--json",
        "--budget-ms",
        "60000",
    ]);
    assert_eq!(code, 0, "stderr: {err}");
    assert!(out.contains("\"degraded\":false"), "{out}");
}
