//! # srtw-resource — resource and server models
//!
//! Servers abstract the processing resource through service curves: the
//! lower curve `β(Δ)` guarantees service, the upper curve caps it. The
//! crate provides the standard server zoo used throughout the experiments —
//! [`RateLatencyServer`], [`TdmaServer`], [`PeriodicResource`], and
//! arbitrary [`ExplicitServer`]s — plus tandem/leftover composition.
//!
//! # Example
//!
//! ```
//! use srtw_resource::{Server, TdmaServer};
//! use srtw_minplus::{Curve, Ext, Q};
//!
//! // A stream owning 2 of every 5 time units of a unit-rate link.
//! let server = TdmaServer::new(Q::int(2), Q::int(5), Q::ONE).unwrap();
//! let alpha = Curve::staircase(Q::int(10), Q::int(2));
//! let delay = alpha.hdev(&server.beta_lower());
//! assert!(delay.is_finite());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod compose;
mod error;
mod servers;

pub use compose::{concatenate_upto, leftover_blind, leftover_chain};
pub use error::ResourceError;
pub use servers::{ExplicitServer, PeriodicResource, RateLatencyServer, Server, TdmaServer};
