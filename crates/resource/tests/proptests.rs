//! Property-based tests for server models and composition.

use proptest::prelude::*;
use srtw_minplus::{Curve, Q};
use srtw_resource::{
    concatenate_upto, leftover_blind, leftover_chain, PeriodicResource, RateLatencyServer, Server,
    TdmaServer,
};

fn pos_q() -> impl Strategy<Value = Q> {
    (1i128..=10, 1i128..=3).prop_map(|(n, d)| Q::new(n, d))
}

fn server_curve() -> impl Strategy<Value = Curve> {
    prop_oneof![
        (pos_q(), 0i128..=6).prop_map(|(r, t)| {
            RateLatencyServer::new(r, Q::int(t)).unwrap().beta_lower()
        }),
        (1i128..=3, 4i128..=8, 1i128..=2).prop_map(|(slot, cycle, cap)| {
            TdmaServer::new(Q::int(slot), Q::int(cycle), Q::int(cap))
                .unwrap()
                .beta_lower()
        }),
        (4i128..=8, 1i128..=3).prop_map(|(p, th)| {
            PeriodicResource::new(Q::int(p), Q::int(th.min(p)))
                .unwrap()
                .beta_lower()
        }),
    ]
}

fn arrival_curve() -> impl Strategy<Value = Curve> {
    (3i128..=10, 1i128..=4).prop_map(|(p, e)| Curve::staircase(Q::int(p), Q::int(e)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lower_curves_start_at_zero_and_are_monotone(beta in server_curve()) {
        prop_assert_eq!(beta.eval(Q::ZERO), Q::ZERO);
        let mut prev = Q::ZERO;
        for i in 0..80 {
            let v = beta.eval(Q::new(i, 2));
            prop_assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn leftover_is_bounded_and_sound(beta in server_curve(), alpha in arrival_curve()) {
        let left = leftover_blind(&beta, &alpha);
        for i in 0..100 {
            let t = Q::new(i, 2);
            // Leftover never exceeds the full service…
            prop_assert!(left.eval(t) <= beta.eval(t), "leftover above β at {}", t);
            // …and guarantees at least the instantaneous difference.
            prop_assert!(
                left.eval(t) >= (beta.eval(t) - alpha.eval(t)).clamp_nonneg(),
                "leftover below β − α at {}", t
            );
        }
    }

    #[test]
    fn leftover_chain_is_monotone_in_priority(
        beta in server_curve(),
        a1 in arrival_curve(),
        a2 in arrival_curve(),
    ) {
        let chain = leftover_chain(&beta, &[a1, a2]);
        prop_assert_eq!(chain.len(), 2);
        for i in 0..80 {
            let t = Q::new(i, 2);
            prop_assert!(chain[1].eval(t) <= chain[0].eval(t));
        }
    }

    #[test]
    fn concatenation_never_exceeds_either_hop(b1 in server_curve(), b2 in server_curve()) {
        let h = Q::int(30);
        let e2e = concatenate_upto(&[b1.clone(), b2.clone()], h);
        for i in 0..60 {
            let t = Q::new(i, 2);
            prop_assert!(e2e.eval(t) <= b1.eval(t), "e2e above hop 1 at {}", t);
            prop_assert!(e2e.eval(t) <= b2.eval(t), "e2e above hop 2 at {}", t);
        }
    }

    #[test]
    fn upper_curves_dominate_lower(slot in 1i128..=3, cycle in 4i128..=8, cap in 1i128..=2) {
        let s = TdmaServer::new(Q::int(slot), Q::int(cycle), Q::int(cap)).unwrap();
        prop_assert!(s.beta_lower().dominated_by(&s.beta_upper()));
        let p = PeriodicResource::new(Q::int(cycle), Q::int(slot.min(cycle))).unwrap();
        prop_assert!(p.beta_lower().dominated_by(&p.beta_upper()));
    }
}
