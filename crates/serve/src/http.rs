//! A minimal, hardened HTTP/1.1 subset: just enough to parse one request
//! from an untrusted client and write one response, with explicit caps on
//! the head and body so a hostile peer can never make the server buffer
//! unbounded input.
//!
//! The parser is generic over [`BufRead`] so it unit-tests against
//! in-memory buffers without sockets. Every connection carries exactly
//! one request (`Connection: close` on every response); keep-alive is
//! deliberately out of scope — the service optimizes for robustness, not
//! connection reuse.

use std::io::{self, BufRead, Read, Write};

/// Maximum accepted size of the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The request method, verbatim (`GET`, `POST`, …).
    pub method: String,
    /// The request target, verbatim (`/analyze`, …).
    pub target: String,
    /// Header name/value pairs in arrival order (names lower-cased).
    pub headers: Vec<(String, String)>,
    /// The request body (`Content-Length` bytes, within the cap).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of header `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == lower)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed. Each variant maps to one status
/// code; see [`RequestError::status`].
#[derive(Debug)]
pub enum RequestError {
    /// Malformed request line, header, or `Content-Length` → 400.
    BadRequest(String),
    /// The declared body exceeds the cap → 413 (nothing past the head is
    /// read, so the oversized body is never buffered).
    TooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// The enforced cap.
        cap: usize,
    },
    /// A request with a body but no `Content-Length` → 411.
    LengthRequired,
    /// The socket failed or timed out mid-request → 408 on timeout,
    /// otherwise the connection is just dropped.
    Io(io::Error),
}

impl RequestError {
    /// The HTTP status this error answers with.
    pub fn status(&self) -> u16 {
        match self {
            RequestError::BadRequest(_) => 400,
            RequestError::TooLarge { .. } => 413,
            RequestError::LengthRequired => 411,
            RequestError::Io(_) => 408,
        }
    }
}

/// Reads one request from `reader`, enforcing [`MAX_HEAD_BYTES`] on the
/// head and `body_cap` on the declared body length.
pub fn read_request(reader: &mut impl BufRead, body_cap: usize) -> Result<Request, RequestError> {
    let mut head_budget = MAX_HEAD_BYTES;
    let request_line = read_line(reader, &mut head_budget)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| RequestError::BadRequest("empty request line".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| RequestError::BadRequest("request line lacks a target".into()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| RequestError::BadRequest("request line lacks a version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::BadRequest(format!(
            "unsupported protocol '{version}'"
        )));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, &mut head_budget)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| RequestError::BadRequest(format!("malformed header '{line}'")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers.iter().find(|(k, _)| k == "content-length");
    let body = match content_length {
        None if method == "POST" || method == "PUT" => return Err(RequestError::LengthRequired),
        None => Vec::new(),
        Some((_, v)) => {
            let declared: usize = v.parse().map_err(|_| {
                RequestError::BadRequest(format!("bad Content-Length '{v}'"))
            })?;
            if declared > body_cap {
                return Err(RequestError::TooLarge {
                    declared,
                    cap: body_cap,
                });
            }
            let mut body = vec![0u8; declared];
            reader.read_exact(&mut body).map_err(RequestError::Io)?;
            body
        }
    };
    Ok(Request {
        method,
        target,
        headers,
        body,
    })
}

/// Reads one CRLF- (or LF-) terminated line, charging it against the
/// remaining head budget.
fn read_line(reader: &mut impl BufRead, budget: &mut usize) -> Result<String, RequestError> {
    let mut raw = Vec::new();
    // +1 so an exactly-exhausted budget is distinguishable from overflow.
    let mut limited = reader.by_ref().take(*budget as u64 + 1);
    limited
        .read_until(b'\n', &mut raw)
        .map_err(RequestError::Io)?;
    if raw.len() > *budget {
        return Err(RequestError::BadRequest(format!(
            "request head exceeds {MAX_HEAD_BYTES} bytes"
        )));
    }
    if !raw.ends_with(b"\n") {
        return Err(RequestError::Io(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed mid-line",
        )));
    }
    *budget -= raw.len();
    while raw.last() == Some(&b'\n') || raw.last() == Some(&b'\r') {
        raw.pop();
    }
    String::from_utf8(raw).map_err(|_| RequestError::BadRequest("non-UTF-8 header bytes".into()))
}

/// One response, always `Connection: close`.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond the always-present set.
    pub headers: Vec<(&'static str, String)>,
    /// The response body (JSON on every endpoint).
    pub body: String,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body,
        }
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.headers.push((name, value.into()));
        self
    }

    /// Serializes the response to `w`.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason(self.status),
            self.body.len()
        )?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        write!(w, "\r\n{}", self.body)?;
        w.flush()
    }
}

/// What [`client_roundtrip`] hands back: `(status, headers, body)`.
pub type ClientResponse = (u16, Vec<(String, String)>, String);

/// A tiny blocking client for one request/response exchange, used by the
/// test suites and the throughput bench (the workspace has no external
/// HTTP client either). Sends `Content-Length` whenever a body is present
/// or the method is `POST`, reads to EOF (the server always closes), and
/// returns `(status, headers, body)`.
pub fn client_roundtrip(
    addr: &std::net::SocketAddr,
    method: &str,
    target: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<ClientResponse> {
    let mut stream = std::net::TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(std::time::Duration::from_secs(30)))?;
    write!(stream, "{method} {target} HTTP/1.1\r\nHost: srtw\r\n")?;
    for (name, value) in headers {
        write!(stream, "{name}: {value}\r\n")?;
    }
    if !body.is_empty() || method == "POST" || method == "PUT" {
        write!(stream, "Content-Length: {}\r\n", body.len())?;
    }
    stream.write_all(b"\r\n")?;
    // Best-effort body write: a server that rejects early (413) may close
    // its read side before the body is through; the response is already
    // on the wire and must still be read.
    let _ = stream.write_all(body);
    let _ = stream.flush();

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8(raw)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response"))?;
    let (head, resp_body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "response lacks a head"))?;
    let mut lines = head.lines();
    let status_line = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty response"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let parsed_headers = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Ok((status, parsed_headers, resp_body.to_string()))
}

/// The reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(text: &str) -> Result<Request, RequestError> {
        read_request(&mut BufReader::new(text.as_bytes()), 1 << 20)
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse("POST /analyze HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/analyze");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn parses_get_without_body_and_bare_lf() {
        let req = parse("GET /healthz HTTP/1.1\nX-Deadline-Ms: 250\n\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.header("x-deadline-ms"), Some("250"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn post_without_length_is_411() {
        let e = parse("POST /analyze HTTP/1.1\r\n\r\n").unwrap_err();
        assert_eq!(e.status(), 411);
    }

    #[test]
    fn oversized_declared_body_is_413_without_buffering() {
        let e = read_request(
            &mut BufReader::new(&b"POST /analyze HTTP/1.1\r\nContent-Length: 999999\r\n\r\n"[..]),
            1_000,
        )
        .unwrap_err();
        match e {
            RequestError::TooLarge { declared, cap } => {
                assert_eq!((declared, cap), (999_999, 1_000));
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn malformed_inputs_are_400() {
        for bad in [
            "\r\n",
            "GET\r\n\r\n",
            "GET /x\r\n\r\n",
            "GET /x SPDY/9\r\n\r\n",
            "GET /x HTTP/1.1\r\nbroken header\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: minus\r\n\r\n",
        ] {
            let e = parse(bad).unwrap_err();
            assert_eq!(e.status(), 400, "for {bad:?}");
        }
    }

    #[test]
    fn head_cap_is_enforced() {
        let huge = format!(
            "GET / HTTP/1.1\r\nX-Filler: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES)
        );
        let e = parse(&huge).unwrap_err();
        assert_eq!(e.status(), 400);
    }

    #[test]
    fn truncated_request_is_an_io_error() {
        let e = parse("POST /analyze HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort").unwrap_err();
        assert!(matches!(e, RequestError::Io(_)));
    }

    #[test]
    fn response_serialization() {
        let mut out = Vec::new();
        Response::json(503, "{}".into())
            .with_header("Retry-After", "1")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
