//! A small line-based text format for task systems, used by the `srtw`
//! command-line tool and handy for examples and tests.
//!
//! # Format
//!
//! ```text
//! # comments start with '#'; blank lines are ignored
//! task decoder
//! vertex I wcet=12 deadline=60
//! vertex P wcet=6  deadline=35
//! edge I P sep=15
//! edge P I sep=45
//!
//! task telemetry
//! vertex t wcet=1
//! edge t t sep=25
//!
//! server rate-latency rate=1 latency=2
//! ```
//!
//! * `task NAME` starts a new task; the following `vertex`/`edge` lines
//!   belong to it.
//! * `vertex NAME wcet=Q [deadline=Q]` declares a job type. Numbers are
//!   exact rationals: `12`, `3/4`.
//! * `edge FROM TO sep=Q` declares a minimum inter-release separation.
//! * `server KIND key=value…` (at most one) declares the resource:
//!   `rate-latency rate=Q latency=Q`, `fluid rate=Q`,
//!   `tdma slot=Q cycle=Q capacity=Q`, or
//!   `periodic-resource period=Q budget=Q`.
//!
//! # Hardening
//!
//! The parser is built to face untrusted input (the `srtw batch` queue may
//! point at arbitrary files): it never panics, enforces explicit caps
//! ([`MAX_INPUT_BYTES`], [`MAX_TASKS`], [`MAX_VERTICES`], [`MAX_EDGES`])
//! with typed [`ParseErrorKind`]s, and every error carries a 1-based
//! line/column span pointing at the offending token.

use srtw_minplus::{Curve, Q};
use srtw_resource::{PeriodicResource, RateLatencyServer, Server, TdmaServer};
use srtw_workload::{
    canonical_task_form, combine_forms, CanonicalForm, DrtTask, DrtTaskBuilder, StructHasher,
    VertexId,
};
use std::collections::HashMap;
use std::fmt;

/// Maximum accepted input size in bytes (1 MiB).
pub const MAX_INPUT_BYTES: usize = 1 << 20;
/// Maximum number of tasks per system.
pub const MAX_TASKS: usize = 256;
/// Maximum number of vertices per task.
pub const MAX_VERTICES: usize = 4_096;
/// Maximum number of edges per task.
pub const MAX_EDGES: usize = 16_384;

/// A parsed system: tasks plus an optional server declaration.
#[derive(Debug, Clone)]
pub struct SystemSpec {
    /// The parsed tasks, in file order.
    pub tasks: Vec<DrtTask>,
    /// The declared server, if any.
    pub server: Option<ServerSpec>,
}

/// A server declaration from a system file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerSpec {
    /// `rate-latency rate=Q latency=Q`
    RateLatency {
        /// Guaranteed rate.
        rate: Q,
        /// Worst-case initial latency.
        latency: Q,
    },
    /// `fluid rate=Q`
    Fluid {
        /// Constant service rate.
        rate: Q,
    },
    /// `tdma slot=Q cycle=Q capacity=Q`
    Tdma {
        /// Slot length.
        slot: Q,
        /// Cycle length.
        cycle: Q,
        /// Underlying resource rate.
        capacity: Q,
    },
    /// `periodic-resource period=Q budget=Q`
    PeriodicResource {
        /// Replenishment period Π.
        period: Q,
        /// Budget Θ per period.
        budget: Q,
    },
}

impl ServerSpec {
    /// The lower service curve of the declared server.
    pub fn beta_lower(&self) -> Result<Curve, ParseError> {
        let invalid = |what: &'static str| ParseError {
            kind: ParseErrorKind::InvalidServer,
            line: 1,
            column: 1,
            message: format!("invalid server parameters: {what}"),
        };
        Ok(match *self {
            ServerSpec::RateLatency { rate, latency } => RateLatencyServer::new(rate, latency)
                .map_err(|_| invalid("rate-latency"))?
                .beta_lower(),
            ServerSpec::Fluid { rate } => {
                if !rate.is_positive() {
                    return Err(invalid("fluid rate must be positive"));
                }
                Curve::affine(Q::ZERO, rate)
            }
            ServerSpec::Tdma {
                slot,
                cycle,
                capacity,
            } => TdmaServer::new(slot, cycle, capacity)
                .map_err(|_| invalid("tdma"))?
                .beta_lower(),
            ServerSpec::PeriodicResource { period, budget } => {
                PeriodicResource::new(period, budget)
                    .map_err(|_| invalid("periodic-resource"))?
                    .beta_lower()
            }
        })
    }

    /// The server declaration as canonical-hash lanes (variant tag plus
    /// every parameter, reduced) — the resource-binding component of a
    /// system's canonical form.
    pub fn canon_lanes(&self) -> Vec<u64> {
        fn q_lanes(out: &mut Vec<u64>, q: Q) {
            out.push(q.numer() as u64);
            out.push((q.numer() >> 64) as u64);
            out.push(q.denom() as u64);
            out.push((q.denom() >> 64) as u64);
        }
        let mut out = Vec::with_capacity(13);
        match *self {
            ServerSpec::RateLatency { rate, latency } => {
                out.push(1);
                q_lanes(&mut out, rate);
                q_lanes(&mut out, latency);
            }
            ServerSpec::Fluid { rate } => {
                out.push(2);
                q_lanes(&mut out, rate);
            }
            ServerSpec::Tdma {
                slot,
                cycle,
                capacity,
            } => {
                out.push(3);
                q_lanes(&mut out, slot);
                q_lanes(&mut out, cycle);
                q_lanes(&mut out, capacity);
            }
            ServerSpec::PeriodicResource { period, budget } => {
                out.push(4);
                q_lanes(&mut out, period);
                q_lanes(&mut out, budget);
            }
        }
        out
    }
}

impl SystemSpec {
    /// The canonical form of the whole system: the multiset of per-task
    /// canonical forms (vertex-order-, label-, name- and
    /// task-order-insensitive) combined with the server declaration.
    ///
    /// Form equality implies the two systems are isomorphic — see
    /// [`srtw_workload::CanonicalForm`] for the soundness argument that
    /// makes this usable as a content-addressed cache key.
    pub fn canonical_form(&self) -> CanonicalForm {
        let forms = self.tasks.iter().map(canonical_task_form).collect();
        let extra = match &self.server {
            Some(s) => s.canon_lanes(),
            None => Vec::new(),
        };
        combine_forms(forms, &extra)
    }

    /// A stable digest of the system's *presentation*: task order and
    /// names, vertex order and labels, and all semantic content.
    ///
    /// Two parses with equal digests produce byte-identical analysis
    /// documents (modulo `runtime_secs`) — the rendered report carries
    /// names, labels and indices, so a canonical-form match alone is not
    /// enough to replay a cached body verbatim.
    pub fn presentation_digest(&self) -> u64 {
        let mut h = StructHasher::new(0x9e5e);
        h.absorb(self.tasks.len() as u64);
        for task in &self.tasks {
            h.absorb_bytes(task.name().as_bytes());
            h.absorb(task.num_vertices() as u64);
            for v in task.vertex_ids() {
                h.absorb_bytes(task.vertex(v).label.as_bytes());
                h.absorb_q(task.wcet(v));
                match task.deadline(v) {
                    Some(d) => {
                        h.absorb(1);
                        h.absorb_q(d);
                    }
                    None => h.absorb(0),
                }
                h.absorb(task.out_edges(v).len() as u64);
                for e in task.out_edges(v) {
                    h.absorb(e.to.index() as u64);
                    h.absorb_q(e.separation);
                }
            }
        }
        match &self.server {
            Some(s) => {
                h.absorb(1);
                for lane in s.canon_lanes() {
                    h.absorb(lane);
                }
            }
            None => h.absorb(0),
        }
        h.finish64()
    }
}

/// What class of defect a [`ParseError`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// The input exceeds [`MAX_INPUT_BYTES`].
    InputTooLarge,
    /// A structural cap ([`MAX_TASKS`], [`MAX_VERTICES`], [`MAX_EDGES`])
    /// was exceeded.
    CapExceeded,
    /// A keyword the grammar does not know.
    UnknownKeyword,
    /// A `vertex`/`edge` line outside any `task` block.
    OutsideTask,
    /// A required argument or `key=` pair is missing.
    Missing,
    /// A malformed value (not `key=value`, or not a rational).
    BadValue,
    /// A duplicate name, key, or server declaration.
    Duplicate,
    /// An edge endpoint naming no declared vertex.
    UnknownVertex,
    /// The assembled task graph was rejected by the task builder.
    InvalidTask,
    /// The server declaration carries invalid parameters.
    InvalidServer,
    /// The input declares no tasks at all.
    Empty,
}

impl ParseErrorKind {
    /// Stable machine-readable name.
    pub fn as_str(self) -> &'static str {
        match self {
            ParseErrorKind::InputTooLarge => "input_too_large",
            ParseErrorKind::CapExceeded => "cap_exceeded",
            ParseErrorKind::UnknownKeyword => "unknown_keyword",
            ParseErrorKind::OutsideTask => "outside_task",
            ParseErrorKind::Missing => "missing",
            ParseErrorKind::BadValue => "bad_value",
            ParseErrorKind::Duplicate => "duplicate",
            ParseErrorKind::UnknownVertex => "unknown_vertex",
            ParseErrorKind::InvalidTask => "invalid_task",
            ParseErrorKind::InvalidServer => "invalid_server",
            ParseErrorKind::Empty => "empty",
        }
    }
}

/// A parse error with its typed kind and 1-based line/column span.
///
/// Every error produced by [`parse_system`] points at the offending token:
/// `line` and `column` are always ≥ 1 (column counts bytes from the start
/// of the line; errors about a whole line point at its first token, and
/// whole-input errors point at `1:1`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What class of defect this is.
    pub kind: ParseErrorKind,
    /// 1-based line number of the offending token.
    pub line: usize,
    /// 1-based byte column of the offending token within its line.
    pub column: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A cursor pointing at a token: 1-based line and byte column.
#[derive(Debug, Clone, Copy)]
struct Span {
    line: usize,
    column: usize,
}

impl Span {
    fn error(self, kind: ParseErrorKind, message: impl Into<String>) -> ParseError {
        ParseError {
            kind,
            line: self.line,
            column: self.column,
            message: message.into(),
        }
    }
}

/// Splits a line into whitespace-separated words, each with its 1-based
/// byte column.
fn words_with_spans(line: &str, lineno: usize) -> impl Iterator<Item = (Span, &str)> {
    line.split_whitespace().map(move |w| {
        // `split_whitespace` yields subslices of `line`, so pointer
        // arithmetic recovers the byte offset without re-scanning.
        let column = w.as_ptr() as usize - line.as_ptr() as usize + 1;
        (
            Span {
                line: lineno,
                column,
            },
            w,
        )
    })
}

/// Parses a system description in the text format.
///
/// Never panics, whatever the input; every error carries a typed
/// [`ParseErrorKind`] and a 1-based line/column span.
///
/// # Examples
///
/// ```
/// let text = "
/// task t
/// vertex a wcet=2 deadline=8
/// edge a a sep=5
/// server fluid rate=1
/// ";
/// let sys = srtw_core::textfmt::parse_system(text).unwrap();
/// assert_eq!(sys.tasks.len(), 1);
/// assert!(sys.server.is_some());
///
/// let err = srtw_core::textfmt::parse_system("task t\nvertex a wcet=oops\n").unwrap_err();
/// // The span points at the bad value, just past "vertex a wcet=".
/// assert_eq!((err.line, err.column), (2, 15));
/// ```
pub fn parse_system(text: &str) -> Result<SystemSpec, ParseError> {
    let origin = Span { line: 1, column: 1 };
    if text.len() > MAX_INPUT_BYTES {
        return Err(origin.error(
            ParseErrorKind::InputTooLarge,
            format!(
                "input is {} bytes, the cap is {MAX_INPUT_BYTES}",
                text.len()
            ),
        ));
    }

    struct PendingTask {
        builder: DrtTaskBuilder,
        vertices: HashMap<String, VertexId>,
        edges: usize,
        started_at: Span,
    }
    let mut tasks: Vec<DrtTask> = Vec::new();
    let mut server: Option<ServerSpec> = None;
    let mut current: Option<PendingTask> = None;

    let finish = |p: PendingTask, tasks: &mut Vec<DrtTask>| -> Result<(), ParseError> {
        let started = p.started_at;
        let t = p
            .builder
            .build()
            .map_err(|e| started.error(ParseErrorKind::InvalidTask, format!("invalid task: {e}")))?;
        tasks.push(t);
        Ok(())
    };

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim_end();
        let mut words = words_with_spans(line, lineno);
        let Some((kw_span, keyword)) = words.next() else {
            continue;
        };
        match keyword {
            "task" => {
                let (_, name) = words.next().ok_or_else(|| {
                    kw_span.error(ParseErrorKind::Missing, "task needs a name")
                })?;
                if let Some(p) = current.take() {
                    finish(p, &mut tasks)?;
                }
                if tasks.len() + 1 > MAX_TASKS {
                    return Err(kw_span.error(
                        ParseErrorKind::CapExceeded,
                        format!("more than {MAX_TASKS} tasks"),
                    ));
                }
                if tasks.iter().any(|t| t.name() == name) {
                    return Err(
                        kw_span.error(ParseErrorKind::Duplicate, format!("duplicate task '{name}'"))
                    );
                }
                current = Some(PendingTask {
                    builder: DrtTaskBuilder::new(name),
                    vertices: HashMap::new(),
                    edges: 0,
                    started_at: kw_span,
                });
            }
            "vertex" => {
                let p = current.as_mut().ok_or_else(|| {
                    kw_span.error(ParseErrorKind::OutsideTask, "vertex outside of a task")
                })?;
                let (name_span, name) = words.next().ok_or_else(|| {
                    kw_span.error(ParseErrorKind::Missing, "vertex needs a name")
                })?;
                if p.vertices.len() + 1 > MAX_VERTICES {
                    return Err(name_span.error(
                        ParseErrorKind::CapExceeded,
                        format!("more than {MAX_VERTICES} vertices in one task"),
                    ));
                }
                if p.vertices.contains_key(name) {
                    return Err(name_span
                        .error(ParseErrorKind::Duplicate, format!("duplicate vertex '{name}'")));
                }
                let kv = parse_kv(words)?;
                let wcet = need(&kv, "wcet", kw_span)?;
                let id = match kv.get("deadline") {
                    Some(&(_, d)) => p.builder.vertex_with_deadline(name, wcet, d),
                    None => p.builder.vertex(name, wcet),
                };
                p.vertices.insert(name.to_owned(), id);
            }
            "edge" => {
                let p = current.as_mut().ok_or_else(|| {
                    kw_span.error(ParseErrorKind::OutsideTask, "edge outside of a task")
                })?;
                let (from_span, from) = words.next().ok_or_else(|| {
                    kw_span.error(ParseErrorKind::Missing, "edge needs a source vertex")
                })?;
                let (to_span, to) = words.next().ok_or_else(|| {
                    kw_span.error(ParseErrorKind::Missing, "edge needs a target vertex")
                })?;
                if p.edges + 1 > MAX_EDGES {
                    return Err(kw_span.error(
                        ParseErrorKind::CapExceeded,
                        format!("more than {MAX_EDGES} edges in one task"),
                    ));
                }
                let kv = parse_kv(words)?;
                let sep = need(&kv, "sep", kw_span)?;
                let &f = p.vertices.get(from).ok_or_else(|| {
                    from_span.error(ParseErrorKind::UnknownVertex, format!("unknown vertex '{from}'"))
                })?;
                let &t = p.vertices.get(to).ok_or_else(|| {
                    to_span.error(ParseErrorKind::UnknownVertex, format!("unknown vertex '{to}'"))
                })?;
                p.builder.edge(f, t, sep);
                p.edges += 1;
            }
            "server" => {
                if server.is_some() {
                    return Err(
                        kw_span.error(ParseErrorKind::Duplicate, "duplicate server declaration")
                    );
                }
                let (kind_span, kind) = words.next().ok_or_else(|| {
                    kw_span.error(ParseErrorKind::Missing, "server needs a kind")
                })?;
                let kv = parse_kv(words)?;
                let spec = match kind {
                    "rate-latency" => ServerSpec::RateLatency {
                        rate: need(&kv, "rate", kw_span)?,
                        latency: need(&kv, "latency", kw_span)?,
                    },
                    "fluid" => ServerSpec::Fluid {
                        rate: need(&kv, "rate", kw_span)?,
                    },
                    "tdma" => ServerSpec::Tdma {
                        slot: need(&kv, "slot", kw_span)?,
                        cycle: need(&kv, "cycle", kw_span)?,
                        capacity: need(&kv, "capacity", kw_span)?,
                    },
                    "periodic-resource" => ServerSpec::PeriodicResource {
                        period: need(&kv, "period", kw_span)?,
                        budget: need(&kv, "budget", kw_span)?,
                    },
                    other => {
                        return Err(kind_span.error(
                            ParseErrorKind::UnknownKeyword,
                            format!("unknown server kind '{other}'"),
                        ))
                    }
                };
                // Validate parameters at the declaration site so the error
                // points here, not at whatever later consumes the curve.
                spec.beta_lower().map_err(|e| ParseError {
                    kind: ParseErrorKind::InvalidServer,
                    line: kw_span.line,
                    column: kw_span.column,
                    message: e.message,
                })?;
                server = Some(spec);
            }
            other => {
                return Err(kw_span.error(
                    ParseErrorKind::UnknownKeyword,
                    format!("unknown keyword '{other}'"),
                ));
            }
        }
    }
    if let Some(p) = current.take() {
        finish(p, &mut tasks)?;
    }
    if tasks.is_empty() {
        return Err(origin.error(ParseErrorKind::Empty, "no tasks declared"));
    }
    Ok(SystemSpec { tasks, server })
}

/// Parses the trailing `key=value` pairs of a line, remembering where each
/// value sits.
fn parse_kv<'a>(
    words: impl Iterator<Item = (Span, &'a str)>,
) -> Result<HashMap<&'a str, (Span, Q)>, ParseError> {
    let mut out = HashMap::new();
    for (span, w) in words {
        let (k, v) = w.split_once('=').ok_or_else(|| {
            span.error(ParseErrorKind::BadValue, format!("expected key=value, found '{w}'"))
        })?;
        let value_span = Span {
            line: span.line,
            column: span.column + k.len() + 1,
        };
        let value: Q = v.parse().map_err(|_| {
            value_span.error(
                ParseErrorKind::BadValue,
                format!("invalid rational '{v}' for '{k}'"),
            )
        })?;
        if out.insert(k, (span, value)).is_some() {
            return Err(span.error(ParseErrorKind::Duplicate, format!("duplicate key '{k}'")));
        }
    }
    Ok(out)
}

fn need(kv: &HashMap<&str, (Span, Q)>, key: &str, line_span: Span) -> Result<Q, ParseError> {
    kv.get(key).map(|&(_, v)| v).ok_or_else(|| {
        line_span.error(ParseErrorKind::Missing, format!("missing required '{key}='"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtw_minplus::q;

    const GOOD: &str = "
# a decoder and a telemetry stream
task decoder
vertex I wcet=12 deadline=60
vertex P wcet=6 deadline=35
edge I P sep=15
edge P I sep=45

task telemetry
vertex t wcet=1/2
edge t t sep=25

server rate-latency rate=3/4 latency=2
";

    #[test]
    fn parses_complete_system() {
        let sys = parse_system(GOOD).unwrap();
        assert_eq!(sys.tasks.len(), 2);
        assert_eq!(sys.tasks[0].name(), "decoder");
        assert_eq!(sys.tasks[0].num_vertices(), 2);
        assert_eq!(sys.tasks[0].num_edges(), 2);
        assert_eq!(sys.tasks[1].wcet(sys.tasks[1].vertex_ids().next().unwrap()), q(1, 2));
        let server = sys.server.unwrap();
        assert_eq!(
            server,
            ServerSpec::RateLatency {
                rate: q(3, 4),
                latency: Q::int(2)
            }
        );
        let beta = server.beta_lower().unwrap();
        assert_eq!(beta.eval(Q::int(6)), Q::int(3));
    }

    #[test]
    fn error_spans_point_at_the_offending_token() {
        // The bad rational sits at line 2, after "vertex a wcet=".
        let e = parse_system("task t\nvertex a wcet=zero\n").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::BadValue);
        assert_eq!((e.line, e.column), (2, 15));
        assert!(e.message.contains("invalid rational"));

        let e = parse_system("vertex a wcet=1\n").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::OutsideTask);
        assert_eq!((e.line, e.column), (1, 1));

        // 'b' is the second edge operand, column 8.
        let e = parse_system("task t\nvertex a wcet=1\nedge a b sep=1\n").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::UnknownVertex);
        assert_eq!((e.line, e.column), (3, 8));

        let e = parse_system("task t\n   frobnicate\n").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::UnknownKeyword);
        assert_eq!((e.line, e.column), (2, 4));

        let e = parse_system("").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::Empty);
        assert_eq!((e.line, e.column), (1, 1));

        // Display renders the span.
        assert!(e.to_string().starts_with("line 1:1: "));
    }

    #[test]
    fn invalid_task_graphs_surface_build_errors() {
        // Zero WCET is rejected by the task builder.
        let e = parse_system("task t\nvertex a wcet=0\nedge a a sep=5\n").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::InvalidTask);
        assert!(e.message.contains("invalid task"), "{e}");
        // Duplicate vertex name.
        let e = parse_system("task t\nvertex a wcet=1\nvertex a wcet=2\n").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::Duplicate);
        assert!(e.message.contains("duplicate vertex"));
    }

    #[test]
    fn duplicate_task_names_rejected_with_location() {
        let text = "task t\nvertex a wcet=1\nedge a a sep=5\n\ntask t\nvertex b wcet=1\nedge b b sep=5\n";
        let e = parse_system(text).unwrap_err();
        assert_eq!((e.line, e.column), (5, 1));
        assert!(e.message.contains("duplicate task 't'"), "{e}");
    }

    #[test]
    fn all_server_kinds_parse() {
        for (line, check_rate) in [
            ("server fluid rate=2", Q::int(2)),
            ("server tdma slot=2 cycle=5 capacity=1", q(2, 5)),
            ("server periodic-resource period=5 budget=2", q(2, 5)),
        ] {
            let text = format!("task t\nvertex a wcet=1\nedge a a sep=9\n{line}\n");
            let sys = parse_system(&text).unwrap();
            let beta = sys.server.unwrap().beta_lower().unwrap();
            assert_eq!(beta.rate(), check_rate, "for {line}");
        }
        let e = parse_system("task t\nvertex a wcet=1\nserver warp speed=9\n").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::UnknownKeyword);
        assert!(e.message.contains("unknown server kind"));
    }

    #[test]
    fn invalid_server_parameters_error_at_the_declaration() {
        let e = parse_system("task t\nvertex a wcet=1\nedge a a sep=5\nserver fluid rate=0\n")
            .unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::InvalidServer);
        assert_eq!(e.line, 4);
    }

    #[test]
    fn parsed_system_is_analysable() {
        let sys = parse_system(GOOD).unwrap();
        let beta = sys.server.unwrap().beta_lower().unwrap();
        let a = crate::fifo_structural(&sys.tasks, &beta, &crate::AnalysisConfig::default())
            .unwrap();
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn comments_and_duplicate_keys() {
        let ok = "task t # trailing comment\nvertex a wcet=1 # another\nedge a a sep=5\n";
        assert!(parse_system(ok).is_ok());
        let e = parse_system("task t\nvertex a wcet=1 wcet=2\n").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::Duplicate);
        assert!(e.message.contains("duplicate key"));
        let e = parse_system("task t\nvertex a wcet=1\nedge a a sep=5\nserver fluid rate=1\nserver fluid rate=2\n")
            .unwrap_err();
        assert!(e.message.contains("duplicate server"));
    }

    #[test]
    fn input_and_structure_caps_are_enforced() {
        let huge = "#".repeat(MAX_INPUT_BYTES + 1);
        let e = parse_system(&huge).unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::InputTooLarge);

        let mut many_tasks = String::new();
        for i in 0..=MAX_TASKS {
            many_tasks.push_str(&format!("task t{i}\nvertex a wcet=1\nedge a a sep=5\n"));
        }
        let e = parse_system(&many_tasks).unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::CapExceeded);
        assert!(e.message.contains("tasks"));

        let mut many_vertices = String::from("task t\n");
        for i in 0..=MAX_VERTICES {
            many_vertices.push_str(&format!("vertex v{i} wcet=1\n"));
        }
        let e = parse_system(&many_vertices).unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::CapExceeded);
        assert!(e.message.contains("vertices"));

        let mut many_edges = String::from("task t\nvertex a wcet=1\n");
        for _ in 0..=MAX_EDGES {
            many_edges.push_str("edge a a sep=5\n");
        }
        let e = parse_system(&many_edges).unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::CapExceeded);
        assert!(e.message.contains("edges"));
    }
}
