//! B5 — budgeted analysis: cooperative-metering overhead on non-tripping
//! runs and the cost of graceful degradation once a path cap trips.
//!
//! Run with `cargo bench -p srtw-bench --bench budgeted`; set
//! `SRTW_BENCH_FAST=1` for a quick smoke run.

use srtw_bench::suites::budgeted_suite;
use srtw_bench::timing::{print_samples, Timer};

fn main() {
    print_samples(&budgeted_suite(&Timer::from_env()));
}
