//! Quickstart: analyse one structural task on one server, end to end.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds a small mode-switching digraph task, computes the structural
//! per-job-type delay bounds and the RTC baseline, validates both against
//! a simulation, and prints everything.

use srtw::{
    earliest_random_walk, rtc_delay, simulate_fifo, structural_delay, witness_trace, Curve,
    DrtTaskBuilder, Q, ServiceProcess,
};

fn main() {
    // 1. The workload: a control task with a heavy mode-change job (wcet 4)
    //    followed by light steady-state jobs (wcet 1).
    let mut b = DrtTaskBuilder::new("mode-switcher");
    let heavy = b.vertex("mode-change", Q::int(4));
    let steady = b.vertex("steady", Q::ONE);
    b.edge(heavy, steady, Q::int(6));
    b.edge(steady, steady, Q::int(4));
    b.edge(steady, heavy, Q::int(10));
    let task = b.build().expect("valid task graph");

    println!("workload graph:\n{}", task.to_dot());

    // 2. The resource: unit rate, blocked for at most 2 time units.
    let beta = Curve::rate_latency(Q::ONE, Q::int(2));

    // 3. Analyses.
    let structural = structural_delay(&task, &beta).expect("stable system");
    let baseline = rtc_delay(&task, &beta).expect("stable system");

    println!("{structural}\n");
    println!("{baseline}\n");
    assert_eq!(structural.stream_bound, baseline.bound);

    // 4. Witness: replay the worst path of the heavy job in a simulation —
    //    on the *worst-case* rate-latency instance the analytic bound is
    //    met; on a fluid server it is comfortably sound.
    let witness = structural.per_vertex[heavy.index()]
        .witness
        .as_ref()
        .expect("full analysis has witnesses");
    println!(
        "worst path for '{}': {}",
        task.vertex(heavy).label,
        witness.render(&task)
    );
    let trace = witness_trace(&task, &witness.vertices);
    let sim = simulate_fifo(
        std::slice::from_ref(&task),
        std::slice::from_ref(&trace),
        &ServiceProcess::fluid(Q::ONE),
    );
    println!(
        "simulated witness delay (fluid server): {} ≤ bound {}",
        sim.max_delay(),
        structural.bound_of(heavy)
    );
    assert!(sim.max_delay() <= structural.bound_of(heavy));

    // 5. Random traces stay within every per-type bound.
    let mut worst = Q::ZERO;
    for seed in 0..100 {
        let t = earliest_random_walk(&task, Q::int(200), None, seed);
        let out = simulate_fifo(
            std::slice::from_ref(&task),
            std::slice::from_ref(&t),
            &ServiceProcess::fluid(Q::ONE),
        );
        for v in task.vertex_ids() {
            let d = out.max_delay_of(0, v);
            assert!(
                d <= structural.bound_of(v),
                "simulation exceeded the bound for {v}"
            );
        }
        worst = worst.max(out.max_delay());
    }
    println!("worst simulated delay over 100 random traces: {worst}");
}
