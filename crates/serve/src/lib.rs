//! srtw-serve: the resilient analysis service behind `srtw serve`.
//!
//! A long-running, zero-dependency (std `TcpListener`) HTTP service that
//! answers `POST /analyze` with the exact same JSON document as
//! `srtw analyze --json`, wired for robustness at every layer:
//!
//! - **Bounded admission** ([`gate`]): a fixed-capacity queue; overflow is
//!   shed with `503` + `Retry-After` instead of buffered, so a traffic
//!   spike can never grow memory without bound.
//! - **Deadline propagation** ([`server`]): `X-Deadline-Ms` becomes a
//!   wall-clock [`srtw_minplus::Budget`] plus a [`srtw_minplus::CancelToken`],
//!   so an over-deadline request *degrades soundly to the RTC bound* —
//!   monotone truncation guarantees exact ≤ degraded ≤ RTC — rather than
//!   timing out with nothing.
//! - **Crash isolation** ([`pool`] + [`srtw_supervisor::contain`]): each
//!   analysis runs on a supervised thread behind `catch_unwind`; a panic
//!   becomes a typed `500` and the worker pool self-heals by respawn.
//! - **Hardened parsing** ([`http`] + `srtw_core::textfmt`): explicit caps
//!   on the request head and body, and the same 11-kind typed parse errors
//!   as the CLI (`400`/`413` with `parse_kind` in the error body).
//! - **Graceful drain** ([`server::Server::shutdown`]): stop accepting,
//!   let in-flight work finish up to the drain window, then cancel
//!   stragglers through their tokens — they still answer, degraded.
//!
//! Status codes mirror the CLI exit contract (`200`↔0, `400`/`413`↔2,
//! `500`↔3, `503`↔shed/draining), so a batch driver can treat the service
//! exactly like a pool of `srtw analyze` processes.

#![deny(unsafe_code)] // `signal` opts back in for the one libc binding.
#![warn(missing_docs)]

pub mod gate;
pub mod http;
pub mod pool;
pub mod report;
pub mod server;
pub mod signal;
pub mod stats;

pub use report::{fifo_report, FifoReport};
pub use server::{DrainReport, ServeConfig, Server};
