//! Monotone piecewise-affine curves with ultimately-affine or
//! ultimately-periodic tails.
//!
//! A [`Curve`] represents a non-decreasing function `f : Q≥0 → Q`,
//! right-continuous, given by a finite list of affine [`Piece`]s plus a
//! [`Tail`] describing its behaviour beyond the explicit pieces. This is the
//! standard representation of arrival and service curves in Real-Time
//! Calculus: token buckets and rate-latency curves have affine tails, while
//! staircase curves (periodic job releases, TDMA service) have periodic
//! tails.

use crate::error::{ArithmeticError, CurveError};
use crate::meter::BudgetMeter;
use crate::ratio::Q;
use crate::stream::PieceBuf;
use std::sync::OnceLock;

/// The overflow error value for `ok_or_else` sites in this module.
fn ovf() -> CurveError {
    CurveError::Arithmetic(ArithmeticError::Overflow)
}

/// One affine piece of a curve.
///
/// On its half-open extent `[start, next_start)` the curve takes the value
/// `value + slope * (t - start)`. The extent's right end is defined by the
/// following piece (or the tail).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Piece {
    /// Start time of the piece.
    pub start: Q,
    /// Curve value at `start` (right-continuous).
    pub value: Q,
    /// Slope of the piece (non-negative for valid curves).
    pub slope: Q,
}

impl Piece {
    /// Creates a piece.
    #[inline]
    pub fn new(start: Q, value: Q, slope: Q) -> Piece {
        Piece { start, value, slope }
    }

    /// Evaluates the affine extension of this piece at `t` (no domain check).
    #[inline]
    pub fn eval(&self, t: Q) -> Q {
        self.value + self.slope * (t - self.start)
    }
}

/// Tail behaviour of a [`Curve`] beyond its explicit pieces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tail {
    /// The last piece extends to `+∞` with its own slope.
    Affine,
    /// The pieces from index `pattern_start` onward form one period of
    /// length `period`; for later times the pattern repeats, shifted up by
    /// `increment` per period:
    /// `f(t) = f(t - k·period) + k·increment` for suitable `k ≥ 1`.
    Periodic {
        /// Index of the first piece of the repeated pattern.
        pattern_start: usize,
        /// Length of one period (strictly positive).
        period: Q,
        /// Vertical growth per period (non-negative).
        increment: Q,
    },
}

/// A non-decreasing, right-continuous, piecewise-affine curve on `[0, ∞)`.
///
/// # Examples
///
/// ```
/// use srtw_minplus::{Curve, Q, q};
///
/// // Rate-latency service curve β(t) = max(0, (t - 2) * 3/4)
/// let beta = Curve::rate_latency(q(3, 4), Q::int(2));
/// assert_eq!(beta.eval(Q::int(2)), Q::ZERO);
/// assert_eq!(beta.eval(Q::int(6)), Q::int(3));
///
/// // Periodic staircase: one unit of work every 5 time units.
/// let alpha = Curve::staircase(Q::int(5), Q::ONE);
/// assert_eq!(alpha.eval(Q::ZERO), Q::ONE);
/// assert_eq!(alpha.eval(Q::int(4)), Q::ONE);
/// assert_eq!(alpha.eval(Q::int(5)), Q::int(2));
/// assert_eq!(alpha.eval(Q::int(100)), Q::int(21));
/// ```
#[derive(Clone)]
pub struct Curve {
    pieces: PieceBuf,
    tail: Tail,
    /// Lazily computed shape class, shared by clones at clone time. The
    /// cache is *not* part of the curve's identity: equality and hashing
    /// look at `pieces` and `tail` only, so two equal curves compare equal
    /// whether or not their shapes have been classified yet.
    shape: OnceLock<Shape>,
}

/// Shape class of a curve, computed once and cached on the [`Curve`].
///
/// Drives the O(n+m) convolution fast paths: concave ⊗ concave and
/// convex ⊗ convex both avoid the quadratic candidate-envelope
/// construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Shape {
    /// Neither convex nor concave.
    General,
    /// Convex (slopes non-decreasing, no upward jumps), not concave.
    Convex,
    /// Concave on `t > 0` (slopes non-increasing, continuous after 0),
    /// not convex.
    Concave,
    /// Both convex and concave: a single affine piece.
    Both,
}

// `shape` is a derived cache, not state: identity is (pieces, tail).
impl PartialEq for Curve {
    fn eq(&self, other: &Curve) -> bool {
        self.pieces == other.pieces && self.tail == other.tail
    }
}

impl Eq for Curve {}

impl std::hash::Hash for Curve {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.pieces.hash(state);
        self.tail.hash(state);
    }
}

impl std::fmt::Debug for Curve {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Curve")
            .field("pieces", &self.pieces)
            .field("tail", &self.tail)
            .finish()
    }
}

impl Curve {
    /// Internal constructor for pieces/tails whose invariants the caller
    /// guarantees (every call site below builds from an already-valid
    /// curve). Starts with an empty shape cache.
    #[inline]
    pub(crate) fn raw(pieces: Vec<Piece>, tail: Tail) -> Curve {
        Curve {
            pieces: pieces.into(),
            tail,
            shape: OnceLock::new(),
        }
    }

    /// Normalizes in place and returns the curve: the canonicalizing exit
    /// of a fused [`crate::stream::Pipe`]. The pipeline stages build pieces
    /// with trusted kernels (invariants hold by construction), so only the
    /// colinear-merge pass of [`Curve::new`] is needed — not its
    /// validation scan.
    pub(crate) fn into_normalized(mut self) -> Curve {
        self.normalize();
        self
    }
    /// Creates a curve from pieces and a tail descriptor, validating all
    /// representation invariants (non-empty, starts at 0, strictly
    /// increasing starts, non-decreasing values, consistent tail).
    pub fn new(pieces: Vec<Piece>, tail: Tail) -> Result<Curve, CurveError> {
        if pieces.is_empty() {
            return Err(CurveError::Empty);
        }
        if !pieces[0].start.is_zero() {
            return Err(CurveError::FirstPieceNotAtZero {
                start: pieces[0].start,
            });
        }
        for i in 0..pieces.len() {
            if pieces[i].slope.is_negative() {
                return Err(CurveError::NegativeSlope {
                    index: i,
                    slope: pieces[i].slope,
                });
            }
            if i + 1 < pieces.len() {
                if pieces[i + 1].start <= pieces[i].start {
                    return Err(CurveError::NonIncreasingStarts { index: i + 1 });
                }
                let left_limit = pieces[i].eval(pieces[i + 1].start);
                if pieces[i + 1].value < left_limit {
                    return Err(CurveError::DecreasingJump { index: i + 1 });
                }
            }
        }
        if let Tail::Periodic {
            pattern_start,
            period,
            increment,
        } = tail
        {
            if pattern_start >= pieces.len() {
                return Err(CurveError::InvalidPeriodicTail {
                    reason: "pattern_start out of range",
                });
            }
            if !period.is_positive() {
                return Err(CurveError::InvalidPeriodicTail {
                    reason: "period must be positive",
                });
            }
            if increment.is_negative() {
                return Err(CurveError::InvalidPeriodicTail {
                    reason: "increment must be non-negative",
                });
            }
            let s = pieces[pattern_start].start;
            let last = *pieces.last().expect("non-empty");
            if last.start >= s + period {
                return Err(CurveError::InvalidPeriodicTail {
                    reason: "pattern pieces exceed one period",
                });
            }
            // Wrap-around monotonicity: the value at the start of the next
            // period must not be below the left limit at the period's end.
            let end_limit = last.eval(s + period);
            if pieces[pattern_start].value + increment < end_limit {
                return Err(CurveError::InvalidPeriodicTail {
                    reason: "periodic extension would decrease at the wrap point",
                });
            }
        }
        let mut c = Curve::raw(pieces, tail);
        c.normalize();
        Ok(c)
    }

    /// Merges adjacent pieces that are continuous and colinear. Pieces inside
    /// the periodic pattern (and the piece right before it) are left alone to
    /// keep `pattern_start` stable.
    fn normalize(&mut self) {
        let limit = match self.tail {
            Tail::Affine => self.pieces.len(),
            Tail::Periodic { pattern_start, .. } => pattern_start,
        };
        if limit < 2 {
            return;
        }
        let mut merged: Vec<Piece> = Vec::with_capacity(self.pieces.len());
        for (i, p) in self.pieces.iter().enumerate() {
            if i < limit {
                if let Some(prev) = merged.last() {
                    if prev.slope == p.slope && prev.eval(p.start) == p.value {
                        continue; // colinear continuation: drop this breakpoint
                    }
                }
            }
            merged.push(*p);
        }
        let removed = self.pieces.len() - merged.len();
        if removed > 0 {
            if let Tail::Periodic {
                ref mut pattern_start,
                ..
            } = self.tail
            {
                *pattern_start -= removed;
            }
            self.pieces = merged.into();
        }
    }

    /// The explicit pieces of the curve.
    #[inline]
    pub fn pieces(&self) -> &[Piece] {
        &self.pieces
    }

    /// The tail descriptor.
    #[inline]
    pub fn tail(&self) -> Tail {
        self.tail
    }

    /// The time from which the tail alone determines the curve: the start of
    /// the last piece (affine tail) or of the periodic pattern.
    pub fn tail_start(&self) -> Q {
        match self.tail {
            Tail::Affine => self.pieces.last().expect("non-empty").start,
            Tail::Periodic { pattern_start, .. } => self.pieces[pattern_start].start,
        }
    }

    /// The long-run growth rate `lim f(t)/t`.
    pub fn rate(&self) -> Q {
        match self.tail {
            Tail::Affine => self.pieces.last().expect("non-empty").slope,
            Tail::Periodic {
                period, increment, ..
            } => increment / period,
        }
    }

    /// Evaluates the curve at `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t < 0`; curves are defined on `[0, ∞)`.
    pub fn eval(&self, t: Q) -> Q {
        assert!(!t.is_negative(), "Curve::eval at negative time {t}");
        match self.tail {
            Tail::Affine => self.eval_explicit(t),
            Tail::Periodic {
                pattern_start,
                period,
                increment,
            } => {
                let s = self.pieces[pattern_start].start;
                if t < s + period {
                    self.eval_explicit(t)
                } else {
                    let k = ((t - s) / period).floor();
                    let tt = t - period * Q::int(k);
                    self.eval_explicit(tt) + increment * Q::int(k)
                }
            }
        }
    }

    /// Left limit `f(t⁻)`; for `t == 0` this is defined as `f(0)`.
    pub fn eval_left(&self, t: Q) -> Q {
        assert!(!t.is_negative(), "Curve::eval_left at negative time {t}");
        if t.is_zero() {
            return self.eval(Q::ZERO);
        }
        match self.tail {
            Tail::Affine => self.eval_explicit_left(t),
            Tail::Periodic {
                pattern_start,
                period,
                increment,
            } => {
                let s = self.pieces[pattern_start].start;
                if t <= s + period {
                    // `t` within explicit range (the wrap point `s+period`
                    // has its left limit inside the explicit pattern).
                    self.eval_explicit_left(t)
                } else {
                    let mut k = ((t - s) / period).floor();
                    let mut tt = t - period * Q::int(k);
                    if tt == s {
                        // Left limit at an exact period boundary lives in
                        // the previous period.
                        k -= 1;
                        tt += period;
                    }
                    self.eval_explicit_left(tt) + increment * Q::int(k)
                }
            }
        }
    }

    /// Evaluates using only the explicit pieces (last piece extended).
    fn eval_explicit(&self, t: Q) -> Q {
        let idx = self.piece_index(t);
        self.pieces[idx].eval(t)
    }

    /// Left limit using only the explicit pieces.
    fn eval_explicit_left(&self, t: Q) -> Q {
        // Find the piece governing times just below `t`.
        let idx = match self
            .pieces
            .binary_search_by(|p| p.start.cmp(&t))
        {
            Ok(i) => {
                if i == 0 {
                    return self.pieces[0].value;
                }
                i - 1
            }
            Err(0) => 0,
            Err(i) => i - 1,
        };
        self.pieces[idx].eval(t)
    }

    /// Index of the piece whose half-open extent contains `t` (the last
    /// piece for `t` beyond all starts).
    fn piece_index(&self, t: Q) -> usize {
        match self.pieces.binary_search_by(|p| p.start.cmp(&t)) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }

    /// Unrolls the curve so that explicit pieces cover at least `[0, h]`,
    /// returning the piece list. The affine extension of the returned last
    /// piece is **not** generally valid beyond `h` for periodic curves.
    /// Thin panicking wrapper over [`Curve::try_pieces_upto`].
    pub fn pieces_upto(&self, h: Q) -> Vec<Piece> {
        self.try_pieces_upto(h, &BudgetMeter::unlimited())
            .expect("unmetered pieces_upto cannot trip")
    }

    /// Metered [`Curve::pieces_upto`]: ticks the segment budget once per
    /// emitted piece and returns `Err(CurveError::Budget)` when it trips,
    /// or `Err(CurveError::Arithmetic)` on `i128` overflow while lifting
    /// the periodic pattern. A huge horizon over a tiny period is the
    /// classic blow-up this guards (the unrolled list would be enormous).
    pub fn try_pieces_upto(&self, h: Q, meter: &BudgetMeter) -> Result<Vec<Piece>, CurveError> {
        assert!(!h.is_negative(), "pieces_upto with negative horizon");
        
        match self.tail {
            Tail::Affine => Ok(self.pieces.to_vec()),
            Tail::Periodic {
                pattern_start,
                period,
                increment,
            } => {
                let mut out = self.pieces.to_vec();
                let s = self.pieces[pattern_start].start;
                let pattern: Vec<Piece> = self.pieces[pattern_start..].to_vec();
                let mut k: i128 = 1;
                loop {
                    let kq = Q::int(k);
                    let shift = period.checked_mul(kq).ok_or_else(ovf)?;
                    let lift = increment.checked_mul(kq).ok_or_else(ovf)?;
                    if s.checked_add(shift).ok_or_else(ovf)? > h {
                        break;
                    }
                    for p in &pattern {
                        if !meter.tick_segment() {
                            return Err(CurveError::Budget(
                                meter.tripped().expect("tick returned false"),
                            ));
                        }
                        let start = p.start.checked_add(shift).ok_or_else(ovf)?;
                        let value = p.value.checked_add(lift).ok_or_else(ovf)?;
                        out.push(Piece::new(start, value, p.slope));
                    }
                    k += 1;
                }
                Ok(out)
            }
        }
    }

    /// A line `b + r·t` with `f(t) ≥ b + r·t` for **all** `t ≥ 0`, where
    /// `r` is the curve's long-run [`Curve::rate`].
    ///
    /// Used as the sound service under-approximation of the degraded
    /// analyses: for a lower service curve `β ≥ line`, the pseudo-inverse
    /// satisfies `β⁻¹(w) ≤ (w − b)/r`, which bounds delays without
    /// materializing `β`'s (possibly huge) breakpoint list. For
    /// rate-latency curves the line is exact.
    ///
    /// # Examples
    ///
    /// ```
    /// use srtw_minplus::{Curve, Q};
    /// let beta = Curve::rate_latency(Q::int(2), Q::int(3));
    /// let (b, r) = beta.lower_line();
    /// assert_eq!(r, Q::int(2));
    /// assert_eq!(b, Q::int(-6)); // 2·(t − 3) = −6 + 2t
    /// ```
    pub fn lower_line(&self) -> (Q, Q) {
        let r = self.rate();
        // Tail guarantee: beyond tail_start the curve stays above its
        // linear reference minus the maximal downward deviation; scanning
        // one period (or the last piece) of explicit pieces below covers
        // the transient. f(t) − r·t is affine per piece, so its minimum
        // over the piece sits at an endpoint.
        let mut b = self.pieces[0].value - r * self.pieces[0].start;
        let horizon = match self.tail {
            Tail::Affine => self.tail_start(),
            Tail::Periodic {
                pattern_start,
                period,
                ..
            } => self.pieces[pattern_start].start + period,
        };
        for (i, p) in self.pieces.iter().enumerate() {
            let end = self
                .pieces
                .get(i + 1)
                .map(|n| n.start)
                .unwrap_or(horizon)
                .max(p.start);
            b = b.min(p.value - r * p.start);
            b = b.min(p.eval(end) - r * end);
        }
        (b, r)
    }

    /// Returns an equivalent curve whose explicit pieces cover `[0, h]` and
    /// whose tail start is `≥ h` alignment-wise — useful before combining
    /// curves. The returned curve is equal to `self` everywhere.
    pub fn unrolled_to(&self, h: Q) -> Curve {
        match self.tail {
            Tail::Affine => self.clone(),
            Tail::Periodic {
                pattern_start,
                period,
                increment,
            } => {
                let s = self.pieces[pattern_start].start;
                if s >= h {
                    return self.clone();
                }
                // Number of extra whole periods to unroll so the remaining
                // pattern starts at or after `h`.
                let k = ((h - s) / period).ceil().max(0);
                let mut pieces = self.pieces.to_vec();
                let pattern: Vec<Piece> = self.pieces[pattern_start..].to_vec();
                for kk in 1..=k {
                    let shift = period * Q::int(kk);
                    let lift = increment * Q::int(kk);
                    for p in &pattern {
                        pieces.push(Piece::new(p.start + shift, p.value + lift, p.slope));
                    }
                }
                let new_pattern_start = pattern_start + pattern.len() * k as usize;
                Curve::raw(
                    pieces,
                    Tail::Periodic {
                        pattern_start: new_pattern_start,
                        period,
                        increment,
                    },
                )
            }
        }
    }

    // ----- constructors ---------------------------------------------------

    /// The zero curve `f(t) = 0`.
    pub fn zero() -> Curve {
        Curve::constant(Q::ZERO)
    }

    /// The constant curve `f(t) = c`.
    pub fn constant(c: Q) -> Curve {
        Curve::raw(vec![Piece::new(Q::ZERO, c, Q::ZERO)], Tail::Affine)
    }

    /// The affine curve `f(t) = b + r·t` (a token bucket `γ_{r,b}` under the
    /// right-continuous convention `f(0) = b`).
    ///
    /// # Panics
    ///
    /// Panics if `r < 0`.
    pub fn affine(b: Q, r: Q) -> Curve {
        assert!(!r.is_negative(), "affine curve needs slope >= 0");
        Curve::raw(vec![Piece::new(Q::ZERO, b, r)], Tail::Affine)
    }

    /// The rate-latency service curve `β_{R,T}(t) = R · max(0, t − T)`.
    ///
    /// # Panics
    ///
    /// Panics if `rate < 0` or `latency < 0`.
    pub fn rate_latency(rate: Q, latency: Q) -> Curve {
        assert!(!rate.is_negative(), "rate_latency needs rate >= 0");
        assert!(!latency.is_negative(), "rate_latency needs latency >= 0");
        if latency.is_zero() || rate.is_zero() {
            return Curve::affine(Q::ZERO, rate);
        }
        Curve::raw(
            vec![
                Piece::new(Q::ZERO, Q::ZERO, Q::ZERO),
                Piece::new(latency, Q::ZERO, rate),
            ],
            Tail::Affine,
        )
    }

    /// An upper staircase: `f(t) = height · (1 + floor(t / period))`.
    ///
    /// This is the exact upper arrival curve of a strictly periodic stream
    /// releasing `height` units of work every `period` time units (a release
    /// may land at both ends of a closed window).
    ///
    /// # Panics
    ///
    /// Panics if `period <= 0` or `height < 0`.
    pub fn staircase(period: Q, height: Q) -> Curve {
        assert!(period.is_positive(), "staircase needs period > 0");
        assert!(!height.is_negative(), "staircase needs height >= 0");
        Curve::raw(
            vec![Piece::new(Q::ZERO, height, Q::ZERO)],
            Tail::Periodic {
                pattern_start: 0,
                period,
                increment: height,
            },
        )
    }

    /// A lower staircase: `f(t) = height · floor(t / period)` — the exact
    /// lower arrival curve of a strictly periodic stream.
    ///
    /// # Panics
    ///
    /// Panics if `period <= 0` or `height < 0`.
    pub fn staircase_lower(period: Q, height: Q) -> Curve {
        assert!(period.is_positive(), "staircase_lower needs period > 0");
        assert!(!height.is_negative(), "staircase_lower needs height >= 0");
        Curve::raw(
            vec![Piece::new(Q::ZERO, Q::ZERO, Q::ZERO)],
            Tail::Periodic {
                pattern_start: 0,
                period,
                increment: height,
            },
        )
    }

    /// A burst-delay curve `δ_T`: `0` for `t < T`, then jumps to `cap`
    /// (finite stand-in for the classical `+∞` burst-delay; pick `cap`
    /// larger than any workload of interest).
    ///
    /// # Panics
    ///
    /// Panics if `latency < 0` or `cap < 0`.
    pub fn burst_delay(latency: Q, cap: Q) -> Curve {
        assert!(!latency.is_negative() && !cap.is_negative());
        if latency.is_zero() {
            return Curve::constant(cap);
        }
        Curve::raw(
            vec![
                Piece::new(Q::ZERO, Q::ZERO, Q::ZERO),
                Piece::new(latency, cap, Q::ZERO),
            ],
            Tail::Affine,
        )
    }

    /// Builds a right-continuous staircase through the given `(time, value)`
    /// breakpoints with an affine tail of slope 0 after the last one.
    /// `points` must be strictly increasing in time and non-decreasing in
    /// value; a point at time 0 is required (use value 0 if the curve starts
    /// flat at zero).
    pub fn staircase_from_points(points: &[(Q, Q)]) -> Result<Curve, CurveError> {
        let pieces: Vec<Piece> = points
            .iter()
            .map(|&(t, v)| Piece::new(t, v, Q::ZERO))
            .collect();
        Curve::new(pieces, Tail::Affine)
    }

    /// The curve's [`Shape`] class, computed on first use and cached.
    /// One O(pieces) scan classifies both convexity and concavity; the
    /// convolution fast paths then dispatch on the cached flag for free.
    pub(crate) fn shape(&self) -> Shape {
        *self.shape.get_or_init(|| {
            match (self.scan_convex(), self.scan_concave()) {
                (true, true) => Shape::Both,
                (true, false) => Shape::Convex,
                (false, true) => Shape::Concave,
                (false, false) => Shape::General,
            }
        })
    }

    /// Is the curve convex? (Slopes non-decreasing and no upward jumps.)
    /// Cached after the first call — see [`Curve::shape`].
    pub fn is_convex(&self) -> bool {
        matches!(self.shape(), Shape::Convex | Shape::Both)
    }

    /// Is the curve concave (on `t > 0`)? Slopes non-increasing, jumps allowed
    /// only at 0. Cached after the first call — see [`Curve::shape`].
    pub fn is_concave(&self) -> bool {
        matches!(self.shape(), Shape::Concave | Shape::Both)
    }

    fn scan_convex(&self) -> bool {
        if matches!(self.tail, Tail::Periodic { increment, .. } if increment.is_positive()) {
            return false;
        }
        for w in self.pieces.windows(2) {
            if w[1].slope < w[0].slope {
                return false;
            }
            if w[1].value > w[0].eval(w[1].start) {
                return false; // upward jump breaks convexity
            }
        }
        true
    }

    fn scan_concave(&self) -> bool {
        if matches!(self.tail, Tail::Periodic { .. }) {
            return false;
        }
        for w in self.pieces.windows(2) {
            if w[1].slope > w[0].slope {
                return false;
            }
            if w[1].value != w[0].eval(w[1].start) {
                return false;
            }
        }
        true
    }

    /// Shifts the curve up by `dv ≥ 0`: `t ↦ f(t) + dv`.
    ///
    /// # Panics
    ///
    /// Panics if `dv < 0` (would break non-negativity conventions; use
    /// dedicated ops for clamped subtraction).
    pub fn shift_up(&self, dv: Q) -> Curve {
        assert!(!dv.is_negative(), "shift_up needs dv >= 0");
        let pieces = self
            .pieces
            .iter()
            .map(|p| Piece::new(p.start, p.value + dv, p.slope))
            .collect();
        Curve::raw(pieces, self.tail)
    }

    /// Shifts the curve right by `dt ≥ 0`: `t ↦ f(max(0, t − dt))` — i.e.
    /// the curve is delayed by `dt`, holding its initial value on `[0, dt)`.
    pub fn shift_right(&self, dt: Q) -> Curve {
        assert!(!dt.is_negative(), "shift_right needs dt >= 0");
        if dt.is_zero() {
            return self.clone();
        }
        let mut pieces = Vec::with_capacity(self.pieces.len() + 1);
        pieces.push(Piece::new(Q::ZERO, self.pieces[0].value, Q::ZERO));
        for p in self.pieces.iter() {
            pieces.push(Piece::new(p.start + dt, p.value, p.slope));
        }
        let tail = match self.tail {
            Tail::Affine => Tail::Affine,
            Tail::Periodic {
                pattern_start,
                period,
                increment,
            } => Tail::Periodic {
                pattern_start: pattern_start + 1,
                period,
                increment,
            },
        };
        Curve::raw(pieces, tail)
    }

    /// Multiplies values by `k ≥ 0`: `t ↦ k · f(t)`.
    pub fn scale(&self, k: Q) -> Curve {
        assert!(!k.is_negative(), "scale needs k >= 0");
        let pieces = self
            .pieces
            .iter()
            .map(|p| Piece::new(p.start, p.value * k, p.slope * k))
            .collect();
        let tail = match self.tail {
            Tail::Affine => Tail::Affine,
            Tail::Periodic {
                pattern_start,
                period,
                increment,
            } => Tail::Periodic {
                pattern_start,
                period,
                increment: increment * k,
            },
        };
        Curve::raw(pieces, tail)
    }

    /// Checks `self(t) <= other(t)` for all `t` up to a horizon that covers
    /// both curves' transients plus `extra` common periods, *and* compares
    /// long-run rates. This decides global domination for
    /// ultimately-affine/periodic curves when the horizon covers the lcm
    /// alignment (which [`Curve::dominated_by`] computes).
    pub fn dominated_by(&self, other: &Curve) -> bool {
        if self.rate() > other.rate() {
            return false;
        }
        let h = common_check_horizon(self, other);
        let mut ts: Vec<Q> = Vec::new();
        for p in self.pieces_upto(h) {
            ts.push(p.start);
        }
        for p in other.pieces_upto(h) {
            ts.push(p.start);
        }
        ts.push(h);
        ts.sort();
        ts.dedup();
        // On each elementary interval both curves are affine; comparing at
        // both endpoints (right-value at left end, left-limit at right end)
        // decides domination on the whole interval.
        for w in ts.windows(2) {
            let (a, b) = (w[0], w[1]);
            if self.eval(a) > other.eval(a) || self.eval_left(b) > other.eval_left(b) {
                return false;
            }
        }
        let last = *ts.last().expect("non-empty");
        self.eval(last) <= other.eval(last)
    }
}

impl std::fmt::Display for Curve {
    /// Compact rendering: each piece as `[start: value (+slope·Δ)]`, then
    /// the tail (`…affine` or `…period=p +inc`).
    ///
    /// ```
    /// use srtw_minplus::{Curve, Q};
    /// let c = Curve::rate_latency(Q::int(2), Q::int(3));
    /// assert_eq!(c.to_string(), "[0: 0] [3: 0 +2·Δ] …affine");
    /// ```
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, p) in self.pieces().iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            if p.slope.is_zero() {
                write!(f, "[{}: {}]", p.start, p.value)?;
            } else {
                write!(f, "[{}: {} +{}·Δ]", p.start, p.value, p.slope)?;
            }
        }
        match self.tail() {
            Tail::Affine => write!(f, " …affine"),
            Tail::Periodic {
                period, increment, ..
            } => write!(f, " …period={period} +{increment}"),
        }
    }
}

/// A horizon beyond which the pointwise relation of two curves is decided by
/// their tails: both transients plus one common period alignment. Thin
/// panicking wrapper over [`try_common_check_horizon`] for callers with
/// statically tame periods.
pub(crate) fn common_check_horizon(a: &Curve, b: &Curve) -> Q {
    try_common_check_horizon(a, b).expect("common check horizon overflow")
}

/// Fallible [`common_check_horizon`]: `Err(CurveError::Arithmetic)` when
/// the period lcm (or the horizon sum) overflows `i128` — the first
/// casualty of adversarial coprime periods.
pub(crate) fn try_common_check_horizon(a: &Curve, b: &Curve) -> Result<Q, CurveError> {
    let base = a.tail_start().max(b.tail_start());
    let pa = tail_period(a);
    let pb = tail_period(b);
    
    let span = match (pa, pb) {
        (None, None) => Q::ONE,
        (Some(p), None) | (None, Some(p)) => p.checked_add(p).ok_or_else(ovf)?,
        (Some(p1), Some(p2)) => {
            let l = Q::try_lcm(p1, p2).map_err(CurveError::Arithmetic)?;
            l.checked_add(l).ok_or_else(ovf)?
        }
    };
    base.checked_add(span).ok_or_else(ovf)
}

pub(crate) fn tail_period(c: &Curve) -> Option<Q> {
    match c.tail() {
        Tail::Affine => None,
        Tail::Periodic { period, .. } => Some(period),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratio::q;

    #[test]
    fn validation_rejects_bad_curves() {
        // Empty
        assert_eq!(Curve::new(vec![], Tail::Affine), Err(CurveError::Empty));
        // Not starting at zero
        let e = Curve::new(vec![Piece::new(Q::ONE, Q::ZERO, Q::ZERO)], Tail::Affine);
        assert!(matches!(e, Err(CurveError::FirstPieceNotAtZero { .. })));
        // Non-increasing starts
        let e = Curve::new(
            vec![
                Piece::new(Q::ZERO, Q::ZERO, Q::ZERO),
                Piece::new(Q::ZERO, Q::ONE, Q::ZERO),
            ],
            Tail::Affine,
        );
        assert!(matches!(e, Err(CurveError::NonIncreasingStarts { .. })));
        // Negative slope
        let e = Curve::new(vec![Piece::new(Q::ZERO, Q::ONE, q(-1, 2))], Tail::Affine);
        assert!(matches!(e, Err(CurveError::NegativeSlope { .. })));
        // Downward jump
        let e = Curve::new(
            vec![
                Piece::new(Q::ZERO, Q::int(5), Q::ZERO),
                Piece::new(Q::ONE, Q::int(3), Q::ZERO),
            ],
            Tail::Affine,
        );
        assert!(matches!(e, Err(CurveError::DecreasingJump { .. })));
    }

    #[test]
    fn validation_rejects_bad_periodic_tails() {
        let p = vec![Piece::new(Q::ZERO, Q::ZERO, Q::ZERO)];
        let bad_idx = Curve::new(
            p.clone(),
            Tail::Periodic {
                pattern_start: 5,
                period: Q::ONE,
                increment: Q::ONE,
            },
        );
        assert!(matches!(bad_idx, Err(CurveError::InvalidPeriodicTail { .. })));
        let bad_period = Curve::new(
            p.clone(),
            Tail::Periodic {
                pattern_start: 0,
                period: Q::ZERO,
                increment: Q::ONE,
            },
        );
        assert!(matches!(bad_period, Err(CurveError::InvalidPeriodicTail { .. })));
        // Wrap decrease: pattern rises by 5 within the period but increment 1.
        let wrap = Curve::new(
            vec![Piece::new(Q::ZERO, Q::ZERO, Q::int(5))],
            Tail::Periodic {
                pattern_start: 0,
                period: Q::ONE,
                increment: Q::ONE,
            },
        );
        assert!(matches!(wrap, Err(CurveError::InvalidPeriodicTail { .. })));
    }

    #[test]
    fn eval_rate_latency() {
        let b = Curve::rate_latency(q(1, 2), Q::int(4));
        assert_eq!(b.eval(Q::ZERO), Q::ZERO);
        assert_eq!(b.eval(Q::int(4)), Q::ZERO);
        assert_eq!(b.eval(Q::int(6)), Q::ONE);
        assert_eq!(b.eval(Q::int(100)), Q::int(48));
        assert_eq!(b.rate(), q(1, 2));
        assert!(b.is_convex());
        assert!(!b.is_concave());
    }

    #[test]
    fn eval_staircase_periodic() {
        let s = Curve::staircase(Q::int(10), Q::int(3));
        assert_eq!(s.eval(Q::ZERO), Q::int(3));
        assert_eq!(s.eval(q(99, 10)), Q::int(3));
        assert_eq!(s.eval(Q::int(10)), Q::int(6));
        assert_eq!(s.eval(Q::int(25)), Q::int(9));
        assert_eq!(s.rate(), q(3, 10));
        let lower = Curve::staircase_lower(Q::int(10), Q::int(3));
        assert_eq!(lower.eval(Q::ZERO), Q::ZERO);
        assert_eq!(lower.eval(Q::int(10)), Q::int(3));
        assert_eq!(lower.eval(q(199, 10)), Q::int(3));
        assert_eq!(lower.eval(Q::int(20)), Q::int(6));
    }

    #[test]
    fn eval_left_limits() {
        let s = Curve::staircase(Q::int(10), Q::int(3));
        assert_eq!(s.eval_left(Q::int(10)), Q::int(3));
        assert_eq!(s.eval_left(Q::int(20)), Q::int(6));
        assert_eq!(s.eval_left(Q::int(15)), Q::int(6));
        assert_eq!(s.eval_left(Q::ZERO), Q::int(3));
        let b = Curve::rate_latency(Q::ONE, Q::int(2));
        assert_eq!(b.eval_left(Q::int(2)), Q::ZERO);
        assert_eq!(b.eval_left(Q::int(3)), Q::ONE);
    }

    #[test]
    fn pieces_upto_unrolls_periodic() {
        let s = Curve::staircase(Q::int(5), Q::ONE);
        let ps = s.pieces_upto(Q::int(12));
        assert_eq!(ps.len(), 3);
        assert_eq!(ps[2].start, Q::int(10));
        assert_eq!(ps[2].value, Q::int(3));
    }

    #[test]
    fn try_pieces_upto_trips_segment_budget() {
        use crate::error::CurveError;
        use crate::meter::{Budget, BudgetKind, BudgetMeter};
        let s = Curve::staircase(Q::ONE, Q::ONE);
        let meter = BudgetMeter::new(&Budget::default().with_max_segments(10));
        let got = s.try_pieces_upto(Q::int(1_000_000), &meter);
        assert_eq!(got, Err(CurveError::Budget(BudgetKind::Segments)));
        assert_eq!(meter.tripped(), Some(BudgetKind::Segments));
        // An unlimited meter reproduces the classic behaviour.
        let ok = s
            .try_pieces_upto(Q::int(12), &BudgetMeter::unlimited())
            .unwrap();
        assert_eq!(ok, s.pieces_upto(Q::int(12)));
    }

    #[test]
    fn lower_line_bounds_curve_everywhere() {
        let curves = vec![
            Curve::rate_latency(Q::int(2), Q::int(3)),
            Curve::staircase(Q::int(4), Q::int(2)),
            Curve::staircase_lower(Q::int(3), Q::int(2)),
            Curve::affine(Q::int(5), q(1, 3)),
            Curve::constant(Q::int(3)),
            Curve::burst_delay(Q::int(4), Q::int(7)),
        ];
        for c in &curves {
            let (b, r) = c.lower_line();
            assert_eq!(r, c.rate());
            for i in 0..400 {
                let t = q(i, 3);
                assert!(
                    c.eval(t) >= b + r * t,
                    "lower_line violated for {c} at t = {t}: {} < {}",
                    c.eval(t),
                    b + r * t
                );
            }
        }
        // Exact for rate-latency: the bound is attained beyond the latency.
        let rl = Curve::rate_latency(Q::int(2), Q::int(3));
        let (b, r) = rl.lower_line();
        assert_eq!(rl.eval(Q::int(10)), b + r * Q::int(10));
    }

    #[test]
    fn unrolled_to_preserves_values() {
        let s = Curve::staircase(Q::int(5), Q::int(2));
        let u = s.unrolled_to(Q::int(23));
        for i in 0..60 {
            let t = q(i, 2);
            assert_eq!(s.eval(t), u.eval(t), "mismatch at {t}");
            assert_eq!(s.eval_left(t), u.eval_left(t), "left mismatch at {t}");
        }
    }

    #[test]
    fn normalization_merges_colinear() {
        let c = Curve::new(
            vec![
                Piece::new(Q::ZERO, Q::ZERO, Q::ONE),
                Piece::new(Q::int(5), Q::int(5), Q::ONE),
                Piece::new(Q::int(7), Q::int(7), Q::ONE),
            ],
            Tail::Affine,
        )
        .unwrap();
        assert_eq!(c.pieces().len(), 1);
        assert_eq!(c.eval(Q::int(9)), Q::int(9));
    }

    #[test]
    fn shift_and_scale() {
        let b = Curve::rate_latency(Q::ONE, Q::int(2));
        let up = b.shift_up(Q::int(3));
        assert_eq!(up.eval(Q::ZERO), Q::int(3));
        assert_eq!(up.eval(Q::int(4)), Q::int(5));
        let right = b.shift_right(Q::int(3));
        assert_eq!(right.eval(Q::int(5)), Q::ZERO);
        assert_eq!(right.eval(Q::int(7)), Q::int(2));
        let sc = b.scale(q(1, 2));
        assert_eq!(sc.eval(Q::int(6)), Q::int(2));
        let s = Curve::staircase(Q::int(4), Q::int(2)).shift_right(Q::int(3));
        assert_eq!(s.eval(Q::int(2)), Q::int(2)); // held initial value
        assert_eq!(s.eval(Q::int(3)), Q::int(2));
        assert_eq!(s.eval(Q::int(7)), Q::int(4));
        assert_eq!(s.rate(), q(1, 2));
    }

    #[test]
    fn staircase_from_points() {
        let c = Curve::staircase_from_points(&[
            (Q::ZERO, Q::ZERO),
            (Q::int(2), Q::int(3)),
            (Q::int(5), Q::int(4)),
        ])
        .unwrap();
        assert_eq!(c.eval(Q::ONE), Q::ZERO);
        assert_eq!(c.eval(Q::int(2)), Q::int(3));
        assert_eq!(c.eval(Q::int(4)), Q::int(3));
        assert_eq!(c.eval(Q::int(500)), Q::int(4));
    }

    #[test]
    fn burst_delay_curve() {
        let d = Curve::burst_delay(Q::int(3), Q::int(1000));
        assert_eq!(d.eval(Q::int(2)), Q::ZERO);
        assert_eq!(d.eval(Q::int(3)), Q::int(1000));
        let d0 = Curve::burst_delay(Q::ZERO, Q::int(7));
        assert_eq!(d0.eval(Q::ZERO), Q::int(7));
    }

    #[test]
    fn dominated_by_basic() {
        let small = Curve::affine(Q::ZERO, q(1, 2));
        let big = Curve::affine(Q::ONE, Q::ONE);
        assert!(small.dominated_by(&big));
        assert!(!big.dominated_by(&small));
        // Periodic vs its affine upper bound: stairs(5,1) <= 1 + t/5
        let s = Curve::staircase(Q::int(5), Q::ONE);
        let aff = Curve::affine(Q::ONE, q(1, 5));
        assert!(s.dominated_by(&aff));
        assert!(!aff.dominated_by(&s));
        // Equal curves dominate each other.
        assert!(s.dominated_by(&s.clone()));
    }

    #[test]
    fn convexity_checks() {
        assert!(Curve::rate_latency(Q::ONE, Q::int(2)).is_convex());
        assert!(Curve::affine(Q::ONE, Q::ONE).is_concave());
        assert!(!Curve::staircase(Q::int(5), Q::ONE).is_convex());
        assert!(!Curve::staircase(Q::int(5), Q::ONE).is_concave());
        assert!(Curve::zero().is_convex());
        assert!(Curve::zero().is_concave());
    }

    #[test]
    #[should_panic(expected = "negative time")]
    fn eval_negative_panics() {
        Curve::zero().eval(q(-1, 2));
    }

    #[test]
    fn display_rendering() {
        assert_eq!(
            Curve::rate_latency(Q::int(2), Q::int(3)).to_string(),
            "[0: 0] [3: 0 +2·Δ] …affine"
        );
        assert_eq!(
            Curve::staircase(Q::int(5), Q::int(2)).to_string(),
            "[0: 2] …period=5 +2"
        );
        assert_eq!(Curve::constant(q(1, 2)).to_string(), "[0: 1/2] …affine");
    }
}
