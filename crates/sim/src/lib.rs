//! # srtw-sim — discrete-event simulation of structural workload
//!
//! The simulator executes *concrete* behaviours — legal release traces of
//! digraph tasks served FIFO on concrete service processes — and measures
//! per-job delays and backlog exactly (rational time). Its role in the
//! workspace is empirical validation: every simulated delay must stay
//! below the analytic bounds of `srtw-core` (soundness), and the maximum
//! over many adversarial traces gives the lower bar for tightness plots.
//!
//! # Example
//!
//! ```
//! use srtw_sim::{earliest_random_walk, simulate_fifo, ServiceProcess};
//! use srtw_workload::DrtTaskBuilder;
//! use srtw_minplus::Q;
//!
//! let mut b = DrtTaskBuilder::new("loop");
//! let v = b.vertex("v", Q::int(2));
//! b.edge(v, v, Q::int(5));
//! let task = b.build().unwrap();
//!
//! let trace = earliest_random_walk(&task, Q::int(50), None, 42);
//! let out = simulate_fifo(
//!     std::slice::from_ref(&task),
//!     std::slice::from_ref(&trace),
//!     &ServiceProcess::fluid(Q::ONE),
//! );
//! assert_eq!(out.max_delay(), Q::int(2)); // never queues at unit rate
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod engine;
mod service;
mod tracegen;

pub use engine::{
    simulate_edf, simulate_fifo, simulate_fixed_priority, simulate_preemptive, JobRecord,
    SchedPolicy, SimOutcome,
};
pub use service::ServiceProcess;
pub use tracegen::{earliest_random_walk, lazy_random_walk, witness_trace};
