//! Structure-aware delay analysis — the core contribution.
//!
//! # The two analyses
//!
//! **RTC baseline** ([`rtc_delay`]). The workload is abstracted into its
//! request-bound function `rbf` (an upper arrival curve) and the delay
//! bound is the horizontal deviation `sup_t [β⁻¹(rbf(t)) − t]`. The
//! abstraction collapses all job types into an anonymous fluid: the result
//! is one stream-wide bound, necessarily calibrated to the *worst* job
//! type, and the only sound per-type claim it supports is that every job
//! type meets that single bound.
//!
//! **Structural analysis** ([`structural_delay`]). Work directly on the
//! digraph: enumerate (with dominance pruning) the abstract paths
//! `(span, work)` inside the busy window and bound the response time of
//! the job at the *end* of each path by `β⁻¹(work) − span`. Taking the
//! maximum per final vertex yields **per-job-type** bounds
//! `delay(v) = max over paths ending at v`.
//!
//! # Relationship (tested as a theorem)
//!
//! `max over v of structural delay(v)  ==  RTC bound`: the rbf envelope's
//! breakpoints are exactly the Pareto-maximal abstract paths, so the
//! stream-wide structural maximum and the RTC horizontal deviation inspect
//! the same candidates. The structural gain is the *attribution*: light
//! job types receive much smaller bounds than the stream-wide worst case,
//! which is what per-type deadlines (and the acceptance-ratio experiments)
//! exploit.
//!
//! # Abstraction horizon (the tightness/effort knob)
//!
//! [`AnalysisConfig::horizon_fraction`] caps the *span* of exactly explored
//! paths at a fraction of the busy window; any demand farther out falls
//! back to the arrival-curve abstraction (candidates
//! `β⁻¹(rbf(δ)) − δ` for `δ` beyond the cap). The resulting bound is
//! monotonically non-increasing in the fraction: at `0` it degenerates
//! exactly to the RTC baseline, at `1` it is the full structural analysis —
//! the knob the ablation experiment sweeps.

use crate::busy::{busy_window, busy_window_metered, busy_window_metered_ext, BusyWindow};
use crate::error::AnalysisError;
use crate::report::{
    BoundQuality, Degradation, DelayAnalysis, Fallback, RtcReport, VertexBound, WitnessPath,
};
use srtw_minplus::{Budget, BudgetMeter, Curve, Ext, Q};
use srtw_workload::{explore_metered_threads, DrtTask, ExploreConfig, Rbf, RbfMemo};
use std::time::Instant;

/// Configuration of the structural analysis.
#[derive(Debug, Clone, Default)]
pub struct AnalysisConfig {
    /// Fraction (in `[0, 1]`) of the busy window explored *exactly*; demand
    /// beyond the cap is covered by the arrival-curve abstraction.
    /// `Some(0)` degenerates to the RTC baseline; `None` (or `Some(1)`)
    /// is the full structural analysis.
    pub horizon_fraction: Option<Q>,
    /// Disable dominance pruning (for ablation measurements only).
    pub no_prune: bool,
    /// Override the busy-window horizon (must be an upper bound on the true
    /// busy window to stay sound; used by experiments).
    pub horizon_override: Option<Q>,
    /// Effort budget for the whole invocation. When a dimension trips, the
    /// analysis degrades gracefully instead of failing: exploration and
    /// rbf horizons are truncated soundly and the result carries a
    /// [`BoundQuality::Degraded`] marker plus [`Degradation`] records.
    /// Defaults to [`Budget::UNLIMITED`].
    pub budget: Budget,
    /// Worker threads for the path-exploration engine. `0` (the default)
    /// and `1` both run the classic sequential engine; any value produces
    /// **bit-identical** results — parallelism only changes wall-clock
    /// time (see `srtw_workload::explore_metered_threads`).
    pub threads: usize,
}

/// Structural per-job-type delay analysis of a single stream on a resource
/// with lower service curve `beta`.
///
/// # Examples
///
/// ```
/// use srtw_core::structural_delay;
/// use srtw_minplus::{Curve, Q};
/// use srtw_workload::DrtTaskBuilder;
///
/// // Heavy job, then a light job 6 later, loop back after 6 more.
/// let mut b = DrtTaskBuilder::new("hl");
/// let h = b.vertex("heavy", Q::int(4));
/// let l = b.vertex("light", Q::ONE);
/// b.edge(h, l, Q::int(6));
/// b.edge(l, h, Q::int(6));
/// let task = b.build().unwrap();
/// let beta = Curve::affine(Q::ZERO, Q::ONE);
///
/// let a = structural_delay(&task, &beta).unwrap();
/// // The heavy job type needs 4 units; the light one at most 1 (it never
/// // queues behind the heavy job: 6 time units have passed).
/// assert_eq!(a.bound_of(h), Q::int(4));
/// assert_eq!(a.bound_of(l), Q::int(1));
/// assert_eq!(a.stream_bound, Q::int(4));
/// ```
pub fn structural_delay(task: &DrtTask, beta: &Curve) -> Result<DelayAnalysis, AnalysisError> {
    structural_delay_with(task, beta, &AnalysisConfig::default())
}

/// [`structural_delay`] with an explicit configuration.
pub fn structural_delay_with(
    task: &DrtTask,
    beta: &Curve,
    cfg: &AnalysisConfig,
) -> Result<DelayAnalysis, AnalysisError> {
    let start = Instant::now();
    let meter = BudgetMeter::new(&cfg.budget);
    let memo = RbfMemo::new(1);
    let result = busy_window_metered_ext(std::slice::from_ref(task), beta, &meter, cfg.threads, &memo)
        .and_then(|bw| {
            let horizon = cfg.horizon_override.unwrap_or(bw.bound);
            analyse_stream(task, 0, beta, &bw, horizon, &[], cfg, &meter, &memo, start)
        });
    surface_injected_fault(result, &meter)
}

/// The arrival-curve (RTC) baseline: one stream-wide delay bound from the
/// request-bound function.
///
/// The bound is `max over rbf breakpoints (s, w) of β⁻¹(w) − s`, which is
/// exactly the horizontal deviation `hdev(rbf, β)` restricted to the busy
/// window (the finitary argument makes the restriction lossless).
pub fn rtc_delay(task: &DrtTask, beta: &Curve) -> Result<RtcReport, AnalysisError> {
    rtc_delay_with(task, beta, &Budget::UNLIMITED)
}

/// [`rtc_delay`] under an effort budget. When the budget trips, the bound
/// is finished on the coarse affine rbf tail (sound everywhere) and the
/// report is marked [`BoundQuality::Degraded`].
pub fn rtc_delay_with(
    task: &DrtTask,
    beta: &Curve,
    budget: &Budget,
) -> Result<RtcReport, AnalysisError> {
    let meter = BudgetMeter::new(budget);
    let result = busy_window_metered(std::slice::from_ref(task), beta, &meter).and_then(|bw| {
        let rbf = &bw.rbfs[0];
        let degraded = bw.degraded.or_else(|| rbf.truncated());
        let (bound, _) = rtc_ceiling(&bw, beta)?;
        Ok(RtcReport {
            bound,
            busy_window: bw.bound,
            breakpoints: rbf.points().len(),
            quality: match degraded {
                None => BoundQuality::Exact,
                Some(_) => BoundQuality::Degraded {
                    fallback: Fallback::CoarseRbf,
                },
            },
        })
    });
    surface_injected_fault(result, &meter)
}

/// Structural analysis of each stream in a FIFO multiplex: the analysed
/// stream keeps its structure while the competing streams are abstracted
/// into their request-bound curves (the standard structural-FIFO setup).
///
/// Returns one [`DelayAnalysis`] per input task, in order.
pub fn fifo_structural(
    tasks: &[DrtTask],
    beta: &Curve,
    cfg: &AnalysisConfig,
) -> Result<Vec<DelayAnalysis>, AnalysisError> {
    fifo_structural_with_memo(tasks, beta, cfg, &RbfMemo::new(tasks.len()))
}

/// [`fifo_structural`] reusing a caller-provided (possibly warm)
/// [`RbfMemo`] instead of a fresh per-call one.
///
/// The memo caches only **exact** rbfs — pure functions of
/// `(task, horizon)` — so a warm memo can only change *how fast* the
/// result is computed, never *what* it is: on an unmetered budget the
/// output is byte-identical to a cold run. (Under an active budget a warm
/// memo skips exploration ticks, which can only let the analysis complete
/// *more* exactly; callers needing tick-exact reproducibility of degraded
/// runs should pass a fresh memo.) The caller can read per-component
/// reuse provenance from the memo afterwards
/// ([`RbfMemo::hits`] / [`RbfMemo::computes`] /
/// [`RbfMemo::snapshot`]). `memo` must have one slot group per task,
/// indexed consistently with `tasks`.
pub fn fifo_structural_with_memo(
    tasks: &[DrtTask],
    beta: &Curve,
    cfg: &AnalysisConfig,
    memo: &RbfMemo,
) -> Result<Vec<DelayAnalysis>, AnalysisError> {
    let meter = BudgetMeter::new(&cfg.budget);
    let result = busy_window_metered_ext(tasks, beta, &meter, cfg.threads, memo).and_then(|bw| {
        let horizon = cfg.horizon_override.unwrap_or(bw.bound);
        let mut out = Vec::with_capacity(tasks.len());
        for (i, task) in tasks.iter().enumerate() {
            let start = Instant::now();
            let others: Vec<&Rbf> = bw
                .rbfs
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, r)| r)
                .collect();
            out.push(analyse_stream(
                task, i, beta, &bw, horizon, &others, cfg, &meter, memo, start,
            )?);
        }
        Ok(out)
    });
    surface_injected_fault(result, &meter)
}

/// Structural FIFO analysis of a *subset* of the streams in a multiplex,
/// reusing a caller-provided warm [`RbfMemo`].
///
/// `indices` selects which streams to analyse (results are returned in
/// the order given); the remaining tasks still contribute interference
/// through their request-bound curves, exactly as in
/// [`fifo_structural`]. On an unmetered budget each returned
/// [`DelayAnalysis`] is byte-identical (modulo runtime) to the
/// corresponding entry of a full [`fifo_structural`] run — the engine is
/// deterministic and a stream's analysis depends only on its own task,
/// the busy window, and the other streams' rbfs. This is the incremental
/// re-analysis primitive behind the service's `POST /analyze/delta`.
pub fn fifo_structural_subset(
    tasks: &[DrtTask],
    beta: &Curve,
    cfg: &AnalysisConfig,
    memo: &RbfMemo,
    indices: &[usize],
) -> Result<Vec<DelayAnalysis>, AnalysisError> {
    let meter = BudgetMeter::new(&cfg.budget);
    let result = busy_window_metered_ext(tasks, beta, &meter, cfg.threads, memo).and_then(|bw| {
        let horizon = cfg.horizon_override.unwrap_or(bw.bound);
        let mut out = Vec::with_capacity(indices.len());
        for &i in indices {
            let task = &tasks[i];
            let start = Instant::now();
            let others: Vec<&Rbf> = bw
                .rbfs
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, r)| r)
                .collect();
            out.push(analyse_stream(
                task, i, beta, &bw, horizon, &others, cfg, &meter, memo, start,
            )?);
        }
        Ok(out)
    });
    surface_injected_fault(result, &meter)
}

/// The FIFO RTC baseline: one bound for *all* streams from the summed
/// request-bound curves.
pub fn fifo_rtc(tasks: &[DrtTask], beta: &Curve) -> Result<RtcReport, AnalysisError> {
    fifo_rtc_with(tasks, beta, &Budget::UNLIMITED)
}

/// [`fifo_rtc`] under an effort budget, degrading to the summed coarse
/// affine rbf tails when it trips.
pub fn fifo_rtc_with(
    tasks: &[DrtTask],
    beta: &Curve,
    budget: &Budget,
) -> Result<RtcReport, AnalysisError> {
    let meter = BudgetMeter::new(budget);
    let result = busy_window_metered(tasks, beta, &meter).and_then(|bw| {
        let degraded = bw
            .degraded
            .or_else(|| bw.rbfs.iter().find_map(|r| r.truncated()));
        let (bound, breakpoints) = rtc_ceiling(&bw, beta)?;
        Ok(RtcReport {
            bound,
            busy_window: bw.bound,
            breakpoints,
            quality: match degraded {
                None => BoundQuality::Exact,
                Some(_) => BoundQuality::Degraded {
                    fallback: Fallback::CoarseRbf,
                },
            },
        })
    });
    surface_injected_fault(result, &meter)
}

/// Worst-case backlog bound (vertical deviation of demand vs service inside
/// the busy window) of the whole multiplex.
pub fn backlog_bound(tasks: &[DrtTask], beta: &Curve) -> Result<Q, AnalysisError> {
    let bw = busy_window(tasks, beta)?;
    let mut spans: Vec<Q> = bw
        .rbfs
        .iter()
        .flat_map(|r| r.points().iter().map(|p| p.0))
        .collect();
    spans.push(Q::ZERO);
    spans.sort();
    spans.dedup();
    let mut bound = Q::ZERO;
    for &s in &spans {
        bound = bound.max(bw.total_rbf(s) - beta.eval(s));
    }
    Ok(bound.clamp_nonneg())
}

/// Surfaces a fault-injected synthetic overflow as the typed arithmetic
/// error a real overflow would produce, whatever the analysis itself
/// concluded (an injected overflow also trips the meter, so the underlying
/// result may be a sound degradation or a `BudgetExhausted`). Every entry
/// point funnels its result through here, so a plan firing at *any*
/// metered operation reliably drives the error path (which is what the
/// supervisor's retry ladder and its tests rely on).
fn surface_injected_fault<T>(
    result: Result<T, AnalysisError>,
    meter: &BudgetMeter,
) -> Result<T, AnalysisError> {
    match meter.injected_overflow() {
        Some(e) => Err(AnalysisError::Arithmetic(e)),
        None => result,
    }
}

/// Shared engine: per-vertex structural bounds for `task`, with FIFO
/// interference from `others` (empty for a dedicated stream).
#[allow(clippy::too_many_arguments)]
fn analyse_stream(
    task: &DrtTask,
    index: usize,
    beta: &Curve,
    bw: &BusyWindow,
    horizon: Q,
    others: &[&Rbf],
    cfg: &AnalysisConfig,
    meter: &BudgetMeter,
    memo: &RbfMemo,
    start: Instant,
) -> Result<DelayAnalysis, AnalysisError> {
    let mut degradations: Vec<Degradation> = Vec::new();
    if let Some(k) = bw.degraded {
        degradations.push(Degradation {
            component: "busy_window".to_owned(),
            tripped: k,
            detail: format!(
                "fixpoint finished on the coarse affine demand lines (bound {})",
                bw.bound
            ),
        });
    }
    for r in others {
        if let Some(k) = r.truncated() {
            degradations.push(Degradation {
                component: "interference_rbf".to_owned(),
                tripped: k,
                detail: format!(
                    "a competing stream's rbf is exact only below span {}",
                    r.exact_span()
                ),
            });
        }
    }

    // `bound_at` evaluates exact rbfs clamped at their horizon (the
    // finitary argument makes the clamp sound) and truncated rbfs through
    // their dominating affine tail.
    let interference = |s: Q| -> Q {
        others.iter().map(|r| r.bound_at(s)).fold(Q::ZERO, |a, b| a + b)
    };

    // The span cap for exact exploration.
    let span_cap = match cfg.horizon_fraction {
        Some(f) => {
            let f = f.clamp_nonneg().min(Q::ONE);
            horizon * f
        }
        None => horizon,
    };

    let n = task.num_vertices();
    let mut best: Vec<Option<(Q, usize)>> = vec![None; n];

    let mut ecfg = ExploreConfig::new(span_cap);
    if cfg.no_prune {
        ecfg = ecfg.without_pruning();
    }
    let ex = explore_metered_threads(task, &ecfg, meter, cfg.threads);
    if let Some(k) = ex.interrupted {
        degradations.push(Degradation {
            component: format!("exploration('{}')", task.name()),
            tripped: k,
            detail: format!(
                "abstract paths complete only below span {} (cap {})",
                ex.complete_span, span_cap
            ),
        });
    }
    // Every enumerated node is a genuine abstract path, so all of them may
    // contribute candidates even on an interrupted run; only the
    // *completeness* claim shrinks to spans strictly below `complete_span`.
    for (i, node) in ex.nodes().iter().enumerate() {
        let ahead = node.work + interference(node.span);
        let d = match beta.pseudo_inverse(ahead) {
            Ext::Finite(t) => (t - node.span).clamp_nonneg(),
            Ext::Infinite => return Err(AnalysisError::ServiceSaturated),
        };
        let slot = &mut best[node.vertex.index()];
        if slot.map(|(b, _)| d > b).unwrap_or(true) {
            *slot = Some((d, i));
        }
    }

    // Demand beyond the exactly-covered span prefix is covered by the
    // arrival-curve abstraction: any path with span δ ≥ exact_cap has work
    // ≤ rbf(δ), so its end job's delay is at most
    // β⁻¹(rbf(δ) + interference(δ)) − δ.
    let exact_cap = span_cap.min(ex.complete_span);
    let fallback_active = exact_cap < horizon || ex.interrupted.is_some();
    let mut fallback = Q::ZERO;
    let mut own_truncated = false;
    if fallback_active {
        let own_rbf = memo.get_or_compute(index, task, horizon, meter, cfg.threads);
        if let Some(k) = own_rbf.truncated() {
            own_truncated = true;
            degradations.push(Degradation {
                component: format!("rbf('{}')", task.name()),
                tripped: k,
                detail: format!(
                    "fallback rbf exact only below span {} of horizon {}",
                    own_rbf.exact_span(),
                    horizon
                ),
            });
        }
        for &(delta, w) in own_rbf.points() {
            // Any path with span δ ≥ exact_cap has work ≤ rbf(δ); on each
            // rbf plateau the worst candidate sits at its left end, clamped
            // to the cap (evaluating *at* the cap is conservative).
            let d0 = delta.max(exact_cap);
            if delta > horizon {
                break;
            }
            let ahead = w + interference(d0);
            match beta.pseudo_inverse(ahead) {
                Ext::Finite(t) => fallback = fallback.max((t - d0).clamp_nonneg()),
                Ext::Infinite => return Err(AnalysisError::ServiceSaturated),
            }
        }
        if own_truncated {
            // The staircase points stop at the truncation; spans from
            // there to the horizon are covered by the affine demand lines
            // (own coarse tail plus the competing streams' coarse tails,
            // each dominating the respective true rbf everywhere).
            let lo = exact_cap.max(own_rbf.exact_span());
            let intf_line = others.iter().fold((Q::ZERO, Q::ZERO), |(b, r), o| {
                let (cb, cr) = o.coarse_line();
                (b + cb, r + cr)
            });
            fallback = fallback.max(affine_region_bound(
                own_rbf.coarse_line(),
                intf_line,
                beta,
                lo,
                horizon,
            )?);
        }
    }

    // The degraded candidates come from a separate, possibly *more*
    // truncated rbf materialisation than the busy window's, so they can
    // overshoot the stream-agnostic RTC baseline. That baseline is itself
    // a sound delay bound for every job of the multiplex, so cap the
    // fallback there — pinning the sandwich
    // `exact structural ≤ degraded ≤ RTC baseline`.
    if fallback_active {
        if let Ok((ceiling, _)) = rtc_ceiling(bw, beta) {
            fallback = fallback.min(ceiling);
        }
    }

    let mut per_vertex = Vec::with_capacity(n);
    let mut stream_bound = Q::ZERO;
    for v in task.vertex_ids() {
        let (mut bound, witness, mut from_fallback) = match best[v.index()] {
            Some((d, idx)) => {
                let node = ex.nodes()[idx];
                (
                    d,
                    Some(WitnessPath {
                        vertices: ex.path_of(idx),
                        span: node.span,
                        work: node.work,
                    }),
                    false,
                )
            }
            None => (Q::ZERO, None, fallback_active),
        };
        if fallback_active && fallback > bound {
            bound = fallback;
            from_fallback = true;
        }
        stream_bound = stream_bound.max(bound);
        per_vertex.push(VertexBound {
            vertex: v,
            label: task.vertex(v).label.clone(),
            bound,
            witness,
            from_fallback,
        });
    }

    let quality = if degradations.is_empty() {
        BoundQuality::Exact
    } else {
        let coarse = bw.degraded.is_some()
            || own_truncated
            || others.iter().any(|r| r.truncated().is_some());
        let fallback_kind = if coarse {
            Fallback::CoarseRbf
        } else if exact_cap.is_zero() {
            Fallback::RtcBaseline
        } else {
            Fallback::TruncatedHorizon
        };
        BoundQuality::Degraded {
            fallback: fallback_kind,
        }
    };

    Ok(DelayAnalysis {
        task_name: task.name().to_owned(),
        per_vertex,
        stream_bound,
        busy_window: horizon,
        utilization: bw.utilization,
        paths_retained: ex.nodes().len(),
        paths_generated: ex.generated,
        paths_pruned: ex.pruned,
        runtime: start.elapsed(),
        quality,
        degradations,
    })
}

/// Upper-bounds `sup over δ in [lo, hi] of β⁻¹(demand(δ)) − δ` where the
/// demand is replaced by the affine line `own + intf` (given as
/// `(base, rate)` pairs dominating the true demand everywhere) and `β` by
/// its global lower line `β(t) ≥ b_β + r_β·t`: the resulting candidate
/// expression is affine in `δ`, so its maximum sits at an interval end.
fn affine_region_bound(
    own: (Q, Q),
    intf: (Q, Q),
    beta: &Curve,
    lo: Q,
    hi: Q,
) -> Result<Q, AnalysisError> {
    if lo > hi {
        return Ok(Q::ZERO);
    }
    let (b_beta, r_beta) = beta.lower_line();
    if !r_beta.is_positive() {
        return Err(AnalysisError::ServiceSaturated);
    }
    let cand =
        |d: Q| ((own.0 + own.1 * d + intf.0 + intf.1 * d - b_beta) / r_beta - d).clamp_nonneg();
    Ok(cand(lo).max(cand(hi)))
}

/// The RTC-baseline delay bound of the whole multiplex, computed from an
/// already-materialised busy window: `max over union breakpoint spans s of
/// β⁻¹(Σ rbf(s)) − s`, extended by the summed coarse affine tails when any
/// rbf is truncated. Returns `(bound, union breakpoint count)`.
///
/// This is both the public RTC bound ([`rtc_delay_with`] /
/// [`fifo_rtc_with`]) and the fraction-0 *ceiling* the structural analysis
/// clamps degraded results to — sharing the materialisation pins the
/// documented sandwich `exact structural ≤ degraded ≤ RTC baseline`.
fn rtc_ceiling(bw: &BusyWindow, beta: &Curve) -> Result<(Q, usize), AnalysisError> {
    let mut spans: Vec<Q> = bw
        .rbfs
        .iter()
        .flat_map(|r| r.points().iter().map(|p| p.0))
        .collect();
    spans.push(Q::ZERO);
    spans.sort();
    spans.dedup();
    let mut bound = Q::ZERO;
    for &s in &spans {
        let total = bw.total_rbf(s);
        match beta.pseudo_inverse(total) {
            Ext::Finite(t) => bound = bound.max(t - s),
            Ext::Infinite => return Err(AnalysisError::ServiceSaturated),
        }
    }
    let degraded = bw
        .degraded
        .or_else(|| bw.rbfs.iter().find_map(|r| r.truncated()));
    if degraded.is_some() {
        // Beyond the earliest truncation the total demand keeps growing
        // continuously along the coarse tails; cover the whole region with
        // the summed affine lines (each dominates its stream everywhere).
        let lo = bw
            .rbfs
            .iter()
            .map(|r| r.exact_span())
            .fold(bw.bound, Q::min);
        let line = bw.rbfs.iter().fold((Q::ZERO, Q::ZERO), |(b, r), rbf| {
            let (cb, cr) = rbf.coarse_line();
            (b + cb, r + cr)
        });
        bound = bound.max(affine_region_bound(
            line,
            (Q::ZERO, Q::ZERO),
            beta,
            lo,
            bw.bound,
        )?);
    }
    Ok((bound.clamp_nonneg(), spans.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtw_minplus::q;
    use srtw_resource::{Server, TdmaServer};
    use srtw_workload::DrtTaskBuilder;

    fn heavy_light() -> DrtTask {
        let mut b = DrtTaskBuilder::new("hl");
        let h = b.vertex("heavy", Q::int(4));
        let l = b.vertex("light", Q::ONE);
        b.edge(h, l, Q::int(6));
        b.edge(l, h, Q::int(6));
        b.build().unwrap()
    }

    fn branching() -> DrtTask {
        let mut b = DrtTaskBuilder::new("branching");
        let a = b.vertex("a", Q::int(3));
        let x = b.vertex("x", Q::ONE);
        let y = b.vertex("y", Q::int(2));
        b.edge(a, x, Q::int(4));
        b.edge(a, y, Q::int(6));
        b.edge(x, a, Q::int(4));
        b.edge(y, a, Q::int(3));
        b.build().unwrap()
    }

    #[test]
    fn per_vertex_attribution_beats_stream_bound() {
        let task = heavy_light();
        let beta = Curve::rate_latency(Q::ONE, Q::ONE);
        let a = structural_delay(&task, &beta).unwrap();
        let rtc = rtc_delay(&task, &beta).unwrap();
        // Theorem: stream-wide structural max equals the RTC bound.
        assert_eq!(a.stream_bound, rtc.bound);
        // The light vertex is strictly better off than the stream bound.
        let light = task.vertex_ids().nth(1).unwrap();
        assert!(a.bound_of(light) < rtc.bound);
    }

    #[test]
    fn stream_max_equals_rtc_on_many_graphs() {
        let betas = [
            Curve::affine(Q::ZERO, Q::ONE),
            Curve::rate_latency(Q::ONE, Q::int(2)),
            Curve::rate_latency(q(3, 4), Q::int(1)),
            TdmaServer::new(Q::int(3), Q::int(4), Q::ONE)
                .unwrap()
                .beta_lower(),
        ];
        for task in [heavy_light(), branching()] {
            for beta in &betas {
                let a = structural_delay(&task, beta).unwrap();
                let rtc = rtc_delay(&task, beta).unwrap();
                assert_eq!(
                    a.stream_bound, rtc.bound,
                    "stream/RTC mismatch for {} on {beta:?}",
                    task.name()
                );
                for vb in &a.per_vertex {
                    assert!(vb.bound <= rtc.bound);
                }
            }
        }
    }

    #[test]
    fn witness_paths_are_legal_and_consistent() {
        let task = branching();
        let beta = Curve::rate_latency(q(3, 4), Q::int(2));
        let a = structural_delay(&task, &beta).unwrap();
        for vb in &a.per_vertex {
            let w = vb.witness.as_ref().expect("full analysis has witnesses");
            assert_eq!(*w.vertices.last().unwrap(), vb.vertex);
            // Work is the sum of WCETs along the path.
            let work: Q = w
                .vertices
                .iter()
                .map(|&v| task.wcet(v))
                .fold(Q::ZERO, |x, y| x + y);
            assert_eq!(work, w.work);
            // Consecutive vertices must be connected.
            for pair in w.vertices.windows(2) {
                assert!(task
                    .out_edges(pair[0])
                    .iter()
                    .any(|e| e.to == pair[1]));
            }
        }
    }

    #[test]
    fn fraction_zero_equals_rtc_everywhere() {
        let task = branching();
        let beta = Curve::rate_latency(q(3, 4), Q::int(2));
        let rtc = rtc_delay(&task, &beta).unwrap();
        let cfg = AnalysisConfig {
            horizon_fraction: Some(Q::ZERO),
            ..Default::default()
        };
        let a = structural_delay_with(&task, &beta, &cfg).unwrap();
        assert_eq!(a.stream_bound, rtc.bound, "fraction-0 must equal RTC");
        for vb in &a.per_vertex {
            assert!(vb.bound <= rtc.bound);
        }
    }

    #[test]
    fn fraction_one_equals_full() {
        let task = branching();
        let beta = Curve::rate_latency(q(3, 4), Q::int(2));
        let full = structural_delay(&task, &beta).unwrap();
        let cfg = AnalysisConfig {
            horizon_fraction: Some(Q::ONE),
            ..Default::default()
        };
        let a = structural_delay_with(&task, &beta, &cfg).unwrap();
        for (x, y) in a.per_vertex.iter().zip(full.per_vertex.iter()) {
            assert_eq!(x.bound, y.bound);
        }
    }

    #[test]
    fn fraction_interpolates_monotonically() {
        let task = branching();
        let beta = Curve::rate_latency(q(2, 3), Q::int(2));
        let full = structural_delay(&task, &beta).unwrap();
        let mut prev: Option<Vec<Q>> = None;
        for k in 0..=8 {
            let cfg = AnalysisConfig {
                horizon_fraction: Some(q(k, 8)),
                ..Default::default()
            };
            let a = structural_delay_with(&task, &beta, &cfg).unwrap();
            let bounds: Vec<Q> = a.per_vertex.iter().map(|b| b.bound).collect();
            // Sound: never below the full structural bound.
            for (b, f) in bounds.iter().zip(full.per_vertex.iter()) {
                assert!(
                    *b >= f.bound,
                    "fraction {k}/8 bound {b} below full {}",
                    f.bound
                );
            }
            if let Some(p) = prev {
                for (b, pb) in bounds.iter().zip(p.iter()) {
                    assert!(b <= pb, "fraction {k}/8 not monotone: {b} > {pb}");
                }
            }
            prev = Some(bounds);
        }
    }

    #[test]
    fn no_prune_gives_identical_bounds() {
        let task = branching();
        let beta = Curve::rate_latency(q(3, 4), Q::int(1));
        let pruned = structural_delay(&task, &beta).unwrap();
        let raw = structural_delay_with(
            &task,
            &beta,
            &AnalysisConfig {
                no_prune: true,
                ..Default::default()
            },
        )
        .unwrap();
        for (a, b) in pruned.per_vertex.iter().zip(raw.per_vertex.iter()) {
            assert_eq!(a.bound, b.bound);
        }
        assert!(raw.paths_retained >= pruned.paths_retained);
    }

    #[test]
    fn fifo_structural_vs_fifo_rtc() {
        let t1 = heavy_light();
        let t2 = {
            let mut b = DrtTaskBuilder::new("periodic");
            let v = b.vertex("p", Q::ONE);
            b.edge(v, v, Q::int(8));
            b.build().unwrap()
        };
        let beta = Curve::affine(Q::ZERO, Q::ONE);
        let tasks = vec![t1, t2];
        let rtc = fifo_rtc(&tasks, &beta).unwrap();
        let per = fifo_structural(&tasks, &beta, &AnalysisConfig::default()).unwrap();
        assert_eq!(per.len(), 2);
        let mut overall = Q::ZERO;
        for a in &per {
            for vb in &a.per_vertex {
                assert!(vb.bound <= rtc.bound, "structural FIFO must refine RTC");
                overall = overall.max(vb.bound);
            }
        }
        // The light periodic stream's job is strictly better off than the
        // stream-agnostic bound.
        let light_bound = per[1].per_vertex[0].bound;
        assert!(light_bound <= rtc.bound);
        assert!(overall.is_positive());
    }

    #[test]
    fn backlog_matches_brute_force_curves() {
        let task = heavy_light();
        let beta = Curve::rate_latency(Q::ONE, Q::int(2));
        let b = backlog_bound(std::slice::from_ref(&task), &beta).unwrap();
        // Cross-check against the curve-level vertical deviation.
        let bw = busy_window(std::slice::from_ref(&task), &beta).unwrap();
        let vd = bw.rbfs[0].curve().vdev(&beta).unwrap_finite();
        assert_eq!(b, vd);
    }

    #[test]
    fn unstable_task_errors() {
        let mut b = DrtTaskBuilder::new("hot");
        let v = b.vertex("v", Q::int(5));
        b.edge(v, v, Q::int(4));
        let task = b.build().unwrap();
        let beta = Curve::affine(Q::ZERO, Q::ONE);
        assert!(matches!(
            structural_delay(&task, &beta),
            Err(AnalysisError::Unstable { .. })
        ));
    }

    #[test]
    fn unlimited_budget_stays_exact() {
        let task = branching();
        let beta = Curve::rate_latency(q(3, 4), Q::int(2));
        let a = structural_delay(&task, &beta).unwrap();
        assert_eq!(a.quality, crate::report::BoundQuality::Exact);
        assert!(a.degradations.is_empty());
        let r = rtc_delay(&task, &beta).unwrap();
        assert!(r.quality.is_exact());
    }

    #[test]
    fn path_budget_degrades_soundly() {
        use crate::report::BoundQuality;
        use srtw_minplus::Budget;
        let task = branching();
        // Service rate 2 exceeds even the coarsest packing rate
        // (e_max/p_min = 1), so every budget level has a sound degraded
        // bound and never needs BudgetExhausted.
        let beta = Curve::rate_latency(Q::int(2), Q::ONE);
        let exact = structural_delay(&task, &beta).unwrap();
        for cap in [0u64, 1, 2, 4, 8, 16] {
            let cfg = AnalysisConfig {
                budget: Budget::default().with_max_paths(cap),
                ..Default::default()
            };
            let a = structural_delay_with(&task, &beta, &cfg).unwrap();
            // Sound: degraded bounds dominate the exact structural bounds.
            assert!(
                a.stream_bound >= exact.stream_bound,
                "cap {cap}: degraded stream bound {} below exact {}",
                a.stream_bound,
                exact.stream_bound
            );
            for (d, e) in a.per_vertex.iter().zip(exact.per_vertex.iter()) {
                assert!(d.bound >= e.bound, "cap {cap}: vertex bound shrank");
            }
            if let BoundQuality::Degraded { .. } = a.quality {
                assert!(!a.degradations.is_empty());
            } else {
                // A generous cap may finish the analysis exactly.
                assert!(a.degradations.is_empty());
            }
        }
    }

    #[test]
    fn tight_budget_on_slow_server_degrades_or_exhausts() {
        use srtw_minplus::Budget;
        // On a sub-unit-rate server the coarse packing rate (1) saturates
        // the service, so a starved budget may legitimately report
        // BudgetExhausted — but must never panic or return an unsound
        // (too small) bound.
        let task = branching();
        let beta = Curve::rate_latency(q(3, 4), Q::int(2));
        let exact = structural_delay(&task, &beta).unwrap();
        for cap in [0u64, 1, 2, 4, 8, 16, 64] {
            let cfg = AnalysisConfig {
                budget: Budget::default().with_max_paths(cap),
                ..Default::default()
            };
            match structural_delay_with(&task, &beta, &cfg) {
                Ok(a) => assert!(a.stream_bound >= exact.stream_bound),
                Err(AnalysisError::BudgetExhausted { .. }) => {}
                Err(e) => panic!("cap {cap}: unexpected error {e}"),
            }
        }
    }

    #[test]
    fn zero_wall_budget_falls_back_to_coarse_lines() {
        use crate::report::{BoundQuality, Fallback};
        use srtw_minplus::Budget;
        let task = branching();
        // Fast server: the coarse line of the horizon-1 prefix (rate 3)
        // stays below the service rate 4, so the degraded path succeeds.
        let beta = Curve::affine(Q::ZERO, Q::int(4));
        let exact = structural_delay(&task, &beta).unwrap();
        let cfg = AnalysisConfig {
            budget: Budget::wall_ms(0),
            ..Default::default()
        };
        let a = structural_delay_with(&task, &beta, &cfg).unwrap();
        assert_eq!(
            a.quality,
            BoundQuality::Degraded {
                fallback: Fallback::CoarseRbf
            }
        );
        assert!(!a.degradations.is_empty());
        assert!(a.stream_bound >= exact.stream_bound);
    }

    #[test]
    fn rtc_with_budget_degrades_soundly() {
        use srtw_minplus::Budget;
        let task = branching();
        let beta = Curve::rate_latency(Q::int(2), Q::ONE);
        let exact = rtc_delay(&task, &beta).unwrap();
        for cap in [0u64, 1, 3, 6] {
            let r =
                rtc_delay_with(&task, &beta, &Budget::default().with_max_paths(cap)).unwrap();
            assert!(
                r.bound >= exact.bound,
                "cap {cap}: degraded RTC bound {} below exact {}",
                r.bound,
                exact.bound
            );
        }
        let r = rtc_delay_with(&task, &beta, &Budget::default().with_max_paths(0)).unwrap();
        assert!(!r.quality.is_exact());
    }

    #[test]
    fn fifo_budget_degrades_soundly() {
        use srtw_minplus::Budget;
        let t1 = heavy_light();
        let t2 = branching();
        // Rate 3 dominates the summed coarse packing rates (2/3 + 1).
        let beta = Curve::affine(Q::ZERO, Q::int(3));
        let tasks = vec![t1, t2];
        let exact = fifo_structural(&tasks, &beta, &AnalysisConfig::default()).unwrap();
        let exact_rtc = fifo_rtc(&tasks, &beta).unwrap();
        let cfg = AnalysisConfig {
            budget: Budget::default().with_max_paths(3),
            ..Default::default()
        };
        let per = fifo_structural(&tasks, &beta, &cfg).unwrap();
        for (d, e) in per.iter().zip(exact.iter()) {
            assert!(d.stream_bound >= e.stream_bound);
        }
        let rtc = fifo_rtc_with(&tasks, &beta, &Budget::default().with_max_paths(3)).unwrap();
        assert!(rtc.bound >= exact_rtc.bound);
    }

    #[test]
    fn pre_cancelled_run_degrades_like_a_wall_trip() {
        use crate::report::BoundQuality;
        use srtw_minplus::{Budget, CancelToken};
        let task = branching();
        // Fast server: the coarse degraded path always succeeds.
        let beta = Curve::affine(Q::ZERO, Q::int(4));
        let exact = structural_delay(&task, &beta).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let cfg = AnalysisConfig {
            budget: Budget::default().with_cancel(token),
            ..Default::default()
        };
        let a = structural_delay_with(&task, &beta, &cfg).unwrap();
        assert!(matches!(a.quality, BoundQuality::Degraded { .. }));
        assert!(a
            .degradations
            .iter()
            .any(|d| d.tripped == srtw_minplus::BudgetKind::Cancelled));
        // Cancellation can only truncate earlier: same sandwich as PR 2.
        assert!(a.stream_bound >= exact.stream_bound);
        let rtc = rtc_delay(&task, &beta).unwrap();
        assert!(a.stream_bound <= rtc.bound);
    }

    #[test]
    fn uncancelled_token_changes_nothing() {
        use srtw_minplus::{Budget, CancelToken};
        let task = branching();
        let beta = Curve::rate_latency(q(3, 4), Q::int(2));
        let exact = structural_delay(&task, &beta).unwrap();
        let cfg = AnalysisConfig {
            budget: Budget::default().with_cancel(CancelToken::new()),
            ..Default::default()
        };
        let a = structural_delay_with(&task, &beta, &cfg).unwrap();
        assert!(a.quality.is_exact());
        assert_eq!(a.stream_bound, exact.stream_bound);
        for (x, y) in a.per_vertex.iter().zip(exact.per_vertex.iter()) {
            assert_eq!(x.bound, y.bound);
        }
    }

    #[test]
    fn injected_overflow_surfaces_as_typed_arithmetic_error() {
        use srtw_minplus::{ArithmeticError, Budget, FaultKind, FaultPlan};
        let task = branching();
        let beta = Curve::rate_latency(q(3, 4), Q::int(2));
        for at_op in [1u64, 5, 50] {
            let cfg = AnalysisConfig {
                budget: Budget::default()
                    .with_fault(FaultPlan::new(at_op, FaultKind::Overflow)),
                ..Default::default()
            };
            match structural_delay_with(&task, &beta, &cfg) {
                Err(AnalysisError::Arithmetic(ArithmeticError::Overflow)) => {}
                other => panic!("op {at_op}: expected injected overflow, got {other:?}"),
            }
            let budget = Budget::default().with_fault(FaultPlan::new(at_op, FaultKind::Overflow));
            match rtc_delay_with(&task, &beta, &budget) {
                Err(AnalysisError::Arithmetic(ArithmeticError::Overflow)) => {}
                other => panic!("op {at_op}: RTC expected injected overflow, got {other:?}"),
            }
        }
        // A plan firing far past the run's operation count never fires.
        let cfg = AnalysisConfig {
            budget: Budget::default()
                .with_fault(FaultPlan::new(u64::MAX, FaultKind::Overflow)),
            ..Default::default()
        };
        assert!(structural_delay_with(&task, &beta, &cfg).is_ok());
    }

    #[test]
    fn injected_trip_degrades_soundly_at_any_op() {
        use srtw_minplus::{Budget, FaultKind, FaultPlan};
        let task = branching();
        // Fast server: a sound coarse fallback always exists.
        let beta = Curve::affine(Q::ZERO, Q::int(4));
        let exact = structural_delay(&task, &beta).unwrap();
        let rtc = rtc_delay(&task, &beta).unwrap();
        for at_op in 1..40u64 {
            let cfg = AnalysisConfig {
                budget: Budget::default()
                    .with_fault(FaultPlan::new(at_op, FaultKind::TripBudget)),
                ..Default::default()
            };
            let a = structural_delay_with(&task, &beta, &cfg)
                .unwrap_or_else(|e| panic!("op {at_op}: {e}"));
            assert!(
                a.stream_bound >= exact.stream_bound && a.stream_bound <= rtc.bound,
                "op {at_op}: degraded bound {} outside sandwich [{}, {}]",
                a.stream_bound,
                exact.stream_bound,
                rtc.bound
            );
        }
    }

    #[test]
    fn tdma_case_delays() {
        // Stream on a TDMA slot: delays include blackout waits.
        let task = heavy_light();
        let server = TdmaServer::new(Q::int(4), Q::int(6), Q::ONE).unwrap();
        let a = structural_delay(&task, &server.beta_lower()).unwrap();
        let rtc = rtc_delay(&task, &server.beta_lower()).unwrap();
        assert_eq!(a.stream_bound, rtc.bound);
        assert!(a.stream_bound >= Q::int(4)); // at least the heavy WCET
        assert!(a.schedulable(&task)); // no deadlines set: vacuously true
    }
}
