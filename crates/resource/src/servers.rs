//! Server models and their service-curve semantics.
//!
//! A *server* abstracts the processing resource: its **lower service curve**
//! `β(Δ)` guarantees at least `β(Δ)` units of service in any window of
//! length `Δ`, its **upper service curve** caps the service. The delay
//! analyses only need the lower curve; upper curves are used by simulators
//! and output-arrival propagation.

use crate::error::ResourceError;
use srtw_minplus::{Curve, Piece, Q, Tail};
use std::fmt;

/// Common interface of all server models.
pub trait Server: fmt::Debug {
    /// The guaranteed (lower) service curve `β^l`.
    fn beta_lower(&self) -> Curve;

    /// The maximal (upper) service curve `β^u`.
    fn beta_upper(&self) -> Curve;

    /// Long-run guaranteed service rate.
    fn rate(&self) -> Q {
        self.beta_lower().rate()
    }

    /// Short human-readable description for reports.
    fn describe(&self) -> String;
}

/// A rate-latency server `β_{R,T}(Δ) = R·max(0, Δ − T)`: guaranteed rate
/// `R` after an initial blackout of at most `T`.
///
/// # Examples
///
/// ```
/// use srtw_resource::{RateLatencyServer, Server};
/// use srtw_minplus::{q, Q};
/// let s = RateLatencyServer::new(q(3, 4), Q::int(2)).unwrap();
/// assert_eq!(s.beta_lower().eval(Q::int(6)), Q::int(3));
/// assert_eq!(s.rate(), q(3, 4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLatencyServer {
    rate: Q,
    latency: Q,
}

impl RateLatencyServer {
    /// Creates a rate-latency server; `rate` must be positive and `latency`
    /// non-negative.
    pub fn new(rate: Q, latency: Q) -> Result<RateLatencyServer, ResourceError> {
        if !rate.is_positive() {
            return Err(ResourceError::InvalidParameter {
                reason: "rate must be positive",
            });
        }
        if latency.is_negative() {
            return Err(ResourceError::InvalidParameter {
                reason: "latency must be non-negative",
            });
        }
        Ok(RateLatencyServer { rate, latency })
    }

    /// A dedicated unit-rate processor (no latency).
    pub fn dedicated_unit() -> RateLatencyServer {
        RateLatencyServer {
            rate: Q::ONE,
            latency: Q::ZERO,
        }
    }

    /// The guaranteed rate.
    pub fn guaranteed_rate(&self) -> Q {
        self.rate
    }

    /// The worst-case initial latency.
    pub fn latency(&self) -> Q {
        self.latency
    }
}

impl Server for RateLatencyServer {
    fn beta_lower(&self) -> Curve {
        Curve::rate_latency(self.rate, self.latency)
    }

    fn beta_upper(&self) -> Curve {
        Curve::affine(Q::ZERO, self.rate)
    }

    fn describe(&self) -> String {
        format!("rate-latency(R={}, T={})", self.rate, self.latency)
    }
}

/// A TDMA server: within every cycle of length `cycle`, the stream owns one
/// contiguous slot of length `slot` on a resource of rate `capacity`.
///
/// Worst case (lower curve): the window opens right after the slot ends —
/// no service for `cycle − slot`, then `slot` at full rate, repeating.
///
/// # Examples
///
/// ```
/// use srtw_resource::{Server, TdmaServer};
/// use srtw_minplus::Q;
/// let s = TdmaServer::new(Q::int(2), Q::int(5), Q::ONE).unwrap();
/// let beta = s.beta_lower();
/// assert_eq!(beta.eval(Q::int(3)), Q::ZERO);  // blackout
/// assert_eq!(beta.eval(Q::int(5)), Q::int(2)); // one slot served
/// assert_eq!(beta.rate(), Q::new(2, 5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TdmaServer {
    slot: Q,
    cycle: Q,
    capacity: Q,
}

impl TdmaServer {
    /// Creates a TDMA server with a slot of length `slot` in a cycle of
    /// length `cycle` on a resource of processing rate `capacity`.
    pub fn new(slot: Q, cycle: Q, capacity: Q) -> Result<TdmaServer, ResourceError> {
        if !slot.is_positive() || !cycle.is_positive() || !capacity.is_positive() {
            return Err(ResourceError::InvalidParameter {
                reason: "slot, cycle and capacity must be positive",
            });
        }
        if slot > cycle {
            return Err(ResourceError::InvalidParameter {
                reason: "slot must not exceed the cycle",
            });
        }
        Ok(TdmaServer {
            slot,
            cycle,
            capacity,
        })
    }

    /// The slot length.
    pub fn slot(&self) -> Q {
        self.slot
    }

    /// The cycle length.
    pub fn cycle(&self) -> Q {
        self.cycle
    }

    /// The underlying resource rate.
    pub fn capacity(&self) -> Q {
        self.capacity
    }
}

impl Server for TdmaServer {
    fn beta_lower(&self) -> Curve {
        if self.slot == self.cycle {
            return Curve::affine(Q::ZERO, self.capacity);
        }
        let gap = self.cycle - self.slot;
        // Pattern on [0, cycle): flat through the gap, then serve the slot.
        let pieces = vec![
            Piece::new(Q::ZERO, Q::ZERO, Q::ZERO),
            Piece::new(gap, Q::ZERO, self.capacity),
        ];
        Curve::new(
            pieces,
            Tail::Periodic {
                pattern_start: 0,
                period: self.cycle,
                increment: self.capacity * self.slot,
            },
        )
        .expect("TDMA lower curve invalid")
    }

    fn beta_upper(&self) -> Curve {
        if self.slot == self.cycle {
            return Curve::affine(Q::ZERO, self.capacity);
        }
        // Best case: the window opens exactly at a slot start.
        let pieces = vec![
            Piece::new(Q::ZERO, Q::ZERO, self.capacity),
            Piece::new(self.slot, self.capacity * self.slot, Q::ZERO),
        ];
        Curve::new(
            pieces,
            Tail::Periodic {
                pattern_start: 0,
                period: self.cycle,
                increment: self.capacity * self.slot,
            },
        )
        .expect("TDMA upper curve invalid")
    }

    fn describe(&self) -> String {
        format!(
            "TDMA(slot={}, cycle={}, capacity={})",
            self.slot, self.cycle, self.capacity
        )
    }
}

/// A periodic resource `Γ(Π, Θ)` (Shin & Lee): in every period `Π` the
/// stream receives `Θ` units of unit-rate service, positioned arbitrarily.
///
/// The worst-case lower curve has an initial blackout of `2(Π − Θ)`
/// followed by `Θ` service per period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeriodicResource {
    period: Q,
    budget: Q,
}

impl PeriodicResource {
    /// Creates a periodic resource with period `Π` and budget `Θ ≤ Π`.
    pub fn new(period: Q, budget: Q) -> Result<PeriodicResource, ResourceError> {
        if !period.is_positive() || !budget.is_positive() {
            return Err(ResourceError::InvalidParameter {
                reason: "period and budget must be positive",
            });
        }
        if budget > period {
            return Err(ResourceError::InvalidParameter {
                reason: "budget must not exceed the period",
            });
        }
        Ok(PeriodicResource { period, budget })
    }

    /// The replenishment period Π.
    pub fn period(&self) -> Q {
        self.period
    }

    /// The budget Θ per period.
    pub fn budget(&self) -> Q {
        self.budget
    }
}

impl Server for PeriodicResource {
    fn beta_lower(&self) -> Curve {
        if self.budget == self.period {
            return Curve::affine(Q::ZERO, Q::ONE);
        }
        let gap = self.period - self.budget;
        let blackout = gap * Q::TWO;
        // Pattern from the blackout end: budget at rate 1, then a gap.
        let pieces = vec![
            Piece::new(Q::ZERO, Q::ZERO, Q::ZERO),
            Piece::new(blackout, Q::ZERO, Q::ONE),
            Piece::new(blackout + self.budget, self.budget, Q::ZERO),
        ];
        Curve::new(
            pieces,
            Tail::Periodic {
                pattern_start: 1,
                period: self.period,
                increment: self.budget,
            },
        )
        .expect("periodic resource lower curve invalid")
    }

    fn beta_upper(&self) -> Curve {
        if self.budget == self.period {
            return Curve::affine(Q::ZERO, Q::ONE);
        }
        // Best case: budget served immediately at each period start.
        let pieces = vec![
            Piece::new(Q::ZERO, Q::ZERO, Q::ONE),
            Piece::new(self.budget, self.budget, Q::ZERO),
        ];
        Curve::new(
            pieces,
            Tail::Periodic {
                pattern_start: 0,
                period: self.period,
                increment: self.budget,
            },
        )
        .expect("periodic resource upper curve invalid")
    }

    fn describe(&self) -> String {
        format!("Γ(Π={}, Θ={})", self.period, self.budget)
    }
}

/// A server described directly by explicit lower/upper curves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplicitServer {
    lower: Curve,
    upper: Curve,
    label: String,
}

impl ExplicitServer {
    /// Wraps explicit service curves. `lower` must be dominated by `upper`.
    pub fn new(
        label: impl Into<String>,
        lower: Curve,
        upper: Curve,
    ) -> Result<ExplicitServer, ResourceError> {
        if !lower.dominated_by(&upper) {
            return Err(ResourceError::InvalidParameter {
                reason: "lower service curve must not exceed the upper one",
            });
        }
        Ok(ExplicitServer {
            lower,
            upper,
            label: label.into(),
        })
    }
}

impl Server for ExplicitServer {
    fn beta_lower(&self) -> Curve {
        self.lower.clone()
    }

    fn beta_upper(&self) -> Curve {
        self.upper.clone()
    }

    fn describe(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtw_minplus::q;

    #[test]
    fn rate_latency_curves() {
        let s = RateLatencyServer::new(Q::TWO, Q::int(3)).unwrap();
        assert_eq!(s.beta_lower().eval(Q::int(5)), Q::int(4));
        assert_eq!(s.beta_upper().eval(Q::int(5)), Q::int(10));
        assert_eq!(s.rate(), Q::TWO);
        assert_eq!(s.guaranteed_rate(), Q::TWO);
        assert_eq!(s.latency(), Q::int(3));
        assert!(s.describe().contains("rate-latency"));
        assert!(RateLatencyServer::new(Q::ZERO, Q::ONE).is_err());
        assert!(RateLatencyServer::new(Q::ONE, -Q::ONE).is_err());
        assert_eq!(RateLatencyServer::dedicated_unit().rate(), Q::ONE);
    }

    #[test]
    fn tdma_lower_curve_shape() {
        let s = TdmaServer::new(Q::int(2), Q::int(5), Q::ONE).unwrap();
        let b = s.beta_lower();
        // Blackout of 3, then 2 service, repeating.
        assert_eq!(b.eval(Q::ZERO), Q::ZERO);
        assert_eq!(b.eval(Q::int(3)), Q::ZERO);
        assert_eq!(b.eval(Q::int(4)), Q::ONE);
        assert_eq!(b.eval(Q::int(5)), Q::int(2));
        assert_eq!(b.eval(Q::int(8)), Q::int(2));
        assert_eq!(b.eval(Q::int(10)), Q::int(4));
        assert_eq!(b.rate(), q(2, 5));
        // Upper dominates lower.
        assert!(b.dominated_by(&s.beta_upper()));
    }

    #[test]
    fn tdma_full_slot_is_fluid() {
        let s = TdmaServer::new(Q::int(5), Q::int(5), Q::TWO).unwrap();
        assert_eq!(s.beta_lower().eval(Q::int(3)), Q::int(6));
        assert_eq!(s.beta_lower(), s.beta_upper());
    }

    #[test]
    fn tdma_validation() {
        assert!(TdmaServer::new(Q::int(6), Q::int(5), Q::ONE).is_err());
        assert!(TdmaServer::new(Q::ZERO, Q::int(5), Q::ONE).is_err());
    }

    #[test]
    fn periodic_resource_curves() {
        let s = PeriodicResource::new(Q::int(5), Q::int(2)).unwrap();
        let b = s.beta_lower();
        // Blackout 2·(5−2) = 6, then 2 per period of 5.
        assert_eq!(b.eval(Q::int(6)), Q::ZERO);
        assert_eq!(b.eval(Q::int(8)), Q::int(2));
        assert_eq!(b.eval(Q::int(11)), Q::int(2));
        assert_eq!(b.eval(Q::int(13)), Q::int(4));
        assert_eq!(b.rate(), q(2, 5));
        assert!(b.dominated_by(&s.beta_upper()));
        assert!(PeriodicResource::new(Q::int(5), Q::int(6)).is_err());
        let full = PeriodicResource::new(Q::int(5), Q::int(5)).unwrap();
        assert_eq!(full.beta_lower().eval(Q::int(7)), Q::int(7));
    }

    #[test]
    fn explicit_server_validation() {
        let lo = Curve::rate_latency(Q::ONE, Q::int(2));
        let up = Curve::affine(Q::ZERO, Q::ONE);
        let s = ExplicitServer::new("custom", lo.clone(), up.clone()).unwrap();
        assert_eq!(s.beta_lower(), lo);
        assert_eq!(s.beta_upper(), up);
        assert_eq!(s.describe(), "custom");
        // Swapped order is rejected.
        assert!(ExplicitServer::new("bad", up, lo).is_err());
    }
}
