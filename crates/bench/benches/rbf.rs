//! B2 — request-bound-function computation across graph sizes and
//! horizons (the dominance-pruned path exploration).
//!
//! Run with `cargo bench -p srtw-bench --bench rbf`; set
//! `SRTW_BENCH_FAST=1` for a quick smoke run.

use srtw_bench::suites::rbf_suite;
use srtw_bench::timing::{print_samples, Timer};

fn main() {
    print_samples(&rbf_suite(&Timer::from_env()));
}
