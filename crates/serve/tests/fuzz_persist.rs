//! Seeded fuzz suite for spill-store recovery.
//!
//! Random structural and byte-level mutations of a genuine spill image
//! (truncations, bit flips, duplicated slices, stale-generation
//! duplicates, and pure noise) are fed to `srtw_persist::load_dir`.
//! Four invariants:
//!
//! 1. loading never panics — every image, however mangled, yields a
//!    `SpillLoad`;
//! 2. loading never *invents* a result: every record it salvages must
//!    be byte-identical (key, form, and body alike) to one that was
//!    genuinely spilled — so a warm hit can never replay bytes that
//!    were never stored, and the serve-side double verification
//!    (canonical-form hash + presentation digest) can never be handed
//!    a wrong body that passes;
//! 3. dedup holds — no two salvaged records share a full cache key;
//! 4. among genuine duplicates of one key, the survivor carries the
//!    highest generation present (stale spills never shadow newer
//!    ones).
//!
//! Case counts follow `SRTW_PROP_CASES` (default 64); failures print a
//! `SRTW_PROP_REPLAY=<seed>:<size>` handle for exact reproduction.

use srtw_detrand::prop::forall;
use srtw_detrand::Rng;
use srtw_persist::{load_dir, SpillRecord, Store, SPILL_HEADER_BYTES};
use std::path::PathBuf;
use std::sync::OnceLock;

/// The genuine records the fuzz cases start from, plus each record's
/// exact on-disk frame bytes (captured by writing a one-record spill
/// file and stripping the header). Two of the records share a full
/// cache key at different generations — the "stale duplicate" pair.
struct Base {
    records: Vec<SpillRecord>,
    frames: Vec<Vec<u8>>,
    header: Vec<u8>,
}

fn base() -> &'static Base {
    static BASE: OnceLock<Base> = OnceLock::new();
    BASE.get_or_init(|| {
        // (canon, deadline, threads, presentation, body). The last entry
        // reuses the first key with a different body and a later
        // generation: a genuine re-spill of the same cache slot.
        let specs: [(u128, Option<u64>, u32, u64, &str); 5] = [
            (0x1111, None, 1, 0xaaaa, "{\"scheduler\":\"fifo\",\"n\":1}\n"),
            (0x2222, Some(50), 2, 0xbbbb, "{\"scheduler\":\"fifo\",\"n\":2}\n"),
            (0x3333, None, 4, 0xcccc, "{\"scheduler\":\"fifo\",\"n\":3}\n"),
            (0x4444, Some(10), 1, 0xdddd, "{\"scheduler\":\"fifo\",\"n\":4}\n"),
            (0x1111, None, 1, 0xaaaa, "{\"scheduler\":\"fifo\",\"n\":5}\n"),
        ];
        let mut records = Vec::new();
        let mut frames = Vec::new();
        let mut header = Vec::new();
        for (i, (canon, deadline_ms, threads, presentation, body)) in
            specs.into_iter().enumerate()
        {
            let dir = tmp(&format!("frame-{i}"));
            let _ = std::fs::remove_dir_all(&dir);
            let store = Store::open(&dir, 0, 1, i as u64, None).unwrap();
            let form = vec![canon as u64, 7, i as u64];
            store
                .append(0, canon, deadline_ms, threads, presentation, &form, body)
                .unwrap();
            let bytes = std::fs::read(Store::shard_path(&dir, 0, 0)).unwrap();
            std::fs::remove_dir_all(&dir).unwrap();
            if header.is_empty() {
                header = bytes[..SPILL_HEADER_BYTES].to_vec();
            }
            frames.push(bytes[SPILL_HEADER_BYTES..].to_vec());
            records.push(SpillRecord {
                generation: i as u64,
                canon,
                deadline_ms,
                threads,
                presentation,
                form,
                body: body.to_string(),
            });
        }
        Base {
            records,
            frames,
            header,
        }
    })
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("srtw-fuzz-persist-{}-{name}", std::process::id()));
    p
}

fn full_key(r: &SpillRecord) -> (u128, Option<u64>, u32, u64) {
    (r.canon, r.deadline_ms, r.threads, r.presentation)
}

/// One seeded spill image: the genuine frames in a random order (with
/// possible duplicates — including the stale-generation pair), then
/// `size`-scaled byte-level mutations.
fn mutated(rng: &mut Rng, size: u32) -> Vec<u8> {
    let base = base();
    let mut image = base.header.clone();
    let picks = rng.random_range(0usize..base.frames.len() * 2);
    for _ in 0..picks {
        let f = rng.random_range(0usize..base.frames.len());
        image.extend_from_slice(&base.frames[f]);
    }
    let mutations = (size as usize) / 8;
    for _ in 0..mutations {
        match rng.random_range(0u32..5) {
            // Flip a random bit.
            0 if !image.is_empty() => {
                let i = rng.random_range(0usize..image.len());
                image[i] ^= 1 << rng.random_range(0u32..8);
            }
            // Truncate at a random point (torn tail; may eat the header).
            1 if !image.is_empty() => {
                let i = rng.random_range(0usize..image.len());
                image.truncate(i);
            }
            // Duplicate a random slice (repeated/overlapping frames).
            2 if image.len() >= 2 => {
                let a = rng.random_range(0usize..image.len() - 1);
                let b = rng.random_range(a + 1..image.len());
                let slice = image[a..b].to_vec();
                let i = rng.random_range(0usize..image.len() + 1);
                image.splice(i..i, slice);
            }
            // Insert random bytes.
            3 => {
                let i = rng.random_range(0usize..image.len() + 1);
                let chunk: Vec<u8> = (0..rng.random_range(1usize..16))
                    .map(|_| rng.next_u64() as u8)
                    .collect();
                image.splice(i..i, chunk);
            }
            // Replace everything with noise.
            _ => {
                image = (0..rng.random_range(0usize..512))
                    .map(|_| rng.next_u64() as u8)
                    .collect();
            }
        }
    }
    image
}

#[test]
fn mutated_spills_load_without_panics_or_invented_records() {
    let genuine = &base().records;
    let dir = tmp("mutated");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    forall("spill loading tolerates arbitrary corruption", mutated, |image| {
        let path = dir.join("r0.s0.spill");
        std::fs::write(&path, image).unwrap();
        let load = load_dir(&dir);
        for r in &load.records {
            // Invariant 2: every salvaged record is byte-identical to a
            // genuinely spilled one — no invented bodies, so the warm
            // cache can never hand back bytes that were never stored.
            assert!(
                genuine.iter().any(|g| g == r),
                "loading invented a record for key {:x?} that was never spilled",
                full_key(r)
            );
        }
        // Invariant 3: full-key dedup.
        for (i, r) in load.records.iter().enumerate() {
            assert!(
                load.records[..i].iter().all(|p| full_key(p) != full_key(r)),
                "duplicate cache key {:x?} survived loading",
                full_key(r)
            );
        }
    });
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncation_sweep_keeps_exactly_the_fully_synced_prefix() {
    // Deterministic sweep, not seeded: for every possible truncation
    // point of an intact image, loading yields exactly the (deduped)
    // records whose frames fit wholly inside the prefix —
    // write-then-sync per append means those are the entries a crash
    // can never take back, and nothing torn ever surfaces.
    let base = base();
    let dir = tmp("sweep");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let mut image = base.header.clone();
    let mut boundaries = vec![image.len()];
    for f in &base.frames {
        image.extend_from_slice(f);
        boundaries.push(image.len());
    }
    for cut in base.header.len()..=image.len() {
        let path = dir.join("r0.s0.spill");
        std::fs::write(&path, &image[..cut]).unwrap();
        let load = load_dir(&dir);
        let complete = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        // The stale-generation pair dedups once both frames fit.
        let expected = if complete == base.records.len() {
            complete - 1
        } else {
            complete
        };
        assert_eq!(
            load.records.len(),
            expected,
            "truncation at byte {cut} must keep exactly the {expected} fully-written record(s)"
        );
        if complete < base.records.len() {
            for (r, g) in load.records.iter().zip(&base.records) {
                assert_eq!(r, g, "prefix records must replay byte-identically");
            }
        }
        assert_eq!(
            cut == image.len() || cut == boundaries[complete],
            load.warnings.is_empty(),
            "a mid-frame cut at byte {cut} must warn; a clean boundary must not"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_generations_never_shadow_newer_spills() {
    // The same cache key spilled at generations 0 and 4 (frames 0 and 4
    // of the base image): whatever order the frames land in the file —
    // and even when the stale one is duplicated — the survivor is the
    // newest body.
    let base = base();
    let stale = &base.frames[0];
    let fresh = &base.frames[4];
    let newest = &base.records[4];
    for arrangement in [
        vec![stale, fresh],
        vec![fresh, stale],
        vec![stale, fresh, stale],
        vec![fresh, stale, stale],
    ] {
        let dir = tmp("stale");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut image = base.header.clone();
        for f in &arrangement {
            image.extend_from_slice(f);
        }
        std::fs::write(dir.join("r0.s0.spill"), &image).unwrap();
        let load = load_dir(&dir);
        let survivor = load
            .records
            .iter()
            .find(|r| full_key(r) == full_key(newest))
            .expect("the duplicated key must survive");
        assert_eq!(
            survivor, newest,
            "the newest generation must win regardless of frame order"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn cross_file_duplicates_resolve_to_the_newest_generation() {
    // Replica 0 spilled the key long ago; replica 1 re-spilled it later.
    // A warm load over the shared directory must pick replica 1's body —
    // this is what makes a respawned replica inherit the fleet's newest
    // results rather than its own stale ones.
    let base = base();
    let dir = tmp("cross");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let mut old_image = base.header.clone();
    old_image.extend_from_slice(&base.frames[0]);
    let mut new_image = base.header.clone();
    new_image.extend_from_slice(&base.frames[4]);
    std::fs::write(dir.join("r0.s0.spill"), &old_image).unwrap();
    std::fs::write(dir.join("r1.s0.spill"), &new_image).unwrap();
    let load = load_dir(&dir);
    assert_eq!(load.records.len(), 1, "one key, one survivor");
    assert_eq!(&load.records[0], &base.records[4]);
    assert!(load.warnings.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}
